//! Seeded random initialisers. Distributions (uniform range, Gaussian via
//! Box–Muller) are implemented here on top of `rand`'s generator so the
//! repo has no dependency on `rand_distr`.

use crate::tensor::Tensor;
use rand::Rng;

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        assert!(hi >= lo, "empty uniform range [{lo}, {hi})");
        let shape: usize = dims.iter().product();
        let data = (0..shape).map(|_| lo + (hi - lo) * rng.gen::<f32>()).collect();
        Tensor::from_vec(data, dims)
    }

    /// Gaussian samples `N(mean, std²)` via the Box–Muller transform.
    pub fn rand_normal<R: Rng>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // u1 in (0,1] to avoid ln(0)
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
    pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(rng, &[fan_in, fan_out], -limit, limit)
    }

    /// He/Kaiming normal initialisation (for ReLU fan-in).
    pub fn he_normal<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(rng, dims, 0.0, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_respects_range_and_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&mut r1, &[100], -0.5, 0.5);
        let b = Tensor::rand_uniform(&mut r2, &[100], -0.5, 0.5);
        assert_eq!(a.as_slice(), b.as_slice(), "same seed → same tensor");
        assert!(a.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Tensor::rand_normal(&mut rng, &[20_000], 1.0, 2.0);
        let mean = a.mean();
        let var = a.sub_scalar_mean_var();
        assert!((mean - 1.0).abs() < 0.06, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.06, "std {}", var.sqrt());
    }

    #[test]
    fn normal_odd_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_normal(&mut rng, &[7], 0.0, 1.0);
        assert_eq!(a.numel(), 7);
        assert!(a.all_finite());
    }

    #[test]
    fn xavier_limits() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Tensor::xavier_uniform(&mut rng, 30, 70);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), &[30, 70]);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Tensor::he_normal(&mut rng, &[200, 50], 200);
        let std = w.sub_scalar_mean_var().sqrt();
        assert!((std - (2.0f32 / 200.0).sqrt()).abs() < 0.02, "std {std}");
    }

    impl Tensor {
        /// test helper: population variance
        fn sub_scalar_mean_var(&self) -> f32 {
            let m = self.mean();
            self.as_slice().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.numel() as f32
        }
    }
}
