//! Matrix-product entry points: `matmul`, the transpose variants used by
//! backward passes, and `matvec`.
//!
//! All of them route through the packed, register-tiled engine in
//! [`crate::gemm`] — operand transposition is absorbed at pack time, so
//! there is one compute kernel instead of per-variant loops. `matvec` uses
//! the engine's dedicated dot-product kernel (a GEMM with n = 1 would waste
//! the blocking machinery on a single output column).

use crate::gemm;
use crate::pool::Buffer;
use crate::tensor::Tensor;
use legw_parallel::current;

/// Slice-level GEMM into a caller-owned output: `out (+)= op(a) @ op(b)`
/// where `op` is the optional transpose selected by `trans_a`/`trans_b`.
///
/// `a` is `[m,k]` (`[k,m]` when `trans_a`), `b` is `[k,n]` (`[n,k]` when
/// `trans_b`), `out` is `[m,n]`. With `acc` the product accumulates into
/// `out`, otherwise `out` is overwritten. Runs on the current thread pool —
/// the same engine behind [`Tensor::matmul`] and friends, exposed at the
/// slice level so precompiled execution plans can write into preplanned
/// arena slots without materialising tensors.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_into lhs length");
    assert_eq!(b.len(), k * n, "gemm_into rhs length");
    assert_eq!(out.len(), m * n, "gemm_into out length");
    gemm::gemm_into(&current(), trans_a, trans_b, a, b, m, k, n, out, acc);
}

impl Tensor {
    /// Matrix product `self @ rhs` of a `[m,k]` by a `[k,n]` tensor.
    ///
    /// # Panics
    /// If either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(rhs.ndim(), 2, "matmul rhs must be 2-D, got {:?}", rhs.shape());
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul inner dims: {:?} @ {:?}", self.shape(), rhs.shape());
        Tensor::from_buffer(
            gemm::gemm(false, false, self.as_slice(), rhs.as_slice(), m, k, n),
            &[m, n],
        )
    }

    /// Accumulating matrix product `self += a @ b` (the GEMM beta = 1 store
    /// variant). `self` is `[m,n]`, `a` is `[m,k]`, `b` is `[k,n]`; `k = 0`
    /// is a no-op. The sequence-hoisted LSTM path uses this to fold each
    /// timestep's recurrent `h·W_h` product into the pre-computed
    /// input-projection block without a temporary + add pass.
    ///
    /// # Panics
    /// If any operand is not 2-D or the dimensions disagree.
    pub fn matmul_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(self.ndim(), 2, "matmul_acc out must be 2-D, got {:?}", self.shape());
        assert_eq!(a.ndim(), 2, "matmul_acc lhs must be 2-D, got {:?}", a.shape());
        assert_eq!(b.ndim(), 2, "matmul_acc rhs must be 2-D, got {:?}", b.shape());
        let (m, k) = (a.dim(0), a.dim(1));
        let (k2, n) = (b.dim(0), b.dim(1));
        assert_eq!(k, k2, "matmul_acc inner dims: {:?} @ {:?}", a.shape(), b.shape());
        assert_eq!(
            (self.dim(0), self.dim(1)),
            (m, n),
            "matmul_acc out dims: {:?} += {:?} @ {:?}",
            self.shape(),
            a.shape(),
            b.shape()
        );
        gemm::gemm_into(
            &current(),
            false,
            false,
            a.as_slice(),
            b.as_slice(),
            m,
            k,
            n,
            self.as_mut_slice(),
            true,
        );
    }

    /// `selfᵀ @ rhs` for `[k,m]ᵀ @ [k,n] = [m,n]` without materialising the
    /// transpose (used for weight gradients `xᵀ · δ`).
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(rhs.ndim(), 2);
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "t_matmul inner dims: {:?}ᵀ @ {:?}", self.shape(), rhs.shape());
        Tensor::from_buffer(
            gemm::gemm(true, false, self.as_slice(), rhs.as_slice(), m, k, n),
            &[m, n],
        )
    }

    /// `self @ rhsᵀ` for `[m,k] @ [n,k]ᵀ = [m,n]` without materialising the
    /// transpose (used for input gradients `δ · wᵀ`).
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(rhs.ndim(), 2);
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_t inner dims: {:?} @ {:?}ᵀ", self.shape(), rhs.shape());
        Tensor::from_buffer(
            gemm::gemm(false, true, self.as_slice(), rhs.as_slice(), m, k, n),
            &[m, n],
        )
    }

    /// Matrix–vector product `[m,k] @ [k] = [m]` via a dedicated
    /// dot-product kernel.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(v.ndim(), 1);
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec dims: {:?} @ {:?}", self.shape(), v.shape());
        let mut out = Buffer::zeroed(m);
        gemm::gemv(&current(), self.as_slice(), v.as_slice(), m, k, &mut out);
        Tensor::from_buffer(out, &[m])
    }

    /// Outer product of two vectors: `[m] ⊗ [n] = [m,n]`.
    pub fn outer(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 1);
        assert_eq!(v.ndim(), 1);
        let (m, n) = (self.dim(0), v.dim(0));
        self.reshape(&[m, 1]).matmul(&v.reshape(&[1, n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    fn rng_tensor(seed: u64, dims: &[usize]) -> Tensor {
        // tiny deterministic LCG; avoids pulling `rand` into this module
        let n: usize = dims.iter().product();
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            v.push(((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0);
        }
        Tensor::from_vec(v, dims)
    }

    #[test]
    fn matmul_identity() {
        let a = rng_tensor(1, &[5, 5]);
        let i = Tensor::eye(5);
        assert_close(&a.matmul(&i), &a, 1e-6);
        assert_close(&i.matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = rng_tensor(2, &[7, 11]);
        let b = rng_tensor(3, &[11, 5]);
        assert_close(&a.matmul(&b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_matches_naive_parallel_sizes() {
        let a = rng_tensor(4, &[97, 83]);
        let b = rng_tensor(5, &[83, 101]);
        assert_close(&a.matmul(&b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = rng_tensor(6, &[13, 7]);
        let b = rng_tensor(7, &[13, 9]);
        assert_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-5);
        // and on a parallel-sized problem
        let a2 = rng_tensor(8, &[90, 70]);
        let b2 = rng_tensor(9, &[90, 80]);
        assert_close(&a2.t_matmul(&b2), &a2.transpose().matmul(&b2), 1e-4);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = rng_tensor(10, &[13, 7]);
        let b = rng_tensor(11, &[9, 7]);
        assert_close(&a.matmul_t(&b), &a.matmul(&b.transpose()), 1e-5);
        let a2 = rng_tensor(12, &[90, 70]);
        let b2 = rng_tensor(13, &[80, 70]);
        assert_close(&a2.matmul_t(&b2), &a2.matmul(&b2.transpose()), 1e-4);
    }

    #[test]
    fn matvec_and_outer() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let v = Tensor::from_vec(vec![1., 1.], &[2]);
        assert_eq!(a.matvec(&v).as_slice(), &[3., 7.]);
        let u = Tensor::from_vec(vec![1., 2.], &[2]);
        let w = Tensor::from_vec(vec![3., 4., 5.], &[3]);
        assert_eq!(u.outer(&w).as_slice(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    fn matvec_matches_matmul_reshape() {
        let a = rng_tensor(20, &[37, 61]);
        let v = rng_tensor(21, &[61]);
        let via_mm = a.matmul(&v.reshape(&[61, 1])).reshape(&[37]);
        assert_close(&a.matvec(&v), &via_mm, 1e-4);
    }

    #[test]
    fn steady_state_matmul_reuses_output_buffers() {
        let a = rng_tensor(30, &[64, 64]);
        let b = rng_tensor(31, &[64, 64]);
        // Warm the pool: the first output buffer is a fresh allocation that
        // joins the pool when dropped.
        drop(a.matmul(&b));
        let (hits0, _) = crate::pool::thread_stats();
        for _ in 0..10 {
            drop(a.matmul(&b));
        }
        let (hits1, _) = crate::pool::thread_stats();
        assert!(
            hits1 >= hits0 + 10,
            "expected every steady-state output to come from the pool, got {} hits",
            hits1 - hits0
        );
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dim_panics() {
        rng_tensor(1, &[2, 3]).matmul(&rng_tensor(2, &[4, 2]));
    }

    #[test]
    fn matmul_acc_equals_matmul_plus_add() {
        // Includes odd / non-multiple-of-8 extents and a parallel-sized case.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 8, 8), (9, 7, 13), (65, 93, 101)] {
            let c0 = rng_tensor(40 + m as u64, &[m, n]);
            let a = rng_tensor(41 + k as u64, &[m, k]);
            let b = rng_tensor(42 + n as u64, &[k, n]);
            let mut c = c0.clone();
            c.matmul_acc(&a, &b);
            assert_close(&c, &c0.add(&a.matmul(&b)), 1e-4);
        }
    }

    // NOTE: `Shape` rejects zero-sized dimensions, so the k = 0 (empty
    // reduction) beta semantics are covered at the slice level by
    // `gemm::tests::empty_k_beta_semantics` instead of through `Tensor`.

    #[test]
    #[should_panic(expected = "out dims")]
    fn matmul_acc_bad_out_shape_panics() {
        let mut c = rng_tensor(51, &[3, 3]);
        c.matmul_acc(&rng_tensor(52, &[2, 4]), &rng_tensor(53, &[4, 3]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matmul_associates_with_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
            let a = rng_tensor(seed, &[m, k]);
            let b = rng_tensor(seed + 1, &[k, n]);
            assert_close(&a.matmul(&b), &naive(&a, &b), 1e-4);
        }

        #[test]
        fn prop_matmul_acc_matches_matmul_add(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000) {
            let c0 = rng_tensor(seed, &[m, n]);
            let a = rng_tensor(seed + 1, &[m, k]);
            let b = rng_tensor(seed + 2, &[k, n]);
            let mut c = c0.clone();
            c.matmul_acc(&a, &b);
            assert_close(&c, &c0.add(&a.matmul(&b)), 1e-4);
        }

        #[test]
        fn prop_distributes_over_add(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
            let a = rng_tensor(seed, &[m, k]);
            let b = rng_tensor(seed + 1, &[k, n]);
            let c = rng_tensor(seed + 2, &[k, n]);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            assert_close(&lhs, &rhs, 1e-4);
        }
    }
}
