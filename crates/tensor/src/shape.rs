//! Shape arithmetic: dimension products, strides, and broadcasting rules.

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Stored inline for up to four dimensions (all models in this repo are
/// ≤4-D: `[N,C,H,W]` images are the deepest), falling back would be easy but
/// is not needed.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; 4],
    ndim: u8,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    /// If `dims` has more than 4 dimensions or any zero extent.
    pub fn new(dims: &[usize]) -> Self {
        assert!(dims.len() <= 4, "at most 4 dimensions supported, got {}", dims.len());
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension in {dims:?}");
        let mut inline = [1usize; 4];
        inline[..dims.len()].copy_from_slice(dims);
        Self { dims: inline, ndim: dims.len() as u8 }
    }

    /// A scalar (0-dimensional) shape with one element.
    pub fn scalar() -> Self {
        Self { dims: [1; 4], ndim: 0 }
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim as usize]
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product::<usize>().max(1)
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    /// If `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.ndim(), "dimension {i} out of range for {self:?}");
        self.dims[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> [usize; 4] {
        let n = self.ndim();
        let mut s = [1usize; 4];
        if n > 0 {
            for i in (0..n - 1).rev() {
                s[i] = s[i + 1] * self.dims[i + 1];
            }
        }
        s
    }

    /// True if the two shapes are identical.
    pub fn same(&self, other: &Shape) -> bool {
        self == other
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

/// Computes the broadcast result shape of two shapes under NumPy rules:
/// align trailing dimensions; each pair must be equal or one of them 1.
///
/// Returns `None` if the shapes are incompatible.
pub fn broadcast_shapes(a: &Shape, b: &Shape) -> Option<Shape> {
    let n = a.ndim().max(b.ndim());
    let mut out = [1usize; 4];
    for i in 0..n {
        // index from the trailing end
        let da = if i < a.ndim() { a.dims()[a.ndim() - 1 - i] } else { 1 };
        let db = if i < b.ndim() { b.dims()[b.ndim() - 1 - i] } else { 1 };
        let d = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
        out[n - 1 - i] = d;
    }
    Some(Shape::new(&out[..n]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dim(1), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides()[..3], [12, 4, 1]);
        let s1 = Shape::new(&[7]);
        assert_eq!(s1.strides()[0], 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn too_many_dims_rejected() {
        Shape::new(&[1, 1, 1, 1, 1]);
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::new(&[4, 3]);
        let b = Shape::new(&[3]);
        assert_eq!(broadcast_shapes(&a, &b).unwrap().dims(), &[4, 3]);
        let c = Shape::new(&[4, 1]);
        assert_eq!(broadcast_shapes(&a, &c).unwrap().dims(), &[4, 3]);
        let d = Shape::new(&[2, 3]);
        assert!(broadcast_shapes(&a, &d).is_none());
    }

    #[test]
    fn broadcast_scalar_with_anything() {
        let a = Shape::new(&[2, 3, 4]);
        let s = Shape::new(&[1]);
        assert_eq!(broadcast_shapes(&a, &s).unwrap().dims(), &[2, 3, 4]);
    }

    proptest! {
        #[test]
        fn prop_broadcast_commutative(
            a in proptest::collection::vec(1usize..5, 1..4),
            b in proptest::collection::vec(1usize..5, 1..4),
        ) {
            let sa = Shape::new(&a);
            let sb = Shape::new(&b);
            let ab = broadcast_shapes(&sa, &sb);
            let ba = broadcast_shapes(&sb, &sa);
            prop_assert_eq!(ab.clone().map(|s| s.dims().to_vec()), ba.map(|s| s.dims().to_vec()));
            // broadcasting with itself is identity
            let aa = broadcast_shapes(&sa, &sa).unwrap();
            prop_assert_eq!(aa.dims(), sa.dims());
        }

        #[test]
        fn prop_broadcast_result_dominates(
            a in proptest::collection::vec(1usize..5, 1..4),
            b in proptest::collection::vec(1usize..5, 1..4),
        ) {
            let sa = Shape::new(&a);
            let sb = Shape::new(&b);
            if let Some(r) = broadcast_shapes(&sa, &sb) {
                // every output dim is >= both aligned input dims
                prop_assert!(r.numel() >= sa.numel().max(sb.numel()) / sa.numel().min(sb.numel()).max(1) || true);
                prop_assert!(r.ndim() == sa.ndim().max(sb.ndim()));
            }
        }
    }
}
