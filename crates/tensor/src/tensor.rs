//! The core tensor type: contiguous row-major `f32` storage with
//! copy-on-write sharing.

use crate::pool::Buffer;
use crate::shape::Shape;
use std::sync::Arc;

/// A dense, row-major `f32` tensor.
///
/// Cloning is O(1): the buffer is behind an [`Arc`] and only copied when a
/// shared tensor is mutated ([`Tensor::as_mut_slice`] uses `Arc::make_mut`).
/// This makes it cheap for the autograd tape to retain every intermediate
/// value of a forward pass.
///
/// Storage is a [`Buffer`] rather than a bare `Vec<f32>`: when the last
/// reference drops, the allocation rejoins a thread-local recycling pool
/// (see [`crate::pool`]), so steady-state training loops stop paying the
/// allocator for every kernel output.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Buffer>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len()` does not equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of {} elements does not fill shape {:?}",
            data.len(),
            shape
        );
        Self { data: Arc::new(Buffer::from_vec(data)), shape }
    }

    /// Builds a tensor directly from a pooled [`Buffer`] (kernel outputs).
    pub(crate) fn from_buffer(buf: Buffer, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            buf.len(),
            shape.numel(),
            "buffer of {} elements does not fill shape {:?}",
            buf.len(),
            shape
        );
        Self { data: Arc::new(buf), shape }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let buf = Buffer::filled(shape.numel(), value);
        Self { data: Arc::new(buf), shape }
    }

    /// All zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Self::full(dims, 0.0)
    }

    /// All ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self { data: Arc::new(Buffer::zeroed(self.numel())), shape: self.shape.clone() }
    }

    /// A 1-element tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(vec![value], &[1])
    }

    /// Row-major identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            v[i * n + i] = 1.0;
        }
        Self::from_vec(v, &[n, n])
    }

    // ------------------------------------------------------------ accessors

    /// The shape's dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer, copying first if the buffer is
    /// shared (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let buf: &mut Buffer = Arc::make_mut(&mut self.data);
        buf
    }

    /// True if this tensor currently shares its buffer with another.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// The single value of a 1-element tensor.
    ///
    /// # Panics
    /// If the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Element at 2-D index `(r, c)`.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.ndim(), 2, "at2 on {:?}", self.shape);
        let (rows, cols) = (self.dim(0), self.dim(1));
        assert!(r < rows && c < cols, "({r},{c}) out of bounds for {:?}", self.shape);
        self.data[r * cols + c]
    }

    // ------------------------------------------------------------- reshape

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        Tensor { data: Arc::clone(&self.data), shape }
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor {
        self.reshape(&[self.numel()])
    }

    /// Extracts row `r` of a 2-D tensor as a `[cols]` tensor (copies).
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let cols = self.dim(1);
        let start = r * cols;
        Tensor::from_vec(self.data[start..start + cols].to_vec(), &[cols])
    }

    /// Copies rows `[start, end)` of a 2-D tensor into a new `[end-start, cols]` tensor.
    pub fn rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert!(start <= end && end <= self.dim(0));
        let cols = self.dim(1);
        Tensor::from_vec(self.data[start * cols..end * cols].to_vec(), &[end - start, cols])
    }

    /// Tiles a 1-D `[n]` vector into a `[rows, n]` matrix (every row a copy
    /// of `v`). Used to broadcast a bias into a block that a GEMM then
    /// accumulates onto.
    pub fn repeat_rows(v: &Tensor, rows: usize) -> Tensor {
        assert_eq!(v.ndim(), 1, "repeat_rows expects a vector, got {:?}", v.shape);
        let n = v.dim(0);
        let mut out = Buffer::dirty(rows * n);
        let src = v.as_slice();
        for r in 0..rows {
            out[r * n..(r + 1) * n].copy_from_slice(src);
        }
        Tensor::from_buffer(out, &[rows, n])
    }

    /// Copies the index range `[start, end)` of the leading axis, for any
    /// rank ≥ 1 (the N-dimensional generalisation of [`Tensor::rows`]).
    pub fn slice_outer(&self, start: usize, end: usize) -> Tensor {
        assert!(self.ndim() >= 1);
        assert!(start <= end && end <= self.dim(0));
        let inner: usize = self.shape()[1..].iter().product();
        let mut dims = self.shape().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(self.data[start * inner..end * inner].to_vec(), &dims)
    }

    /// Concatenates tensors along the existing leading axis; trailing
    /// dimensions must match. Inverse of slicing with [`Tensor::slice_outer`].
    pub fn concat_outer(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let tail = &parts[0].shape()[1..];
        let mut lead = 0;
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.numel()).sum());
        for p in parts {
            assert_eq!(&p.shape()[1..], tail, "concat_outer trailing-shape mismatch");
            lead += p.dim(0);
            data.extend_from_slice(p.as_slice());
        }
        let mut dims = vec![lead];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, &dims)
    }

    /// Stacks 2-D tensors with identical shapes along a new leading axis,
    /// producing `[k, rows, cols]`.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let s0 = parts[0].shape().to_vec();
        let mut data = Vec::with_capacity(parts[0].numel() * parts.len());
        for p in parts {
            assert_eq!(p.shape(), &s0[..], "stack shape mismatch");
            data.extend_from_slice(p.as_slice());
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(&s0);
        Tensor::from_vec(data, &dims)
    }

    /// Transposes a 2-D tensor (copies into a new buffer).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose expects 2-D, got {:?}", self.shape);
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = Buffer::zeroed(m * n);
        // Simple blocked transpose for cache friendliness.
        const B: usize = 32;
        for ib in (0..m).step_by(B) {
            for jb in (0..n).step_by(B) {
                for i in ib..(ib + B).min(m) {
                    for j in jb..(jb + B).min(n) {
                        out[j * m + i] = src[i * n + j];
                    }
                }
            }
        }
        Tensor::from_buffer(out, &[n, m])
    }

    /// Concatenates 2-D tensors with equal row counts along the column axis.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].dim(0);
        let total_cols: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.ndim(), 2, "concat_cols expects 2-D parts");
                assert_eq!(p.dim(0), rows, "concat_cols row mismatch");
                p.dim(1)
            })
            .sum();
        let mut out = vec![0.0f32; rows * total_cols];
        let mut col_off = 0;
        for p in parts {
            let pc = p.dim(1);
            let src = p.as_slice();
            for r in 0..rows {
                out[r * total_cols + col_off..r * total_cols + col_off + pc]
                    .copy_from_slice(&src[r * pc..(r + 1) * pc]);
            }
            col_off += pc;
        }
        Tensor::from_vec(out, &[rows, total_cols])
    }

    /// Extracts columns `[start, end)` of a 2-D tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (rows, cols) = (self.dim(0), self.dim(1));
        assert!(start <= end && end <= cols, "column slice {start}..{end} out of {cols}");
        let width = end - start;
        let src = self.as_slice();
        let mut out = vec![0.0f32; rows * width];
        for r in 0..rows {
            out[r * width..(r + 1) * width]
                .copy_from_slice(&src[r * cols + start..r * cols + end]);
        }
        Tensor::from_vec(out, &[rows, width])
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.as_slice())
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1]
            )
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_clone_is_cheap_and_isolated() {
        let mut a = Tensor::zeros(&[4, 4]);
        let b = a.clone();
        assert!(a.is_shared());
        a.as_mut_slice()[0] = 7.0;
        assert_eq!(a.as_slice()[0], 7.0);
        assert_eq!(b.as_slice()[0], 0.0, "clone must not observe mutation");
        assert!(!a.is_shared());
    }

    #[test]
    fn reshape_shares_buffer() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_count_panics() {
        Tensor::zeros(&[2, 3]).reshape(&[4]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at2(1, 2), a.at2(2, 1));
        let back = t.transpose();
        assert_eq!(back, a);
    }

    #[test]
    fn concat_and_slice_cols_inverse() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((10..14).map(|x| x as f32).collect(), &[2, 2]);
        let cat = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 5]);
        assert_eq!(cat.slice_cols(0, 3), a);
        assert_eq!(cat.slice_cols(3, 5), b);
    }

    #[test]
    fn stack_builds_leading_axis() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.as_slice()[..4], [1., 1., 1., 1.]);
        assert_eq!(s.as_slice()[4..], [0., 0., 0., 0.]);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(2, 1), 0.0);
    }

    #[test]
    fn rows_extracts_block() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let mid = a.rows(1, 3);
        assert_eq!(mid.shape(), &[2, 3]);
        assert_eq!(mid.as_slice(), &[3., 4., 5., 6., 7., 8.]);
    }

    #[test]
    fn repeat_rows_tiles_vector() {
        let v = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let m = Tensor::repeat_rows(&v, 4);
        assert_eq!(m.shape(), &[4, 3]);
        for r in 0..4 {
            assert_eq!(&m.as_slice()[r * 3..(r + 1) * 3], &[1., 2., 3.]);
        }
    }

    #[test]
    fn slice_outer_and_concat_outer_roundtrip() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[4, 2, 3]);
        let head = a.slice_outer(0, 1);
        let tail = a.slice_outer(1, 4);
        assert_eq!(head.shape(), &[1, 2, 3]);
        assert_eq!(tail.shape(), &[3, 2, 3]);
        assert_eq!(tail.as_slice()[0], 6.0);
        let back = Tensor::concat_outer(&[&head, &tail]);
        assert_eq!(back, a);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "item()")]
    fn item_on_multi_panics() {
        Tensor::zeros(&[2]).item();
    }
}
