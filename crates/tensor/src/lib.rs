//! # legw-tensor
//!
//! Dense, row-major `f32` tensors — the numeric substrate for the LEGW
//! reproduction stack. Everything the training experiments need is here:
//!
//! * [`Tensor`] — contiguous storage behind `Arc<Vec<f32>>` with
//!   copy-on-write semantics: cloning a tensor is O(1), the first in-place
//!   mutation of a shared buffer copies it. The autograd tape exploits this
//!   to record values without deep copies.
//! * NumPy-style [broadcasting](crate::broadcast_shapes) for elementwise
//!   binary ops, with fast paths for the shapes that dominate training
//!   (same-shape, `[m,n] ∘ [n]` bias rows, `[m,n] ∘ [m,1]` column factors).
//! * A packed, register-tiled GEMM engine (the `gemm` module) behind
//!   [`Tensor::matmul`] and the transpose variants backward passes need
//!   (`aᵀb`, `abᵀ`): MR×NR register tiles, pack-time transpose absorption,
//!   MC/KC/NC cache blocking with a 2-D parallel tile grid, and thread-local
//!   packing scratch reused across calls. Kernel outputs come from a
//!   recycling buffer pool, so steady-state training loops stop paying the
//!   allocator per call. The micro-tile (and the other hot kernels: the
//!   `matvec` dot, the activation sweeps, the fused LSTM gate row) is a
//!   runtime-dispatched SIMD variant — AVX-512F, AVX2+FMA, or scalar —
//!   selected once per process (see the [`kernels`] module), so portable
//!   builds keep their vector kernels; all variants are bitwise-equal. An
//!   opt-in bf16 packed-storage mode ([`with_bf16_gemm`]) halves packed
//!   panel bytes for frozen-weight serving, accumulating in f32.
//! * Axis [reductions](Tensor::sum_axis), softmax/log-softmax rows, argmax.
//! * [`im2col`]/[`col2im`] for convolution lowered onto matmul.
//! * Seeded random initialisers (uniform, Gaussian via Box–Muller) — the
//!   `rand` crate supplies the generator, distributions are implemented here.
//!
//! Parallelism comes from [`legw_parallel::global`]; kernels fall back to
//! serial loops below a size threshold so small tensors (like LSTM gate
//! slices) pay no synchronisation cost.
//!
//! ```
//! use legw_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
//! let b = Tensor::from_vec(vec![1., 0., 0., 1., 1., 1.], &[3, 2]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[4., 5., 10., 11.]);
//! ```

mod conv;
pub mod fastmath;
mod gemm;
mod init;
pub mod kernels;
mod lstm_cell;
mod matmul;
mod ops;
pub mod pool;
mod reduce;
mod shape;
mod tensor;

pub use conv::{col2im, col2im_into, im2col, im2col_into, Conv2dGeom};
pub use gemm::{bf16_enabled, pack_traffic, with_bf16 as with_bf16_gemm, PackTraffic};
pub use lstm_cell::{
    lstm_cell_backward, lstm_cell_backward_into, lstm_cell_forward, lstm_cell_forward_into,
    LstmCellFwd,
};
pub use matmul::gemm_into;
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// True when a GEMM with this inner dimension runs as a single k-block.
/// For such shapes `gemm_into(..., acc = true)` accumulates the product
/// directly into the output and is bitwise-identical to computing the
/// product into scratch and adding it afterwards: the engine computes the
/// same micro-tile values either way and each output element sees exactly
/// one `+=`. Multi-k-block shapes interleave partial sums in a different
/// order and must keep the scratch detour.
pub fn gemm_single_k_block(k: usize) -> bool {
    k <= gemm::KC
}

/// Work below this many elements runs serially; above it, kernels use the
/// global thread pool. Chosen so LSTM-cell-sized ops stay on one core.
pub(crate) const PAR_THRESHOLD: usize = 16 * 1024;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn readme_example_holds() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![1., 0., 0., 1., 1., 1.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[4., 5., 10., 11.]);
    }
}
