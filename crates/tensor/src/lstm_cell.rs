//! Fused LSTM cell pointwise kernels.
//!
//! One cache-resident pass over the packed `B×4H` pre-activation block
//! replaces the ~8 separate elementwise ops (4 activations + hadamards +
//! adds) the unfused tape records per timestep. The forward caches the
//! activated gates `σ(i),σ(f),tanh(ĝ),σ(o)` and `tanh(c')` so the backward
//! is a single closed-form pass instead of a re-walk of 8 nodes.
//!
//! Gate layout matches `legw_nn::LstmCell`: the `4H` columns are
//! `[i | f | ĝ | o]` (input, forget, candidate, output), and
//!
//! ```text
//! c' = σ(f)∘c + σ(i)∘tanh(ĝ)        h' = σ(o)∘tanh(c')
//! ```
//!
//! The per-element arithmetic matches the unfused op chain exactly (the
//! same [`crate::fastmath`] rational sigmoid/tanh scalars and the same
//! mul/mul/add order; rustc does not contract `a*b + c*d` into FMA), so
//! fusing is bit-identical to the separate-op path — the
//! shard-equivalence and determinism guarantees carry over unchanged.
//! Because those scalars are branch-free straight-line polynomials, the
//! per-row gate loop below auto-vectorises instead of issuing five libm
//! calls per hidden unit.
//!
//! Both kernels are row-parallel on [`legw_parallel::current`], so they
//! respect the executor's thread-local per-shard pool override.

use crate::kernels::{self, Kernel};
use crate::pool::Buffer;
use crate::tensor::Tensor;
use crate::PAR_THRESHOLD;
use legw_parallel::{current, parallel_for};
use std::ops::Range;

/// Everything the fused forward produces: the outputs plus the cached
/// intermediates its closed-form backward reuses.
pub struct LstmCellFwd {
    /// New hidden state `h' = σ(o)∘tanh(c')`, shape `[B, H]`.
    pub h: Tensor,
    /// New cell state `c' = σ(f)∘c + σ(i)∘tanh(ĝ)`, shape `[B, H]`.
    pub c: Tensor,
    /// Activated gates `[σ(i) | σ(f) | tanh(ĝ) | σ(o)]`, shape `[B, 4H]`.
    pub gates: Tensor,
    /// `tanh(c')`, shape `[B, H]`.
    pub tanh_c: Tensor,
}

/// Shared pointer for disjoint row-range writes from the parallel loop.
struct SendPtr(*mut f32);
unsafe impl Sync for SendPtr {}
impl SendPtr {
    /// # Safety
    /// Caller must hand out non-overlapping `offset..offset+len` windows.
    unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[allow(clippy::too_many_arguments)]
fn fwd_rows(
    kern: Kernel,
    rows: Range<usize>,
    hid: usize,
    pa: &[f32],
    cp: &[f32],
    gates: &SendPtr,
    c_out: &SendPtr,
    tanh_c: &SendPtr,
    h_out: &SendPtr,
) {
    for r in rows {
        let pa_r = &pa[r * 4 * hid..(r + 1) * 4 * hid];
        let cp_r = &cp[r * hid..(r + 1) * hid];
        // Safety: row ranges from the parallel loop are disjoint.
        let (g_r, c_r, t_r, h_r) = unsafe {
            (
                gates.slice(r * 4 * hid, 4 * hid),
                c_out.slice(r * hid, hid),
                tanh_c.slice(r * hid, hid),
                h_out.slice(r * hid, hid),
            )
        };
        kernels::lstm_gate_row(kern, pa_r, cp_r, hid, g_r, c_r, t_r, h_r);
    }
}

/// Slice-level fused LSTM cell forward into caller-owned outputs.
///
/// Identical arithmetic and row-parallel split to [`lstm_cell_forward`];
/// exposed so precompiled execution plans can write into preplanned arena
/// slots. `preact` is `[B, 4H]` (gate order `i,f,ĝ,o`), `c_prev` is `[B, H]`;
/// `gates` receives the activated gates, `c_out`/`tanh_c`/`h_out` the new
/// cell state, its tanh, and the new hidden state.
#[allow(clippy::too_many_arguments)]
pub fn lstm_cell_forward_into(
    preact: &[f32],
    c_prev: &[f32],
    b: usize,
    hid: usize,
    gates: &mut [f32],
    c_out: &mut [f32],
    tanh_c: &mut [f32],
    h_out: &mut [f32],
) {
    assert_eq!(preact.len(), b * 4 * hid, "lstm_cell: preact must be [B, 4H]");
    assert_eq!(c_prev.len(), b * hid, "lstm_cell: c_prev must be [B, H]");
    assert_eq!(gates.len(), b * 4 * hid);
    assert_eq!(c_out.len(), b * hid);
    assert_eq!(tanh_c.len(), b * hid);
    assert_eq!(h_out.len(), b * hid);
    let gp = SendPtr(gates.as_mut_ptr());
    let op = SendPtr(c_out.as_mut_ptr());
    let tp = SendPtr(tanh_c.as_mut_ptr());
    let hp = SendPtr(h_out.as_mut_ptr());
    let min_rows = (PAR_THRESHOLD / (4 * hid).max(1)).max(1);
    // Read once on the calling thread: pool workers don't see this
    // thread's kernel override, so the choice rides in via the closure.
    let kern = kernels::selected();
    let pool = current();
    parallel_for(&pool, b, min_rows, |rows| {
        fwd_rows(kern, rows, hid, preact, c_prev, &gp, &op, &tp, &hp);
    });
}

/// Fused LSTM cell forward: one pass over the `B×4H` pre-activations.
///
/// `preact` is `[B, 4H]` (gate order `i,f,ĝ,o`), `c_prev` is `[B, H]`.
pub fn lstm_cell_forward(preact: &Tensor, c_prev: &Tensor) -> LstmCellFwd {
    assert_eq!(preact.ndim(), 2, "lstm_cell: preact must be [B, 4H]");
    assert_eq!(c_prev.ndim(), 2, "lstm_cell: c_prev must be [B, H]");
    let b = preact.dim(0);
    let hid = c_prev.dim(1);
    assert_eq!(c_prev.dim(0), b, "lstm_cell: batch mismatch");
    assert_eq!(preact.dim(1), 4 * hid, "lstm_cell: preact cols must be 4*H");

    let mut gates = Buffer::zeroed(b * 4 * hid);
    let mut c_out = Buffer::zeroed(b * hid);
    let mut tanh_c = Buffer::zeroed(b * hid);
    let mut h_out = Buffer::zeroed(b * hid);
    lstm_cell_forward_into(
        preact.as_slice(),
        c_prev.as_slice(),
        b,
        hid,
        &mut gates,
        &mut c_out,
        &mut tanh_c,
        &mut h_out,
    );
    LstmCellFwd {
        h: Tensor::from_buffer(h_out, &[b, hid]),
        c: Tensor::from_buffer(c_out, &[b, hid]),
        gates: Tensor::from_buffer(gates, &[b, 4 * hid]),
        tanh_c: Tensor::from_buffer(tanh_c, &[b, hid]),
    }
}

#[allow(clippy::too_many_arguments)]
fn bwd_rows(
    rows: Range<usize>,
    hid: usize,
    ga: &[f32],
    tc: &[f32],
    cp: &[f32],
    dh: Option<&[f32]>,
    dc: Option<&[f32]>,
    dpre: &SendPtr,
    dc_prev: &SendPtr,
) {
    for r in rows {
        let g_r = &ga[r * 4 * hid..(r + 1) * 4 * hid];
        let t_r = &tc[r * hid..(r + 1) * hid];
        let cp_r = &cp[r * hid..(r + 1) * hid];
        let dh_r = dh.map(|s| &s[r * hid..(r + 1) * hid]);
        let dc_r = dc.map(|s| &s[r * hid..(r + 1) * hid]);
        // Safety: row ranges from the parallel loop are disjoint.
        let (dp_r, dcp_r) =
            unsafe { (dpre.slice(r * 4 * hid, 4 * hid), dc_prev.slice(r * hid, hid)) };
        for j in 0..hid {
            let i = g_r[j];
            let f = g_r[hid + j];
            let g = g_r[2 * hid + j];
            let o = g_r[3 * hid + j];
            let t = t_r[j];
            let dh_j = dh_r.map_or(0.0, |s| s[j]);
            let dc_j = dc_r.map_or(0.0, |s| s[j]);
            // dL/dc' seen by the cell interior: the incoming cell gradient
            // plus the hidden-path gradient through h' = o∘tanh(c').
            let dct = dc_j + dh_j * o * (1.0 - t * t);
            dp_r[j] = dct * g * i * (1.0 - i);
            dp_r[hid + j] = dct * cp_r[j] * f * (1.0 - f);
            dp_r[2 * hid + j] = dct * i * (1.0 - g * g);
            dp_r[3 * hid + j] = dh_j * t * o * (1.0 - o);
            dcp_r[j] = dct * f;
        }
    }
}

/// Closed-form fused LSTM cell backward.
///
/// Takes the forward's cached `gates` (`[B,4H]`, already activated),
/// `tanh_c` (`[B,H]`) and the original `c_prev`, plus the upstream
/// gradients `dh` (w.r.t. `h'`) and `dc` (w.r.t. `c'`) — either may be
/// absent. Returns `(dpreact, dc_prev)`.
pub fn lstm_cell_backward(
    gates: &Tensor,
    tanh_c: &Tensor,
    c_prev: &Tensor,
    dh: Option<&Tensor>,
    dc: Option<&Tensor>,
) -> (Tensor, Tensor) {
    let b = c_prev.dim(0);
    let hid = c_prev.dim(1);
    debug_assert_eq!(gates.shape(), &[b, 4 * hid]);
    debug_assert_eq!(tanh_c.shape(), &[b, hid]);
    if let Some(t) = dh {
        debug_assert_eq!(t.shape(), &[b, hid]);
    }
    if let Some(t) = dc {
        debug_assert_eq!(t.shape(), &[b, hid]);
    }

    let mut dpre = Buffer::zeroed(b * 4 * hid);
    let mut dc_prev = Buffer::zeroed(b * hid);
    lstm_cell_backward_into(
        gates.as_slice(),
        tanh_c.as_slice(),
        c_prev.as_slice(),
        dh.map(|t| t.as_slice()),
        dc.map(|t| t.as_slice()),
        b,
        hid,
        &mut dpre,
        &mut dc_prev,
    );
    (Tensor::from_buffer(dpre, &[b, 4 * hid]), Tensor::from_buffer(dc_prev, &[b, hid]))
}

/// Slice-level fused LSTM cell backward into caller-owned outputs — the
/// arithmetic of [`lstm_cell_backward`] without tensor materialisation.
#[allow(clippy::too_many_arguments)]
pub fn lstm_cell_backward_into(
    gates: &[f32],
    tanh_c: &[f32],
    c_prev: &[f32],
    dh: Option<&[f32]>,
    dc: Option<&[f32]>,
    b: usize,
    hid: usize,
    dpre: &mut [f32],
    dc_prev: &mut [f32],
) {
    assert_eq!(gates.len(), b * 4 * hid);
    assert_eq!(tanh_c.len(), b * hid);
    assert_eq!(c_prev.len(), b * hid);
    assert_eq!(dpre.len(), b * 4 * hid);
    assert_eq!(dc_prev.len(), b * hid);
    let dp = SendPtr(dpre.as_mut_ptr());
    let dcp = SendPtr(dc_prev.as_mut_ptr());
    let min_rows = (PAR_THRESHOLD / (4 * hid).max(1)).max(1);
    let pool = current();
    parallel_for(&pool, b, min_rows, |rows| {
        bwd_rows(rows, hid, gates, tanh_c, c_prev, dh, dc, &dp, &dcp);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn rand_t(seed: u64, dims: &[usize]) -> Tensor {
        Tensor::from_vec(lcg(seed, dims.iter().product()), dims)
    }

    /// Unfused reference: the same op chain `legw_nn::LstmCell` recorded
    /// before fusion, via public Tensor ops.
    fn reference(preact: &Tensor, c_prev: &Tensor) -> (Tensor, Tensor) {
        let b = preact.dim(0);
        let hid = c_prev.dim(1);
        let cols = |t: &Tensor, a: usize| {
            let src = t.as_slice();
            let mut out = vec![0.0f32; b * hid];
            for r in 0..b {
                out[r * hid..(r + 1) * hid]
                    .copy_from_slice(&src[r * 4 * hid + a * hid..r * 4 * hid + (a + 1) * hid]);
            }
            Tensor::from_vec(out, &[b, hid])
        };
        let i = cols(preact, 0).sigmoid();
        let f = cols(preact, 1).sigmoid();
        let g = cols(preact, 2).tanh();
        let o = cols(preact, 3).sigmoid();
        let c = f.mul(c_prev).add(&i.mul(&g));
        let h = o.mul(&c.tanh());
        (h, c)
    }

    #[test]
    fn forward_matches_unfused_bitwise() {
        for &(b, hid) in &[(1usize, 1usize), (1, 7), (3, 13), (8, 32), (5, 9)] {
            let preact = rand_t(b as u64 * 31 + hid as u64, &[b, 4 * hid]);
            let c_prev = rand_t(b as u64 * 17 + hid as u64 + 1, &[b, hid]);
            let fwd = lstm_cell_forward(&preact, &c_prev);
            let (h_ref, c_ref) = reference(&preact, &c_prev);
            assert_eq!(fwd.h.shape(), &[b, hid]);
            assert_eq!(fwd.c.shape(), &[b, hid]);
            for (a, w) in fwd.h.as_slice().iter().zip(h_ref.as_slice()) {
                assert_eq!(a.to_bits(), w.to_bits(), "h mismatch at B={b} H={hid}");
            }
            for (a, w) in fwd.c.as_slice().iter().zip(c_ref.as_slice()) {
                assert_eq!(a.to_bits(), w.to_bits(), "c mismatch at B={b} H={hid}");
            }
        }
    }

    #[test]
    fn cached_intermediates_are_consistent() {
        let (b, hid) = (4, 6);
        let preact = rand_t(5, &[b, 4 * hid]);
        let c_prev = rand_t(6, &[b, hid]);
        let fwd = lstm_cell_forward(&preact, &c_prev);
        let ga = fwd.gates.as_slice();
        let tc = fwd.tanh_c.as_slice();
        for r in 0..b {
            for j in 0..hid {
                let i = ga[r * 4 * hid + j];
                let f = ga[r * 4 * hid + hid + j];
                let g = ga[r * 4 * hid + 2 * hid + j];
                let c = f * c_prev.as_slice()[r * hid + j] + i * g;
                assert_eq!(c.to_bits(), fwd.c.as_slice()[r * hid + j].to_bits());
                assert_eq!(crate::fastmath::fast_tanh(c).to_bits(), tc[r * hid + j].to_bits());
            }
        }
    }

    /// Backward against central finite differences of the fused forward,
    /// for every combination of upstream gradients.
    #[test]
    fn backward_matches_finite_differences() {
        let (b, hid) = (3, 5);
        let preact = rand_t(7, &[b, 4 * hid]);
        let c_prev = rand_t(8, &[b, hid]);
        let dh = rand_t(9, &[b, hid]);
        let dc = rand_t(10, &[b, hid]);
        for (use_dh, use_dc) in [(true, true), (true, false), (false, true)] {
            let loss = |pa: &Tensor, cp: &Tensor| -> f64 {
                let fwd = lstm_cell_forward(pa, cp);
                let mut acc = 0.0f64;
                if use_dh {
                    for (x, w) in fwd.h.as_slice().iter().zip(dh.as_slice()) {
                        acc += (x * w) as f64;
                    }
                }
                if use_dc {
                    for (x, w) in fwd.c.as_slice().iter().zip(dc.as_slice()) {
                        acc += (x * w) as f64;
                    }
                }
                acc
            };
            let fwd = lstm_cell_forward(&preact, &c_prev);
            let (dpre, dcp) = lstm_cell_backward(
                &fwd.gates,
                &fwd.tanh_c,
                &c_prev,
                use_dh.then_some(&dh),
                use_dc.then_some(&dc),
            );
            let eps = 1e-3f32;
            for idx in 0..preact.numel() {
                let mut plus = preact.as_slice().to_vec();
                plus[idx] += eps;
                let mut minus = preact.as_slice().to_vec();
                minus[idx] -= eps;
                let fd = (loss(&Tensor::from_vec(plus, preact.shape()), &c_prev)
                    - loss(&Tensor::from_vec(minus, preact.shape()), &c_prev))
                    / (2.0 * eps as f64);
                let an = dpre.as_slice()[idx] as f64;
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                    "dpre[{idx}] fd={fd} analytic={an} (dh={use_dh} dc={use_dc})"
                );
            }
            for idx in 0..c_prev.numel() {
                let mut plus = c_prev.as_slice().to_vec();
                plus[idx] += eps;
                let mut minus = c_prev.as_slice().to_vec();
                minus[idx] -= eps;
                let fd = (loss(&preact, &Tensor::from_vec(plus, c_prev.shape()))
                    - loss(&preact, &Tensor::from_vec(minus, c_prev.shape())))
                    / (2.0 * eps as f64);
                let an = dcp.as_slice()[idx] as f64;
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                    "dc_prev[{idx}] fd={fd} analytic={an} (dh={use_dh} dc={use_dc})"
                );
            }
        }
    }

    /// Above PAR_THRESHOLD the row-parallel path must produce the same bits
    /// as a serial run (row-independent, so this holds for any pool).
    #[test]
    fn parallel_matches_serial_bitwise() {
        let (b, hid) = (192, 48); // b*4*hid = 36864 > PAR_THRESHOLD
        let preact = rand_t(11, &[b, 4 * hid]);
        let c_prev = rand_t(12, &[b, hid]);
        let par = lstm_cell_forward(&preact, &c_prev);
        // Serial reference: force one chunk by computing rows directly.
        let mut gates = vec![0.0f32; b * 4 * hid];
        let mut c_out = vec![0.0f32; b * hid];
        let mut tanh_c = vec![0.0f32; b * hid];
        let mut h_out = vec![0.0f32; b * hid];
        fwd_rows(
            Kernel::Scalar,
            0..b,
            hid,
            preact.as_slice(),
            c_prev.as_slice(),
            &SendPtr(gates.as_mut_ptr()),
            &SendPtr(c_out.as_mut_ptr()),
            &SendPtr(tanh_c.as_mut_ptr()),
            &SendPtr(h_out.as_mut_ptr()),
        );
        assert!(par.h.as_slice().iter().zip(&h_out).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(par.c.as_slice().iter().zip(&c_out).all(|(a, b)| a.to_bits() == b.to_bits()));
        let dh = rand_t(13, &[b, hid]);
        let dc = rand_t(14, &[b, hid]);
        let (dp1, dc1) = lstm_cell_backward(&par.gates, &par.tanh_c, &c_prev, Some(&dh), Some(&dc));
        let mut dpre = vec![0.0f32; b * 4 * hid];
        let mut dcp = vec![0.0f32; b * hid];
        bwd_rows(
            0..b,
            hid,
            par.gates.as_slice(),
            par.tanh_c.as_slice(),
            c_prev.as_slice(),
            Some(dh.as_slice()),
            Some(dc.as_slice()),
            &SendPtr(dpre.as_mut_ptr()),
            &SendPtr(dcp.as_mut_ptr()),
        );
        assert!(dp1.as_slice().iter().zip(&dpre).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(dc1.as_slice().iter().zip(&dcp).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
