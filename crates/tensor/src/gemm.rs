//! Packed, register-tiled GEMM engine.
//!
//! One kernel serves all four matmul entry points (`matmul`, `t_matmul`,
//! `matmul_t`, `matvec`) and the im2col conv path. The structure is the
//! classic three-level blocking of high-performance BLAS (GotoBLAS/BLIS),
//! scaled to this crate's needs:
//!
//! * **Register tiling** — the innermost unit is an `MR×NR` tile of `f32`
//!   accumulators. The tile computation is a runtime-dispatched
//!   [`crate::kernels::Micro`] variant: explicit AVX-512F (8×16), AVX2
//!   (8×8), or the original safe-Rust scalar tile, selected once per call
//!   from [`crate::kernels::selected`] — so a portable build without
//!   `-C target-cpu=native` still runs vector microkernels on hardware
//!   that has them. All variants are bitwise-equal (same per-element
//!   mul/add rounding sequence; see the `kernels` module docs).
//! * **Panel packing** — before the microkernel runs, the A and B operands
//!   of the current cache block are repacked into contiguous buffers laid
//!   out exactly in microkernel access order (`MR`- and `NR`-wide
//!   micro-panels, k-major). Packing is where operand layout is absorbed:
//!   a transposed A (`t_matmul`) or transposed B (`matmul_t`) only changes
//!   the gather pattern of the pack loop, so there is a single compute
//!   kernel instead of three divergent hand-written loops. Edge tiles are
//!   zero-padded at pack time, which keeps the microkernel free of bounds
//!   logic. Packing is also where the **bf16 storage mode** lives: inside
//!   a [`with_bf16`] scope the panels are narrowed f32→bf16
//!   (round-to-nearest-even) as they are packed — halving packed bytes and
//!   pack traffic — and widened back (exactly) inside the micro-tile, with
//!   all accumulation still in f32. Only the packed panels change layout;
//!   operands and outputs stay f32.
//! * **Cache blocking + 2-D parallelism** — the output is cut into an
//!   ([`MC`] × [`NC`]) block grid; each grid cell is an independent task
//!   dispatched via [`legw_parallel::par_tiles_2d`], and loops over shared
//!   [`KC`]-deep slices of the k dimension internally. Block sizes shrink
//!   adaptively (see [`plan_blocks`]) so tall-skinny/short-wide shapes —
//!   the LSTM-gate and im2col shapes large-batch training produces — still
//!   fan out over every worker instead of leaving threads idle the way the
//!   old row-chunk decomposition did.
//! * **Scratch reuse** — packing buffers are thread-local (one pair per
//!   packed element type) and persist across calls, and outputs come from
//!   the [`crate::pool`] recycler, so the steady-state training loop
//!   performs no per-call heap allocation here.

use crate::kernels::{self, Kernel, Micro, PackElem};
use crate::pool::Buffer;
use legw_parallel::{current, par_chunks_mut, par_tiles_2d, ThreadPool};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Scalar/AVX2 microkernel rows: the M-extent of the register tile. (The
/// AVX-512 tile is 8×16; blocking adapts per variant.) Only the boundary
/// tests need the name — the engine takes tile extents from the dispatched
/// [`Micro`] variant.
#[cfg(test)]
pub(crate) const MR: usize = kernels::scalar::TILE;
/// Scalar/AVX2 microkernel columns: the N-extent of the register tile.
#[cfg(test)]
pub(crate) const NR: usize = kernels::scalar::TILE;
/// M-dimension cache block (A block of `MC×KC` targets L2).
pub(crate) const MC: usize = 128;
/// K-dimension cache block (packed panels of `MR×KC`/`KC×NR` live in L1).
pub(crate) const KC: usize = 256;
/// N-dimension cache block (B block of `KC×NC` targets L2/L3).
pub(crate) const NC: usize = 256;

/// Minimum multiply-adds before the thread pool is engaged.
const PAR_FLOPS: usize = 64 * 64 * 64;

thread_local! {
    /// Reused (packed-A, packed-B) f32 scratch; grows to `MC·KC` / `KC·NC`
    /// once and is then reused by every GEMM call on this thread.
    static SCRATCH_F32: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// bf16-mode packing scratch (bf16 bit patterns).
    static SCRATCH_BF16: RefCell<(Vec<u16>, Vec<u16>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Whether GEMMs issued from this thread pack panels as bf16.
    static BF16_MODE: Cell<bool> = const { Cell::new(false) };
}

/// Bytes written into f32 packed panels, process-wide.
static PACKED_F32_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes written into bf16 packed panels, process-wide.
static PACKED_BF16_BYTES: AtomicU64 = AtomicU64::new(0);

/// Cumulative packed-panel traffic (process-wide, monotonic). The bf16
/// serving mode's "half the packed weight bytes" claim is measured against
/// these counters; both count bytes *written to pack buffers*, so for one
/// shape the bf16 number is exactly half the f32 number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackTraffic {
    /// Bytes packed by f32-mode GEMMs.
    pub f32_bytes: u64,
    /// Bytes packed by bf16-mode GEMMs.
    pub bf16_bytes: u64,
}

/// Snapshot of the process-wide [`PackTraffic`] counters.
pub fn pack_traffic() -> PackTraffic {
    PackTraffic {
        f32_bytes: PACKED_F32_BYTES.load(Ordering::Relaxed),
        bf16_bytes: PACKED_BF16_BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f` with bf16 packed-panel storage enabled for every GEMM *issued
/// from this thread* (the mode is read once at `gemm_into` entry, so a
/// parallel GEMM's worker tasks inherit the issuing call's mode). Restores
/// the previous mode on exit; scopes nest.
///
/// Numerics contract: inside the scope, `A·B` is computed bitwise as the
/// f32 engine would compute `round_bf16(A) · round_bf16(B)` — rounding
/// happens once per packed element, accumulation stays f32, and `matvec`
/// (which packs nothing) is unaffected. See `kernels::bf16`.
pub fn with_bf16<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            BF16_MODE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BF16_MODE.with(|c| c.replace(true)));
    f()
}

/// True when this thread is inside a [`with_bf16`] scope.
pub fn bf16_enabled() -> bool {
    BF16_MODE.with(Cell::get)
}

/// Packed-element plumbing the blocked engine needs beyond
/// [`PackElem`]: a per-thread scratch pair and a traffic counter.
trait PackScratch: PackElem {
    fn with_scratch<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R;
    fn counter() -> &'static AtomicU64;
}

impl PackScratch for f32 {
    fn with_scratch<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
        SCRATCH_F32.with(|s| {
            let (a, b) = &mut *s.borrow_mut();
            f(a, b)
        })
    }
    fn counter() -> &'static AtomicU64 {
        &PACKED_F32_BYTES
    }
}

impl PackScratch for u16 {
    fn with_scratch<R>(f: impl FnOnce(&mut Vec<u16>, &mut Vec<u16>) -> R) -> R {
        SCRATCH_BF16.with(|s| {
            let (a, b) = &mut *s.borrow_mut();
            f(a, b)
        })
    }
    fn counter() -> &'static AtomicU64 {
        &PACKED_BF16_BYTES
    }
}

/// Computes `C = A·B` into a pooled buffer.
///
/// `trans_a` means A is stored `[k, m]` (so `A[i,l] = a[l·m + i]`);
/// `trans_b` means B is stored `[n, k]` (so `B[l,j] = b[j·k + l]`). The
/// result is always row-major `[m, n]`.
pub(crate) fn gemm(
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Buffer {
    // The non-accumulating kernel overwrites every output element, so the
    // buffer can start dirty — no memset on the hot path.
    let mut out = Buffer::dirty(m * n);
    gemm_into(&current(), trans_a, trans_b, a, b, m, k, n, &mut out, false);
    out
}

/// Thin wrapper over a raw output pointer: tasks write disjoint row/column
/// tiles, so sharing the base pointer across the pool is sound.
struct OutPtr(*mut f32);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}
impl OutPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// [`gemm`] with an explicit pool, output slice, and store mode.
///
/// With `acc = false` the kernel computes `C = A·B` (beta = 0: every output
/// element is overwritten, so `out` may hold garbage on entry). With
/// `acc = true` it computes `C += A·B` (beta = 1), which is what the
/// sequence-hoisted LSTM recurrent step uses to fold `h·W_h` into the
/// pre-computed input-projection block. Also the test and bench hook — lets
/// single- vs multi-threaded execution be compared without touching the
/// global pool.
///
/// The kernel variant ([`crate::kernels::selected`]) and the bf16 pack
/// mode ([`bf16_enabled`]) are both read **once, here, on the calling
/// thread** — worker tasks inherit the choice through monomorphisation, so
/// thread-local overrides and bf16 scopes cover the whole call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_into(
    pool: &ThreadPool,
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "gemm A size");
    assert_eq!(b.len(), k * n, "gemm B size");
    assert_eq!(out.len(), m * n, "gemm C size");
    if m == 0 || n == 0 || k == 0 {
        // An empty reduction still has defined beta semantics: beta = 0
        // must leave C = 0, beta = 1 leaves C untouched.
        if !acc {
            out.iter_mut().for_each(|x| *x = 0.0);
        }
        return;
    }
    use crate::kernels::scalar::ScalarMicro;
    #[cfg(target_arch = "x86_64")]
    use crate::kernels::{avx2::Avx2Micro, avx512::Avx512Micro};
    match (kernels::selected(), bf16_enabled()) {
        (Kernel::Scalar, false) => {
            gemm_blocked::<ScalarMicro<f32>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        (Kernel::Scalar, true) => {
            gemm_blocked::<ScalarMicro<u16>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        #[cfg(target_arch = "x86_64")]
        (Kernel::Avx2, false) => {
            gemm_blocked::<Avx2Micro<f32>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        #[cfg(target_arch = "x86_64")]
        (Kernel::Avx2, true) => {
            gemm_blocked::<Avx2Micro<u16>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        #[cfg(target_arch = "x86_64")]
        (Kernel::Avx512, false) => {
            gemm_blocked::<Avx512Micro<f32>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        #[cfg(target_arch = "x86_64")]
        (Kernel::Avx512, true) => {
            gemm_blocked::<Avx512Micro<u16>>(pool, trans_a, trans_b, a, b, m, k, n, out, acc)
        }
        // selected() never returns a vector variant off x86-64.
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector kernel selected on non-x86_64"),
    }
}

/// The blocked engine, monomorphised per micro-tile variant. The loop
/// structure (and, for the scalar f32 instantiation, every arithmetic
/// step) is identical to the pre-dispatch engine.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<M: Micro>(
    pool: &ThreadPool,
    trans_a: bool,
    trans_b: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    acc: bool,
) where
    M::E: PackScratch,
{
    let lda = if trans_a { m } else { k };
    let ldb = if trans_b { k } else { n };

    let parallel = m * n * k >= PAR_FLOPS && pool.threads() > 1;
    let (mc, nc) =
        if parallel { plan_blocks(m, n, pool.threads(), M::MR, M::NR) } else { (MC, NC) };

    let base = OutPtr(out.as_mut_ptr());
    let tile = |ti: usize, tj: usize| {
        let i0 = ti * mc;
        let mb = mc.min(m - i0);
        let j0 = tj * nc;
        let nb = nc.min(n - j0);
        M::E::with_scratch(|apack, bpack| {
            for k0 in (0..k).step_by(KC) {
                let kb = KC.min(k - k0);
                pack_a::<M::E>(apack, a, trans_a, lda, i0, mb, k0, kb, M::MR);
                pack_b::<M::E>(bpack, b, trans_b, ldb, k0, kb, j0, nb, M::NR);
                M::E::counter().fetch_add(
                    ((apack.len() + bpack.len()) * std::mem::size_of::<M::E>()) as u64,
                    Ordering::Relaxed,
                );
                // Only the first k-block of a beta=0 GEMM overwrites; later
                // k-blocks always accumulate partial sums.
                let acc_block = acc || k0 > 0;
                // SAFETY: this (ti, tj) task exclusively owns output rows
                // i0..i0+mb × columns j0..j0+nb; tiles are disjoint; the
                // dispatch layer only selects variants this CPU supports.
                unsafe {
                    macro_kernel::<M>(apack, bpack, mb, nb, kb, base.get(), n, i0, j0, acc_block)
                };
            }
        });
    };

    let (tiles_m, tiles_n) = (m.div_ceil(mc), n.div_ceil(nc));
    if parallel {
        par_tiles_2d(pool, tiles_m, tiles_n, tile);
    } else {
        for ti in 0..tiles_m {
            for tj in 0..tiles_n {
                tile(ti, tj);
            }
        }
    }
}

/// Chooses (MC, NC) for this problem: start from the cache-friendly
/// defaults and halve the proportionally larger block until the tile grid
/// has at least `2·threads` cells (or blocks reach two micro-tiles), so
/// skinny shapes still occupy the whole pool. `mr`/`nr` are the selected
/// variant's tile extents (blocks stay micro-tile-aligned).
fn plan_blocks(m: usize, n: usize, threads: usize, mr: usize, nr: usize) -> (usize, usize) {
    let mut mc = MC.min(m.next_multiple_of(mr));
    let mut nc = NC.min(n.next_multiple_of(nr));
    while m.div_ceil(mc) * n.div_ceil(nc) < 2 * threads {
        let can_m = mc > 2 * mr;
        let can_n = nc > 2 * nr;
        if !can_m && !can_n {
            break;
        }
        if can_m && (!can_n || mc / mr >= nc / nr) {
            mc = (mc / 2).next_multiple_of(mr);
        } else {
            nc = (nc / 2).next_multiple_of(nr);
        }
    }
    (mc, nc)
}

/// Packs the `mb×kb` block of A starting at `(i0, k0)` into `mr`-row
/// micro-panels, k-major within each panel, converting each element via
/// [`PackElem::pack`] (identity for f32, round-to-nearest-even for bf16).
/// Rows past `mb` in the last panel are zero-filled so the microkernel
/// needs no M-edge handling.
#[allow(clippy::too_many_arguments)]
fn pack_a<E: PackElem>(
    buf: &mut Vec<E>,
    a: &[f32],
    trans: bool,
    lda: usize,
    i0: usize,
    mb: usize,
    k0: usize,
    kb: usize,
    mr: usize,
) {
    let panels = mb.div_ceil(mr);
    buf.clear();
    buf.resize(panels * kb * mr, E::default());
    for p in 0..panels {
        let r0 = i0 + p * mr;
        let rows = mr.min(i0 + mb - r0);
        let dst = &mut buf[p * kb * mr..(p + 1) * kb * mr];
        if trans {
            // A stored [k, m]: row kk of the source is already contiguous
            // in i, so each k-step is a straight converting copy.
            for kk in 0..kb {
                let src = &a[(k0 + kk) * lda + r0..(k0 + kk) * lda + r0 + rows];
                for (d, &v) in dst[kk * mr..kk * mr + rows].iter_mut().zip(src) {
                    *d = E::pack(v);
                }
            }
        } else {
            // A stored [m, k]: gather each row's k-slice with stride mr.
            for r in 0..rows {
                let src = &a[(r0 + r) * lda + k0..][..kb];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * mr + r] = E::pack(v);
                }
            }
        }
    }
}

/// Packs the `kb×nb` block of B starting at `(k0, j0)` into `nr`-column
/// micro-panels, k-major within each panel, zero-padding the N edge and
/// converting via [`PackElem::pack`].
#[allow(clippy::too_many_arguments)]
fn pack_b<E: PackElem>(
    buf: &mut Vec<E>,
    b: &[f32],
    trans: bool,
    ldb: usize,
    k0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
) {
    let panels = nb.div_ceil(nr);
    buf.clear();
    buf.resize(panels * kb * nr, E::default());
    for p in 0..panels {
        let c0 = j0 + p * nr;
        let cols = nr.min(j0 + nb - c0);
        let dst = &mut buf[p * kb * nr..(p + 1) * kb * nr];
        if trans {
            // B stored [n, k]: gather each column's k-slice with stride nr.
            for c in 0..cols {
                let src = &b[(c0 + c) * ldb + k0..][..kb];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * nr + c] = E::pack(v);
                }
            }
        } else {
            // B stored [k, n]: each k-step is a contiguous converting copy.
            for kk in 0..kb {
                let src = &b[(k0 + kk) * ldb + c0..][..cols];
                for (d, &v) in dst[kk * nr..kk * nr + cols].iter_mut().zip(src) {
                    *d = E::pack(v);
                }
            }
        }
    }
}

/// Runs the micro-tile over every tile of one packed (mb×nb) block and
/// stores into `out` (row stride `ldc`, block origin `(i0, j0)`):
/// `C += tile` when `acc`, `C = tile` otherwise (the beta=1/beta=0 store
/// variants — only the store differs, the compute path is shared).
///
/// # Safety
/// The caller must own output rows `i0..i0+mb` × columns `j0..j0+nb` of the
/// `ldc`-stride matrix at `out` exclusively, and `M` must be runnable on
/// this CPU (guaranteed by the dispatch layer).
#[allow(clippy::too_many_arguments)]
unsafe fn macro_kernel<M: Micro>(
    apack: &[M::E],
    bpack: &[M::E],
    mb: usize,
    nb: usize,
    kb: usize,
    out: *mut f32,
    ldc: usize,
    i0: usize,
    j0: usize,
    acc: bool,
) {
    for jp in 0..nb.div_ceil(M::NR) {
        let bp = &bpack[jp * kb * M::NR..(jp + 1) * kb * M::NR];
        let cols = M::NR.min(nb - jp * M::NR);
        for ip in 0..mb.div_ceil(M::MR) {
            let ap = &apack[ip * kb * M::MR..(ip + 1) * kb * M::MR];
            let rows = M::MR.min(mb - ip * M::MR);
            M::tile(
                kb,
                ap,
                bp,
                out.add((i0 + ip * M::MR) * ldc + j0 + jp * M::NR),
                ldc,
                rows,
                cols,
                acc,
            );
        }
    }
}

// --------------------------------------------------------------- mat × vec

/// Dedicated matrix–vector kernel: `out[i] = a[i,·] · v`.
///
/// A GEMM with n = 1 wastes the whole blocking machinery (each packed B
/// "panel" is one column), so `matvec` gets a straight multi-accumulator
/// dot product over contiguous rows instead, parallelised over row chunks.
/// The dot kernel is runtime-dispatched (scalar or the 256-bit AVX2
/// variant — see `kernels`), read once here on the calling thread.
pub(crate) fn gemv(pool: &ThreadPool, a: &[f32], v: &[f32], m: usize, k: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemv A size");
    assert_eq!(v.len(), k, "gemv x size");
    assert_eq!(out.len(), m, "gemv y size");
    let kern = kernels::selected();
    let rows_per_chunk = if m * k < PAR_FLOPS || pool.threads() == 1 {
        m.max(1)
    } else {
        m.div_ceil(pool.threads() * 2).max(1)
    };
    par_chunks_mut(pool, out, rows_per_chunk, |row0, chunk| {
        for (r, o) in chunk.iter_mut().enumerate() {
            *o = kernels::dot(kern, &a[(row0 + r) * k..(row0 + r + 1) * k], v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Scalar reference: C[i,j] = Σ_l A[i,l]·B[l,j] with explicit layouts.
    fn naive(
        trans_a: bool,
        trans_b: bool,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for l in 0..k {
                    let av = if trans_a { a[l * m + i] } else { a[i * k + l] };
                    let bv = if trans_b { b[j * k + l] } else { b[l * n + j] };
                    acc += (av * bv) as f64;
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    fn lcg(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    fn check_case(pool: &ThreadPool, trans_a: bool, trans_b: bool, m: usize, k: usize, n: usize) {
        let a = lcg(m as u64 * 31 + k as u64, m * k);
        let b = lcg(n as u64 * 17 + k as u64 + 1, k * n);
        let want = naive(trans_a, trans_b, &a, &b, m, k, n);
        // Poison the output: beta=0 must fully overwrite it.
        let mut got = vec![f32::NAN; m * n];
        gemm_into(pool, trans_a, trans_b, &a, &b, m, k, n, &mut got, false);
        for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-3 * (1.0 + w.abs()),
                "({trans_a},{trans_b}) m={m} k={k} n={n} idx={i}: {g} vs {w}"
            );
        }
    }

    /// Block-boundary extents: 1, MR±1, MR, MC−1, MC, MC+1, and a couple of
    /// non-aligned in-between values.
    fn boundary_dims() -> Vec<usize> {
        vec![1, MR - 1, MR, MR + 1, 3 * MR + 5, MC - 1, MC, MC + 1]
    }

    #[test]
    fn boundary_sweep_all_variants_single_thread() {
        let pool = ThreadPool::new(1);
        for &m in &boundary_dims() {
            for &(k, n) in &[(KC - 1, MR + 1), (MR, MC + 1), (KC + 1, NR - 1)] {
                check_case(&pool, false, false, m, k, n);
                check_case(&pool, true, false, m, k, n);
                check_case(&pool, false, true, m, k, n);
            }
        }
    }

    #[test]
    fn boundary_sweep_all_variants_multi_thread() {
        let pool = ThreadPool::new(4);
        for &n in &boundary_dims() {
            for &(m, k) in &[(MC + 1, KC + 1), (2 * MC, MR - 1), (MR + 1, KC)] {
                check_case(&pool, false, false, m, k, n);
                check_case(&pool, true, false, m, k, n);
                check_case(&pool, false, true, m, k, n);
            }
        }
    }

    #[test]
    fn k_block_boundaries() {
        let pool = ThreadPool::new(2);
        for &k in &[1, MR, KC - 1, KC, KC + 1, 2 * KC + 3] {
            check_case(&pool, false, false, MR + 3, k, NR + 5);
            check_case(&pool, true, true, MR + 3, k, NR + 5);
        }
    }

    #[test]
    fn gemv_matches_naive() {
        let pool = ThreadPool::new(3);
        for &(m, k) in &[(1, 1), (MR, KC), (MC + 7, 93), (257, 1025)] {
            let a = lcg(9 + m as u64, m * k);
            let v = lcg(11 + k as u64, k);
            let mut got = vec![0.0f32; m];
            gemv(&pool, &a, &v, m, k, &mut got);
            for i in 0..m {
                let want: f64 =
                    (0..k).map(|l| (a[i * k + l] * v[l]) as f64).sum();
                assert!(
                    (got[i] - want as f32).abs() <= 1e-3 * (1.0 + want.abs() as f32),
                    "m={m} k={k} row {i}: {} vs {want}",
                    got[i]
                );
            }
        }
    }

    #[test]
    fn plan_blocks_fans_out_skinny_shapes() {
        // The LSTM-gate shape [256, 256] @ [256, 512] must produce enough
        // tiles to occupy an 8-thread pool, whatever the tile extents.
        for &(mr, nr) in &[(MR, NR), (8usize, 16usize)] {
            let (mc, nc) = plan_blocks(256, 512, 8, mr, nr);
            assert!(256usize.div_ceil(mc) * 512usize.div_ceil(nc) >= 16);
            // Tiny problems can't be split below two micro-tiles per block.
            let (mc, nc) = plan_blocks(8, 8, 8, mr, nr);
            assert!(mc >= mr && nc >= nr);
        }
    }

    #[test]
    fn single_and_multi_thread_agree() {
        // One thread runs the serial tile loop with default blocks, four
        // threads run the 2-D grid with adaptively shrunk blocks; both must
        // match the reference on a parallel-sized problem.
        let (m, k, n) = (2 * MC + 5, KC + 9, NC + 3);
        let a = lcg(5, m * k);
        let b = lcg(6, k * n);
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        let mut o1 = vec![0.0f32; m * n];
        let mut o4 = vec![0.0f32; m * n];
        gemm_into(&p1, false, false, &a, &b, m, k, n, &mut o1, false);
        gemm_into(&p4, false, false, &a, &b, m, k, n, &mut o4, false);
        let want = naive(false, false, &a, &b, m, k, n);
        for (got, w) in o1.iter().chain(o4.iter()).zip(want.iter().chain(want.iter())) {
            assert!((got - w).abs() <= 1e-3 * (1.0 + w.abs()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_packed_matches_naive(
            mi in 0usize..8, ki in 0usize..8, ni in 0usize..8,
            trans_a in proptest::bool::ANY, trans_b in proptest::bool::ANY,
            threads in 1usize..5,
        ) {
            // sample each extent from the block-boundary set
            let dims = [1usize, MR - 1, MR, MR + 1, 2 * MR + 3, MC - 1, MC, MC + 1];
            let (m, k, n) = (dims[mi], dims[ki], dims[ni]);
            let pool = ThreadPool::new(threads);
            let a = lcg(1 + m as u64 + 7 * k as u64, m * k);
            let b = lcg(2 + n as u64 + 13 * k as u64, k * n);
            let want = naive(trans_a, trans_b, &a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_into(&pool, trans_a, trans_b, &a, &b, m, k, n, &mut got, false);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }

        #[test]
        fn prop_accumulate_equals_init_plus_product(
            mi in 0usize..8, ki in 0usize..8, ni in 0usize..8,
            threads in 1usize..5,
        ) {
            let dims = [1usize, MR - 1, MR, MR + 1, 2 * MR + 3, MC - 1, MC, MC + 1];
            let (m, k, n) = (dims[mi], dims[ki], dims[ni]);
            let pool = ThreadPool::new(threads);
            let a = lcg(3 + m as u64 + 7 * k as u64, m * k);
            let b = lcg(4 + n as u64 + 13 * k as u64, k * n);
            let init = lcg(5 + (m * n) as u64, m * n);
            let mut got = init.clone();
            gemm_into(&pool, false, false, &a, &b, m, k, n, &mut got, true);
            let prod = naive(false, false, &a, &b, m, k, n);
            for ((g, c0), p) in got.iter().zip(init.iter()).zip(prod.iter()) {
                let w = c0 + p;
                prop_assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn accumulate_spans_k_blocks() {
        // k > KC: the first k-block must respect beta=1 and later k-blocks
        // must not re-trigger an overwrite.
        let pool = ThreadPool::new(2);
        let (m, k, n) = (MR + 3, 2 * KC + 5, NR + 1);
        let a = lcg(21, m * k);
        let b = lcg(22, k * n);
        let init = lcg(23, m * n);
        let mut got = init.clone();
        gemm_into(&pool, false, false, &a, &b, m, k, n, &mut got, true);
        let prod = naive(false, false, &a, &b, m, k, n);
        for ((g, c0), p) in got.iter().zip(init.iter()).zip(prod.iter()) {
            let w = c0 + p;
            assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[test]
    fn empty_k_beta_semantics() {
        // k = 0: beta=0 zeroes C, beta=1 leaves C untouched.
        let pool = ThreadPool::new(1);
        let mut c = vec![7.0f32; 12];
        gemm_into(&pool, false, false, &[], &[], 3, 0, 4, &mut c, true);
        assert!(c.iter().all(|&x| x == 7.0));
        gemm_into(&pool, false, false, &[], &[], 3, 0, 4, &mut c, false);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bf16_mode_equals_f32_on_prerounded_operands() {
        // The bf16 path's whole contract in one place: gemm_bf16(A, B)
        // must be bitwise gemm_f32(round(A), round(B)).
        let pool = ThreadPool::new(2);
        for &(m, k, n) in &[(MR + 3, KC + 1, NR + 5), (MC + 1, 2 * MR, MC - 1)] {
            let a = lcg(31 + m as u64, m * k);
            let b = lcg(32 + n as u64, k * n);
            let ar: Vec<f32> = a.iter().map(|&x| kernels::bf16::round_f32(x)).collect();
            let br: Vec<f32> = b.iter().map(|&x| kernels::bf16::round_f32(x)).collect();
            let mut got = vec![0.0f32; m * n];
            with_bf16(|| gemm_into(&pool, false, false, &a, &b, m, k, n, &mut got, false));
            let mut want = vec![0.0f32; m * n];
            gemm_into(&pool, false, false, &ar, &br, m, k, n, &mut want, false);
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.to_bits(), w.to_bits(), "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn bf16_scope_restores_mode() {
        assert!(!bf16_enabled());
        with_bf16(|| {
            assert!(bf16_enabled());
            with_bf16(|| assert!(bf16_enabled()));
            assert!(bf16_enabled());
        });
        assert!(!bf16_enabled());
    }
}
