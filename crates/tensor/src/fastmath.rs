//! Branch-free rational approximations of `tanh`/`sigmoid` for the hot
//! activation kernels.
//!
//! `f32::tanh` and an `exp`-based stable sigmoid go through libm — an
//! opaque call per element with data-dependent branches, which blocks
//! auto-vectorisation of the elementwise loops that dominate the LSTM
//! forward (the fused cell evaluates five transcendentals per hidden
//! unit, ~1.1M libm calls per MNIST b256 forward). The kernels here are
//! straight-line polynomial arithmetic — clamp plus the classic
//! Cephes/Eigen-style degree-13/6 rational `tanh` — so LLVM vectorises
//! the surrounding loops with FMA lanes instead of calling out per lane.
//!
//! Accuracy: `fast_tanh` stays within a few ulp of `f32::tanh` across the
//! full range and saturates to exactly `±1.0` where the true tanh rounds
//! to `±1` in f32; `fast_sigmoid` is defined as `0.5·tanh(x/2) + 0.5`,
//! accurate to ~2e-7 absolute, saturating to exactly `0.0`/`1.0` beyond
//! `|x| ≈ 18`. Both are pure functions of
//! their input, so run-to-run determinism and shard-equivalence are
//! unaffected. The fused LSTM cell and the unfused `Tensor::sigmoid` /
//! `Tensor::tanh` ops share these exact scalars, which is what keeps the
//! fused and unfused tape paths bit-identical to each other.

// Polynomial coefficients, shared verbatim by the scalar kernel below and
// the AVX2/AVX-512 transcriptions in `crate::kernels` — a single source of
// truth is what keeps the variants bitwise-interchangeable.
/// Input clamp: past this the true tanh rounds to ±1 in f32 anyway.
pub(crate) const CLAMP: f32 = 7.905_311_5;
/// Odd numerator coefficients (degree 13).
pub(crate) const A1: f32 = 4.893_524_6e-3;
pub(crate) const A3: f32 = 6.372_619_3e-4;
pub(crate) const A5: f32 = 1.485_722_4e-5;
pub(crate) const A7: f32 = 5.122_297_1e-8;
pub(crate) const A9: f32 = -8.604_671_5e-11;
pub(crate) const A11: f32 = 2.000_187_9e-13;
pub(crate) const A13: f32 = -2.760_768_5e-16;
/// Even denominator coefficients (degree 6).
pub(crate) const B0: f32 = 4.893_525_2e-3;
pub(crate) const B2: f32 = 2.268_434_6e-3;
pub(crate) const B4: f32 = 1.185_347_1e-4;
pub(crate) const B6: f32 = 1.198_258_4e-6;
/// Past this the tails are pinned to exactly ±1.0 by a branch-free select.
pub(crate) const SATURATE: f32 = 9.011;

/// Rational `tanh` approximation: odd degree-13 numerator over even
/// degree-6 denominator, with the argument clamped where the true `tanh`
/// rounds to `±1` in f32 anyway. The final clamp guarantees the result
/// never overshoots `[-1, 1]`, so derived quantities (sigmoid, gate
/// products) keep their exact bounds.
#[inline(always)]
pub fn fast_tanh(x: f32) -> f32 {
    let xc = x.clamp(-CLAMP, CLAMP);
    let x2 = xc * xc;
    // Horner chains on fused multiply-adds: one rounding per step (more
    // accurate than mul-then-add) and a straight vfmadd sequence once the
    // surrounding loop is vectorised.
    let mut p = A13;
    p = p.mul_add(x2, A11);
    p = p.mul_add(x2, A9);
    p = p.mul_add(x2, A7);
    p = p.mul_add(x2, A5);
    p = p.mul_add(x2, A3);
    p = p.mul_add(x2, A1);
    let p = p * xc;
    // Estrin split for the short even chain: two independent FMAs feed a
    // final one, shortening the dependency chain by a step.
    let x4 = x2 * x2;
    let q = x2.mul_add(B6, B4).mul_add(x4, x2.mul_add(B2, B0));
    let r = (p / q).clamp(-1.0, 1.0);
    if x.abs() >= SATURATE {
        1.0f32.copysign(x)
    } else {
        r
    }
}

/// Logistic sigmoid derived from [`fast_tanh`]: `σ(x) = ½·tanh(x/2) + ½`.
/// Inherits the tanh clamp, so it saturates to exactly `0.0`/`1.0` on the
/// tails and never leaves `[0, 1]`.
#[inline(always)]
pub fn fast_sigmoid(x: f32) -> f32 {
    0.5 * fast_tanh(0.5 * x) + 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_tracks_libm_within_tolerance() {
        // Dense sweep over the active range plus the saturated tails.
        let mut worst = 0.0f64;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let approx = fast_tanh(x) as f64;
            let exact = (x as f64).tanh();
            let err = (approx - exact).abs() / (1.0 + exact.abs());
            worst = worst.max(err);
            x += 1.3e-3;
        }
        assert!(worst < 5e-7, "worst rel error {worst}");
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        for i in 0..2000 {
            let x = (i as f32 - 1000.0) * 0.02;
            let y = fast_tanh(x);
            assert!((-1.0..=1.0).contains(&y));
            assert_eq!(y.to_bits(), (-fast_tanh(-x)).to_bits(), "odd symmetry at {x}");
        }
        assert_eq!(fast_tanh(40.0), 1.0);
        assert_eq!(fast_tanh(-40.0), -1.0);
        assert_eq!(fast_tanh(0.0), 0.0);
    }

    #[test]
    fn tanh_accurate_near_zero() {
        // tanh(x) ≈ x for small x; the rational form must not lose
        // relative accuracy there (no cancellation, no denormal traps).
        for &x in &[1e-8f32, 1e-6, 1e-4, 1e-3, 0.01] {
            let y = fast_tanh(x);
            let exact = (x as f64).tanh() as f32;
            assert!(
                (y - exact).abs() <= 2e-7 * (1.0 + exact.abs()),
                "x={x} got {y} want {exact}"
            );
        }
    }

    #[test]
    fn sigmoid_tracks_libm_and_saturates_exactly() {
        let mut x = -20.0f32;
        while x <= 20.0 {
            let approx = fast_sigmoid(x) as f64;
            let exact = 1.0 / (1.0 + (-(x as f64)).exp());
            assert!((approx - exact).abs() < 3e-7, "x={x} got {approx} want {exact}");
            assert!((0.0..=1.0).contains(&(approx as f32)));
            x += 2.7e-3;
        }
        assert_eq!(fast_sigmoid(100.0), 1.0);
        assert_eq!(fast_sigmoid(-100.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
    }
}
