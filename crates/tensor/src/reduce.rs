//! Reductions, row softmax / log-softmax, and argmax.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements, accumulated in f64 for stability.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaNs propagate as in `f32::max` semantics: ignored).
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums a 2-D tensor along `axis`: axis 0 collapses rows → `[cols]`,
    /// axis 1 collapses columns → `[rows]`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis expects 2-D, got {:?}", self.shape());
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        match axis {
            0 => {
                let mut out = vec![0.0f64; n];
                for i in 0..m {
                    for (j, o) in out.iter_mut().enumerate() {
                        *o += src[i * n + j] as f64;
                    }
                }
                Tensor::from_vec(out.into_iter().map(|x| x as f32).collect(), &[n])
            }
            1 => {
                let mut out = Vec::with_capacity(m);
                for i in 0..m {
                    out.push(src[i * n..(i + 1) * n].iter().map(|&x| x as f64).sum::<f64>() as f32);
                }
                Tensor::from_vec(out, &[m])
            }
            _ => panic!("sum_axis axis must be 0 or 1, got {axis}"),
        }
    }

    /// Mean along `axis` of a 2-D tensor.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let divisor = self.dim(axis) as f32;
        self.sum_axis(axis).scale(1.0 / divisor)
    }

    /// Index of the largest element (first occurrence on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut bv = f32::NEG_INFINITY;
        for (i, &x) in self.as_slice().iter().enumerate() {
            if x > bv {
                bv = x;
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a 2-D tensor → `Vec` of column indices.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        (0..m)
            .map(|i| {
                let row = &src[i * n..(i + 1) * n];
                let mut best = 0;
                let mut bv = f32::NEG_INFINITY;
                for (j, &x) in row.iter().enumerate() {
                    if x > bv {
                        bv = x;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax of a 2-D tensor (numerically stabilised by the row
    /// max).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows expects 2-D, got {:?}", self.shape());
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &src[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let orow = &mut out[i * n..(i + 1) * n];
            let mut z = 0.0f64;
            for (o, &x) in orow.iter_mut().zip(row.iter()) {
                let e = (x - mx).exp();
                *o = e;
                z += e as f64;
            }
            let inv = (1.0 / z) as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Row-wise log-softmax of a 2-D tensor.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &src[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx
                + (row.iter().map(|&x| ((x - mx) as f64).exp()).sum::<f64>()).ln() as f32;
            for (o, &x) in out[i * n..(i + 1) * n].iter_mut().zip(row.iter()) {
                *o = x - lse;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_mean_max_min() {
        let a = Tensor::from_vec(vec![1., -2., 3., 4.], &[2, 2]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
    }

    #[test]
    fn sum_axis_both_ways() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(a.sum_axis(0).as_slice(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1).as_slice(), &[6., 15.]);
        assert_eq!(a.mean_axis(0).as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_variants() {
        let a = Tensor::from_vec(vec![0., 5., 2., 9., 1., 3.], &[2, 3]);
        assert_eq!(a.argmax(), 3);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = Tensor::from_vec(vec![1., 2., 3., -1., 0., 1.], &[2, 3]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let row: f32 = (0..3).map(|j| s.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-6);
            assert!(s.at2(i, 0) < s.at2(i, 1) && s.at2(i, 1) < s.at2(i, 2));
        }
    }

    #[test]
    fn softmax_stable_with_large_logits() {
        let a = Tensor::from_vec(vec![1000., 1001., 1002.], &[1, 3]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        assert!((s.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let a = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.7], &[2, 2]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for (l, p) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    proptest! {
        #[test]
        fn prop_softmax_invariant_to_row_shift(
            v in proptest::collection::vec(-5f32..5.0, 3..12),
            shift in -100f32..100.0,
        ) {
            let n = v.len();
            let a = Tensor::from_vec(v.clone(), &[1, n]);
            let b = a.add_scalar(shift).reshape(&[1, n]);
            let sa = a.softmax_rows();
            let sb = b.softmax_rows();
            for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_sum_axis_totals_match(m in 1usize..8, n in 1usize..8) {
            let a = Tensor::from_vec((0..m*n).map(|x| (x as f32).sin()).collect(), &[m, n]);
            let t0 = a.sum_axis(0).sum();
            let t1 = a.sum_axis(1).sum();
            prop_assert!((t0 - a.sum()).abs() < 1e-4);
            prop_assert!((t1 - a.sum()).abs() < 1e-4);
        }
    }
}
