//! AVX-512F 16-lane kernel variants.
//!
//! Same value contract as `avx2.rs`: bitwise-equal to the scalar loops.
//! The GEMM tile widens to 8×16 — regrouping which output elements share
//! a register changes nothing about any single element's sequential
//! k-accumulation, so the wider tile stays bitwise-equal to the scalar
//! 8×8 tile. Edge columns use AVX-512's native store/load masks instead
//! of a spill buffer. The activation kernels are 16-lane transcriptions
//! of the AVX2 ones (mask registers replace `blendv`). The `matvec` dot
//! deliberately has **no** 512-bit variant: a 16-lane accumulator would
//! change the partial-sum grouping relative to the scalar 8-lane contract,
//! so AVX-512 dispatch routes `dot` to `avx2::dot` (see `kernels/mod.rs`).
//!
//! Bitwise float ops go through `si512` integer casts (`and`/`or` on
//! 512-bit float vectors would require AVX512DQ; the integer forms are
//! plain AVX-512F).
//!
//! # Safety
//! Every `unsafe fn` here requires AVX-512F at runtime; dispatch only
//! routes here after `is_x86_feature_detected!("avx512f")`.

use super::{Micro, PackElem};
use crate::fastmath::{A1, A11, A13, A3, A5, A7, A9, B0, B2, B4, B6, CLAMP, SATURATE};
use std::arch::x86_64::*;
use std::marker::PhantomData;

/// Tile rows.
pub(crate) const MR: usize = 8;
/// Tile columns (one 512-bit register).
pub(crate) const NR: usize = 16;

/// Loads 16 packed B elements as f32 lanes.
trait Load16: PackElem {
    /// # Safety
    /// `p..p+16` must be readable; caller must have AVX-512F enabled.
    unsafe fn load16(p: *const Self) -> __m512;
}

impl Load16 for f32 {
    #[inline(always)]
    unsafe fn load16(p: *const f32) -> __m512 {
        _mm512_loadu_ps(p)
    }
}

impl Load16 for u16 {
    #[inline(always)]
    unsafe fn load16(p: *const u16) -> __m512 {
        // bf16 widen: zero-extend 16×u16 to 16×u32, shift into the high
        // half — exactly `f32::from_bits((b as u32) << 16)` per lane.
        let raw = _mm256_loadu_si256(p as *const __m256i);
        let wide = _mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(raw));
        _mm512_castsi512_ps(wide)
    }
}

/// The 8×16 AVX-512 micro-tile, generic over the packed element.
pub(crate) struct Avx512Micro<E>(PhantomData<E>);

impl<E: Load16> Micro for Avx512Micro<E> {
    type E = E;
    const MR: usize = MR;
    const NR: usize = NR;

    #[inline]
    unsafe fn tile(
        kb: usize,
        ap: &[E],
        bp: &[E],
        out: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        acc: bool,
    ) {
        tile_impl::<E>(kb, ap.as_ptr(), bp.as_ptr(), out, ldc, rows, cols, acc);
    }
}

/// Free function carrying the `#[target_feature]` (trait methods cannot).
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_impl<E: Load16>(
    kb: usize,
    ap: *const E,
    bp: *const E,
    out: *mut f32,
    ldc: usize,
    rows: usize,
    cols: usize,
    acc: bool,
) {
    let mut t = [_mm512_setzero_ps(); MR];
    for kk in 0..kb {
        let b = E::load16(bp.add(kk * NR));
        for (r, tr) in t.iter_mut().enumerate() {
            let a = _mm512_set1_ps((*ap.add(kk * MR + r)).unpack());
            // mul + add, not fmadd: matches the scalar tile's two
            // roundings per k-step.
            *tr = _mm512_add_ps(*tr, _mm512_mul_ps(a, b));
        }
    }
    if cols == NR {
        for (r, tr) in t.iter().enumerate().take(rows) {
            let dst = out.add(r * ldc);
            if acc {
                _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), *tr));
            } else {
                _mm512_storeu_ps(dst, *tr);
            }
        }
    } else {
        // Column edge: masked load/store keeps the inactive lanes (and
        // anything beyond the output row) untouched.
        let mask: __mmask16 = (1u16 << cols) - 1;
        for (r, tr) in t.iter().enumerate().take(rows) {
            let dst = out.add(r * ldc);
            if acc {
                let prev = _mm512_maskz_loadu_ps(mask, dst);
                _mm512_mask_storeu_ps(dst, mask, _mm512_add_ps(prev, *tr));
            } else {
                _mm512_mask_storeu_ps(dst, mask, *tr);
            }
        }
    }
}

// ------------------------------------------------------------ activations

/// 16-lane `fast_tanh`; same pipeline as `avx2::tanh8` with mask-register
/// select for the saturated tails.
#[target_feature(enable = "avx512f")]
#[inline]
pub(crate) unsafe fn tanh16(x: __m512) -> __m512 {
    let clamp_hi = _mm512_set1_ps(CLAMP);
    let clamp_lo = _mm512_set1_ps(-CLAMP);
    // min(hi, max(lo, x)): x rides second so NaN propagates like
    // f32::clamp.
    let xc = _mm512_min_ps(clamp_hi, _mm512_max_ps(clamp_lo, x));
    let x2 = _mm512_mul_ps(xc, xc);
    let mut p = _mm512_set1_ps(A13);
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A11));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A9));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A7));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A5));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A3));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(A1));
    let p = _mm512_mul_ps(p, xc);
    let x4 = _mm512_mul_ps(x2, x2);
    let q = _mm512_fmadd_ps(
        _mm512_fmadd_ps(x2, _mm512_set1_ps(B6), _mm512_set1_ps(B4)),
        x4,
        _mm512_fmadd_ps(x2, _mm512_set1_ps(B2), _mm512_set1_ps(B0)),
    );
    let one = _mm512_set1_ps(1.0);
    let neg_one = _mm512_set1_ps(-1.0);
    let r = _mm512_div_ps(p, q);
    let r = _mm512_min_ps(one, _mm512_max_ps(neg_one, r));
    // Bitwise ops via si512: AVX-512F has no float and/or (that's DQ).
    let sign_bit = _mm512_set1_epi32(i32::MIN);
    let xi = _mm512_castps_si512(x);
    let abs_x = _mm512_castsi512_ps(_mm512_andnot_si512(sign_bit, xi));
    let sat = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(abs_x, _mm512_set1_ps(SATURATE));
    let signed_one = _mm512_castsi512_ps(_mm512_or_si512(
        _mm512_and_si512(sign_bit, xi),
        _mm512_castps_si512(one),
    ));
    _mm512_mask_blend_ps(sat, r, signed_one)
}

/// 16-lane `fast_sigmoid`: `0.5·tanh(0.5x) + 0.5`, separate mul/add
/// roundings like the scalar.
#[target_feature(enable = "avx512f")]
#[inline]
pub(crate) unsafe fn sigmoid16(x: __m512) -> __m512 {
    let half = _mm512_set1_ps(0.5);
    let t = tanh16(_mm512_mul_ps(half, x));
    _mm512_add_ps(_mm512_mul_ps(half, t), half)
}

/// In-place 16-wide `fast_tanh` sweep; scalar tail.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn tanh_sweep(v: &mut [f32]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    let mut i = 0;
    while i + 16 <= n {
        _mm512_storeu_ps(p.add(i), tanh16(_mm512_loadu_ps(p.add(i))));
        i += 16;
    }
    super::scalar::tanh_sweep(&mut v[i..]);
}

/// In-place 16-wide `fast_sigmoid` sweep; scalar tail.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn sigmoid_sweep(v: &mut [f32]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    let mut i = 0;
    while i + 16 <= n {
        _mm512_storeu_ps(p.add(i), sigmoid16(_mm512_loadu_ps(p.add(i))));
        i += 16;
    }
    super::scalar::sigmoid_sweep(&mut v[i..]);
}

/// 16-wide fused LSTM gate row; scalar tail via the shared helper.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn lstm_gate_row(
    pa_r: &[f32],
    cp_r: &[f32],
    hid: usize,
    g_r: &mut [f32],
    c_r: &mut [f32],
    t_r: &mut [f32],
    h_r: &mut [f32],
) {
    let pa = pa_r.as_ptr();
    let cp = cp_r.as_ptr();
    let g = g_r.as_mut_ptr();
    let c_o = c_r.as_mut_ptr();
    let t_o = t_r.as_mut_ptr();
    let h_o = h_r.as_mut_ptr();
    let mut j = 0;
    while j + 16 <= hid {
        let i = sigmoid16(_mm512_loadu_ps(pa.add(j)));
        let f = sigmoid16(_mm512_loadu_ps(pa.add(hid + j)));
        let gg = tanh16(_mm512_loadu_ps(pa.add(2 * hid + j)));
        let o = sigmoid16(_mm512_loadu_ps(pa.add(3 * hid + j)));
        // c = f·cₚ + i·g as mul/mul/add — matching the scalar row.
        let c = _mm512_add_ps(_mm512_mul_ps(f, _mm512_loadu_ps(cp.add(j))), _mm512_mul_ps(i, gg));
        let tc = tanh16(c);
        _mm512_storeu_ps(g.add(j), i);
        _mm512_storeu_ps(g.add(hid + j), f);
        _mm512_storeu_ps(g.add(2 * hid + j), gg);
        _mm512_storeu_ps(g.add(3 * hid + j), o);
        _mm512_storeu_ps(c_o.add(j), c);
        _mm512_storeu_ps(t_o.add(j), tc);
        _mm512_storeu_ps(h_o.add(j), _mm512_mul_ps(o, tc));
        j += 16;
    }
    if j < hid {
        super::avx2::lstm_gate_row_tail(pa_r, cp_r, hid, j, g_r, c_r, t_r, h_r);
    }
}
