//! Safe-Rust scalar kernel variants — the universal fallback and the
//! bitwise reference every SIMD variant must match.
//!
//! These are the exact loops the crate ran before runtime dispatch
//! existed (under `-C target-cpu=native` LLVM auto-vectorises them; on a
//! portable build they execute as written). Their arithmetic order
//! *defines* the contract in `kernels/mod.rs`: separate mul/add roundings
//! in the GEMM tile and the LSTM cell update, true fused `mul_add` in the
//! activations, 8 independent accumulator lanes summed sequentially in
//! the dot product.

use super::{Micro, PackElem};
use crate::fastmath::{fast_sigmoid, fast_tanh};
use std::marker::PhantomData;

/// The scalar 8×8 micro-tile, generic over the packed element (`f32` or
/// bf16 bits — unpacking is the identity for f32 and compiles away).
pub(crate) struct ScalarMicro<E>(PhantomData<E>);

/// Scalar tile extent (rows and columns).
pub(crate) const TILE: usize = 8;

impl<E: PackElem> Micro for ScalarMicro<E> {
    type E = E;
    const MR: usize = TILE;
    const NR: usize = TILE;

    unsafe fn tile(
        kb: usize,
        ap: &[E],
        bp: &[E],
        out: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        acc: bool,
    ) {
        // Rank-1-update microkernel: `t[r][c] += a[r]·b[c]` per k-step.
        // Fixed-extent inner loops with no branches (no zero-skips), so
        // LLVM keeps `t` in vector registers when the build allows.
        let mut t = [[0.0f32; TILE]; TILE];
        for kk in 0..kb {
            let mut a8 = [0.0f32; TILE];
            let mut b8 = [0.0f32; TILE];
            for r in 0..TILE {
                a8[r] = ap[kk * TILE + r].unpack();
            }
            for c in 0..TILE {
                b8[c] = bp[kk * TILE + c].unpack();
            }
            for (tr, &ar) in t.iter_mut().zip(a8.iter()) {
                for (tv, &bv) in tr.iter_mut().zip(b8.iter()) {
                    *tv += ar * bv;
                }
            }
        }
        for (r, tr) in t.iter().enumerate().take(rows) {
            let dst = std::slice::from_raw_parts_mut(out.add(r * ldc), cols);
            if acc {
                for (d, &v) in dst.iter_mut().zip(tr[..cols].iter()) {
                    *d += v;
                }
            } else {
                dst.copy_from_slice(&tr[..cols]);
            }
        }
    }
}

/// Branch-free dot product with eight independent accumulator lanes so the
/// reduction vectorises despite f32 non-associativity. The lane structure
/// (and the sequential lane sum) is the value contract `avx2::dot`
/// reproduces.
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    let mut acc = [0.0f32; L];
    let chunks = x.len() / L;
    for i in 0..chunks {
        let xa: &[f32; L] = x[i * L..i * L + L].try_into().unwrap();
        let ya: &[f32; L] = y[i * L..i * L + L].try_into().unwrap();
        for l in 0..L {
            acc[l] += xa[l] * ya[l];
        }
    }
    let mut s = acc.iter().sum::<f32>();
    for i in chunks * L..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// In-place `fast_tanh` map.
pub(crate) fn tanh_sweep(v: &mut [f32]) {
    for x in v {
        *x = fast_tanh(*x);
    }
}

/// In-place `fast_sigmoid` map.
pub(crate) fn sigmoid_sweep(v: &mut [f32]) {
    for x in v {
        *x = fast_sigmoid(*x);
    }
}

/// One fused LSTM gate row (see `lstm_cell.rs` for the layout): the
/// original per-element loop, and the arithmetic contract for the vector
/// variants — `c = f·cₚ + i·g` is mul/mul/add (rustc does not contract
/// into FMA), matching the unfused tape ops bit for bit.
pub(crate) fn lstm_gate_row(
    pa_r: &[f32],
    cp_r: &[f32],
    hid: usize,
    g_r: &mut [f32],
    c_r: &mut [f32],
    t_r: &mut [f32],
    h_r: &mut [f32],
) {
    for j in 0..hid {
        let i = fast_sigmoid(pa_r[j]);
        let f = fast_sigmoid(pa_r[hid + j]);
        let g = fast_tanh(pa_r[2 * hid + j]);
        let o = fast_sigmoid(pa_r[3 * hid + j]);
        let c = f * cp_r[j] + i * g;
        let tc = fast_tanh(c);
        g_r[j] = i;
        g_r[hid + j] = f;
        g_r[2 * hid + j] = g;
        g_r[3 * hid + j] = o;
        c_r[j] = c;
        t_r[j] = tc;
        h_r[j] = o * tc;
    }
}
