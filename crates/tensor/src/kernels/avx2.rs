//! AVX2+FMA 8-lane kernel variants.
//!
//! Value contract (see `kernels/mod.rs`): every function here is
//! bitwise-equal to its scalar counterpart. Concretely:
//!
//! * GEMM tile and dot use `_mm256_mul_ps` + `_mm256_add_ps` — **not**
//!   FMA — because the scalar loops round the product and the sum
//!   separately.
//! * The activation kernels use `_mm256_fmadd_ps` because the scalar
//!   `fast_tanh` is built on `f32::mul_add` (one rounding) — both are a
//!   single IEEE-754 fused operation, so the bits agree.
//! * `min`/`max` operand order keeps NaN inputs propagating exactly like
//!   `f32::clamp` (x86 min/max return the *second* operand on NaN, so the
//!   data operand always rides in the second slot), and the saturation
//!   select uses an ordered-quiet compare (false on NaN), matching
//!   `x.abs() >= SATURATE`.
//!
//! # Safety
//! Every `unsafe fn` here requires AVX2+FMA at runtime; the dispatch layer
//! (`kernels::selected` / `with_override`) only routes here after
//! `is_x86_feature_detected!` confirms both.

use super::{Micro, PackElem};
use crate::fastmath::{A1, A11, A13, A3, A5, A7, A9, B0, B2, B4, B6, CLAMP, SATURATE};
use std::arch::x86_64::*;
use std::marker::PhantomData;

/// Tile rows.
pub(crate) const MR: usize = 8;
/// Tile columns (one 256-bit register).
pub(crate) const NR: usize = 8;

/// Loads 8 packed B elements as f32 lanes.
trait Load8: PackElem {
    /// # Safety
    /// `p..p+8` must be readable; caller must have AVX2 enabled.
    unsafe fn load8(p: *const Self) -> __m256;
}

impl Load8 for f32 {
    #[inline(always)]
    unsafe fn load8(p: *const f32) -> __m256 {
        _mm256_loadu_ps(p)
    }
}

impl Load8 for u16 {
    #[inline(always)]
    unsafe fn load8(p: *const u16) -> __m256 {
        // bf16 widen: zero-extend 8×u16 to 8×u32, shift into the high
        // half — exactly `f32::from_bits((b as u32) << 16)` per lane.
        let raw = _mm_loadu_si128(p as *const __m128i);
        let wide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw));
        _mm256_castsi256_ps(wide)
    }
}

/// The 8×8 AVX2 micro-tile, generic over the packed element.
pub(crate) struct Avx2Micro<E>(PhantomData<E>);

impl<E: Load8> Micro for Avx2Micro<E> {
    type E = E;
    const MR: usize = MR;
    const NR: usize = NR;

    #[inline]
    unsafe fn tile(
        kb: usize,
        ap: &[E],
        bp: &[E],
        out: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        acc: bool,
    ) {
        tile_impl::<E>(kb, ap.as_ptr(), bp.as_ptr(), out, ldc, rows, cols, acc);
    }
}

/// Free function carrying the `#[target_feature]` (trait methods cannot).
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_impl<E: Load8>(
    kb: usize,
    ap: *const E,
    bp: *const E,
    out: *mut f32,
    ldc: usize,
    rows: usize,
    cols: usize,
    acc: bool,
) {
    let mut t = [_mm256_setzero_ps(); MR];
    for kk in 0..kb {
        let b = E::load8(bp.add(kk * NR));
        for (r, tr) in t.iter_mut().enumerate() {
            let a = _mm256_set1_ps((*ap.add(kk * MR + r)).unpack());
            // mul + add, not fmadd: matches the scalar tile's two
            // roundings per k-step.
            *tr = _mm256_add_ps(*tr, _mm256_mul_ps(a, b));
        }
    }
    if rows == MR && cols == NR {
        for (r, tr) in t.iter().enumerate() {
            let dst = out.add(r * ldc);
            if acc {
                _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), *tr));
            } else {
                _mm256_storeu_ps(dst, *tr);
            }
        }
    } else {
        // Edge tile: spill the registers and store the valid corner with
        // the scalar loop (same per-element add as the vector path).
        let mut spill = [[0.0f32; NR]; MR];
        for (r, tr) in t.iter().enumerate() {
            _mm256_storeu_ps(spill[r].as_mut_ptr(), *tr);
        }
        for (r, sr) in spill.iter().enumerate().take(rows) {
            let dst = std::slice::from_raw_parts_mut(out.add(r * ldc), cols);
            if acc {
                for (d, &v) in dst.iter_mut().zip(sr[..cols].iter()) {
                    *d += v;
                }
            } else {
                dst.copy_from_slice(&sr[..cols]);
            }
        }
    }
}

/// 256-bit dot product reproducing `scalar::dot`'s 8 accumulator lanes:
/// one vector register *is* the lane array, the horizontal reduction spills
/// it and sums lanes in the same sequential order, and the tail is the
/// same scalar loop.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    let chunks = x.len() / L;
    let mut acc = _mm256_setzero_ps();
    for i in 0..chunks {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i * L));
        let yv = _mm256_loadu_ps(y.as_ptr().add(i * L));
        // mul + add (two roundings), like the scalar lanes.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, yv));
    }
    let mut lanes = [0.0f32; L];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s = lanes.iter().sum::<f32>();
    for i in chunks * L..x.len() {
        s += x[i] * y[i];
    }
    s
}

// ------------------------------------------------------------ activations

/// 8-lane `fast_tanh`: the same clamp → odd-13/even-6 rational → clamp →
/// saturate pipeline as the scalar, FMA for FMA (`mul_add` ↔ `fmadd`),
/// with NaN-exact min/max ordering.
#[target_feature(enable = "avx2,fma")]
#[inline]
pub(crate) unsafe fn tanh8(x: __m256) -> __m256 {
    let clamp_hi = _mm256_set1_ps(CLAMP);
    let clamp_lo = _mm256_set1_ps(-CLAMP);
    // min(hi, max(lo, x)): x rides second so a NaN input propagates,
    // matching f32::clamp.
    let xc = _mm256_min_ps(clamp_hi, _mm256_max_ps(clamp_lo, x));
    let x2 = _mm256_mul_ps(xc, xc);
    let mut p = _mm256_set1_ps(A13);
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A11));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A9));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A7));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A5));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A3));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(A1));
    let p = _mm256_mul_ps(p, xc);
    let x4 = _mm256_mul_ps(x2, x2);
    // Estrin split, same association as the scalar:
    // q = fma(fma(x2, B6, B4), x4, fma(x2, B2, B0)).
    let q = _mm256_fmadd_ps(
        _mm256_fmadd_ps(x2, _mm256_set1_ps(B6), _mm256_set1_ps(B4)),
        x4,
        _mm256_fmadd_ps(x2, _mm256_set1_ps(B2), _mm256_set1_ps(B0)),
    );
    let one = _mm256_set1_ps(1.0);
    let neg_one = _mm256_set1_ps(-1.0);
    let r = _mm256_div_ps(p, q);
    let r = _mm256_min_ps(one, _mm256_max_ps(neg_one, r));
    // Saturated tails: |x| >= SATURATE selects copysign(1.0, x). The
    // ordered-quiet compare is false on NaN, exactly like the scalar `>=`.
    let sign_bit = _mm256_set1_ps(-0.0);
    let abs_x = _mm256_andnot_ps(sign_bit, x);
    let sat = _mm256_cmp_ps::<_CMP_GE_OQ>(abs_x, _mm256_set1_ps(SATURATE));
    let signed_one = _mm256_or_ps(_mm256_and_ps(sign_bit, x), one);
    _mm256_blendv_ps(r, signed_one, sat)
}

/// 8-lane `fast_sigmoid`: `0.5·tanh(0.5x) + 0.5` with the scalar's
/// separate mul and add roundings (the scalar uses plain `*`/`+` here,
/// so no fmadd).
#[target_feature(enable = "avx2,fma")]
#[inline]
pub(crate) unsafe fn sigmoid8(x: __m256) -> __m256 {
    let half = _mm256_set1_ps(0.5);
    let t = tanh8(_mm256_mul_ps(half, x));
    _mm256_add_ps(_mm256_mul_ps(half, t), half)
}

/// In-place 8-wide `fast_tanh` sweep; scalar tail.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn tanh_sweep(v: &mut [f32]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), tanh8(_mm256_loadu_ps(p.add(i))));
        i += 8;
    }
    super::scalar::tanh_sweep(&mut v[i..]);
}

/// In-place 8-wide `fast_sigmoid` sweep; scalar tail.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn sigmoid_sweep(v: &mut [f32]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), sigmoid8(_mm256_loadu_ps(p.add(i))));
        i += 8;
    }
    super::scalar::sigmoid_sweep(&mut v[i..]);
}

/// 8-wide fused LSTM gate row; the tail runs the scalar row kernel over
/// the remaining elements (same scalars, so the seam is invisible).
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn lstm_gate_row(
    pa_r: &[f32],
    cp_r: &[f32],
    hid: usize,
    g_r: &mut [f32],
    c_r: &mut [f32],
    t_r: &mut [f32],
    h_r: &mut [f32],
) {
    let pa = pa_r.as_ptr();
    let cp = cp_r.as_ptr();
    let g = g_r.as_mut_ptr();
    let c_o = c_r.as_mut_ptr();
    let t_o = t_r.as_mut_ptr();
    let h_o = h_r.as_mut_ptr();
    let mut j = 0;
    while j + 8 <= hid {
        let i = sigmoid8(_mm256_loadu_ps(pa.add(j)));
        let f = sigmoid8(_mm256_loadu_ps(pa.add(hid + j)));
        let gg = tanh8(_mm256_loadu_ps(pa.add(2 * hid + j)));
        let o = sigmoid8(_mm256_loadu_ps(pa.add(3 * hid + j)));
        // c = f·cₚ + i·g as mul/mul/add — matching the scalar row (rustc
        // does not contract this into FMA).
        let c = _mm256_add_ps(_mm256_mul_ps(f, _mm256_loadu_ps(cp.add(j))), _mm256_mul_ps(i, gg));
        let tc = tanh8(c);
        _mm256_storeu_ps(g.add(j), i);
        _mm256_storeu_ps(g.add(hid + j), f);
        _mm256_storeu_ps(g.add(2 * hid + j), gg);
        _mm256_storeu_ps(g.add(3 * hid + j), o);
        _mm256_storeu_ps(c_o.add(j), c);
        _mm256_storeu_ps(t_o.add(j), tc);
        _mm256_storeu_ps(h_o.add(j), _mm256_mul_ps(o, tc));
        j += 8;
    }
    if j < hid {
        lstm_gate_row_tail(pa_r, cp_r, hid, j, g_r, c_r, t_r, h_r);
    }
}

/// Scalar tail shared by the vector LSTM rows: elements `j0..hid` via the
/// exact scalar gate arithmetic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lstm_gate_row_tail(
    pa_r: &[f32],
    cp_r: &[f32],
    hid: usize,
    j0: usize,
    g_r: &mut [f32],
    c_r: &mut [f32],
    t_r: &mut [f32],
    h_r: &mut [f32],
) {
    use crate::fastmath::{fast_sigmoid, fast_tanh};
    for j in j0..hid {
        let i = fast_sigmoid(pa_r[j]);
        let f = fast_sigmoid(pa_r[hid + j]);
        let g = fast_tanh(pa_r[2 * hid + j]);
        let o = fast_sigmoid(pa_r[3 * hid + j]);
        let c = f * cp_r[j] + i * g;
        let tc = fast_tanh(c);
        g_r[j] = i;
        g_r[hid + j] = f;
        g_r[2 * hid + j] = g;
        g_r[3 * hid + j] = o;
        c_r[j] = c;
        t_r[j] = tc;
        h_r[j] = o * tc;
    }
}
