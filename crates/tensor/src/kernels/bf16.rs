//! bf16 storage conversion: round-to-nearest-even truncation of f32.
//!
//! bfloat16 is the top 16 bits of an IEEE-754 binary32 — same exponent
//! range (8 bits), 7 mantissa bits. That makes it the natural *storage*
//! format for a GEMM whose arithmetic stays f32: narrowing is one
//! round-to-nearest-even on the low mantissa half, and widening back is an
//! **exact** `<< 16` bit shift. The packed-GEMM bf16 path therefore has a
//! precise contract: `gemm_bf16(A, B)` is bitwise-identical to
//! `gemm_f32(widen(round(A)), widen(round(B)))` — all rounding happens at
//! pack time, none inside the accumulation.

/// Narrows an f32 to bf16 bits with round-to-nearest-even. NaN payloads
/// are truncated but forced quiet (so a NaN can never round into an
/// infinity bit pattern).
#[inline(always)]
pub fn round(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even on bit 16: add 0x7fff plus the current LSB of
    // the kept half; carries propagate into the exponent correctly
    // (overflow rounds to ±inf, as IEEE narrowing requires).
    let round_bias = ((bits >> 16) & 1) + 0x7fff;
    ((bits.wrapping_add(round_bias)) >> 16) as u16
}

/// Widens bf16 bits back to f32 — exact, no rounding.
#[inline(always)]
pub fn widen(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// [`round`] then [`widen`]: the f32 value the bf16 path actually
/// computes with. Exposed for equivalence tests and accuracy tracking.
#[inline(always)]
pub fn round_f32(x: f32) -> f32 {
    widen(round(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive_round_trip() {
        // Values with ≤7 mantissa bits are exactly representable.
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 96.0, f32::from_bits(0xbd24_0000)] {
            assert_eq!(round_f32(x).to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and
        // 1.0078125; nearest-even keeps the even mantissa (1.0).
        let half_way = f32::from_bits(0x3f80_8000);
        assert_eq!(round_f32(half_way), 1.0);
        // One ulp above halfway rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(round_f32(above), f32::from_bits(0x3f81_0000));
        // Halfway with odd kept-LSB rounds up to the even neighbour.
        let odd_half = f32::from_bits(0x3f81_8000);
        assert_eq!(round_f32(odd_half), f32::from_bits(0x3f82_0000));
    }

    #[test]
    fn relative_error_bounded_by_bf16_epsilon() {
        // 2^-8 relative bound for normal values (7 explicit mantissa bits).
        let mut s = 0x243f_6a88u32; // arbitrary seed
        for _ in 0..10_000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let x = ((s >> 8) as f32 / (1u32 << 23) as f32 - 1.0) * 100.0;
            let r = round_f32(x);
            assert!((r - x).abs() <= x.abs() * (1.0 / 256.0) + f32::MIN_POSITIVE, "{x} -> {r}");
        }
    }

    #[test]
    fn specials() {
        assert_eq!(round_f32(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_f32(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_f32(f32::NAN).is_nan());
        // Overflow past bf16's max finite rounds to inf (same exponent
        // range as f32, so only values near f32::MAX can do this).
        assert_eq!(round_f32(f32::MAX), f32::INFINITY);
    }
}
