//! Runtime-dispatched SIMD microkernels.
//!
//! Every hot kernel in this crate — the packed GEMM micro-tile, the
//! `matvec` dot product, the `fast_tanh`/`fast_sigmoid` sweeps, and the
//! fused LSTM gate row — used to get its SIMD exclusively from
//! `-C target-cpu=native` auto-vectorisation, which a *shipped* binary
//! cannot assume: a portable build silently dropped every one of those
//! kernels to scalar. This module makes instruction-set selection a
//! **runtime decision made once per process**: explicit-intrinsics
//! variants for AVX-512F (16-wide), AVX2+FMA (8-wide), and the original
//! safe-Rust scalar loops as the universal fallback, chosen via
//! `is_x86_feature_detected!` the first time a kernel runs (or eagerly at
//! executor/engine init).
//!
//! ## Selection
//!
//! Priority, first match wins:
//!
//! 1. a thread-local [`with_override`] scope (tests and benches comparing
//!    variants in one process);
//! 2. an explicit [`force`] call (`ExecConfig::with_kernel`, or the
//!    `LEGW_KERNEL=scalar|avx2|avx512` environment override parsed at the
//!    composition root);
//! 3. the `LEGW_KERNEL` variable itself, consulted lazily at first kernel
//!    use so standalone `legw-tensor` users get the override without an
//!    executor (same precedent as `LEGW_PLAN_FUSE` in `legw-autograd`);
//! 4. CPUID feature detection.
//!
//! A requested variant the CPU cannot run is never installed — it warns on
//! stderr and falls back to detection, because dispatching an AVX-512
//! kernel on a non-AVX-512 machine is undefined behaviour, not a perf bug.
//!
//! ## Why all variants produce bitwise-identical results
//!
//! The dispatch seam is only sound for this repo's determinism guarantees
//! (shard-equivalence, fused-vs-unfused, plan-replay bitwise suites)
//! because every variant performs the *same scalar arithmetic in the same
//! order* per output element:
//!
//! * **GEMM micro-tile**: the scalar tile accumulates `acc += a·b` with
//!   separate multiply and add roundings (rustc does not contract `a*b + c`
//!   into FMA), so the vector tiles use `mul` + `add` intrinsics — *not*
//!   FMA — and keep the k-loop sequential per element. Widening the tile
//!   from 8 to 16 columns (AVX-512) regroups which elements share a
//!   register, but each element's accumulation chain is untouched, so even
//!   the 16-wide tile is bitwise-equal to scalar.
//! * **dot** (`matvec`): the scalar kernel owes its value order to its 8
//!   independent accumulator lanes; the AVX2 variant maps those lanes onto
//!   one 256-bit register and reduces them in the same sequential lane
//!   order. AVX-512 *reuses the 256-bit dot* — a 16-lane dot would change
//!   the partial-sum grouping and break bitwise equality.
//! * **activations**: `fast_tanh` is built on `f32::mul_add`, a true
//!   fused multiply-add (one rounding), so the vector versions use
//!   `fmadd` intrinsics and match exactly — including on portable scalar
//!   builds, where `mul_add` lowers to the correctly-rounded libm `fmaf`.
//!   Clamp/saturation use NaN-propagating min/max operand order and an
//!   ordered-quiet compare, matching the scalar semantics bit for bit.
//!
//! The equivalence matrix is enforced by
//! `crates/tensor/tests/kernel_dispatch.rs`.
//!
//! ## bf16 packed storage
//!
//! [`Micro`] is generic over the packed-panel element, which is what the
//! bf16-storage GEMM path plugs into: panels are converted f32→bf16
//! (round-to-nearest-even) at pack time and widened back to f32 (exact, a
//! bit shift) inside the micro-tile, with all accumulation in f32. Only
//! the packed panels change layout — operands, outputs, and the blocking
//! machinery are untouched. See [`bf16`] and `gemm.rs`.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod bf16;
pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

/// One instruction-set tier. Ordering is meaningful: later variants are
/// wider.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kernel {
    /// Safe-Rust scalar loops — runs everywhere, and is what every other
    /// variant must match bitwise.
    Scalar,
    /// AVX2 + FMA, 8-lane `f32` (FMA is required by the activation
    /// kernels; the GEMM tile itself only needs AVX2).
    Avx2,
    /// AVX-512F, 16-lane `f32` GEMM tile and activation sweeps.
    Avx512,
}

impl Kernel {
    /// Stable lower-case name (`scalar`/`avx2`/`avx512`) — the grammar of
    /// the `LEGW_KERNEL` variable, and what benches print.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }

    /// Parses a [`Kernel::name`] (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "avx2" => Some(Kernel::Avx2),
            "avx512" => Some(Kernel::Avx512),
            _ => None,
        }
    }
}

/// True when this CPU can execute `k`'s instruction set.
pub fn supported(k: Kernel) -> bool {
    match k {
        Kernel::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Widest supported variant: AVX-512 > AVX2+FMA > scalar.
fn detect() -> Kernel {
    if supported(Kernel::Avx512) {
        Kernel::Avx512
    } else if supported(Kernel::Avx2) {
        Kernel::Avx2
    } else {
        Kernel::Scalar
    }
}

/// Process-global selection, fixed at its first value (first-wins, like
/// `legw_parallel::set_default_threads`).
static SELECTED: OnceLock<Kernel> = OnceLock::new();

thread_local! {
    /// Test/bench-scoped override; see [`with_override`].
    static OVERRIDE: Cell<Option<Kernel>> = const { Cell::new(None) };
}

/// Lazy default: the `LEGW_KERNEL` environment override if valid and
/// runnable, CPUID detection otherwise. Warns on stderr for a value that
/// is set but unparsable or unsupported — a typo in a deploy script must
/// not silently change which kernels serve traffic.
fn default_kernel() -> Kernel {
    if let Ok(raw) = std::env::var("LEGW_KERNEL") {
        match Kernel::parse(&raw) {
            Some(k) if supported(k) => return k,
            Some(k) => eprintln!(
                "legw: LEGW_KERNEL={} requested but this CPU does not support it; \
                 falling back to runtime detection",
                k.name()
            ),
            None => eprintln!(
                "legw: ignoring LEGW_KERNEL={raw:?} (expected scalar/avx2/avx512); \
                 falling back to runtime detection"
            ),
        }
    }
    detect()
}

/// The kernel variant every dispatched entry point uses right now: the
/// thread-local [`with_override`] if one is active, else the process
/// selection (installing the default on first call).
///
/// Dispatched entry points read this **once at their own entry, on the
/// calling thread**, and carry the choice into any worker-pool closures —
/// so an override scope covers the whole call even though pool workers
/// never see the caller's thread-locals.
pub fn selected() -> Kernel {
    if let Some(k) = OVERRIDE.with(Cell::get) {
        return k;
    }
    *SELECTED.get_or_init(default_kernel)
}

/// Installs `k` as the process-wide selection. First-wins: returns `true`
/// when `k` is now the active selection (whether this call installed it or
/// it was already installed), `false` when the CPU cannot run `k` or a
/// *different* selection is already fixed. Called by `Executor::new` /
/// `InferEngine::new` so selection happens once at init rather than on a
/// hot path.
pub fn force(k: Kernel) -> bool {
    if !supported(k) {
        return false;
    }
    SELECTED.set(k).is_ok() || *SELECTED.get().expect("just checked") == k
}

/// Eagerly resolves the process selection (detection + `LEGW_KERNEL`).
/// Idempotent; exists so pool/engine init can pay the CPUID + env lookup
/// up front.
pub fn init() -> Kernel {
    *SELECTED.get_or_init(default_kernel)
}

/// Runs `f` with `k` as this thread's kernel selection, restoring the
/// previous override on exit. This is the test/bench hook that lets one
/// process compare variants; it panics if the CPU cannot run `k` (callers
/// gate on [`supported`]).
///
/// The override is thread-local: it covers dispatched entry points
/// *called on this thread* (which read it once and propagate it into
/// their worker closures), not kernels launched independently from other
/// threads.
pub fn with_override<R>(k: Kernel, f: impl FnOnce() -> R) -> R {
    assert!(supported(k), "kernel override {:?} not supported by this CPU", k);
    struct Restore(Option<Kernel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(k))));
    f()
}

// ------------------------------------------------------------------ traits

/// A packed-panel element: `f32` for the full-precision path, bf16 bits
/// (`u16`) for the reduced-storage path. Conversion happens once at pack
/// time ([`PackElem::pack`]); the micro-tile widens back to f32
/// ([`PackElem::unpack`], exact for bf16) and accumulates in f32.
pub trait PackElem: Copy + Send + Sync + Default + 'static {
    /// Converts one source f32 into packed storage.
    fn pack(x: f32) -> Self;
    /// Widens packed storage back to f32 (identity for f32, exact
    /// `<< 16` for bf16).
    fn unpack(self) -> f32;
}

impl PackElem for f32 {
    #[inline(always)]
    fn pack(x: f32) -> f32 {
        x
    }
    #[inline(always)]
    fn unpack(self) -> f32 {
        self
    }
}

/// bf16 storage as raw bits.
impl PackElem for u16 {
    #[inline(always)]
    fn pack(x: f32) -> u16 {
        bf16::round(x)
    }
    #[inline(always)]
    fn unpack(self) -> f32 {
        bf16::widen(self)
    }
}

/// One GEMM register micro-tile variant: computes an `MR×NR` tile of
/// `A·B` from packed panels and stores (or accumulates) the `rows×cols`
/// valid corner into the output.
///
/// Packed-panel layout contract (shared with `gemm.rs`'s pack loops):
/// `ap[kk·MR + r]` is `A[r, kk]` of the current micro-panel, `bp[kk·NR + c]`
/// is `B[kk, c]`; edge panels are zero-padded to full width.
pub trait Micro {
    /// Packed element type of both panels.
    type E: PackElem;
    /// Tile rows.
    const MR: usize;
    /// Tile columns.
    const NR: usize;

    /// Computes the tile over `kb` k-steps and stores `rows×cols` of it at
    /// `out` (row stride `ldc`): `C += tile` when `acc`, `C = tile`
    /// otherwise.
    ///
    /// # Safety
    /// The caller must (a) own the `rows×cols` output region at `out`
    /// exclusively, and (b) only invoke a variant whose instruction set
    /// [`supported`] reports available — dispatch guarantees (b).
    #[allow(clippy::missing_safety_doc)]
    unsafe fn tile(
        kb: usize,
        ap: &[Self::E],
        bp: &[Self::E],
        out: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        acc: bool,
    );
}

// ------------------------------------------------- dispatched entry points

/// In-place `fast_tanh` over a slice with the given variant. Bitwise-equal
/// to the scalar map for every variant.
pub fn tanh_sweep(k: Kernel, v: &mut [f32]) {
    match k {
        Kernel::Scalar => scalar::tanh_sweep(v),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only hands out supported variants.
        Kernel::Avx2 => unsafe { avx2::tanh_sweep(v) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::tanh_sweep(v) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::tanh_sweep(v),
    }
}

/// In-place `fast_sigmoid` over a slice with the given variant.
pub fn sigmoid_sweep(k: Kernel, v: &mut [f32]) {
    match k {
        Kernel::Scalar => scalar::sigmoid_sweep(v),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only hands out supported variants.
        Kernel::Avx2 => unsafe { avx2::sigmoid_sweep(v) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::sigmoid_sweep(v) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::sigmoid_sweep(v),
    }
}

/// `dst[i] = fast_tanh(src[i])` with the given variant.
pub fn tanh_map(k: Kernel, src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
    tanh_sweep(k, dst);
}

/// `dst[i] = fast_sigmoid(src[i])` with the given variant.
pub fn sigmoid_map(k: Kernel, src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
    sigmoid_sweep(k, dst);
}

/// Dot product with the scalar kernel's exact 8-lane accumulation order.
/// AVX-512 deliberately routes to the 256-bit kernel (see module docs).
pub(crate) fn dot(k: Kernel, x: &[f32], y: &[f32]) -> f32 {
    match k {
        Kernel::Scalar => scalar::dot(x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only hands out supported variants; Avx512
        // implies AVX2.
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::dot(x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dot(x, y),
    }
}

/// One fused LSTM gate row: activates the `[i|f|ĝ|o]` pre-activation row
/// and produces the new cell state, its tanh, and the hidden state. All
/// variants are bitwise-equal to the scalar loop (mul/mul/add cell update,
/// no FMA contraction — matching the unfused tape ops).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lstm_gate_row(
    k: Kernel,
    pa_r: &[f32],
    cp_r: &[f32],
    hid: usize,
    g_r: &mut [f32],
    c_r: &mut [f32],
    t_r: &mut [f32],
    h_r: &mut [f32],
) {
    match k {
        Kernel::Scalar => scalar::lstm_gate_row(pa_r, cp_r, hid, g_r, c_r, t_r, h_r),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only hands out supported variants.
        Kernel::Avx2 => unsafe { avx2::lstm_gate_row(pa_r, cp_r, hid, g_r, c_r, t_r, h_r) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::lstm_gate_row(pa_r, cp_r, hid, g_r, c_r, t_r, h_r) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::lstm_gate_row(pa_r, cp_r, hid, g_r, c_r, t_r, h_r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for k in [Kernel::Scalar, Kernel::Avx2, Kernel::Avx512] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse(" AVX2 "), Some(Kernel::Avx2));
        assert_eq!(Kernel::parse("sse9"), None);
    }

    #[test]
    fn scalar_always_supported_and_detect_is_supported() {
        assert!(supported(Kernel::Scalar));
        assert!(supported(detect()));
    }

    #[test]
    fn override_scopes_nest_and_restore() {
        let base = selected();
        with_override(Kernel::Scalar, || {
            assert_eq!(selected(), Kernel::Scalar);
            if supported(Kernel::Avx2) {
                with_override(Kernel::Avx2, || assert_eq!(selected(), Kernel::Avx2));
                assert_eq!(selected(), Kernel::Scalar);
            }
        });
        assert_eq!(selected(), base);
    }
}
