//! Elementwise operations with broadcasting, unary maps, and the in-place
//! update primitives the optimizers are built from.

use crate::shape::{broadcast_shapes, Shape};
use crate::tensor::Tensor;
use crate::PAR_THRESHOLD;
use legw_parallel::{current, par_chunks_mut};

/// How one operand's shape relates to the broadcast output shape; used to
/// pick a fast path.
enum BroadcastKind {
    /// Operand already has the output shape.
    Same,
    /// Operand is a single scalar element.
    Scalar,
    /// Output `[m, n]`, operand `[n]` (or `[1, n]`): repeat per row.
    RowVector { n: usize },
    /// Output `[m, n]`, operand `[m, 1]`: repeat per column.
    ColVector { n: usize },
    /// Anything else: generic strided iteration.
    General,
}

fn classify(operand: &Shape, out: &Shape) -> BroadcastKind {
    if operand == out {
        return BroadcastKind::Same;
    }
    if operand.numel() == 1 {
        return BroadcastKind::Scalar;
    }
    if out.ndim() == 2 {
        let (m, n) = (out.dim(0), out.dim(1));
        let d = operand.dims();
        if d == [n] || d == [1, n] {
            return BroadcastKind::RowVector { n };
        }
        if d == [m, 1] {
            return BroadcastKind::ColVector { n };
        }
    }
    BroadcastKind::General
}

/// Maps a flat output index to a flat operand index under broadcasting.
fn broadcast_index(flat: usize, out: &Shape, operand: &Shape) -> usize {
    let on = out.ndim();
    let pn = operand.ndim();
    let ostr = out.strides();
    let pstr = operand.strides();
    let mut rem = flat;
    let mut idx = 0usize;
    for i in 0..on {
        let coord = rem / ostr[i];
        rem %= ostr[i];
        // align from trailing end
        if i + pn >= on {
            let pi = i + pn - on;
            let pd = operand.dims()[pi];
            let c = if pd == 1 { 0 } else { coord };
            idx += c * pstr[pi];
        }
    }
    idx
}

fn binary_op(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let out_shape = broadcast_shapes(a.shape_obj(), b.shape_obj()).unwrap_or_else(|| {
        panic!("incompatible broadcast: {:?} vs {:?}", a.shape(), b.shape())
    });
    let n = out_shape.numel();
    let mut out = vec![0.0f32; n];
    let ka = classify(a.shape_obj(), &out_shape);
    let kb = classify(b.shape_obj(), &out_shape);
    let (av, bv) = (a.as_slice(), b.as_slice());

    let fill = |start: usize, chunk: &mut [f32]| {
        for (off, o) in chunk.iter_mut().enumerate() {
            let i = start + off;
            let x = match ka {
                BroadcastKind::Same => av[i],
                BroadcastKind::Scalar => av[0],
                BroadcastKind::RowVector { n } => av[i % n],
                BroadcastKind::ColVector { n } => av[i / n],
                BroadcastKind::General => av[broadcast_index(i, &out_shape, a.shape_obj())],
            };
            let y = match kb {
                BroadcastKind::Same => bv[i],
                BroadcastKind::Scalar => bv[0],
                BroadcastKind::RowVector { n } => bv[i % n],
                BroadcastKind::ColVector { n } => bv[i / n],
                BroadcastKind::General => bv[broadcast_index(i, &out_shape, b.shape_obj())],
            };
            *o = f(x, y);
        }
    };

    if n >= PAR_THRESHOLD {
        let pool = current();
        par_chunks_mut(&pool, &mut out, n.div_ceil(pool.threads() * 2).max(1024), fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, out_shape.dims())
}

/// Unary map through a runtime-dispatched sweep kernel (the activation
/// paths). The variant is read once here, on the calling thread, so a
/// kernel override covers the pool workers; chunking doesn't affect the
/// result of a pure elementwise map, so the parallel split is unchanged.
fn unary_sweep(a: &Tensor, sweep: fn(crate::kernels::Kernel, &mut [f32])) -> Tensor {
    let kern = crate::kernels::selected();
    let mut out = a.as_slice().to_vec();
    let n = out.len();
    if n >= PAR_THRESHOLD {
        let pool = current();
        par_chunks_mut(&pool, &mut out, n.div_ceil(pool.threads() * 2).max(1024), |_, c| {
            sweep(kern, c)
        });
    } else {
        sweep(kern, &mut out);
    }
    Tensor::from_vec(out, a.shape())
}

fn unary_op(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = a.as_slice().to_vec();
    let n = out.len();
    if n >= PAR_THRESHOLD {
        let pool = current();
        par_chunks_mut(&pool, &mut out, n.div_ceil(pool.threads() * 2).max(1024), |_, c| {
            for v in c {
                *v = f(*v);
            }
        });
    } else {
        for v in &mut out {
            *v = f(*v);
        }
    }
    Tensor::from_vec(out, a.shape())
}

impl Tensor {
    // ----------------------------------------------------- binary (allocating)

    /// Elementwise sum with broadcasting.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a + b)
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product with broadcasting.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a * b)
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, f32::max)
    }

    // ------------------------------------------------------------- scalar ops

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        unary_op(self, |x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        unary_op(self, |x| x * s)
    }

    // -------------------------------------------------------------- unary ops

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        unary_op(self, |x| -x)
    }

    /// Elementwise `exp`.
    pub fn exp(&self) -> Tensor {
        unary_op(self, f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        unary_op(self, f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_op(self, f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary_op(self, |x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        unary_op(self, f32::abs)
    }

    /// Logistic sigmoid `1/(1+e^{-x})` via the branch-free rational
    /// kernel in [`crate::fastmath`], runtime-dispatched to the widest
    /// SIMD sweep this CPU supports (see [`crate::kernels`]) — saturates
    /// to exact `0`/`1` on the tails, no per-element libm call.
    pub fn sigmoid(&self) -> Tensor {
        unary_sweep(self, crate::kernels::sigmoid_sweep)
    }

    /// Hyperbolic tangent via the branch-free rational kernel in
    /// [`crate::fastmath`], runtime-dispatched like [`Tensor::sigmoid`]
    /// (within a few ulp of `f32::tanh`, exact `±1` saturation).
    pub fn tanh(&self) -> Tensor {
        unary_sweep(self, crate::kernels::tanh_sweep)
    }

    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        unary_op(self, |x| x.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary_op(self, |x| x.clamp(lo, hi))
    }

    /// Applies an arbitrary function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        unary_op(self, f)
    }

    // -------------------------------------------------------- in-place update

    /// `self += alpha * other` (same shape required) — the optimizer axpy.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        let o = other.as_slice().to_vec(); // detach in case self aliases other
        let dst = self.as_mut_slice();
        for (d, s) in dst.iter_mut().zip(o.iter()) {
            *d += alpha * s;
        }
    }

    /// `self += alpha * other`, additionally returning `Σ selfᵢ²` of the
    /// *updated* elements in f64 — the fused accumulate-and-measure the
    /// executor's gradient apply uses so global-norm clipping needs no
    /// second full-parameter sweep. The update itself is bit-identical
    /// to [`Tensor::axpy`].
    pub fn axpy_sq_norm(&mut self, alpha: f32, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        let o = other.as_slice().to_vec(); // detach in case self aliases other
        let dst = self.as_mut_slice();
        let mut sq = 0.0f64;
        for (d, s) in dst.iter_mut().zip(o.iter()) {
            *d += alpha * s;
            sq += (*d as f64) * (*d as f64);
        }
        sq
    }

    /// `self *= s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// Sets every element to zero, reusing the buffer when unshared.
    pub fn fill_(&mut self, value: f32) {
        for v in self.as_mut_slice() {
            *v = value;
        }
    }

    /// In-place elementwise update `self[i] = f(self[i], other[i])`.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_inplace shape mismatch");
        let o = other.as_slice().to_vec();
        let dst = self.as_mut_slice();
        for (d, s) in dst.iter_mut().zip(o.iter()) {
            *d = f(*d, *s);
        }
    }

    // ------------------------------------------------------------------ norms

    /// Euclidean (ℓ₂) norm of the flattened tensor, accumulated in f64.
    pub fn l2_norm(&self) -> f32 {
        self.as_slice()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Dot product of two same-shaped tensors (flattened), in f64.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32
    }

    /// True when all elements are finite (no NaN/Inf) — divergence detector.
    pub fn all_finite(&self) -> bool {
        self.as_slice().iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1., 2., 3.], &[3]);
        let b = t(vec![10., 20., 30.], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33.]);
    }

    #[test]
    fn add_row_broadcast() {
        let a = t(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let bias = t(vec![10., 20., 30.], &[3]);
        assert_eq!(a.add(&bias).as_slice(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn mul_col_broadcast() {
        let a = t(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let col = t(vec![2., 10.], &[2, 1]);
        assert_eq!(a.mul(&col).as_slice(), &[2., 4., 6., 40., 50., 60.]);
    }

    #[test]
    fn scalar_broadcast_both_ways() {
        let a = t(vec![1., 2.], &[2]);
        let s = Tensor::scalar(5.);
        assert_eq!(a.add(&s).as_slice(), &[6., 7.]);
        assert_eq!(s.add(&a).as_slice(), &[6., 7.]);
    }

    #[test]
    fn general_broadcast_3d() {
        // [2,1,2] * [1,3,1] -> [2,3,2]
        let a = t(vec![1., 2., 3., 4.], &[2, 1, 2]);
        let b = t(vec![1., 10., 100.], &[1, 3, 1]);
        let c = a.mul(&b);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(
            c.as_slice(),
            &[1., 2., 10., 20., 100., 200., 3., 4., 30., 40., 300., 400.]
        );
    }

    #[test]
    #[should_panic(expected = "incompatible broadcast")]
    fn incompatible_shapes_panic() {
        t(vec![1., 2.], &[2]).add(&t(vec![1., 2., 3.], &[3]));
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        let a = t(vec![-100.0, 0.0, 100.0], &[3]);
        let s = a.sigmoid();
        assert!(s.as_slice()[0].abs() < 1e-20);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-7);
        assert!((s.as_slice()[2] - 1.0).abs() < 1e-7);
        assert!(s.all_finite());
    }

    #[test]
    fn relu_and_clamp() {
        let a = t(vec![-2., -0.5, 0.5, 2.], &[4]);
        assert_eq!(a.relu().as_slice(), &[0., 0., 0.5, 2.]);
        assert_eq!(a.clamp(-1., 1.).as_slice(), &[-1., -0.5, 0.5, 1.]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = t(vec![1., 2., 3.], &[3]);
        let g = t(vec![10., 10., 10.], &[3]);
        a.axpy(-0.1, &g);
        for (x, e) in a.as_slice().iter().zip([0., 1., 2.]) {
            assert!((x - e).abs() < 1e-6);
        }
    }

    #[test]
    fn axpy_self_aliasing_is_safe() {
        let mut a = t(vec![1., 2.], &[2]);
        let alias = a.clone();
        a.axpy(1.0, &alias);
        assert_eq!(a.as_slice(), &[2., 4.]);
    }

    #[test]
    fn axpy_sq_norm_updates_like_axpy_and_measures_result() {
        let mut a = t(vec![1., 2., 3.], &[3]);
        let mut b = a.clone();
        let g = t(vec![10., -10., 10.], &[3]);
        a.axpy(-0.1, &g);
        let sq = b.axpy_sq_norm(-0.1, &g);
        assert_eq!(a.as_slice(), b.as_slice(), "update must be bit-identical to axpy");
        let expect: f64 = b.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum();
        assert!((sq - expect).abs() < 1e-12, "{sq} vs {expect}");
        // aliasing stays safe
        let alias = b.clone();
        let sq2 = b.axpy_sq_norm(1.0, &alias);
        let expect2: f64 = b.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum();
        assert!((sq2 - expect2).abs() < 1e-12);
    }

    #[test]
    fn l2_norm_and_dot() {
        let a = t(vec![3., 4.], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        let b = t(vec![1., 2.], &[2]);
        assert!((a.dot(&b) - 11.0).abs() < 1e-6);
    }

    #[test]
    fn all_finite_detects_nan_inf() {
        assert!(t(vec![1., 2.], &[2]).all_finite());
        assert!(!t(vec![f32::NAN, 2.], &[2]).all_finite());
        assert!(!t(vec![1., f32::INFINITY], &[2]).all_finite());
    }

    #[test]
    fn large_tensor_parallel_path_matches_serial() {
        let n = PAR_THRESHOLD * 2 + 17;
        let a = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n]);
        let b = Tensor::full(&[n], 2.0);
        let c = a.mul(&b);
        for i in [0usize, 1, n / 2, n - 1] {
            assert_eq!(c.as_slice()[i], 2.0 * i as f32);
        }
        let e = a.exp().ln();
        assert!((e.as_slice()[10] - 10.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(v in proptest::collection::vec(-10f32..10.0, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v.clone(), &[n]);
            let b = Tensor::from_vec(v.iter().map(|x| x * 0.5 + 1.0).collect(), &[n]);
            let ab = a.add(&b);
            let ba = b.add(&a);
            prop_assert_eq!(ab.as_slice(), ba.as_slice());
        }

        #[test]
        fn prop_mul_by_ones_is_identity(v in proptest::collection::vec(-10f32..10.0, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]);
            let ones = Tensor::ones(&[n]);
            let prod = a.mul(&ones);
            prop_assert_eq!(prod.as_slice(), a.as_slice());
        }

        #[test]
        fn prop_broadcast_row_equals_manual(m in 1usize..6, n in 1usize..6) {
            let a = Tensor::from_vec((0..m*n).map(|x| x as f32).collect(), &[m, n]);
            let r = Tensor::from_vec((0..n).map(|x| (x * 7) as f32).collect(), &[n]);
            let c = a.add(&r);
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(c.at2(i, j), a.at2(i, j) + (j * 7) as f32);
                }
            }
        }

        #[test]
        fn prop_sigmoid_in_unit_interval(v in proptest::collection::vec(-50f32..50.0, 1..32)) {
            let n = v.len();
            let s = Tensor::from_vec(v, &[n]).sigmoid();
            for &x in s.as_slice() {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }
    }
}
