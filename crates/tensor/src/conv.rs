//! Convolution lowering: `im2col` / `col2im` so Conv2d forward and backward
//! become matrix multiplications.
//!
//! Layout convention: images are `[N, C, H, W]` row-major; the column matrix
//! is `[N·OH·OW, C·KH·KW]` so that `cols @ weight[CKK, OC]` yields the output
//! `[N·OH·OW, OC]`.

use crate::pool::Buffer;
use crate::tensor::Tensor;
use legw_parallel::{current, par_chunks_mut};

/// Geometry of a 2-D convolution: input/kernel/stride/padding extents and
/// the derived output size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Checks the geometry is realisable.
    pub fn validate(&self) {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.h + 2 * self.pad >= self.kh && self.w + 2 * self.pad >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            self.h + 2 * self.pad,
            self.w + 2 * self.pad
        );
    }
}

/// Unfolds `input [N, C, H, W]` into a column matrix `[N·OH·OW, C·KH·KW]`.
///
/// Output rows are independent, so the fill is parallelised over row chunks
/// of the column matrix; within a row, each `(channel, ky)` pair copies its
/// in-bounds `kx` span with a single contiguous `copy_from_slice` (the
/// out-of-bounds padding stays zero from the pooled buffer).
pub fn im2col(input: &Tensor, g: &Conv2dGeom) -> Tensor {
    g.validate();
    assert_eq!(input.ndim(), 4, "im2col expects [N,C,H,W], got {:?}", input.shape());
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert_eq!((c, h, w), (g.c, g.h, g.w), "geometry mismatch");
    let (oh, ow) = (g.oh(), g.ow());
    let ckk = c * g.kh * g.kw;
    let rows = n * oh * ow;
    let mut out = Buffer::zeroed(rows * ckk);
    fill_cols(input.as_slice(), n, g, &mut out);
    Tensor::from_buffer(out, &[rows, ckk])
}

/// Slice-level [`im2col`] into a caller-owned, already-sized buffer
/// (`[N·OH·OW, C·KH·KW]` elements) — zero-fills and unfolds with the exact
/// kernel `im2col` uses, so precompiled execution plans reproduce the tape
/// path bit-for-bit without allocating.
pub fn im2col_into(input: &[f32], n: usize, g: &Conv2dGeom, out: &mut [f32]) {
    g.validate();
    assert_eq!(input.len(), n * g.c * g.h * g.w, "im2col_into input length");
    let ckk = g.c * g.kh * g.kw;
    assert_eq!(out.len(), n * g.oh() * g.ow() * ckk, "im2col_into out length");
    out.fill(0.0);
    fill_cols(input, n, g, out);
}

/// The shared unfold kernel behind [`im2col`] / [`im2col_into`]: `out` must
/// be zeroed (padding positions are never written).
fn fill_cols(src: &[f32], n: usize, g: &Conv2dGeom, out: &mut [f32]) {
    let (c, h, w) = (g.c, g.h, g.w);
    let (oh, ow) = (g.oh(), g.ow());
    let ckk = c * g.kh * g.kw;
    let rows = n * oh * ow;

    let fill_row = |row: usize, dst: &mut [f32]| {
        let ox = row % ow;
        let oy = (row / ow) % oh;
        let ni = row / (oh * ow);
        for ci in 0..c {
            for ky in 0..g.kh {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                if iy < 0 || iy as usize >= h {
                    continue;
                }
                // in-bounds kx range: 0 ≤ ox·stride + kx − pad < w
                let x0 = (ox * g.stride) as isize - g.pad as isize;
                let kx_lo = (-x0).max(0) as usize;
                let kx_hi = (w as isize - x0).clamp(0, g.kw as isize) as usize;
                if kx_lo >= kx_hi {
                    continue;
                }
                let col = (ci * g.kh + ky) * g.kw;
                let sbase = ((ni * c + ci) * h + iy as usize) * w + (x0 + kx_lo as isize) as usize;
                dst[col + kx_lo..col + kx_hi]
                    .copy_from_slice(&src[sbase..sbase + kx_hi - kx_lo]);
            }
        }
    };

    let pool = current();
    let rows_per_chunk = if rows * ckk < crate::PAR_THRESHOLD || pool.threads() == 1 {
        rows.max(1)
    } else {
        rows.div_ceil(pool.threads() * 2).max(1)
    };
    par_chunks_mut(&pool, out, rows_per_chunk * ckk, |start, chunk| {
        let row0 = start / ckk;
        for (r, dst) in chunk.chunks_mut(ckk).enumerate() {
            fill_row(row0 + r, dst);
        }
    });
}

/// Folds a column-matrix gradient `[N·OH·OW, C·KH·KW]` back into an image
/// gradient `[N, C, H, W]`, summing overlapping contributions (the adjoint of
/// [`im2col`]).
pub fn col2im(cols: &Tensor, n: usize, g: &Conv2dGeom) -> Tensor {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    let ckk = g.c * g.kh * g.kw;
    assert_eq!(cols.shape(), &[n * oh * ow, ckk], "col2im shape mismatch");
    // Overlapping windows write to shared pixels, so col2im stays serial;
    // the buffer still comes from (and returns to) the recycling pool.
    let mut out = Buffer::zeroed(n * g.c * g.h * g.w);
    fold_cols(cols.as_slice(), n, g, &mut out);
    Tensor::from_buffer(out, &[n, g.c, g.h, g.w])
}

/// Slice-level [`col2im`] into a caller-owned buffer (`N·C·H·W` elements):
/// zero-fills `out`, then folds with the exact serial scatter `col2im` uses.
pub fn col2im_into(cols: &[f32], n: usize, g: &Conv2dGeom, out: &mut [f32]) {
    g.validate();
    assert_eq!(cols.len(), n * g.oh() * g.ow() * g.c * g.kh * g.kw, "col2im_into cols length");
    assert_eq!(out.len(), n * g.c * g.h * g.w, "col2im_into out length");
    out.fill(0.0);
    fold_cols(cols, n, g, out);
}

/// The shared fold kernel behind [`col2im`] / [`col2im_into`]: accumulates
/// into `out`, which must be zeroed on entry.
fn fold_cols(src: &[f32], n: usize, g: &Conv2dGeom, out: &mut [f32]) {
    let (oh, ow) = (g.oh(), g.ow());
    let ckk = g.c * g.kh * g.kw;

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * ckk;
                for ci in 0..g.c {
                    for ky in 0..g.kh {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        for kx in 0..g.kw {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && (iy as usize) < g.h && ix >= 0 && (ix as usize) < g.w {
                                let col = (ci * g.kh + ky) * g.kw + kx;
                                out[((ni * g.c + ci) * g.h + iy as usize) * g.w + ix as usize] +=
                                    src[row + col];
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom { c, h, w, kh: k, kw: k, stride, pad }
    }

    #[test]
    fn output_size_formula() {
        let g = geom(3, 32, 32, 3, 1, 1);
        assert_eq!((g.oh(), g.ow()), (32, 32)); // "same" conv
        let g2 = geom(3, 32, 32, 3, 2, 1);
        assert_eq!((g2.oh(), g2.ow()), (16, 16));
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let g = geom(2, 3, 3, 1, 1, 0);
        let x = Tensor::from_vec((0..18).map(|v| v as f32).collect(), &[1, 2, 3, 3]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[9, 2]);
        // column c of row (y*w+x) is channel c at pixel (y,x)
        assert_eq!(cols.at2(0, 0), 0.0);
        assert_eq!(cols.at2(0, 1), 9.0);
        assert_eq!(cols.at2(8, 0), 8.0);
        assert_eq!(cols.at2(8, 1), 17.0);
    }

    #[test]
    fn im2col_matmul_equals_direct_conv() {
        // direct convolution vs im2col+matmul on a small case
        let g = geom(2, 5, 5, 3, 1, 1);
        let n = 2;
        let oc = 3;
        let x = Tensor::from_vec(
            (0..n * 2 * 25).map(|v| ((v * 37 % 11) as f32) - 5.0).collect(),
            &[n, 2, 5, 5],
        );
        let wgt = Tensor::from_vec(
            (0..oc * 2 * 9).map(|v| ((v * 13 % 7) as f32) * 0.1 - 0.3).collect(),
            &[oc, 2 * 9],
        );
        // im2col path: [N*OH*OW, CKK] @ [CKK, OC]
        let cols = im2col(&x, &g);
        let out = cols.matmul(&wgt.transpose()); // [N*OH*OW, OC]

        // direct path
        let (oh, ow) = (g.oh(), g.ow());
        for ni in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..2 {
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let iy = oy as isize + ky as isize - 1;
                                    let ix = ox as isize + kx as isize - 1;
                                    if iy >= 0 && iy < 5 && ix >= 0 && ix < 5 {
                                        let xi = x.as_slice()
                                            [((ni * 2 + ci) * 5 + iy as usize) * 5 + ix as usize];
                                        let wi = wgt.at2(o, (ci * 3 + ky) * 3 + kx);
                                        acc += xi * wi;
                                    }
                                }
                            }
                        }
                        let got = out.at2((ni * oh + oy) * ow + ox, o);
                        assert!((got - acc).abs() < 1e-4, "{got} vs {acc}");
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the transpose, which is exactly what backward needs.
        let g = geom(2, 6, 5, 3, 2, 1);
        let n = 2;
        let x = Tensor::from_vec(
            (0..n * g.c * g.h * g.w).map(|v| ((v % 17) as f32) - 8.0).collect(),
            &[n, g.c, g.h, g.w],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|v| ((v % 23) as f32) * 0.5 - 5.0).collect(),
            cols.shape(),
        );
        let lhs = cols.flatten().dot(&y.flatten());
        let folded = col2im(&y, n, &g);
        let rhs = x.flatten().dot(&folded.flatten());
        assert!((lhs - rhs).abs() < 1.0, "adjoint identity: {lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_rejected() {
        geom(1, 2, 2, 5, 1, 0).validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_adjoint_identity(
            h in 3usize..8, w in 3usize..8, k in 1usize..4,
            stride in 1usize..3, pad in 0usize..2,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let g = Conv2dGeom { c: 2, h, w, kh: k, kw: k, stride, pad };
            let n = 1;
            let x = Tensor::from_vec(
                (0..n * 2 * h * w).map(|v| ((v * 31 % 13) as f32) - 6.0).collect(),
                &[n, 2, h, w],
            );
            let cols = im2col(&x, &g);
            let y = Tensor::from_vec(
                (0..cols.numel()).map(|v| ((v * 7 % 19) as f32) - 9.0).collect(),
                cols.shape(),
            );
            let lhs = cols.flatten().dot(&y.flatten()) as f64;
            let rhs = x.flatten().dot(&col2im(&y, n, &g).flatten()) as f64;
            prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
        }
    }
}
