//! Recycling allocator for kernel output buffers.
//!
//! Training loops produce the same tensor shapes step after step: every
//! matmul, im2col, and gradient accumulation allocates an output buffer,
//! uses it briefly, and drops it when the autograd tape is discarded. Paying
//! the allocator (and page-faulting fresh zero pages) for each of those is
//! measurable churn at large batch sizes, so [`Buffer`] — the storage behind
//! every [`crate::Tensor`] — returns its `Vec<f32>` to a thread-local free
//! list on drop, and new kernel outputs are carved from that list when a
//! fitting buffer is available.
//!
//! The pool is deliberately simple and bounded:
//!
//! * **Thread-local** — no locks; a buffer freed on a worker thread is
//!   reused by that worker. Training loops allocate and free on the main
//!   thread, which is where the hits land.
//! * **First fit with a waste cap** — a pooled buffer is reused when its
//!   capacity is at least the request and at most [`WASTE_FACTOR`]× the
//!   request, so a giant buffer is never pinned under a tiny tensor.
//! * **Bounded** — at most [`MAX_POOLED`] buffers / [`MAX_POOL_FLOATS`]
//!   floats per thread; tiny buffers (< [`MIN_POOL_ELEMS`] elements) skip
//!   the pool entirely since the allocator already handles them well.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Buffers below this many elements are never pooled.
const MIN_POOL_ELEMS: usize = 1024;
/// Maximum number of buffers retained per thread.
const MAX_POOLED: usize = 48;
/// Maximum total floats retained per thread (64 MiB).
const MAX_POOL_FLOATS: usize = 16 * 1024 * 1024;
/// A pooled buffer is only reused if its capacity is ≤ this multiple of the
/// requested length.
const WASTE_FACTOR: usize = 2;

#[derive(Default)]
struct FreeList {
    bufs: Vec<Vec<f32>>,
    total: usize,
    hits: usize,
    misses: usize,
}

thread_local! {
    static POOL: RefCell<FreeList> = RefCell::new(FreeList::default());
}

/// Takes a `len`-long vector — recycled if the pool has a fit. With
/// `zero`, recycled contents are cleared; without it, the prefix keeps
/// whatever the previous owner wrote (only the grown tail is zero-filled,
/// which `Vec::resize` guarantees), so callers must overwrite every element.
fn take(len: usize, zero: bool) -> Vec<f32> {
    let reused = POOL
        .try_with(|p| {
            let mut p = p.borrow_mut();
            let pos = p
                .bufs
                .iter()
                .position(|b| b.capacity() >= len && b.capacity() <= WASTE_FACTOR * len.max(MIN_POOL_ELEMS));
            match pos {
                Some(i) => {
                    let b = p.bufs.swap_remove(i);
                    p.total -= b.capacity();
                    p.hits += 1;
                    Some(b)
                }
                None => {
                    p.misses += 1;
                    None
                }
            }
        })
        .ok()
        .flatten();
    match reused {
        Some(mut b) => {
            if zero {
                b.clear();
            }
            b.resize(len, 0.0);
            track_acquire(b.capacity(), true);
            b
        }
        None => {
            let b = vec![0.0; len];
            track_acquire(b.capacity(), false);
            b
        }
    }
}

/// Takes a zeroed, `len`-long vector — recycled if the pool has a fit.
fn take_zeroed(len: usize) -> Vec<f32> {
    take(len, true)
}

/// Offers a vector back to the pool (dropped if over budget or too small).
fn give(v: Vec<f32>) {
    if v.capacity() < MIN_POOL_ELEMS {
        return;
    }
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.bufs.len() < MAX_POOLED && p.total + v.capacity() <= MAX_POOL_FLOATS {
            p.total += v.capacity();
            p.bufs.push(v);
        }
    });
}

/// Pre-sizes this thread's free list for a workload whose peak live set is
/// `bytes` (e.g. a compiled plan's `PlanStats::peak_live_bytes`): seeds a
/// doubling ladder of power-of-two buffers, two per rung, from
/// [`MIN_POOL_ELEMS`] up to the first power of two covering the peak. The
/// take-side fit test accepts a buffer whose capacity is within
/// [`WASTE_FACTOR`]× of the request, so for any request of `len ≥ 1` the
/// rung at `len.next_power_of_two().max(MIN_POOL_ELEMS)` qualifies —
/// after prewarming, first-use requests up to the peak hit the pool
/// instead of the allocator. Offers go through the normal [`give`] path,
/// so the per-thread buffer/byte budgets still apply; a second prewarm of
/// an already-warm pool is a bounded no-op once the caps are reached.
/// Returns the number of buffers offered. Seeded capacity never touches
/// the live-buffer counters ([`stats`]) until taken.
pub fn prewarm(bytes: usize) -> usize {
    if bytes == 0 {
        return 0;
    }
    // Anything past the per-thread float budget would be rejected by
    // `give` regardless, so clamp the ladder there.
    let floats = bytes.div_ceil(4).min(MAX_POOL_FLOATS);
    let mut offered = 0;
    let mut rung = MIN_POOL_ELEMS;
    loop {
        for _ in 0..2 {
            give(Vec::with_capacity(rung));
            offered += 1;
        }
        if rung >= floats {
            break;
        }
        rung *= 2;
    }
    offered
}

/// `(hits, misses)` of this thread's pool — test/diagnostic hook.
#[allow(dead_code)]
pub(crate) fn thread_stats() -> (usize, usize) {
    POOL.with(|p| {
        let p = p.borrow();
        (p.hits, p.misses)
    })
}

// Process-wide buffer accounting. Relaxed counters on the buffer create /
// drop paths cost one uncontended atomic op each — noise next to the memset
// or memcpy that accompanies every buffer — and make the "steady-state
// replay performs zero allocations" claim measurable instead of asserted.
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static RECYCLES: AtomicUsize = AtomicUsize::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Cumulative process-wide buffer-pool counters (all threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers materialised by the allocator (pool misses plus wrapped
    /// caller-allocated vectors).
    pub allocations: usize,
    /// Buffers recycled from a thread-local free list (pool hits).
    pub recycles: usize,
    /// Bytes currently held by live [`Buffer`]s (excludes pooled free lists).
    pub live_bytes: usize,
    /// Maximum `live_bytes` ever observed.
    pub high_water_bytes: usize,
}

impl PoolStats {
    /// Counter movement since an earlier snapshot (`live_bytes` is a gauge
    /// and is reported as-is).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            allocations: self.allocations - earlier.allocations,
            recycles: self.recycles - earlier.recycles,
            live_bytes: self.live_bytes,
            high_water_bytes: self.high_water_bytes,
        }
    }
}

/// Snapshot of the process-wide pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        high_water_bytes: HIGH_WATER_BYTES.load(Ordering::Relaxed),
    }
}

/// Records a buffer entering service; `recycled` says whether its storage
/// came from a free list or the allocator.
fn track_acquire(capacity: usize, recycled: bool) {
    if recycled {
        RECYCLES.fetch_add(1, Ordering::Relaxed);
    } else {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
    let live = LIVE_BYTES.fetch_add(capacity * 4, Ordering::Relaxed) + capacity * 4;
    HIGH_WATER_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// The storage behind [`crate::Tensor`]: a `Vec<f32>` that rejoins the
/// thread-local pool when dropped.
pub(crate) struct Buffer {
    data: Vec<f32>,
}

impl Buffer {
    /// Wraps an existing vector (it will be pooled on drop).
    pub(crate) fn from_vec(data: Vec<f32>) -> Self {
        track_acquire(data.capacity(), false);
        Buffer { data }
    }

    /// A zeroed buffer of `len` elements, recycled from the pool if possible.
    pub(crate) fn zeroed(len: usize) -> Self {
        Buffer { data: take_zeroed(len) }
    }

    /// A `len`-element buffer whose contents are unspecified (stale pool data
    /// or zeros). For kernels that overwrite every element before the buffer
    /// escapes — skips the memset that [`Buffer::zeroed`] pays.
    pub(crate) fn dirty(len: usize) -> Self {
        Buffer { data: take(len, false) }
    }

    /// A buffer of `len` copies of `value`.
    pub(crate) fn filled(len: usize, value: f32) -> Self {
        let mut data = take_zeroed(len);
        if value != 0.0 {
            data.iter_mut().for_each(|x| *x = value);
        }
        Buffer { data }
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        LIVE_BYTES.fetch_sub(data.capacity() * 4, Ordering::Relaxed);
        give(data);
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        // Copy-on-write path: pull a pooled buffer and overwrite it.
        let mut data = take_zeroed(self.data.len());
        data.copy_from_slice(&self.data);
        Buffer { data }
    }
}

impl std::ops::Deref for Buffer {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for Buffer {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_buffers_bypass_pool() {
        let before = thread_stats();
        drop(Buffer::from_vec(vec![1.0; 8]));
        let b = Buffer::zeroed(8);
        assert_eq!(&*b, &[0.0; 8]);
        let after = thread_stats();
        // an 8-element request never produces a pool hit
        assert_eq!(after.0, before.0);
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let len = 64 * 1024;
        // Warm the pool with one buffer of the steady-state size.
        drop(Buffer::zeroed(len));
        let (h0, _) = thread_stats();
        for _ in 0..10 {
            let b = Buffer::zeroed(len);
            assert!(b.iter().all(|&x| x == 0.0), "recycled buffer must be zeroed");
            drop(b);
        }
        let (h1, _) = thread_stats();
        assert!(h1 >= h0 + 10, "expected ≥10 pool hits, got {}", h1 - h0);
    }

    #[test]
    fn global_counters_track_allocations_and_recycles() {
        let len = 96 * 1024; // distinctive size, unlikely to be pool-warm
        drop(Buffer::zeroed(len));
        let warm = stats();
        let b = Buffer::zeroed(len);
        let after_take = stats();
        assert_eq!(
            after_take.recycles - warm.recycles,
            1,
            "steady-state take must recycle, not allocate"
        );
        assert_eq!(after_take.allocations, warm.allocations);
        assert!(after_take.live_bytes >= len * 4);
        assert!(after_take.high_water_bytes >= after_take.live_bytes);
        drop(b);
        let after_drop = stats();
        assert!(after_drop.live_bytes <= after_take.live_bytes - len * 4);
        let delta = after_drop.since(&warm);
        assert_eq!((delta.allocations, delta.recycles), (0, 1));
    }

    #[test]
    fn recycled_buffer_is_rezeroed_after_writes() {
        let len = 8192;
        {
            let mut b = Buffer::zeroed(len);
            b.iter_mut().for_each(|x| *x = 3.5);
        }
        let b = Buffer::zeroed(len);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Buffer::filled(4096, 2.0);
        let b = a.clone();
        a[0] = -1.0;
        assert_eq!(b[0], 2.0);
        assert_eq!(b[4095], 2.0);
    }

    #[test]
    fn prewarm_serves_first_takes_without_allocating() {
        // Each Rust test runs on its own thread, so this thread's pool is
        // cold: without prewarm every take below would be a miss.
        prewarm(300 * 1024); // 76 800 floats → ladder up to 131 072
        let (h0, m0) = thread_stats();
        let a = Buffer::zeroed(70_000);
        let b = Buffer::zeroed(70_000); // two per rung: second take same size
        let c = Buffer::dirty(4_000);
        let (h1, m1) = thread_stats();
        assert_eq!(m1, m0, "prewarmed pool must serve first takes without a miss");
        assert_eq!(h1, h0 + 3);
        drop((a, b, c));
    }

    #[test]
    fn prewarm_respects_pool_budgets() {
        // Prewarming for an absurd peak must not blow the per-thread caps.
        prewarm(usize::MAX / 8);
        POOL.with(|p| {
            let p = p.borrow();
            assert!(p.bufs.len() <= MAX_POOLED);
            assert!(p.total <= MAX_POOL_FLOATS);
        });
    }

    #[test]
    fn oversized_buffer_not_pinned_under_small_request() {
        // A huge buffer must not be handed out for a much smaller request.
        drop(Buffer::zeroed(1 << 20));
        let small = Buffer::zeroed(2048);
        assert!(small.len() == 2048);
        // capacity of the vec backing `small` must be bounded by the waste cap
        assert!(small.data.capacity() <= WASTE_FACTOR * 2048.max(MIN_POOL_ELEMS));
    }
}
