//! Cross-variant kernel equivalence matrix (PR 10 acceptance suite).
//!
//! Every runtime-dispatched kernel variant — scalar, AVX2+FMA, AVX-512F —
//! must produce **bitwise identical** results for GEMM (all transpose
//! modes, edge shapes, k spanning multiple KC blocks), `matvec`, the
//! activation sweeps, and the fused LSTM cell. Variants the running CPU
//! lacks are skipped (the suite is still meaningful on any x86-64: scalar
//! always runs, and the scalar-vs-selected checks in the crate's unit
//! tests cover the rest).
//!
//! The bf16 path is checked two ways: exactly (bf16-mode GEMM equals
//! f32-mode GEMM on pre-rounded operands, per variant) and approximately
//! (accuracy deltas against the f32 result stay within the bf16 rounding
//! model's bound, and are printed so the freeze-equivalence story has
//! recorded numbers).

use legw_tensor::kernels::{self, Kernel};
use legw_tensor::{lstm_cell_forward, with_bf16_gemm, Tensor};
use proptest::prelude::*;

const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Avx2, Kernel::Avx512];

fn available() -> Vec<Kernel> {
    ALL.iter().copied().filter(|&k| kernels::supported(k)).collect()
}

fn lcg(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: idx {i}: {x} vs {y}");
    }
}

/// Edge shapes: extents off the 8/16 tile grid, k > KC (=256) to span
/// multiple k-blocks, plus degenerate single-row/column cases.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (7, 5, 3),
    (8, 8, 8),
    (9, 17, 15),
    (8, 16, 16),
    (13, 300, 17), // k spans two KC blocks
    (33, 257, 31),
    (64, 64, 64),
    (1, 520, 19),
    (21, 70, 1),
];

#[test]
fn gemm_bitwise_equal_across_variants() {
    let avail = available();
    for &(m, k, n) in SHAPES {
        let a = lcg(1 + (m * k) as u64, m * k);
        let b = lcg(2 + (k * n) as u64, k * n);
        for (trans_a, trans_b) in [(false, false), (true, false), (false, true)] {
            // Layout note: the Tensor API takes logically-shaped operands;
            // feed it the right storage for each transpose mode.
            let run = |kern: Kernel| {
                kernels::with_override(kern, || {
                    let (at, bt) = if trans_a {
                        (Tensor::from_vec(a.clone(), &[k, m]), Tensor::from_vec(b.clone(), &[k, n]))
                    } else if trans_b {
                        (Tensor::from_vec(a.clone(), &[m, k]), Tensor::from_vec(b.clone(), &[n, k]))
                    } else {
                        (Tensor::from_vec(a.clone(), &[m, k]), Tensor::from_vec(b.clone(), &[k, n]))
                    };
                    let c = if trans_a {
                        at.t_matmul(&bt)
                    } else if trans_b {
                        at.matmul_t(&bt)
                    } else {
                        at.matmul(&bt)
                    };
                    c.as_slice().to_vec()
                })
            };
            let reference = run(Kernel::Scalar);
            for &kern in &avail {
                let got = run(kern);
                assert_bits_eq(
                    &got,
                    &reference,
                    &format!("gemm {:?} ({trans_a},{trans_b}) {m}x{k}x{n}", kern),
                );
            }
        }
    }
}

#[test]
fn matvec_bitwise_equal_across_variants() {
    let avail = available();
    for &(m, k) in &[(1usize, 1usize), (3, 7), (8, 64), (17, 300), (129, 1025)] {
        let a = lcg(31 + m as u64, m * k);
        let v = lcg(47 + k as u64, k);
        let run = |kern: Kernel| {
            kernels::with_override(kern, || {
                Tensor::from_vec(a.clone(), &[m, k])
                    .matvec(&Tensor::from_vec(v.clone(), &[k]))
                    .as_slice()
                    .to_vec()
            })
        };
        let reference = run(Kernel::Scalar);
        for &kern in &avail {
            assert_bits_eq(&run(kern), &reference, &format!("matvec {:?} {m}x{k}", kern));
        }
    }
}

#[test]
fn activations_bitwise_equal_across_variants() {
    let avail = available();
    // Length 1031: prime, exercises the 8- and 16-lane tails; range wide
    // enough to hit both saturation branches, zero, and subnormal inputs.
    let mut v = lcg(77, 1031).iter().map(|x| x * 8.0).collect::<Vec<_>>();
    v.extend_from_slice(&[0.0, -0.0, 9.5, -9.5, 100.0, -100.0, 1e-30, -1e-30]);
    for &kern in &avail {
        for (name, sweep) in [
            ("tanh", kernels::tanh_sweep as fn(Kernel, &mut [f32])),
            ("sigmoid", kernels::sigmoid_sweep as fn(Kernel, &mut [f32])),
        ] {
            let mut reference = v.clone();
            sweep(Kernel::Scalar, &mut reference);
            let mut got = v.clone();
            sweep(kern, &mut got);
            assert_bits_eq(&got, &reference, &format!("{name} {:?}", kern));
        }
    }
}

#[test]
fn activation_nan_propagates_identically() {
    let avail = available();
    let mut v = vec![f32::NAN, 1.0, f32::INFINITY, f32::NEG_INFINITY, -3.0];
    v.extend(vec![f32::NAN; 20]); // cover full vector lanes, not just tails
    for &kern in &avail {
        let mut got = v.clone();
        kernels::tanh_sweep(kern, &mut got);
        let mut reference = v.clone();
        kernels::tanh_sweep(Kernel::Scalar, &mut reference);
        for (i, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
            assert_eq!(g.is_nan(), r.is_nan(), "tanh NaN-ness {:?} idx {i}", kern);
            if !g.is_nan() {
                assert_eq!(g.to_bits(), r.to_bits(), "tanh {:?} idx {i}", kern);
            }
        }
        assert!(got[0].is_nan(), "tanh(NaN) must stay NaN under {:?}", kern);
    }
}

#[test]
fn lstm_cell_bitwise_equal_across_variants() {
    let avail = available();
    for &(b, hid) in &[(1usize, 1usize), (2, 7), (3, 16), (5, 33), (64, 48)] {
        let preact = lcg(91 + b as u64, b * 4 * hid).iter().map(|x| x * 3.0).collect::<Vec<_>>();
        let c_prev = lcg(93 + hid as u64, b * hid);
        let run = |kern: Kernel| {
            kernels::with_override(kern, || {
                let fwd = lstm_cell_forward(
                    &Tensor::from_vec(preact.clone(), &[b, 4 * hid]),
                    &Tensor::from_vec(c_prev.clone(), &[b, hid]),
                );
                (
                    fwd.h.as_slice().to_vec(),
                    fwd.c.as_slice().to_vec(),
                    fwd.gates.as_slice().to_vec(),
                    fwd.tanh_c.as_slice().to_vec(),
                )
            })
        };
        let reference = run(Kernel::Scalar);
        for &kern in &avail {
            let got = run(kern);
            let tag = format!("lstm {:?} B={b} H={hid}", kern);
            assert_bits_eq(&got.0, &reference.0, &format!("{tag} h"));
            assert_bits_eq(&got.1, &reference.1, &format!("{tag} c"));
            assert_bits_eq(&got.2, &reference.2, &format!("{tag} gates"));
            assert_bits_eq(&got.3, &reference.3, &format!("{tag} tanh_c"));
        }
    }
}

#[test]
fn bf16_gemm_equals_f32_on_prerounded_operands_per_variant() {
    let avail = available();
    for &(m, k, n) in &[(9usize, 300usize, 17usize), (16, 64, 16), (5, 8, 3)] {
        let a = lcg(111 + m as u64, m * k);
        let b = lcg(113 + n as u64, k * n);
        let ar: Vec<f32> = a.iter().map(|&x| kernels::bf16::round_f32(x)).collect();
        let br: Vec<f32> = b.iter().map(|&x| kernels::bf16::round_f32(x)).collect();
        for &kern in &avail {
            kernels::with_override(kern, || {
                let got = with_bf16_gemm(|| {
                    Tensor::from_vec(a.clone(), &[m, k])
                        .matmul(&Tensor::from_vec(b.clone(), &[k, n]))
                });
                let want = Tensor::from_vec(ar.clone(), &[m, k])
                    .matmul(&Tensor::from_vec(br.clone(), &[k, n]));
                assert_bits_eq(
                    got.as_slice(),
                    want.as_slice(),
                    &format!("bf16 {:?} {m}x{k}x{n}", kern),
                );
            });
        }
    }
}

#[test]
fn bf16_accuracy_delta_bounded_and_recorded() {
    // Per-element model: each operand rounds once with relative error
    // ≤ 2⁻⁹ (RNE half-ulp of bf16's 8 mantissa bits), so each of the k
    // products carries ≲ |a||b|·2⁻⁸ ≤ 4/256 error; with random signs the
    // k = 300 accumulation lands near √k·0.0156/2 ≈ 0.1 rather than the
    // k·0.0156 ≈ 4.7 worst case. The deltas are fully deterministic
    // (fixed seed, and every kernel variant is bitwise-identical), so the
    // bounds below sit just above the observed max_abs ≈ 0.146 /
    // max_rel ≈ 0.078 — any regression in the rounding path moves them.
    // Printed so the serving-accuracy story has concrete numbers.
    let (m, k, n) = (16usize, 300usize, 16usize);
    let a = lcg(211, m * k);
    let b = lcg(223, k * n);
    let f32_out =
        Tensor::from_vec(a.clone(), &[m, k]).matmul(&Tensor::from_vec(b.clone(), &[k, n]));
    let bf16_out = with_bf16_gemm(|| {
        Tensor::from_vec(a.clone(), &[m, k]).matmul(&Tensor::from_vec(b.clone(), &[k, n]))
    });
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (x, y) in f32_out.as_slice().iter().zip(bf16_out.as_slice()) {
        let d = (x - y).abs();
        max_abs = max_abs.max(d);
        max_rel = max_rel.max(d / (1.0 + x.abs()));
    }
    println!("bf16 GEMM delta m={m} k={k} n={n}: max_abs={max_abs:.3e} max_rel={max_rel:.3e}");
    assert!(max_abs > 0.0, "bf16 rounding should actually change something");
    assert!(max_abs < 0.2, "bf16 delta {max_abs} exceeds rounding model bound");
    assert!(max_rel < 0.1, "bf16 relative delta {max_rel} exceeds bound");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomised shape fuzz over the full variant matrix: M, N off the
    /// tile grid and k occasionally > KC.
    #[test]
    fn prop_gemm_variants_agree(
        m in 1usize..40, k in 1usize..320, n in 1usize..40,
        trans_a in proptest::bool::ANY, trans_b in proptest::bool::ANY,
    ) {
        let a = lcg(m as u64 * 7 + k as u64, m * k);
        let b = lcg(n as u64 * 13 + k as u64, k * n);
        let run = |kern: Kernel| {
            kernels::with_override(kern, || {
                let (at, bt) = if trans_a {
                    (Tensor::from_vec(a.clone(), &[k, m]), Tensor::from_vec(b.clone(), &[k, n]))
                } else if trans_b {
                    (Tensor::from_vec(a.clone(), &[m, k]), Tensor::from_vec(b.clone(), &[n, k]))
                } else {
                    (Tensor::from_vec(a.clone(), &[m, k]), Tensor::from_vec(b.clone(), &[k, n]))
                };
                let c = if trans_a { at.t_matmul(&bt) }
                    else if trans_b { at.matmul_t(&bt) }
                    else { at.matmul(&bt) };
                c.as_slice().to_vec()
            })
        };
        let reference = run(Kernel::Scalar);
        for kern in available() {
            let got = run(kern);
            for (i, (x, y)) in got.iter().zip(reference.iter()).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "{:?} ({},{}) {}x{}x{} idx {}", kern, trans_a, trans_b, m, k, n, i);
            }
        }
    }
}
