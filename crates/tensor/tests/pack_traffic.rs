//! Packed-panel byte accounting for the bf16 storage mode.
//!
//! Deliberately a **single test in its own integration binary**: the
//! [`legw_tensor::pack_traffic`] counters are process-wide, so this is the
//! only code in the process issuing GEMMs and the before/after deltas are
//! exact — the bf16 mode must pack *exactly half* the bytes of the f32
//! mode for the same shapes (same panel layout, 2-byte vs 4-byte
//! elements).

use legw_tensor::{pack_traffic, with_bf16_gemm, Tensor};

#[test]
fn bf16_mode_packs_exactly_half_the_bytes() {
    // Shapes with edge tiles and k > KC so panel padding and multi-k-block
    // repacking are in the byte count on both sides.
    let shapes: [(usize, usize, usize); 3] = [(9, 300, 17), (64, 64, 64), (33, 257, 31)];
    let run = |bf16: bool| {
        for &(m, k, n) in &shapes {
            let a = Tensor::full(&[m, k], 0.5);
            let b = Tensor::full(&[k, n], 0.25);
            if bf16 {
                with_bf16_gemm(|| a.matmul(&b));
            } else {
                a.matmul(&b);
            }
        }
    };

    let t0 = pack_traffic();
    run(false);
    let t1 = pack_traffic();
    run(true);
    let t2 = pack_traffic();

    let f32_bytes = t1.f32_bytes - t0.f32_bytes;
    let bf16_bytes = t2.bf16_bytes - t1.bf16_bytes;
    assert!(f32_bytes > 0, "f32 GEMMs must pack panels");
    assert_eq!(t1.bf16_bytes, t0.bf16_bytes, "f32-mode GEMMs must not touch the bf16 counter");
    assert_eq!(t2.f32_bytes, t1.f32_bytes, "bf16-mode GEMMs must not touch the f32 counter");
    assert_eq!(
        2 * bf16_bytes,
        f32_bytes,
        "bf16 mode must pack exactly half the bytes ({bf16_bytes} vs {f32_bytes})"
    );
}
