//! Numerical edge-case tests: the places where f32 training stacks
//! classically go wrong.

use legw_tensor::Tensor;

#[test]
fn softmax_survives_uniform_and_one_hot_extremes() {
    // all-equal logits → exactly uniform
    let t = Tensor::full(&[1, 5], 3.25).softmax_rows();
    for &v in t.as_slice() {
        assert!((v - 0.2).abs() < 1e-7);
    }
    // one dominant logit → ~one-hot without NaN
    let t = Tensor::from_vec(vec![0.0, 0.0, 80.0], &[1, 3]).softmax_rows();
    assert!(t.all_finite());
    assert!(t.as_slice()[2] > 0.999);
}

#[test]
fn log_softmax_never_minus_infinity_for_finite_logits() {
    let t = Tensor::from_vec(vec![-60.0, 0.0, 60.0], &[1, 3]).log_softmax_rows();
    assert!(t.all_finite(), "{:?}", t.as_slice());
    // log-probs are ≤ 0
    assert!(t.as_slice().iter().all(|&v| v <= 0.0));
}

#[test]
fn sigmoid_saturation_produces_exact_bounds_not_nan() {
    let t = Tensor::from_vec(vec![-1e4, 1e4], &[2]).sigmoid();
    assert_eq!(t.as_slice()[0], 0.0);
    assert_eq!(t.as_slice()[1], 1.0);
}

#[test]
fn l2_norm_accumulates_in_f64() {
    // 1e6 entries of 1e-3: f32 accumulation of squares (1e-6 each) loses
    // precision; the f64 path must give √(1e6·1e-6) = 1 almost exactly
    let t = Tensor::full(&[1_000_000], 1e-3);
    assert!((t.l2_norm() - 1.0).abs() < 1e-4, "{}", t.l2_norm());
}

#[test]
fn sum_of_alternating_large_values_cancels() {
    let mut v = vec![0.0f32; 20_000];
    for (i, x) in v.iter_mut().enumerate() {
        *x = if i % 2 == 0 { 1e7 } else { -1e7 };
    }
    let t = Tensor::from_vec(v, &[20_000]);
    assert!(t.sum().abs() < 1.0, "pairwise-cancelling sum must stay near 0: {}", t.sum());
}

#[test]
fn matmul_with_large_magnitudes_stays_finite() {
    let a = Tensor::full(&[16, 16], 1e18);
    let b = Tensor::full(&[16, 16], 1e-18);
    let c = a.matmul(&b);
    assert!(c.all_finite());
    for &v in c.as_slice() {
        assert!((v - 16.0).abs() < 1e-3);
    }
}

#[test]
fn clamp_handles_nan_poisoning_detection() {
    let t = Tensor::from_vec(vec![1.0, f32::NAN], &[2]);
    assert!(!t.all_finite());
    // clamp does not "fix" NaN — divergence detection must still fire
    let c = t.clamp(-1.0, 1.0);
    assert!(!c.all_finite());
}

#[test]
fn argmax_ignores_nan_after_first_finite() {
    // total_cmp-free path: argmax uses simple > comparisons, so NaN never
    // wins once a finite value has been seen
    let t = Tensor::from_vec(vec![0.5, f32::NAN, 0.7], &[3]);
    assert_eq!(t.argmax(), 2);
}

#[test]
fn xavier_he_do_not_produce_degenerate_spreads() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(9);
    let w = Tensor::xavier_uniform(&mut rng, 64, 64);
    assert!(w.max() > 0.0 && w.min() < 0.0, "two-sided support");
    let h = Tensor::he_normal(&mut rng, &[64, 64], 64);
    assert!(h.l2_norm() > 0.0 && h.all_finite());
}
