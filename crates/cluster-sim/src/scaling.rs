//! Scaling analyses on top of the performance model: strong/weak scaling
//! efficiency and the largest batch worth using — the planning questions
//! LEGW's "batch headroom without accuracy loss" makes actionable.

use crate::{ClusterSpec, TrainingJob};

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Wall-clock seconds for the job.
    pub time_secs: f64,
    /// Parallel efficiency relative to one device (1.0 = perfect).
    pub efficiency: f64,
}

/// Strong scaling: fixed *global* batch, growing device count. Efficiency
/// decays as per-device batches shrink below the device's saturation point
/// and the all-reduce term grows — the regime the paper escapes by growing
/// the batch with LEGW.
pub fn strong_scaling(
    job: &TrainingJob,
    base: &ClusterSpec,
    global_batch: usize,
    device_counts: &[usize],
) -> Vec<ScalingPoint> {
    assert!(!device_counts.is_empty());
    let t1 = {
        let mut c = base.clone();
        c.devices = 1;
        job.time_to_train_secs(&c, global_batch)
    };
    device_counts
        .iter()
        .map(|&p| {
            let mut c = base.clone();
            c.devices = p;
            let t = job.time_to_train_secs(&c, global_batch);
            ScalingPoint { devices: p, time_secs: t, efficiency: t1 / (p as f64 * t) }
        })
        .collect()
}

/// Weak scaling: per-device batch held constant, so the global batch grows
/// with the device count (what LEGW enables without accuracy loss).
pub fn weak_scaling(
    job: &TrainingJob,
    base: &ClusterSpec,
    per_device_batch: usize,
    device_counts: &[usize],
) -> Vec<ScalingPoint> {
    assert!(!device_counts.is_empty());
    let t1 = {
        let mut c = base.clone();
        c.devices = 1;
        job.time_to_train_secs(&c, per_device_batch)
    };
    device_counts
        .iter()
        .map(|&p| {
            let mut c = base.clone();
            c.devices = p;
            let t = job.time_to_train_secs(&c, per_device_batch * p);
            // weak-scaling efficiency: ideal time is t1 / p (p× the batch
            // at fixed epochs means p× fewer iterations)
            ScalingPoint { devices: p, time_secs: t, efficiency: t1 / (p as f64 * t) }
        })
        .collect()
}

/// The largest batch whose marginal speedup still exceeds
/// `min_marginal_gain` per doubling (diminishing-returns knee). Returns
/// `(batch, time_secs)`.
pub fn knee_batch(
    job: &TrainingJob,
    cluster: &ClusterSpec,
    start_batch: usize,
    max_batch: usize,
    min_marginal_gain: f64,
) -> (usize, f64) {
    assert!(start_batch > 0 && max_batch >= start_batch);
    assert!(min_marginal_gain > 1.0, "gain threshold must exceed 1.0");
    let mut batch = start_batch;
    let mut time = job.time_to_train_secs(cluster, batch);
    while batch * 2 <= max_batch {
        let t2 = job.time_to_train_secs(cluster, batch * 2);
        if time / t2 < min_marginal_gain {
            break;
        }
        batch *= 2;
        time = t2;
    }
    (batch, time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSpec;

    fn cluster() -> ClusterSpec {
        ClusterSpec {
            device: DeviceSpec {
                name: "t".into(),
                peak_samples_per_sec: 1000.0,
                half_batch: 64.0,
                overhead_secs: 0.001,
            },
            devices: 1,
            bandwidth_bytes_per_sec: 1e9,
            latency_secs: 1e-5,
        }
    }

    fn job() -> TrainingJob {
        TrainingJob { n_samples: 1 << 18, model_bytes: 4e7, epochs: 4.0 }
    }

    #[test]
    fn strong_scaling_efficiency_declines() {
        let pts = strong_scaling(&job(), &cluster(), 4096, &[1, 4, 16, 64]);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-9, "{pts:?}");
            assert!(w[1].time_secs <= w[0].time_secs + 1e-9, "more devices can't be slower here");
        }
        assert!(pts.last().unwrap().efficiency < 0.95, "64-way strong scaling is not free");
    }

    #[test]
    fn weak_scaling_beats_strong_at_scale() {
        let j = job();
        let c = cluster();
        let strong = strong_scaling(&j, &c, 1024, &[64]);
        let weak = weak_scaling(&j, &c, 1024, &[64]);
        assert!(
            weak[0].efficiency > strong[0].efficiency,
            "weak {} vs strong {}",
            weak[0].efficiency,
            strong[0].efficiency
        );
    }

    #[test]
    fn weak_scaling_single_device_is_unit() {
        let pts = weak_scaling(&job(), &cluster(), 512, &[1]);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knee_batch_respects_bounds_and_threshold() {
        let j = job();
        let c = cluster();
        let (b, t) = knee_batch(&j, &c, 64, 65536, 1.05);
        assert!(b >= 64 && b <= 65536);
        assert!(b.is_power_of_two() || b == 64);
        assert!(t > 0.0);
        // a stricter threshold can only stop earlier
        let (b2, _) = knee_batch(&j, &c, 64, 65536, 1.5);
        assert!(b2 <= b);
    }
}
