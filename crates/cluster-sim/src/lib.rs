//! # legw-cluster-sim
//!
//! An analytic performance model of data-parallel DNN training, standing in
//! for the TPU-v2/v3 pods and V100s of the paper's §7 speedup results.
//!
//! The model captures the two effects the paper's wall-clock numbers hinge
//! on:
//!
//! 1. **Device efficiency grows with per-device batch.** Per-iteration
//!    compute time is `overhead + (b_local + b_half) / peak_rate`: an affine
//!    model whose `b_half` term expresses that small batches underutilise
//!    wide accelerators ("on modern architecture like TPUs, reducing the
//!    workload often leads to a lower efficiency", §2.2). Time-to-train at
//!    fixed epochs is therefore *decreasing* in batch size — which is why
//!    scaling the batch with LEGW (without accuracy loss) buys wall-clock
//!    speedups.
//! 2. **Gradient synchronisation.** Multi-device steps add a ring
//!    all-reduce: `2·(P−1)/P · bytes/bandwidth + 2·(P−1)·latency`.
//!
//! Presets are calibrated (see [`presets`]) so that the paper-scale
//! anecdotes — GNMT 2 h @ 256 → ~33 min @ 4 K on one TPU-v2; ImageNet
//! 16 min @ 8 K → ~7 min @ 32 K on a pod — fall out of the arithmetic.

pub mod presets;
pub mod scaling;

use serde::{Deserialize, Serialize};

/// A single accelerator's throughput model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Peak sustained throughput in samples/second at full utilisation.
    pub peak_samples_per_sec: f64,
    /// Per-device batch at which efficiency reaches 50% — the affine
    /// offset in the compute-time model.
    pub half_batch: f64,
    /// Fixed per-iteration overhead in seconds (kernel launch, host step).
    pub overhead_secs: f64,
}

impl DeviceSpec {
    /// Seconds to process one iteration with `b_local` samples on this
    /// device.
    pub fn iter_compute_secs(&self, b_local: f64) -> f64 {
        assert!(b_local > 0.0, "local batch must be positive");
        self.overhead_secs + (b_local + self.half_batch) / self.peak_samples_per_sec
    }

    /// Effective samples/second at a given local batch (≤ peak).
    pub fn throughput(&self, b_local: f64) -> f64 {
        b_local / self.iter_compute_secs(b_local)
    }
}

/// A homogeneous cluster with a ring all-reduce interconnect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-device model.
    pub device: DeviceSpec,
    /// Number of devices.
    pub devices: usize,
    /// Interconnect bandwidth per link, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-hop latency, seconds.
    pub latency_secs: f64,
}

impl ClusterSpec {
    /// A single-device "cluster" (no communication term).
    pub fn single(device: DeviceSpec) -> Self {
        Self { device, devices: 1, bandwidth_bytes_per_sec: f64::INFINITY, latency_secs: 0.0 }
    }

    /// Seconds for one ring all-reduce of `bytes` gradient bytes.
    pub fn allreduce_secs(&self, bytes: f64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let p = self.devices as f64;
        2.0 * (p - 1.0) / p * (bytes / self.bandwidth_bytes_per_sec)
            + 2.0 * (p - 1.0) * self.latency_secs
    }

    /// Seconds for one synchronous data-parallel iteration at `global_batch`.
    pub fn iter_secs(&self, global_batch: usize, model_bytes: f64) -> f64 {
        assert!(global_batch > 0);
        let b_local = (global_batch as f64 / self.devices as f64).max(1.0);
        self.device.iter_compute_secs(b_local) + self.allreduce_secs(model_bytes)
    }
}

/// A training job: dataset size, gradient payload, and epoch budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingJob {
    /// Samples per epoch.
    pub n_samples: usize,
    /// Gradient bytes exchanged per iteration (4 × parameter count).
    pub model_bytes: f64,
    /// Epochs to run (the paper compares methods at equal epochs).
    pub epochs: f64,
}

impl TrainingJob {
    /// Whole iterations for the full budget at a batch size (the number of
    /// optimizer steps a real run would take).
    pub fn iterations(&self, global_batch: usize) -> f64 {
        (self.n_samples as f64 / global_batch as f64).ceil() * self.epochs
    }

    /// Wall-clock seconds to run the budget on `cluster` at `global_batch`.
    ///
    /// Uses the fractional iteration count `samples/batch` so the model is
    /// strictly monotone in batch size (a trailing partial batch costs its
    /// fraction, not a full iteration).
    pub fn time_to_train_secs(&self, cluster: &ClusterSpec, global_batch: usize) -> f64 {
        let fractional_iters = self.n_samples as f64 / global_batch as f64 * self.epochs;
        fractional_iters * cluster.iter_secs(global_batch, self.model_bytes)
    }

    /// Speedup of `big_batch` over `small_batch` on the same cluster at the
    /// same epoch budget — the quantity Figure 4 reports per application.
    pub fn speedup_same_hardware(
        &self,
        cluster: &ClusterSpec,
        small_batch: usize,
        big_batch: usize,
    ) -> f64 {
        self.time_to_train_secs(cluster, small_batch)
            / self.time_to_train_secs(cluster, big_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dev() -> DeviceSpec {
        DeviceSpec {
            name: "test".into(),
            peak_samples_per_sec: 1000.0,
            half_batch: 64.0,
            overhead_secs: 0.001,
        }
    }

    #[test]
    fn throughput_monotone_in_batch_and_bounded_by_peak() {
        let d = dev();
        let mut prev = 0.0;
        for b in [1.0, 8.0, 64.0, 512.0, 4096.0] {
            let t = d.throughput(b);
            assert!(t > prev, "throughput must grow with batch");
            assert!(t < d.peak_samples_per_sec);
            prev = t;
        }
        // asymptotically approaches peak
        assert!(d.throughput(1e7) > 0.99 * d.peak_samples_per_sec);
    }

    #[test]
    fn half_batch_names_the_50_percent_point() {
        let mut d = dev();
        d.overhead_secs = 0.0;
        let eff = d.throughput(d.half_batch) / d.peak_samples_per_sec;
        assert!((eff - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_device_has_no_comm_cost() {
        let c = ClusterSpec::single(dev());
        assert_eq!(c.allreduce_secs(1e9), 0.0);
    }

    #[test]
    fn allreduce_scales_with_devices_and_bytes() {
        let mut c = ClusterSpec::single(dev());
        c.devices = 8;
        c.bandwidth_bytes_per_sec = 1e9;
        c.latency_secs = 1e-5;
        let t1 = c.allreduce_secs(1e8);
        c.devices = 64;
        let t2 = c.allreduce_secs(1e8);
        assert!(t2 > t1, "more hops, more latency");
        let t3 = c.allreduce_secs(2e8);
        assert!(t3 > t2, "more bytes, more time");
        // bandwidth term approaches 2×bytes/bw for large P
        let bw_term = 2.0 * (63.0 / 64.0) * 0.1;
        assert!(t2 > bw_term);
    }

    #[test]
    fn time_to_train_decreases_with_batch_at_fixed_epochs() {
        // the core economics of large-batch training on one device
        let c = ClusterSpec::single(dev());
        let job = TrainingJob { n_samples: 60_000, model_bytes: 4e6, epochs: 25.0 };
        let t_small = job.time_to_train_secs(&c, 128);
        let t_big = job.time_to_train_secs(&c, 8192);
        assert!(t_big < t_small, "{t_big} !< {t_small}");
        let speedup = job.speedup_same_hardware(&c, 128, 8192);
        assert!(speedup > 1.2 && speedup < 64.0, "speedup {speedup} plausible band");
    }

    #[test]
    fn speedup_saturates_not_linear() {
        let c = ClusterSpec::single(dev());
        let job = TrainingJob { n_samples: 60_000, model_bytes: 4e6, epochs: 25.0 };
        let s1 = job.speedup_same_hardware(&c, 128, 1024);
        let s2 = job.speedup_same_hardware(&c, 128, 8192);
        assert!(s2 > s1);
        // diminishing returns: ×64 batch gives far less than ×64 speedup
        assert!(s2 < 64.0 * 0.8);
    }

    #[test]
    fn iterations_accounting() {
        let job = TrainingJob { n_samples: 1000, model_bytes: 1.0, epochs: 3.0 };
        assert_eq!(job.iterations(100), 30.0);
        assert_eq!(job.iterations(128), 24.0); // ceil(7.8125)=8 per epoch
    }

    proptest! {
        #[test]
        fn prop_time_decreasing_in_batch_single_device(
            b1 in 1usize..4096,
            factor in 2usize..32,
        ) {
            let c = ClusterSpec::single(dev());
            let job = TrainingJob { n_samples: 1 << 20, model_bytes: 1e6, epochs: 2.0 };
            let t1 = job.time_to_train_secs(&c, b1);
            let t2 = job.time_to_train_secs(&c, b1 * factor);
            prop_assert!(t2 <= t1 * 1.001, "bigger batch cannot be slower: {t1} vs {t2}");
        }

        #[test]
        fn prop_allreduce_monotone(p in 2usize..512, bytes in 1.0f64..1e9) {
            let mut c = ClusterSpec::single(dev());
            c.devices = p;
            c.bandwidth_bytes_per_sec = 1e9;
            c.latency_secs = 1e-6;
            let t = c.allreduce_secs(bytes);
            let mut c2 = c.clone();
            c2.devices = p + 1;
            prop_assert!(c2.allreduce_secs(bytes) >= t);
        }
    }
}
