//! Calibrated device and job presets.
//!
//! The constants are fitted so that the paper-scale anecdotes drop out of
//! the model (§7): a GNMT epoch budget that takes ~2 h at batch 256 on one
//! TPU-v2 takes ~33 min at batch 4096 on the same device; an ImageNet run
//! on a TPU-v2 pod takes ~16 min at batch 8K and ~7 min at 32K; and the
//! four LSTM applications average ≈5.3× speedup between their baseline and
//! largest LEGW batch. A device's `half_batch` is expressed in the same
//! sample units as the job (images, LM sequences, sentence pairs), so the
//! per-application specs differ — heavier per-sample work saturates the
//! chip at smaller batch counts. Absolute times are illustrative; the
//! experiments consume ratios.

use crate::{ClusterSpec, DeviceSpec, TrainingJob};

/// One TPU-v2-like board running light per-sample work (MNIST-LSTM images,
/// GNMT sentence pairs).
pub fn tpu_v2() -> DeviceSpec {
    DeviceSpec {
        name: "tpu-v2".into(),
        peak_samples_per_sec: 2200.0,
        half_batch: 1100.0,
        overhead_secs: 0.004,
    }
}

/// A TPU-v2 board in LM-sequence units for the PTB-small model
/// (each sample is a 20-step BPTT window).
pub fn tpu_v2_ptb_small() -> DeviceSpec {
    DeviceSpec {
        name: "tpu-v2/ptb-small".into(),
        peak_samples_per_sec: 110.0,
        half_batch: 55.0,
        overhead_secs: 0.004,
    }
}

/// A TPU-v2 board in LM-sequence units for the much wider PTB-large model.
pub fn tpu_v2_ptb_large() -> DeviceSpec {
    DeviceSpec {
        name: "tpu-v2/ptb-large".into(),
        peak_samples_per_sec: 45.0,
        half_batch: 96.0,
        overhead_secs: 0.004,
    }
}

/// A TPU-v2 board in ImageNet images/second for ResNet-50 work.
pub fn tpu_v2_resnet() -> DeviceSpec {
    DeviceSpec {
        name: "tpu-v2/resnet50".into(),
        peak_samples_per_sec: 1400.0,
        half_batch: 60.0,
        overhead_secs: 0.002,
    }
}

/// A V100-like GPU (light per-sample work units).
pub fn v100() -> DeviceSpec {
    DeviceSpec {
        name: "v100".into(),
        peak_samples_per_sec: 1500.0,
        half_batch: 700.0,
        overhead_secs: 0.003,
    }
}

/// A 256-board TPU-v2 pod running ResNet-50.
pub fn tpu_v2_pod() -> ClusterSpec {
    ClusterSpec {
        device: tpu_v2_resnet(),
        devices: 256,
        bandwidth_bytes_per_sec: 60e9,
        latency_secs: 3e-6,
    }
}

/// A single TPU-v2 "cluster".
pub fn tpu_v2_single() -> ClusterSpec {
    ClusterSpec::single(tpu_v2())
}

/// A single V100 "cluster".
pub fn v100_single() -> ClusterSpec {
    ClusterSpec::single(v100())
}

/// The four LSTM applications of Figure 4 plus ImageNet: job description
/// and the single-device cluster it runs on, with the paper's sample
/// counts, Table 1 epoch budgets, and gradient payloads estimated from the
/// architectures.
pub fn paper_jobs() -> Vec<(&'static str, TrainingJob, ClusterSpec)> {
    vec![
        (
            "mnist-lstm",
            TrainingJob { n_samples: 60_000, model_bytes: 4.0 * 215_000.0, epochs: 25.0 },
            ClusterSpec::single(tpu_v2()),
        ),
        (
            "ptb-small",
            TrainingJob { n_samples: 930_000 / 20, model_bytes: 4.0 * 4_650_000.0, epochs: 13.0 },
            ClusterSpec::single(tpu_v2_ptb_small()),
        ),
        (
            "ptb-large",
            TrainingJob { n_samples: 930_000 / 35, model_bytes: 4.0 * 66_000_000.0, epochs: 55.0 },
            ClusterSpec::single(tpu_v2_ptb_large()),
        ),
        (
            "gnmt",
            TrainingJob { n_samples: 3_500_000, model_bytes: 4.0 * 160_000_000.0, epochs: 2.0 },
            ClusterSpec::single(tpu_v2()),
        ),
        (
            "imagenet-resnet50",
            TrainingJob { n_samples: 1_281_167, model_bytes: 4.0 * 25_600_000.0, epochs: 90.0 },
            tpu_v2_pod(),
        ),
    ]
}

/// The paper's batch-scaling endpoints per application (baseline → largest
/// batch LEGW sustains without accuracy loss).
pub fn paper_batch_ranges() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("mnist-lstm", 128, 8192),
        ("ptb-small", 20, 640),
        ("ptb-large", 20, 640),
        ("gnmt", 256, 4096),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str) -> (TrainingJob, ClusterSpec) {
        let (_, j, c) = paper_jobs().into_iter().find(|(n, _, _)| *n == name).unwrap();
        (j, c)
    }

    #[test]
    fn gnmt_anecdote_reproduced_in_shape() {
        // §7: >2h at batch 256 vs ~33 min at 4096 on one TPU-v2 → ~3.6×
        let (j, c) = job("gnmt");
        let speedup = j.speedup_same_hardware(&c, 256, 4096);
        assert!(
            (2.5..6.0).contains(&speedup),
            "GNMT speedup {speedup} should be in the ~3.6× band"
        );
    }

    #[test]
    fn four_lstm_apps_average_speedup_near_paper() {
        // headline: "LEGW achieves a 5.3× average speedup over the baselines
        // for 4 LSTM-based applications"
        let mut speedups = Vec::new();
        for (name, small, big) in paper_batch_ranges() {
            let (j, c) = job(name);
            speedups.push(j.speedup_same_hardware(&c, small, big));
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (4.0..7.0).contains(&avg),
            "average speedup {avg} (per-app {speedups:?}) should bracket the paper's 5.3×"
        );
    }

    #[test]
    fn imagenet_pod_7_vs_16_minutes_shape() {
        // §7: batch 32K ≈ 7 min vs batch 8K ≈ 16 min on a TPU-v2 pod → ~2.3×
        let (j, pod) = job("imagenet-resnet50");
        let t8k = j.time_to_train_secs(&pod, 8192) / 60.0;
        let t32k = j.time_to_train_secs(&pod, 32768) / 60.0;
        assert!(t32k < t8k);
        let ratio = t8k / t32k;
        assert!((1.6..3.0).contains(&ratio), "8K/32K ratio {ratio} should be ~2.3");
        // both in the tens-of-minutes regime, not hours
        assert!(t8k < 45.0 && t32k > 2.0, "t8k {t8k}min t32k {t32k}min");
    }

    #[test]
    fn presets_are_self_consistent() {
        for (name, job, cluster) in paper_jobs() {
            assert!(job.n_samples > 0, "{name}");
            assert!(job.model_bytes > 0.0);
            assert!(job.epochs > 0.0);
            assert!(cluster.devices >= 1);
        }
    }
}
