//! Tests for the warmup-shape extension and its interaction with LEGW
//! scaling.

use legw_schedules::{BaselineSchedule, Legw, WarmupShape};
use proptest::prelude::*;

#[test]
fn shapes_agree_at_endpoints() {
    for shape in [WarmupShape::Linear, WarmupShape::Exponential] {
        assert!(shape.factor(0.0).abs() < 1e-12, "{shape:?} must start at 0");
        assert!((shape.factor(1.0) - 1.0).abs() < 1e-12, "{shape:?} must end at 1");
    }
}

#[test]
fn exponential_is_slower_start_than_linear() {
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        assert!(
            WarmupShape::Exponential.factor(p) < WarmupShape::Linear.factor(p),
            "exponential ramp must sit below linear at p={p}"
        );
    }
}

#[test]
fn default_shape_is_linear() {
    let s = BaselineSchedule::constant(32, 0.2, 1.0, 10.0);
    assert_eq!(s.warmup_shape(), WarmupShape::Linear);
}

#[test]
fn legw_preserves_warmup_shape() {
    let s = BaselineSchedule::constant(32, 0.2, 1.0, 10.0)
        .with_warmup_shape(WarmupShape::Exponential);
    let big = Legw::scale_to(&s, 256);
    assert_eq!(big.warmup_shape(), WarmupShape::Exponential);
    // and the ramp is actually applied: mid-warmup LR below linear's value
    let mid = big.lr_at_epoch(big.warmup_epochs() / 2.0);
    let linear_mid = big.peak_lr() * 0.5;
    assert!(mid < linear_mid, "{mid} should be below linear {linear_mid}");
}

proptest! {
    #[test]
    fn ramp_monotone_for_both_shapes(steps in 2usize..40) {
        for shape in [WarmupShape::Linear, WarmupShape::Exponential] {
            let mut prev = -1.0;
            for i in 0..=steps {
                let f = shape.factor(i as f64 / steps as f64);
                prop_assert!(f >= prev, "{shape:?} decreased");
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }
    }

    #[test]
    fn schedule_with_exp_warmup_bounded_by_linear(
        lr in 0.01f64..2.0,
        warm in 0.1f64..3.0,
        frac in 0.0f64..1.0,
    ) {
        let lin = BaselineSchedule::constant(32, lr, warm, 10.0);
        let exp = lin.with_warmup_shape(WarmupShape::Exponential);
        let e = warm * frac;
        prop_assert!(exp.lr_at_epoch(e) <= lin.lr_at_epoch(e) + 1e-12);
    }
}
