//! The complete LR policy for one batch size.

use crate::decay::Decay;
use serde::{Deserialize, Serialize};

/// Shape of the warmup ramp from 0 to the peak LR.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmupShape {
    /// Linear ramp `e/w` — Goyal et al.'s gradual warmup, what LEGW uses.
    #[default]
    Linear,
    /// Slow-start exponential ramp `(e^{5·e/w} − 1)/(e⁵ − 1)` — spends more
    /// of the warmup window at very small LR (an ablation alternative).
    Exponential,
}

impl WarmupShape {
    /// Ramp factor in `[0, 1]` at warmup progress `p ∈ [0, 1]`.
    pub fn factor(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            WarmupShape::Linear => p,
            WarmupShape::Exponential => ((5.0 * p).exp() - 1.0) / (5f64.exp() - 1.0),
        }
    }
}

/// A fully specified learning-rate policy: batch size, peak LR, gradual
/// warmup measured in epochs, total budget, and post-warmup decay.
///
/// `lr(e) = peak · ramp(e) · decay(e)` where `ramp` rises from 0 to 1
/// across the warmup window with a [`WarmupShape`] (linear by default —
/// Goyal et al.'s *gradual warmup*) and `decay` is a [`Decay`] factor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineSchedule {
    batch_size: usize,
    peak_lr: f64,
    warmup_epochs: f64,
    total_epochs: f64,
    decay: Decay,
    #[serde(default)]
    warmup_shape: WarmupShape,
}

impl BaselineSchedule {
    /// Builds a schedule with an arbitrary decay.
    pub fn new(
        batch_size: usize,
        peak_lr: f64,
        warmup_epochs: f64,
        total_epochs: f64,
        decay: Decay,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(peak_lr > 0.0, "peak LR must be positive");
        assert!(warmup_epochs >= 0.0, "warmup cannot be negative");
        assert!(total_epochs > 0.0, "epoch budget must be positive");
        Self {
            batch_size,
            peak_lr,
            warmup_epochs,
            total_epochs,
            decay,
            warmup_shape: WarmupShape::Linear,
        }
    }

    /// Constant-LR schedule (the MNIST-LSTM configuration).
    pub fn constant(batch: usize, lr: f64, warmup_epochs: f64, total_epochs: f64) -> Self {
        Self::new(batch, lr, warmup_epochs, total_epochs, Decay::Constant)
    }

    /// Multi-step schedule (the ImageNet configuration of Figure 2.1).
    pub fn multistep(
        batch: usize,
        lr: f64,
        warmup_epochs: f64,
        total_epochs: f64,
        milestones: Vec<f64>,
        gamma: f64,
    ) -> Self {
        Self::new(batch, lr, warmup_epochs, total_epochs, Decay::MultiStep { milestones, gamma })
    }

    /// Poly-decay schedule (Figure 2.2 / PTB-large, power 2.0).
    pub fn poly(batch: usize, lr: f64, warmup_epochs: f64, total_epochs: f64, power: f64) -> Self {
        Self::new(batch, lr, warmup_epochs, total_epochs, Decay::Polynomial { power })
    }

    /// Exponential per-epoch schedule (PTB-small: 7 constant epochs, γ 0.4).
    pub fn exponential(
        batch: usize,
        lr: f64,
        warmup_epochs: f64,
        total_epochs: f64,
        constant_epochs: f64,
        gamma: f64,
    ) -> Self {
        Self::new(
            batch,
            lr,
            warmup_epochs,
            total_epochs,
            Decay::ExponentialPerEpoch { constant_epochs, gamma },
        )
    }

    /// Batch size this policy is tuned for.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Peak (post-warmup) learning rate.
    pub fn peak_lr(&self) -> f64 {
        self.peak_lr
    }

    /// Warmup length in epochs.
    pub fn warmup_epochs(&self) -> f64 {
        self.warmup_epochs
    }

    /// Total epoch budget.
    pub fn total_epochs(&self) -> f64 {
        self.total_epochs
    }

    /// The decay shape.
    pub fn decay(&self) -> &Decay {
        &self.decay
    }

    /// Returns a copy with a different peak LR (used by tuning baselines).
    pub fn with_peak_lr(&self, lr: f64) -> Self {
        let mut s = self.clone();
        s.peak_lr = lr;
        s
    }

    /// Returns a copy with a different warmup length.
    pub fn with_warmup(&self, warmup_epochs: f64) -> Self {
        let mut s = self.clone();
        s.warmup_epochs = warmup_epochs;
        s
    }

    /// Returns a copy with a different total budget (same-epochs comparisons
    /// and the "train longer" experiments of Figure 8).
    pub fn with_total_epochs(&self, total: f64) -> Self {
        let mut s = self.clone();
        s.total_epochs = total;
        s
    }

    /// Returns a copy with a different warmup ramp shape (ablations).
    pub fn with_warmup_shape(&self, shape: WarmupShape) -> Self {
        let mut s = self.clone();
        s.warmup_shape = shape;
        s
    }

    /// The warmup ramp shape.
    pub fn warmup_shape(&self) -> WarmupShape {
        self.warmup_shape
    }

    /// LR at continuous epoch position `e ∈ [0, total]`.
    pub fn lr_at_epoch(&self, e: f64) -> f64 {
        let ramp = if self.warmup_epochs > 0.0 && e < self.warmup_epochs {
            self.warmup_shape.factor(e / self.warmup_epochs)
        } else {
            1.0
        };
        self.peak_lr * ramp * self.decay.factor(e, self.total_epochs)
    }

    /// LR at iteration `iter` given `iters_per_epoch` (what the training
    /// loop calls each step).
    pub fn lr_at_iter(&self, iter: usize, iters_per_epoch: usize) -> f64 {
        assert!(iters_per_epoch > 0);
        self.lr_at_epoch(iter as f64 / iters_per_epoch as f64)
    }

    /// Samples the full LR curve at every iteration — used to regenerate
    /// Figure 2 and by the schedule property tests.
    pub fn curve(&self, iters_per_epoch: usize) -> Vec<f64> {
        let total_iters = (self.total_epochs * iters_per_epoch as f64).round() as usize;
        (0..total_iters).map(|i| self.lr_at_iter(i, iters_per_epoch)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn warmup_ramp_is_linear_and_reaches_peak() {
        let s = BaselineSchedule::constant(128, 0.1, 2.0, 25.0);
        assert_eq!(s.lr_at_epoch(0.0), 0.0);
        assert!((s.lr_at_epoch(1.0) - 0.05).abs() < 1e-12);
        assert!((s.lr_at_epoch(2.0) - 0.1).abs() < 1e-12);
        assert!((s.lr_at_epoch(10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = BaselineSchedule::constant(128, 0.1, 0.0, 25.0);
        assert!((s.lr_at_epoch(0.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn imagenet_multistep_shape_matches_figure_2_1() {
        // baseline batch 1K, LR 2^2.5, warmup 0.3125 epochs, drops at 30/60/80
        let s = BaselineSchedule::multistep(
            1024,
            2f64.powf(2.5),
            0.3125,
            90.0,
            vec![30.0, 60.0, 80.0],
            0.1,
        );
        assert!((s.lr_at_epoch(15.0) - 2f64.powf(2.5)).abs() < 1e-9);
        assert!((s.lr_at_epoch(45.0) - 0.1 * 2f64.powf(2.5)).abs() < 1e-9);
        assert!((s.lr_at_epoch(70.0) - 0.01 * 2f64.powf(2.5)).abs() < 1e-9);
        assert!((s.lr_at_epoch(85.0) - 0.001 * 2f64.powf(2.5)).abs() < 1e-9);
    }

    #[test]
    fn poly_decay_shape_matches_figure_2_2() {
        let s = BaselineSchedule::poly(1024, 2f64.powf(2.5), 0.3125, 90.0, 2.0);
        let mid = s.lr_at_epoch(45.0);
        assert!((mid - 2f64.powf(2.5) * 0.25).abs() < 1e-9);
        assert!(s.lr_at_epoch(90.0).abs() < 1e-12);
    }

    #[test]
    fn lr_at_iter_consistent_with_epoch() {
        let s = BaselineSchedule::constant(32, 0.4, 1.0, 10.0);
        let ipe = 50;
        assert!((s.lr_at_iter(25, ipe) - s.lr_at_epoch(0.5)).abs() < 1e-12);
        assert!((s.lr_at_iter(500, ipe) - s.lr_at_epoch(10.0)).abs() < 1e-12);
    }

    #[test]
    fn curve_length_and_peak() {
        let s = BaselineSchedule::constant(32, 0.2, 0.5, 4.0);
        let c = s.curve(100);
        assert_eq!(c.len(), 400);
        let max = c.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "peak LR must be positive")]
    fn rejects_zero_lr() {
        BaselineSchedule::constant(32, 0.0, 1.0, 5.0);
    }

    proptest! {
        #[test]
        fn prop_lr_bounded_by_peak(
            lr in 0.001f64..10.0,
            warm in 0.0f64..5.0,
            total in 5.0f64..100.0,
            e in 0.0f64..100.0,
        ) {
            let s = BaselineSchedule::poly(64, lr, warm, total, 2.0);
            let v = s.lr_at_epoch(e.min(total));
            prop_assert!(v >= 0.0 && v <= lr + 1e-12);
        }

        #[test]
        fn prop_ramp_monotone_during_warmup(
            lr in 0.01f64..5.0,
            warm in 0.1f64..5.0,
        ) {
            let s = BaselineSchedule::constant(64, lr, warm, 50.0);
            let mut prev = -1.0;
            for i in 0..=20 {
                let e = warm * i as f64 / 20.0;
                let v = s.lr_at_epoch(e);
                prop_assert!(v >= prev - 1e-12, "ramp must not decrease");
                prev = v;
            }
            prop_assert!((prev - lr).abs() < 1e-9, "ramp must end at peak");
        }

        #[test]
        fn prop_continuous_at_warmup_end(
            lr in 0.01f64..5.0,
            warm in 0.1f64..5.0,
            total in 20.0f64..90.0,
        ) {
            let s = BaselineSchedule::poly(64, lr, warm, total, 2.0);
            let before = s.lr_at_epoch(warm - 1e-9);
            let after = s.lr_at_epoch(warm + 1e-9);
            prop_assert!((before - after).abs() < 1e-6 * lr.max(1.0));
        }
    }
}
