//! # legw-schedules
//!
//! Learning-rate schedules, batch-size scaling rules, and the paper's
//! contribution: **LEGW — Linear-Epoch Gradual Warmup** (§3).
//!
//! A [`BaselineSchedule`] bundles everything that defines an LR policy for a
//! given batch size: the peak LR, the warmup length *in epochs*, the total
//! epoch budget, and the post-warmup [`Decay`]. [`Legw::scale_to`] then maps
//! a tuned baseline to any other batch size with **zero extra tuning**:
//!
//! * peak LR scales with `√k` (the Sqrt Scaling rule of Krizhevsky 2014,
//!   which keeps the gradient-estimator variance constant), and
//! * warmup length scales with `k` **epochs** (linear-epoch warmup),
//!
//! where `k = new_batch / base_batch`. Both directions work — §3.3's
//! tune-the-large-batch-then-scale-down included.
//!
//! The comparison baselines of Figure 5 (fixed LR, linear scaling, poly
//! decay, constant 5-epoch warmup) are expressible with [`ScalingRule`] and
//! [`WarmupRule`] via [`scale_with`].
//!
//! ```
//! use legw_schedules::{BaselineSchedule, Legw};
//! // the paper's GNMT baseline: batch 256, LR 2^-0.5/10^3, warmup 0.0145 ep
//! let base = BaselineSchedule::constant(256, 2f64.powf(-0.5) / 1e3, 0.0145, 2.0);
//! let b4k = Legw::scale_to(&base, 4096);
//! assert!((b4k.peak_lr() - 2f64.powf(1.5) / 1e3).abs() < 1e-12); // Table 2
//! assert!((b4k.warmup_epochs() - 0.232).abs() < 1e-9);           // Table 2
//! ```

mod batch_growth;
mod decay;
mod legw;
mod schedule;

pub use batch_growth::BatchGrowth;
pub use decay::Decay;
pub use legw::{scale_with, Legw, ScalingRule, WarmupRule};
pub use schedule::{BaselineSchedule, WarmupShape};
