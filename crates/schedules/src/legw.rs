//! LEGW — the paper's auto-tuning rule — plus the scaling-rule/warmup-rule
//! grid the comparison baselines of Figure 5 live on.

use crate::schedule::BaselineSchedule;
use serde::{Deserialize, Serialize};

/// How the peak LR responds to a batch-size change by factor `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingRule {
    /// `lr × √k` — keeps gradient-estimator variance constant
    /// (Krizhevsky 2014); the rule LEGW makes practical.
    Sqrt,
    /// `lr × k` — Goyal et al.'s linear scaling, the prior state of practice.
    Linear,
    /// No change (Figure 5.1's naive baseline).
    Identity,
}

impl ScalingRule {
    /// The LR multiplier for batch-size ratio `k`.
    pub fn lr_factor(&self, k: f64) -> f64 {
        match self {
            ScalingRule::Sqrt => k.sqrt(),
            ScalingRule::Linear => k,
            ScalingRule::Identity => 1.0,
        }
    }
}

/// How the warmup length responds to a batch-size change.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WarmupRule {
    /// Warmup epochs × k — **linear-epoch gradual warmup**, the paper's rule.
    LinearEpochs,
    /// A fixed number of warmup epochs regardless of batch size
    /// (Goyal et al. use 5).
    FixedEpochs(f64),
    /// Keep the baseline's warmup epochs unchanged.
    Unchanged,
    /// No warmup at all.
    None,
}

/// The LEGW auto-tuner (§3): scale a tuned baseline to any batch size.
pub struct Legw;

impl Legw {
    /// Scales `base` to `new_batch`: peak LR × √k, warmup epochs × k, where
    /// `k = new_batch / base.batch_size()`. Total epochs and decay shape are
    /// untouched — that is the whole point: *no re-tuning*.
    ///
    /// Works for scale-down too (k < 1), per §3.3: tune the large batch once,
    /// derive every smaller batch from it.
    pub fn scale_to(base: &BaselineSchedule, new_batch: usize) -> BaselineSchedule {
        scale_with(base, new_batch, ScalingRule::Sqrt, WarmupRule::LinearEpochs)
    }

    /// The batch-size ratio `k` between a schedule and a target batch.
    pub fn ratio(base: &BaselineSchedule, new_batch: usize) -> f64 {
        new_batch as f64 / base.batch_size() as f64
    }
}

/// Generic scaling used to express the paper's comparison baselines:
/// combine any [`ScalingRule`] with any [`WarmupRule`].
pub fn scale_with(
    base: &BaselineSchedule,
    new_batch: usize,
    lr_rule: ScalingRule,
    warmup_rule: WarmupRule,
) -> BaselineSchedule {
    assert!(new_batch > 0, "target batch must be positive");
    let k = new_batch as f64 / base.batch_size() as f64;
    let lr = base.peak_lr() * lr_rule.lr_factor(k);
    let warmup = match warmup_rule {
        WarmupRule::LinearEpochs => base.warmup_epochs() * k,
        WarmupRule::FixedEpochs(e) => e,
        WarmupRule::Unchanged => base.warmup_epochs(),
        WarmupRule::None => 0.0,
    };
    BaselineSchedule::new(new_batch, lr, warmup, base.total_epochs(), base.decay().clone())
        .with_warmup_shape(base.warmup_shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::Decay;
    use proptest::prelude::*;

    fn gnmt_base() -> BaselineSchedule {
        // Table 2 row 1: batch 256, LR 2^-0.5/10^3, warmup 0.0145 epochs
        BaselineSchedule::constant(256, 2f64.powf(-0.5) / 1e3, 0.0145, 2.0)
    }

    #[test]
    fn reproduces_table_2_lr_and_warmup_columns() {
        let base = gnmt_base();
        let rows: [(usize, f64, f64); 5] = [
            (256, -0.5, 0.0145),
            (512, 0.0, 0.0290),
            (1024, 0.5, 0.0580),
            (2048, 1.0, 0.1160),
            (4096, 1.5, 0.2320),
        ];
        for (batch, lr_exp, warm) in rows {
            let s = Legw::scale_to(&base, batch);
            assert!(
                (s.peak_lr() - 2f64.powf(lr_exp) / 1e3).abs() < 1e-12,
                "batch {batch}: lr {} ≠ 2^{lr_exp}/10^3",
                s.peak_lr()
            );
            assert!(
                (s.warmup_epochs() - warm).abs() < 1e-9,
                "batch {batch}: warmup {} ≠ {warm}",
                s.warmup_epochs()
            );
        }
    }

    #[test]
    fn reproduces_table_3_lr_and_warmup_columns() {
        // Table 3: baseline batch 1K → LR 2^2.5, warmup 10/2^5 epochs
        let base = BaselineSchedule::multistep(
            1024,
            2f64.powf(2.5),
            10.0 / 32.0,
            90.0,
            vec![30.0, 60.0, 80.0],
            0.1,
        );
        let rows: [(usize, f64, f64); 6] = [
            (1024, 2.5, 10.0 / 32.0),
            (2048, 3.0, 10.0 / 16.0),
            (4096, 3.5, 10.0 / 8.0),
            (8192, 4.0, 10.0 / 4.0),
            (16384, 4.5, 10.0 / 2.0),
            (32768, 5.0, 10.0),
        ];
        for (batch, lr_exp, warm) in rows {
            let s = Legw::scale_to(&base, batch);
            assert!((s.peak_lr() - 2f64.powf(lr_exp)).abs() < 1e-9, "batch {batch}");
            assert!((s.warmup_epochs() - warm).abs() < 1e-9, "batch {batch}");
        }
    }

    #[test]
    fn identity_at_k_equal_one() {
        let base = gnmt_base();
        let same = Legw::scale_to(&base, base.batch_size());
        assert_eq!(same, base);
    }

    #[test]
    fn scale_down_inverts_scale_up() {
        // §3.3: tune large, scale down
        let base = gnmt_base();
        let big = Legw::scale_to(&base, 4096);
        let back = Legw::scale_to(&big, 256);
        assert!((back.peak_lr() - base.peak_lr()).abs() < 1e-15);
        assert!((back.warmup_epochs() - base.warmup_epochs()).abs() < 1e-12);
    }

    #[test]
    fn figure5_baselines_expressible() {
        let base = BaselineSchedule::constant(128, 0.001, 0.0, 25.0);
        // 5.1: fixed η₀
        let s1 = scale_with(&base, 1024, ScalingRule::Identity, WarmupRule::None);
        assert_eq!(s1.peak_lr(), 0.001);
        // 5.2: linear scaling
        let s2 = scale_with(&base, 1024, ScalingRule::Linear, WarmupRule::None);
        assert!((s2.peak_lr() - 0.008).abs() < 1e-12);
        // 5.4: linear scaling + 5-epoch warmup
        let s4 = scale_with(&base, 1024, ScalingRule::Linear, WarmupRule::FixedEpochs(5.0));
        assert_eq!(s4.warmup_epochs(), 5.0);
    }

    #[test]
    fn decay_shape_is_preserved() {
        let base = BaselineSchedule::poly(20, 0.5, 0.1, 55.0, 2.0);
        let s = Legw::scale_to(&base, 640);
        assert_eq!(s.decay(), &Decay::Polynomial { power: 2.0 });
        assert_eq!(s.total_epochs(), 55.0);
    }

    proptest! {
        #[test]
        fn prop_sqrt_scaling_of_peak(
            base_batch_log in 4u32..10,
            k_log in 0u32..7,
            lr in 0.001f64..1.0,
        ) {
            let bb = 1usize << base_batch_log;
            let base = BaselineSchedule::constant(bb, lr, 0.3, 10.0);
            let nb = bb << k_log;
            let s = Legw::scale_to(&base, nb);
            let k = (1u64 << k_log) as f64;
            prop_assert!((s.peak_lr() / lr - k.sqrt()).abs() < 1e-9);
            prop_assert!((s.warmup_epochs() / 0.3 - k).abs() < 1e-9);
        }

        #[test]
        fn prop_warmup_iterations_constant_under_legw(
            base_batch_log in 4u32..9,
            k_log in 0u32..6,
        ) {
            // Linear-epoch warmup at batch k·b means the same *number of
            // warmup iterations* as the baseline: (w·k epochs)·(n/(k·b)) =
            // w·n/b. This is the "fixed the warmup iterations" remark under
            // Table 2.
            let bb = 1usize << base_batch_log;
            let n_samples = 1usize << 16;
            let base = BaselineSchedule::constant(bb, 0.1, 0.5, 10.0);
            let nb = bb << k_log;
            let s = Legw::scale_to(&base, nb);
            let base_warmup_iters = base.warmup_epochs() * (n_samples / bb) as f64;
            let new_warmup_iters = s.warmup_epochs() * (n_samples / nb) as f64;
            prop_assert!((base_warmup_iters - new_warmup_iters).abs() < 1e-6);
        }

        #[test]
        fn prop_scale_roundtrip(
            bb in 1usize..2048,
            nb in 1usize..2048,
        ) {
            let base = BaselineSchedule::constant(bb, 0.2, 0.7, 12.0);
            let there = Legw::scale_to(&base, nb);
            let back = Legw::scale_to(&there, bb);
            prop_assert!((back.peak_lr() - base.peak_lr()).abs() < 1e-12);
            prop_assert!((back.warmup_epochs() - base.warmup_epochs()).abs() < 1e-12);
        }
    }
}
