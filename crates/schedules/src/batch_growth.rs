//! Dynamic batch-size schedules — the "don't decay the learning rate,
//! increase the batch size" alternative (Smith, Kindermans & Le 2017),
//! which the paper cites as a related direction [27]. Implemented here as
//! an extension so the ablation harness can compare it against LR decay
//! under LEGW warmup.

use serde::{Deserialize, Serialize};

/// A stepwise-growing batch schedule: the batch is multiplied by `factor`
/// at each milestone epoch, clamped to `max_batch`.
///
/// Growing the batch by `f` has the same gradient-variance effect as
/// decaying the LR by `1/f` under the linear-scaling heuristic — the
/// equivalence the ablation experiment checks empirically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchGrowth {
    base_batch: usize,
    milestones: Vec<f64>,
    factor: usize,
    max_batch: usize,
}

impl BatchGrowth {
    /// Creates the schedule.
    ///
    /// # Panics
    /// If `base_batch == 0`, `factor < 2`, or milestones are not strictly
    /// increasing.
    pub fn new(base_batch: usize, milestones: Vec<f64>, factor: usize, max_batch: usize) -> Self {
        assert!(base_batch > 0, "base batch must be positive");
        assert!(factor >= 2, "growth factor must be ≥ 2");
        assert!(max_batch >= base_batch, "max batch below base");
        assert!(
            milestones.windows(2).all(|w| w[0] < w[1]),
            "milestones must be strictly increasing"
        );
        Self { base_batch, milestones, factor, max_batch }
    }

    /// A fixed-batch "schedule" (no milestones).
    pub fn constant(batch: usize) -> Self {
        Self::new(batch, Vec::new(), 2, batch)
    }

    /// Initial batch size.
    pub fn base_batch(&self) -> usize {
        self.base_batch
    }

    /// Largest batch the schedule can reach.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Batch size in effect at epoch position `e`.
    pub fn batch_at_epoch(&self, e: f64) -> usize {
        let crossed = self.milestones.iter().filter(|&&m| e >= m).count() as u32;
        self.base_batch
            .saturating_mul(self.factor.saturating_pow(crossed))
            .min(self.max_batch)
    }

    /// The LR-decay factor that is linear-scaling-equivalent to the batch
    /// growth in effect at epoch `e`: `base_batch / batch(e)`.
    pub fn equivalent_lr_factor(&self, e: f64) -> f64 {
        self.base_batch as f64 / self.batch_at_epoch(e) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grows_at_milestones_and_clamps() {
        let g = BatchGrowth::new(32, vec![2.0, 4.0, 6.0], 2, 128);
        assert_eq!(g.batch_at_epoch(0.0), 32);
        assert_eq!(g.batch_at_epoch(1.99), 32);
        assert_eq!(g.batch_at_epoch(2.0), 64);
        assert_eq!(g.batch_at_epoch(4.5), 128);
        assert_eq!(g.batch_at_epoch(6.5), 128, "clamped at max");
    }

    #[test]
    fn constant_never_moves() {
        let g = BatchGrowth::constant(20);
        for e in [0.0, 5.0, 100.0] {
            assert_eq!(g.batch_at_epoch(e), 20);
        }
    }

    #[test]
    fn equivalent_lr_factor_mirrors_growth() {
        let g = BatchGrowth::new(16, vec![1.0], 4, 64);
        assert_eq!(g.equivalent_lr_factor(0.5), 1.0);
        assert_eq!(g.equivalent_lr_factor(1.5), 0.25);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_milestones_rejected() {
        BatchGrowth::new(8, vec![3.0, 2.0], 2, 64);
    }

    proptest! {
        #[test]
        fn prop_monotone_and_bounded(
            base_log in 3u32..7,
            n_miles in 0usize..5,
            factor in 2usize..4,
            e in 0.0f64..30.0,
        ) {
            let base = 1usize << base_log;
            let milestones: Vec<f64> = (0..n_miles).map(|i| 3.0 * (i as f64 + 1.0)).collect();
            let g = BatchGrowth::new(base, milestones, factor, base * 64);
            let b = g.batch_at_epoch(e);
            prop_assert!(b >= base && b <= base * 64);
            // monotone in epoch
            prop_assert!(g.batch_at_epoch(e + 1.0) >= b);
            // equivalent factor in (0, 1]
            let f = g.equivalent_lr_factor(e);
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }
}
