//! Post-warmup decay shapes used in the paper's experiments.

use serde::{Deserialize, Serialize};

/// The decay applied to the peak learning rate as a function of training
/// progress (in epochs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Decay {
    /// No decay — the MNIST-LSTM experiments use a constant LR (§5.1.1).
    Constant,
    /// Multiply by `gamma` at each milestone epoch — the ImageNet multi-step
    /// scheme of Figure 2.1 (milestones {30, 60, 80}, γ = 0.1).
    MultiStep {
        /// Epochs at which the LR is multiplied by `gamma`.
        milestones: Vec<f64>,
        /// Multiplicative factor applied at each milestone.
        gamma: f64,
    },
    /// Constant for the first `constant_epochs`, then multiplied by `gamma`
    /// after each subsequent epoch — the PTB-small scheme (§5.1.2:
    /// 7 constant epochs, γ = 0.4).
    ExponentialPerEpoch {
        /// Number of initial epochs at full LR.
        constant_epochs: f64,
        /// Per-epoch multiplicative factor afterwards.
        gamma: f64,
    },
    /// `(1 − e/total)^power` — the poly decay of Figure 2.2 (power 2.0,
    /// also used for PTB-large with LARS).
    Polynomial {
        /// Exponent of the polynomial.
        power: f64,
    },
}

impl Decay {
    /// The decay factor (≤ 1) at epoch position `e` of a `total`-epoch run.
    pub fn factor(&self, e: f64, total: f64) -> f64 {
        debug_assert!(total > 0.0);
        match self {
            Decay::Constant => 1.0,
            Decay::MultiStep { milestones, gamma } => {
                let crossed = milestones.iter().filter(|&&m| e >= m).count() as i32;
                gamma.powi(crossed)
            }
            Decay::ExponentialPerEpoch { constant_epochs, gamma } => {
                if e < *constant_epochs {
                    1.0
                } else {
                    let periods = (e - constant_epochs).floor() + 1.0;
                    gamma.powf(periods)
                }
            }
            Decay::Polynomial { power } => {
                let p = (1.0 - (e / total).min(1.0)).max(0.0);
                p.powf(*power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_one_everywhere() {
        for e in [0.0, 5.0, 89.9] {
            assert_eq!(Decay::Constant.factor(e, 90.0), 1.0);
        }
    }

    #[test]
    fn multistep_matches_imagenet_schedule() {
        // Figure 2.1: ×0.1 at epochs 30, 60, 80
        let d = Decay::MultiStep { milestones: vec![30.0, 60.0, 80.0], gamma: 0.1 };
        assert_eq!(d.factor(10.0, 90.0), 1.0);
        assert!((d.factor(45.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((d.factor(70.0, 90.0) - 0.01).abs() < 1e-12);
        assert!((d.factor(85.0, 90.0) - 0.001).abs() < 1e-12);
        // boundary inclusive: at exactly 30 the drop has happened
        assert!((d.factor(30.0, 90.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn exponential_matches_ptb_small_schedule() {
        // §5.1.2: constant LR for 7 epochs then ×0.4 after each epoch
        let d = Decay::ExponentialPerEpoch { constant_epochs: 7.0, gamma: 0.4 };
        assert_eq!(d.factor(3.0, 13.0), 1.0);
        assert_eq!(d.factor(6.999, 13.0), 1.0);
        assert!((d.factor(7.5, 13.0) - 0.4).abs() < 1e-12);
        assert!((d.factor(8.5, 13.0) - 0.16).abs() < 1e-12);
        assert!((d.factor(9.0, 13.0) - 0.4f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn polynomial_power_two() {
        let d = Decay::Polynomial { power: 2.0 };
        assert_eq!(d.factor(0.0, 90.0), 1.0);
        assert!((d.factor(45.0, 90.0) - 0.25).abs() < 1e-12);
        assert_eq!(d.factor(90.0, 90.0), 0.0);
        // never negative past the end
        assert_eq!(d.factor(95.0, 90.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_factor_in_unit_interval(
            e in 0.0f64..200.0,
            total in 1.0f64..200.0,
            power in 0.5f64..4.0,
            gamma in 0.05f64..0.95,
        ) {
            for d in [
                Decay::Constant,
                Decay::MultiStep { milestones: vec![total * 0.3, total * 0.6], gamma },
                Decay::ExponentialPerEpoch { constant_epochs: total * 0.5, gamma },
                Decay::Polynomial { power },
            ] {
                let f = d.factor(e, total);
                prop_assert!((0.0..=1.0).contains(&f), "{d:?} gave {f}");
            }
        }

        #[test]
        fn prop_factor_monotone_nonincreasing(
            total in 10.0f64..100.0,
            gamma in 0.05f64..0.95,
        ) {
            for d in [
                Decay::MultiStep { milestones: vec![total * 0.33, total * 0.66], gamma },
                Decay::ExponentialPerEpoch { constant_epochs: 3.0, gamma },
                Decay::Polynomial { power: 2.0 },
            ] {
                let mut prev = f64::INFINITY;
                for i in 0..50 {
                    let e = total * i as f64 / 49.0;
                    let f = d.factor(e, total);
                    prop_assert!(f <= prev + 1e-12, "{d:?} increased at {e}");
                    prev = f;
                }
            }
        }
    }
}
