//! Dynamic-batcher behaviour under concurrent clients: answers match the
//! single-row serial path, concurrent load actually coalesces (mean
//! executed batch > 1), a lone request is released at its deadline, and
//! per-session recurrent state survives interleaved batched execution.

use legw_models::{Infer, MnistLstm, PtbLm, PtbLmConfig};
use legw_nn::ParamSet;
use legw_serve::{BatchConfig, InferEngine, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn mnist_engine() -> Arc<InferEngine<MnistLstm>> {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(23);
    let model = MnistLstm::new(&mut ps, &mut rng, 16, 16);
    Arc::new(InferEngine::new(model, ps))
}

fn mnist_req(i: usize) -> Vec<f32> {
    (0..784).map(|p| ((i * 31 + p * 7) % 29) as f32 / 29.0).collect()
}

#[test]
fn concurrent_clients_coalesce_and_match_serial() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let engine = mnist_engine();
    let server = Server::start(
        Arc::clone(&engine),
        BatchConfig { max_batch: CLIENTS, max_wait: Duration::from_millis(50) },
    );

    // Serial oracle: every request through the same engine, one row at a
    // time (identical math — the batched GEMM is row-independent, and the
    // per-shape plan cache keys B=1 and B=k separately).
    let expected: Vec<Vec<Vec<f32>>> = (0..CLIENTS)
        .map(|c| {
            (0..ROUNDS).map(|r| engine.run_one(mnist_req(c * ROUNDS + r), ()).0).collect()
        })
        .collect();

    // A barrier before every round releases all clients at once, so each
    // round's eight requests land in the queue together.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mut session = server.session();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut outs = Vec::with_capacity(ROUNDS);
                for r in 0..ROUNDS {
                    barrier.wait();
                    outs.push(session.query(mnist_req(c * ROUNDS + r)));
                }
                (c, outs)
            })
        })
        .collect();
    for h in handles {
        let (c, outs) = h.join().expect("client thread");
        for (r, out) in outs.iter().enumerate() {
            let want = &expected[c][r];
            assert_eq!(out.len(), want.len());
            for (a, b) in out.iter().zip(want) {
                assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "client {c} round {r}: batched {a} vs serial {b}"
                );
            }
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, (CLIENTS * ROUNDS) as u64);
    assert!(
        stats.mean_batch() > 1.0,
        "8 synchronised clients must coalesce, got mean batch {:.2} over {} batches",
        stats.mean_batch(),
        stats.batches
    );
    assert!(
        stats.max_queue_wait < Duration::from_secs(5),
        "queue wait blew past any plausible deadline: {:?}",
        stats.max_queue_wait
    );
}

#[test]
fn lone_request_released_at_deadline() {
    let engine = mnist_engine();
    let server = Server::start(
        Arc::clone(&engine),
        BatchConfig { max_batch: 64, max_wait: Duration::from_millis(20) },
    );
    let mut session = server.session();
    let start = Instant::now();
    let out = session.query(mnist_req(0));
    let elapsed = start.elapsed();
    assert_eq!(out.len(), 10);
    // Must not wait for a full batch that will never arrive. Generous upper
    // bound: deadline + capture cost + scheduling noise.
    assert!(elapsed < Duration::from_secs(5), "single request stalled: {elapsed:?}");
    drop(session);
    let stats = server.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.largest_batch, 1);
}

#[test]
fn ptb_sessions_carry_state_through_batched_execution() {
    const CLIENTS: usize = 4;
    const WINDOWS: usize = 3;
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(29);
    let cfg = PtbLmConfig { vocab: 30, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
    let model = PtbLm::new(&mut ps, &mut rng, cfg);
    let engine = Arc::new(InferEngine::new(model, ps));

    let req = |c: usize, w: usize| -> Vec<usize> {
        (0..4).map(|t| (c * 11 + w * 5 + t * 3) % 30).collect()
    };

    // Serial oracle: each client's windows chained through its own state,
    // one row at a time.
    let expected: Vec<Vec<Vec<f32>>> = (0..CLIENTS)
        .map(|c| {
            let mut state = engine.model().zero_state();
            (0..WINDOWS)
                .map(|w| {
                    let (out, next) = engine.run_one(req(c, w), state.clone());
                    state = next;
                    out
                })
                .collect()
        })
        .collect();

    let server = Server::start(
        Arc::clone(&engine),
        BatchConfig { max_batch: CLIENTS, max_wait: Duration::from_millis(50) },
    );
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mut session = server.session();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut outs = Vec::with_capacity(WINDOWS);
                for w in 0..WINDOWS {
                    barrier.wait();
                    outs.push(session.query(req(c, w)));
                }
                (c, outs)
            })
        })
        .collect();
    for h in handles {
        let (c, outs) = h.join().expect("client thread");
        for (w, out) in outs.iter().enumerate() {
            let want = &expected[c][w];
            for (a, b) in out.iter().zip(want) {
                assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "client {c} window {w}: batched {a} vs serial {b} — \
                     carried state was lost or crossed sessions"
                );
            }
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, (CLIENTS * WINDOWS) as u64);
    assert!(
        stats.mean_batch() > 1.0,
        "equal-length LM windows must coalesce, got mean batch {:.2}",
        stats.mean_batch()
    );
}
