//! Freeze → restore → batched tape-free forward must match the live-graph
//! forward of the original (never-serialised) model: bitwise for the
//! MNIST/PTB/ResNet logits, token-for-token for seq2seq greedy decoding.
//! Each engine runs its request set twice so the second pass exercises the
//! cached forward-only plan, not just the capture forward.

use legw_models::{Infer, MnistLstm, PtbLm, PtbLmConfig, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::ParamSet;
use legw_serve::{freeze, restore, FrozenModel, InferEngine, ModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_rows_bitwise(served: &[Vec<f32>], live: &[Vec<f32>], what: &str) {
    assert_eq!(served.len(), live.len());
    for (a, b) in served.iter().zip(live) {
        assert_eq!(a, b, "{what}: frozen-path output must match the live tape bitwise");
    }
}

#[test]
fn mnist_frozen_forward_matches_live_bitwise() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model = MnistLstm::new(&mut ps, &mut rng, 16, 16);

    let blob = freeze(&ModelConfig::MnistLstm { proj: 16, hidden: 16 }, &ps);
    let (frozen, ps2) = restore(&blob).expect("round-trip restore");
    let FrozenModel::MnistLstm(served) = frozen else { panic!("wrong family") };
    let engine = InferEngine::new(served, ps2);

    let reqs: Vec<Vec<f32>> =
        (0..5).map(|i| (0..784).map(|p| ((i * 7 + p) % 11) as f32 / 11.0).collect()).collect();
    let states = vec![(); reqs.len()];
    let live: Vec<Vec<f32>> = model
        .infer_tape(&ps, &model.assemble(&reqs, &states))
        .into_iter()
        .map(|(o, ())| o)
        .collect();
    for pass in 0..2 {
        let served: Vec<Vec<f32>> =
            engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
        assert_rows_bitwise(&served, &live, "mnist");
        assert_eq!(engine.cached_plans(), 1, "pass {pass} must use the one cached plan");
    }
}

#[test]
fn ptb_frozen_forward_matches_live_bitwise_with_state() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(13);
    let cfg = PtbLmConfig { vocab: 30, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
    let model = PtbLm::new(&mut ps, &mut rng, cfg);

    let blob = freeze(
        &ModelConfig::PtbLm { vocab: 30, embed: 12, hidden: 12, layers: 2 },
        &ps,
    );
    let (frozen, ps2) = restore(&blob).expect("round-trip restore");
    let FrozenModel::PtbLm(served) = frozen else { panic!("wrong family") };
    let engine = InferEngine::new(served, ps2);

    let reqs: Vec<Vec<usize>> = vec![vec![1, 5, 9, 2], vec![3, 3, 7, 8], vec![20, 4, 6, 1]];
    let zero = vec![model.zero_state(); reqs.len()];

    // Two chained windows: outputs of window 1 carry into window 2 on both
    // paths, so the comparison also proves state round-trips the server.
    let live1 = model.infer_tape(&ps, &model.assemble(&reqs, &zero));
    let served1 = engine.run(&reqs, &zero);
    assert_rows_bitwise(
        &served1.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
        &live1.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
        "ptb window 1",
    );

    let reqs2: Vec<Vec<usize>> = vec![vec![2, 9, 5, 1], vec![8, 7, 3, 3], vec![1, 6, 4, 20]];
    let live_states: Vec<_> = live1.into_iter().map(|(_, s)| s).collect();
    let served_states: Vec<_> = served1.into_iter().map(|(_, s)| s).collect();
    let live2 = model.infer_tape(&ps, &model.assemble(&reqs2, &live_states));
    let served2 = engine.run(&reqs2, &served_states);
    assert_rows_bitwise(
        &served2.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
        &live2.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
        "ptb window 2 (carried state)",
    );
    assert_eq!(engine.cached_plans(), 1, "equal-shape windows share one plan");
}

#[test]
fn seq2seq_frozen_decode_matches_live_tokens() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(17);
    let cfg = Seq2SeqConfig { vocab: 23, embed: 12, hidden: 12, attn: 8, max_decode: 8 };
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);

    let blob = freeze(
        &ModelConfig::Seq2Seq { vocab: 23, embed: 12, hidden: 12, attn: 8, max_decode: 8 },
        &ps,
    );
    let (frozen, ps2) = restore(&blob).expect("round-trip restore");
    let FrozenModel::Seq2Seq(served) = frozen else { panic!("wrong family") };
    let engine = InferEngine::new(served, ps2);

    // Ragged sources: the Infer impl PAD-coalesces like evaluation batches.
    let reqs: Vec<Vec<usize>> = vec![vec![3, 8, 12], vec![4, 5, 6, 7, 9], vec![10, 11]];
    let states = vec![(); reqs.len()];
    let live: Vec<Vec<usize>> = model
        .infer_tape(&ps, &model.assemble(&reqs, &states))
        .into_iter()
        .map(|(o, ())| o)
        .collect();
    for _ in 0..2 {
        let served: Vec<Vec<usize>> =
            engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
        assert_eq!(served, live, "frozen greedy decode must match token-for-token");
    }
    assert_eq!(engine.cached_plans(), 1);
}

#[test]
fn resnet_frozen_forward_matches_live_bitwise_including_bn_stats() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(19);
    let mut model = ResNet::new(&mut ps, &mut rng, 4, 6);

    // Move the BN running statistics off their init values so the artifact
    // must actually carry them for the eval forwards to agree.
    let images = legw_tensor::Tensor::from_vec(
        (0..8 * 3 * 32 * 32).map(|i| ((i % 23) as f32 - 11.0) / 11.0).collect(),
        &[8, 3, 32, 32],
    );
    let labels: Vec<usize> = (0..8).map(|i| i % 6).collect();
    for _ in 0..2 {
        let _ = model.forward_loss(&ps, &images, &labels);
    }

    let blob = freeze(
        &ModelConfig::ResNet {
            width: 4,
            n_classes: 6,
            bn_stats: model.bn_running_stats(),
        },
        &ps,
    );
    let (frozen, ps2) = restore(&blob).expect("round-trip restore");
    let FrozenModel::ResNet(served) = frozen else { panic!("wrong family") };
    assert_eq!(served.bn_running_stats(), model.bn_running_stats(), "stats must survive");
    let engine = InferEngine::new(served, ps2);

    let reqs: Vec<Vec<f32>> = (0..4)
        .map(|i| (0..3 * 32 * 32).map(|p| ((i * 13 + p) % 17) as f32 / 17.0).collect())
        .collect();
    let states = vec![(); reqs.len()];
    let live: Vec<Vec<f32>> = model
        .infer_tape(&ps, &model.assemble(&reqs, &states))
        .into_iter()
        .map(|(o, ())| o)
        .collect();
    for _ in 0..2 {
        let served: Vec<Vec<f32>> =
            engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
        assert_rows_bitwise(&served, &live, "resnet");
    }
    assert_eq!(engine.cached_plans(), 1);
}
