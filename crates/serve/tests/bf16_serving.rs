//! Serving-side contracts for PR 10's bf16 weight-storage mode and the
//! bounded (LRU) plan cache.
//!
//! The [`legw_tensor::pack_traffic`] counters are process-wide, so every
//! test here grabs `PROC_LOCK` — the byte-accounting assertions need the
//! whole process quiet while they measure.

use legw_models::MnistLstm;
use legw_nn::ParamSet;
use legw_serve::{InferEngine, DEFAULT_PLAN_CAPACITY};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

static PROC_LOCK: Mutex<()> = Mutex::new(());

fn mnist_engine() -> InferEngine<MnistLstm> {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(29);
    let model = MnistLstm::new(&mut ps, &mut rng, 16, 16);
    InferEngine::new(model, ps)
}

fn mnist_reqs(n: usize) -> Vec<Vec<f32>> {
    (0..n).map(|i| (0..784).map(|p| ((i * 7 + p) % 11) as f32 / 11.0).collect()).collect()
}

#[test]
fn bf16_serving_stays_close_to_f32_and_halves_packed_bytes() {
    let _g = PROC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f32_engine = mnist_engine();
    let bf16_engine = mnist_engine().with_bf16(true);
    assert!(!f32_engine.bf16() && bf16_engine.bf16());

    let reqs = mnist_reqs(5);
    let states = vec![(); reqs.len()];

    // Warm both caches so the measured passes are pure plan replays (the
    // first pass of a shape runs the capture tape *and* a replay, which
    // would double-count GEMM pack bytes).
    f32_engine.run(&reqs, &states);
    bf16_engine.run(&reqs, &states);

    let t0 = legw_tensor::pack_traffic();
    let out_f32: Vec<Vec<f32>> =
        f32_engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
    let t1 = legw_tensor::pack_traffic();
    let out_bf16: Vec<Vec<f32>> =
        bf16_engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
    let t2 = legw_tensor::pack_traffic();

    // Identical plans over identical shapes: the bf16 replay packs the
    // same panels at half the bytes (2-byte vs 4-byte elements), exactly.
    let f32_bytes = t1.f32_bytes - t0.f32_bytes;
    let bf16_bytes = t2.bf16_bytes - t1.bf16_bytes;
    assert!(f32_bytes > 0, "the f32 replay must pack GEMM panels");
    assert_eq!(t1.bf16_bytes, t0.bf16_bytes, "f32 engine must not pack bf16");
    assert_eq!(t2.f32_bytes, t1.f32_bytes, "bf16 engine must not pack f32");
    assert_eq!(
        2 * bf16_bytes,
        f32_bytes,
        "bf16 serving must pack exactly half the weight bytes ({bf16_bytes} vs {f32_bytes})"
    );

    // Accuracy: bf16 storage rounds each packed operand by ≤ 2⁻⁸
    // relative, so logits drift but stay close — and must actually drift,
    // otherwise the mode isn't wired in.
    let mut max_abs = 0.0f32;
    for (a, b) in out_f32.iter().zip(&out_bf16) {
        assert_eq!(a.len(), b.len());
        for (&x, &y) in a.iter().zip(b) {
            assert!(x.is_finite() && y.is_finite());
            max_abs = max_abs.max((x - y).abs());
        }
    }
    println!("bf16 serving max |logit delta| = {max_abs:.3e}");
    assert!(max_abs > 0.0, "bf16 mode must actually change the arithmetic");
    assert!(max_abs < 0.1, "bf16 logit drift too large: {max_abs}");
}

#[test]
fn plan_cache_eviction_and_recapture_are_bitwise() {
    let _g = PROC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = mnist_engine().with_plan_capacity(2);
    assert_eq!(engine.plan_capacity(), Some(2));

    // Three batch sizes = three infer keys; capacity 2 forces eviction.
    let run = |n: usize| -> Vec<Vec<f32>> {
        let reqs = mnist_reqs(n);
        let states = vec![(); n];
        engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect()
    };
    let first = run(1);
    run(2);
    assert_eq!(engine.cached_plans(), 2, "two shapes fit the capacity");
    run(3);
    assert_eq!(engine.cached_plans(), 2, "third shape must evict the LRU plan");

    // Batch size 1 was least recently used, so its plan is gone; this
    // re-captures — and the re-captured plan must replay bitwise like the
    // original (deterministic capture over frozen weights).
    let again = run(1);
    assert_eq!(engine.cached_plans(), 2);
    assert_eq!(first, again, "re-captured plan must reproduce the evicted plan bitwise");

    // A hit refreshes recency: touch batch 1, then add a fourth shape —
    // batch 3 (now oldest) goes, batch 1 survives and still replays
    // bitwise without growing the cache.
    let third = run(1);
    run(4);
    assert_eq!(engine.cached_plans(), 2);
    let fourth = run(1);
    assert_eq!(engine.cached_plans(), 2, "batch-1 hit must not trigger a re-capture");
    assert_eq!(third, fourth);
    assert_eq!(first, third);
}

#[test]
fn default_capacity_is_bounded() {
    let _g = PROC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = mnist_engine();
    assert_eq!(engine.plan_capacity(), Some(DEFAULT_PLAN_CAPACITY));
}

#[test]
fn bf16_serving_is_deterministic_across_replays() {
    let _g = PROC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // bf16 rounding is a pure function of the packed values, so two bf16
    // replays of one shape must agree bitwise — the drift vs f32 is
    // deterministic, not noise. (The per-GEMM contract gemm_bf16(A, B) ==
    // gemm_f32(round(A), round(B)) bitwise lives in the tensor crate's
    // dispatch suite; it cannot lift to a whole forward because
    // intermediate activations are not bf16-representable.)
    let engine = mnist_engine().with_bf16(true);
    let reqs = mnist_reqs(3);
    let states = vec![(); reqs.len()];
    let a: Vec<Vec<f32>> = engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
    let b: Vec<Vec<f32>> = engine.run(&reqs, &states).into_iter().map(|(o, ())| o).collect();
    for (x, y) in a.iter().zip(&b) {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "bf16 replays must be deterministic");
    }
}
