//! Dynamic batching: coalesce concurrent single-row queries into one
//! batched forward under a max-latency deadline.
//!
//! One worker thread owns the execution loop. Clients hold
//! [`ServerSession`] handles; each query ships the request *and the
//! session's carried recurrent state* to the worker, blocks on a reply
//! channel, and stores the carried state that comes back — so per-session
//! LSTM state survives arbitrary interleaving with other clients.
//!
//! Batch formation: the worker blocks for the first request, then drains
//! the queue until either `max_batch` requests are pending or `max_wait`
//! has elapsed since that first arrival (the deadline is anchored at the
//! *oldest* pending request, so a lone straggler is never parked longer
//! than `max_wait`). Pending requests are then grouped into executable
//! batches: same [`Infer::coalesce_key`], at most one request per session
//! per batch (a session's second query depends on the state its first one
//! returns), at most `max_batch` rows. Leftovers execute in follow-up
//! rounds before the worker returns to the queue.

use crate::session::InferEngine;
use legw_models::Infer;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batch-formation policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Hard cap on rows per executed batch.
    pub max_batch: usize,
    /// How long the oldest pending request may wait for company before its
    /// batch executes as-is.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_wait: Duration::from_millis(2) }
    }
}

/// Counters the batcher maintains; read with [`Server::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Batched forwards executed.
    pub batches: u64,
    /// Client requests answered.
    pub requests: u64,
    /// Largest executed batch.
    pub largest_batch: usize,
    /// Longest time any request spent queued before its batch executed.
    pub max_queue_wait: Duration,
}

impl ServerStats {
    /// Mean rows per executed batch — the coalescing factor. Above 1.0
    /// means the batcher is actually amortising forwards across clients.
    pub fn mean_batch(&self) -> f64 {
        self.requests as f64 / (self.batches as f64).max(1.0)
    }
}

struct Job<M: Infer> {
    req: M::Req,
    state: M::RowState,
    session: u64,
    enqueued: Instant,
    reply: mpsc::Sender<(M::Out, M::RowState)>,
}

/// A dynamic-batching inference server over a shared [`InferEngine`].
///
/// Dropping the server (and every [`ServerSession`]) stops the worker;
/// call [`Server::shutdown`] after dropping sessions to join it.
pub struct Server<M: Infer> {
    engine: Arc<InferEngine<M>>,
    tx: mpsc::Sender<Job<M>>,
    worker: Option<JoinHandle<()>>,
    stats: Arc<Mutex<ServerStats>>,
    next_session: AtomicU64,
}

impl<M> Server<M>
where
    M: Infer + Send + Sync + 'static,
    M::Req: Send,
    M::Out: Send,
    M::RowState: Send,
{
    /// Spawns the batch worker over `engine`.
    pub fn start(engine: Arc<InferEngine<M>>, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let (tx, rx) = mpsc::channel::<Job<M>>();
        let stats = Arc::new(Mutex::new(ServerStats::default()));
        let worker = {
            let engine = Arc::clone(&engine);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || batch_loop(rx, engine, cfg, stats))
        };
        Self { engine, tx, worker: Some(worker), stats, next_session: AtomicU64::new(0) }
    }

    /// Opens a client session (fresh recurrent state).
    pub fn session(&self) -> ServerSession<M> {
        let zero = self.engine.model().zero_state();
        ServerSession {
            tx: self.tx.clone(),
            state: zero.clone(),
            initial: zero,
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A snapshot of the batching counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.lock().unwrap().clone()
    }

    /// The shared engine (e.g. to inspect [`InferEngine::cached_plans`]).
    pub fn engine(&self) -> &Arc<InferEngine<M>> {
        &self.engine
    }

    /// Drops the server's queue handle, joins the worker, and returns the
    /// final counters. All sessions must be dropped first or this blocks
    /// until they are.
    pub fn shutdown(mut self) -> ServerStats {
        let worker = self.worker.take();
        let stats = Arc::clone(&self.stats);
        drop(self); // drops the server's queue sender
        if let Some(w) = worker {
            let _ = w.join();
        }
        let final_stats = stats.lock().unwrap().clone();
        final_stats
    }
}

impl<M: Infer> Drop for Server<M> {
    fn drop(&mut self) {
        // Detach rather than join: sessions may still hold queue handles,
        // and the worker exits on its own once the last one goes away.
        self.worker.take();
    }
}

/// A client handle: owns this session's carried state and a handle into
/// the server queue. `query` blocks until the batcher answers.
pub struct ServerSession<M: Infer> {
    tx: mpsc::Sender<Job<M>>,
    state: M::RowState,
    initial: M::RowState,
    id: u64,
}

impl<M: Infer> ServerSession<M> {
    /// Submits one request and blocks for the batched answer, carrying
    /// this session's recurrent state across the call.
    pub fn query(&mut self, req: M::Req) -> M::Out {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            req,
            state: self.state.clone(),
            session: self.id,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        self.tx.send(job).expect("inference server is gone");
        let (out, next) = reply_rx.recv().expect("inference server dropped the reply");
        self.state = next;
        out
    }

    /// Drops the carried state (start a new stream). Sessions cannot reach
    /// the model, so the zero state is a clone kept from creation time.
    pub fn reset(&mut self) {
        self.state = self.initial.clone();
    }
}

fn batch_loop<M: Infer>(
    rx: mpsc::Receiver<Job<M>>,
    engine: Arc<InferEngine<M>>,
    cfg: BatchConfig,
    stats: Arc<Mutex<ServerStats>>,
) {
    loop {
        // Block for work, then keep the batch open until the deadline.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // every sender dropped: shut down
        };
        let deadline = first.enqueued + cfg.max_wait;
        let mut pending = vec![first];
        while pending.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => pending.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Execute in rounds: greedily take the largest leading group that
        // shares the first pending job's coalesce key, with one request
        // per session per round.
        while !pending.is_empty() {
            let key = engine.model().coalesce_key(&pending[0].req);
            let mut round = Vec::new();
            let mut rest = Vec::new();
            let mut sessions = HashSet::new();
            for job in pending {
                if round.len() < cfg.max_batch
                    && engine.model().coalesce_key(&job.req) == key
                    && sessions.insert(job.session)
                {
                    round.push(job);
                } else {
                    rest.push(job);
                }
            }
            execute(&engine, round, &stats);
            pending = rest;
        }
    }
}

fn execute<M: Infer>(
    engine: &InferEngine<M>,
    round: Vec<Job<M>>,
    stats: &Arc<Mutex<ServerStats>>,
) {
    let started = Instant::now();
    let mut reqs = Vec::with_capacity(round.len());
    let mut states = Vec::with_capacity(round.len());
    let mut replies = Vec::with_capacity(round.len());
    let mut oldest = Duration::ZERO;
    for job in round {
        oldest = oldest.max(started.duration_since(job.enqueued));
        reqs.push(job.req);
        states.push(job.state);
        replies.push(job.reply);
    }
    let results = engine.run(&reqs, &states);
    debug_assert_eq!(results.len(), replies.len());
    for (reply, out) in replies.into_iter().zip(results) {
        // A client that gave up (dropped its session mid-query) is fine.
        let _ = reply.send(out);
    }
    let mut s = stats.lock().unwrap();
    s.batches += 1;
    s.requests += reqs.len() as u64;
    s.largest_batch = s.largest_batch.max(reqs.len());
    s.max_queue_wait = s.max_queue_wait.max(oldest);
}
