//! Tape-free inference execution: frozen parameters + cached forward-only
//! plans, with optional per-client recurrent state.

use legw::PlanCache;
use legw_models::{Infer, StepPlan};
use legw_nn::ParamSet;
use std::sync::Arc;

/// A frozen model plus a shape-keyed cache of forward-only plans.
///
/// The first batch of a given shape pays one tape build (the capture);
/// every later batch of that shape replays the plan with zero tape
/// recording, no gradient buffers, and (steady-state) zero pool
/// allocation. Tapes the plan interpreter cannot cover fall back to the
/// live-graph forward transparently.
///
/// `run` takes `&self`: the cache synchronises internally, so one engine
/// can be shared across threads behind an [`Arc`].
pub struct InferEngine<M: Infer> {
    model: M,
    ps: ParamSet,
    plans: PlanCache<StepPlan>,
}

impl<M: Infer> InferEngine<M> {
    /// Wraps a model and its (frozen) parameters. The parameters are
    /// owned and never mutated — freezing is what makes plan reuse and
    /// ResNet's folded-BN capture sound.
    pub fn new(model: M, ps: ParamSet) -> Self {
        Self { model, ps, plans: PlanCache::new(1) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of distinct batch shapes captured so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// One batched forward over parallel request/state rows (all rows must
    /// share a coalesce key). Returns one `(output, carried state)` per
    /// row, in request order.
    pub fn run(&self, reqs: &[M::Req], states: &[M::RowState]) -> Vec<(M::Out, M::RowState)> {
        assert_eq!(reqs.len(), states.len(), "one carried state per request");
        assert!(!reqs.is_empty(), "empty inference batch");
        let batch = self.model.assemble(reqs, states);
        let key = self.model.infer_key(&batch);
        self.plans
            .with_plan(
                0,
                key,
                || self.model.capture_infer(&self.ps, &batch),
                |plan| self.model.replay_infer(plan, &self.ps, &batch),
            )
            .unwrap_or_else(|| self.model.infer_tape(&self.ps, &batch))
    }

    /// Single-row convenience around [`InferEngine::run`].
    pub fn run_one(&self, req: M::Req, state: M::RowState) -> (M::Out, M::RowState) {
        self.run(std::slice::from_ref(&req), std::slice::from_ref(&state))
            .pop()
            .expect("one row in, one row out")
    }
}

/// A stateful client session over a shared engine: carries the model's
/// per-row recurrent state across queries (for the PTB LM, the `(h, c)`
/// stack of its private track), so consecutive requests continue one
/// stream exactly like training-time truncated BPTT carries state across
/// windows.
pub struct InferSession<M: Infer> {
    engine: Arc<InferEngine<M>>,
    state: M::RowState,
}

impl<M: Infer> InferSession<M> {
    /// A fresh session (zero recurrent state) on a shared engine.
    pub fn new(engine: Arc<InferEngine<M>>) -> Self {
        let state = engine.model().zero_state();
        Self { engine, state }
    }

    /// Runs one request, carrying this session's state forward.
    pub fn query(&mut self, req: M::Req) -> M::Out {
        let (out, next) = self.engine.run_one(req, self.state.clone());
        self.state = next;
        out
    }

    /// Drops the carried state (start a new stream).
    pub fn reset(&mut self) {
        self.state = self.engine.model().zero_state();
    }

    /// The current carried state.
    pub fn state(&self) -> &M::RowState {
        &self.state
    }
}
