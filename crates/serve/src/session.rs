//! Tape-free inference execution: frozen parameters + cached forward-only
//! plans, with optional per-client recurrent state.

use legw::PlanCache;
use legw_models::{Infer, StepPlan};
use legw_nn::ParamSet;
use std::sync::Arc;

/// Default bound on cached plans per engine: generous for honest traffic
/// (a server sees a handful of batch shapes), finite against adversarial
/// shape churn. Override with [`InferEngine::with_plan_capacity`].
pub const DEFAULT_PLAN_CAPACITY: usize = 32;

/// A frozen model plus a shape-keyed cache of forward-only plans.
///
/// The first batch of a given shape pays one tape build (the capture);
/// every later batch of that shape replays the plan with zero tape
/// recording, no gradient buffers, and (steady-state) zero pool
/// allocation. Tapes the plan interpreter cannot cover fall back to the
/// live-graph forward transparently.
///
/// The plan cache is bounded ([`DEFAULT_PLAN_CAPACITY`] shapes, LRU):
/// unlike training, a server's shape set is driven by client traffic, so
/// an unbounded cache would be a memory leak under shape churn. Eviction
/// never changes results — a re-capture of the same shape over the same
/// frozen weights is deterministic, so the replacement plan replays
/// bitwise-identically.
///
/// [`InferEngine::with_bf16`] opts the engine into bf16 weight storage
/// for its GEMMs: packed panels hold bf16 (half the bytes, f32
/// accumulation), trading ≤2⁻⁸ relative rounding per operand for memory
/// bandwidth. Off by default; never used in training.
///
/// `run` takes `&self`: the cache synchronises internally, so one engine
/// can be shared across threads behind an [`Arc`].
pub struct InferEngine<M: Infer> {
    model: M,
    ps: ParamSet,
    plans: PlanCache<StepPlan>,
    bf16: bool,
}

impl<M: Infer> InferEngine<M> {
    /// Wraps a model and its (frozen) parameters. The parameters are
    /// owned and never mutated — freezing is what makes plan reuse and
    /// ResNet's folded-BN capture sound.
    ///
    /// Also pins the process-wide kernel choice (first caller wins), so
    /// every capture and replay this engine issues runs the same SIMD
    /// variant.
    pub fn new(model: M, ps: ParamSet) -> Self {
        legw_tensor::kernels::init();
        Self { model, ps, plans: PlanCache::with_capacity(1, DEFAULT_PLAN_CAPACITY), bf16: false }
    }

    /// Replaces the plan cache with one bounded to `capacity` shapes
    /// (LRU-evicted; clamped to ≥ 1). Call before serving traffic —
    /// replacing the cache drops any plans already captured.
    pub fn with_plan_capacity(mut self, capacity: usize) -> Self {
        self.plans = PlanCache::with_capacity(1, capacity);
        self
    }

    /// Enables (or disables) bf16 weight storage for this engine's GEMM
    /// packing. A pure serving-side memory/bandwidth knob: activations
    /// and accumulation stay f32, only the packed panels are rounded to
    /// bf16 (round-to-nearest-even). Plans already captured stay valid —
    /// the mode affects GEMM packing at replay time, not plan structure.
    pub fn with_bf16(mut self, on: bool) -> Self {
        self.bf16 = on;
        self
    }

    /// True when this engine packs GEMM weights as bf16.
    pub fn bf16(&self) -> bool {
        self.bf16
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of distinct batch shapes captured so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Max cached plans (`None` = unbounded).
    pub fn plan_capacity(&self) -> Option<usize> {
        self.plans.capacity()
    }

    /// One batched forward over parallel request/state rows (all rows must
    /// share a coalesce key). Returns one `(output, carried state)` per
    /// row, in request order.
    pub fn run(&self, reqs: &[M::Req], states: &[M::RowState]) -> Vec<(M::Out, M::RowState)> {
        assert_eq!(reqs.len(), states.len(), "one carried state per request");
        assert!(!reqs.is_empty(), "empty inference batch");
        let go = || {
            let batch = self.model.assemble(reqs, states);
            let key = self.model.infer_key(&batch);
            self.plans
                .with_plan(
                    0,
                    key,
                    || self.model.capture_infer(&self.ps, &batch),
                    |plan| self.model.replay_infer(plan, &self.ps, &batch),
                )
                .unwrap_or_else(|| self.model.infer_tape(&self.ps, &batch))
        };
        // The bf16 flag is thread-local; scoping it here covers capture,
        // replay, and the tape fallback alike on whichever thread runs
        // this batch.
        if self.bf16 {
            legw_tensor::with_bf16_gemm(go)
        } else {
            go()
        }
    }

    /// Single-row convenience around [`InferEngine::run`].
    pub fn run_one(&self, req: M::Req, state: M::RowState) -> (M::Out, M::RowState) {
        self.run(std::slice::from_ref(&req), std::slice::from_ref(&state))
            .pop()
            .expect("one row in, one row out")
    }
}

/// A stateful client session over a shared engine: carries the model's
/// per-row recurrent state across queries (for the PTB LM, the `(h, c)`
/// stack of its private track), so consecutive requests continue one
/// stream exactly like training-time truncated BPTT carries state across
/// windows.
pub struct InferSession<M: Infer> {
    engine: Arc<InferEngine<M>>,
    state: M::RowState,
}

impl<M: Infer> InferSession<M> {
    /// A fresh session (zero recurrent state) on a shared engine.
    pub fn new(engine: Arc<InferEngine<M>>) -> Self {
        let state = engine.model().zero_state();
        Self { engine, state }
    }

    /// Runs one request, carrying this session's state forward.
    pub fn query(&mut self, req: M::Req) -> M::Out {
        let (out, next) = self.engine.run_one(req, self.state.clone());
        self.state = next;
        out
    }

    /// Drops the carried state (start a new stream).
    pub fn reset(&mut self) {
        self.state = self.engine.model().zero_state();
    }

    /// The current carried state.
    pub fn state(&self) -> &M::RowState {
        &self.state
    }
}
