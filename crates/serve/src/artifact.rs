//! Versioned freeze/restore of trained models.
//!
//! A frozen artifact is a checkpoint-v2 blob ([`legw_nn::checkpoint`])
//! whose optional config section carries a [`ModelConfig`]: the model
//! family tag, its constructor dimensions, and any non-parameter state the
//! eval forward needs (ResNet's BatchNorm running statistics — those live
//! outside the `ParamSet` and would otherwise be lost). [`restore`]
//! rebuilds the module tree from the config — parameter names and shapes
//! are a pure function of the constructor arguments — then reloads the
//! checkpointed values all-or-nothing under the v2 CRC.

use bytes::{Buf, BufMut, Bytes};
use legw_models::{MnistLstm, PtbLm, PtbLmConfig, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::checkpoint::{self, CheckpointError};
use legw_nn::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// What went wrong freezing or restoring an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The checkpoint layer rejected the blob (truncation, CRC, version,
    /// name/shape mismatch against the rebuilt model, …).
    Checkpoint(CheckpointError),
    /// The blob is a valid checkpoint but carries no model config — it was
    /// written by `checkpoint::save`, not by [`freeze`].
    MissingConfig,
    /// The config section is present but malformed.
    BadConfig(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::MissingConfig => write!(f, "artifact has no model-config section"),
            Self::BadConfig(what) => write!(f, "malformed model config: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<CheckpointError> for ArtifactError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// The model family and everything needed to rebuild it: constructor
/// dimensions plus non-parameter eval state.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelConfig {
    /// §5.1.1 MNIST LSTM: input projection and hidden widths.
    MnistLstm { proj: usize, hidden: usize },
    /// §5.1.2 PTB LM. Dropout keep is not stored: inference is always
    /// eval-mode, so restore builds with `keep = 1.0` (same parameters).
    PtbLm { vocab: usize, embed: usize, hidden: usize, layers: usize },
    /// §5.1.3 GNMT-style seq2seq.
    Seq2Seq { vocab: usize, embed: usize, hidden: usize, attn: usize, max_decode: usize },
    /// §6 ResNet, plus the BatchNorm running `(mean, var)` per layer in
    /// `ResNet::batch_norms` order — eval state the `ParamSet` misses.
    ResNet { width: usize, n_classes: usize, bn_stats: Vec<(Vec<f32>, Vec<f32>)> },
}

const TAG_MNIST: u8 = 0;
const TAG_PTB: u8 = 1;
const TAG_S2S: u8 = 2;
const TAG_RESNET: u8 = 3;

impl ModelConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::MnistLstm { proj, hidden } => {
                out.put_u8(TAG_MNIST);
                out.put_u32_le(*proj as u32);
                out.put_u32_le(*hidden as u32);
            }
            Self::PtbLm { vocab, embed, hidden, layers } => {
                out.put_u8(TAG_PTB);
                out.put_u32_le(*vocab as u32);
                out.put_u32_le(*embed as u32);
                out.put_u32_le(*hidden as u32);
                out.put_u32_le(*layers as u32);
            }
            Self::Seq2Seq { vocab, embed, hidden, attn, max_decode } => {
                out.put_u8(TAG_S2S);
                out.put_u32_le(*vocab as u32);
                out.put_u32_le(*embed as u32);
                out.put_u32_le(*hidden as u32);
                out.put_u32_le(*attn as u32);
                out.put_u32_le(*max_decode as u32);
            }
            Self::ResNet { width, n_classes, bn_stats } => {
                out.put_u8(TAG_RESNET);
                out.put_u32_le(*width as u32);
                out.put_u32_le(*n_classes as u32);
                out.put_u32_le(bn_stats.len() as u32);
                for (mean, var) in bn_stats {
                    debug_assert_eq!(mean.len(), var.len());
                    out.put_u32_le(mean.len() as u32);
                    for &m in mean {
                        out.put_f32_le(m);
                    }
                    for &v in var {
                        out.put_f32_le(v);
                    }
                }
            }
        }
    }

    fn decode(mut buf: &[u8]) -> Result<Self, ArtifactError> {
        let u32_field = |buf: &mut &[u8]| -> Result<usize, ArtifactError> {
            if buf.remaining() < 4 {
                return Err(ArtifactError::BadConfig("truncated field"));
            }
            Ok(buf.get_u32_le() as usize)
        };
        if buf.remaining() < 1 {
            return Err(ArtifactError::BadConfig("empty config"));
        }
        let cfg = match buf.get_u8() {
            TAG_MNIST => Self::MnistLstm {
                proj: u32_field(&mut buf)?,
                hidden: u32_field(&mut buf)?,
            },
            TAG_PTB => Self::PtbLm {
                vocab: u32_field(&mut buf)?,
                embed: u32_field(&mut buf)?,
                hidden: u32_field(&mut buf)?,
                layers: u32_field(&mut buf)?,
            },
            TAG_S2S => Self::Seq2Seq {
                vocab: u32_field(&mut buf)?,
                embed: u32_field(&mut buf)?,
                hidden: u32_field(&mut buf)?,
                attn: u32_field(&mut buf)?,
                max_decode: u32_field(&mut buf)?,
            },
            TAG_RESNET => {
                let width = u32_field(&mut buf)?;
                let n_classes = u32_field(&mut buf)?;
                let layers = u32_field(&mut buf)?;
                let mut bn_stats = Vec::with_capacity(layers);
                for _ in 0..layers {
                    let ch = u32_field(&mut buf)?;
                    if buf.remaining() < 8 * ch {
                        return Err(ArtifactError::BadConfig("truncated BN statistics"));
                    }
                    let read = |n: usize, buf: &mut &[u8]| -> Vec<f32> {
                        (0..n).map(|_| buf.get_f32_le()).collect()
                    };
                    let mean = read(ch, &mut buf);
                    let var = read(ch, &mut buf);
                    bn_stats.push((mean, var));
                }
                Self::ResNet { width, n_classes, bn_stats }
            }
            _ => return Err(ArtifactError::BadConfig("unknown model tag")),
        };
        if buf.remaining() > 0 {
            return Err(ArtifactError::BadConfig("trailing bytes"));
        }
        Ok(cfg)
    }
}

/// A model restored from a frozen artifact, ready for an
/// [`crate::InferEngine`] of the matching family.
pub enum FrozenModel {
    /// §5.1.1 MNIST classifier.
    MnistLstm(MnistLstm),
    /// §5.1.2 PTB language model.
    PtbLm(PtbLm),
    /// §5.1.3 translation model.
    Seq2Seq(Seq2Seq),
    /// §6 image classifier, BN running stats restored.
    ResNet(ResNet),
}

/// Snapshots a trained model into a self-describing artifact: checkpoint
/// v2 (dtype-tagged, length-prefixed, CRC-protected) with `cfg` encoded
/// into the config section. The caller provides the `ModelConfig` matching
/// the model the `ParamSet` was trained with — for ResNet that includes
/// the current running statistics ([`ResNet::bn_running_stats`]).
pub fn freeze(cfg: &ModelConfig, ps: &ParamSet) -> Bytes {
    let mut cfg_bytes = Vec::new();
    cfg.encode(&mut cfg_bytes);
    checkpoint::save_with_config(ps, Some(&cfg_bytes))
}

/// Rebuilds the model named by the artifact's config section and reloads
/// its parameters. Construction RNG is irrelevant (every initial value is
/// overwritten by the checkpoint), but parameter *names and shapes* are a
/// pure function of the config, so the checkpoint's name/shape validation
/// cross-checks the config against the payload before anything mutates.
pub fn restore(blob: &[u8]) -> Result<(FrozenModel, ParamSet), ArtifactError> {
    let cfg_bytes = checkpoint::read_config(blob)?.ok_or(ArtifactError::MissingConfig)?;
    let cfg = ModelConfig::decode(&cfg_bytes)?;
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = match cfg {
        ModelConfig::MnistLstm { proj, hidden } => {
            FrozenModel::MnistLstm(MnistLstm::new(&mut ps, &mut rng, proj, hidden))
        }
        ModelConfig::PtbLm { vocab, embed, hidden, layers } => {
            let cfg = PtbLmConfig { vocab, embed, hidden, layers, keep: 1.0 };
            FrozenModel::PtbLm(PtbLm::new(&mut ps, &mut rng, cfg))
        }
        ModelConfig::Seq2Seq { vocab, embed, hidden, attn, max_decode } => {
            let cfg = Seq2SeqConfig { vocab, embed, hidden, attn, max_decode };
            FrozenModel::Seq2Seq(Seq2Seq::new(&mut ps, &mut rng, cfg))
        }
        ModelConfig::ResNet { width, n_classes, bn_stats } => {
            let mut m = ResNet::new(&mut ps, &mut rng, width, n_classes);
            m.set_bn_running_stats(&bn_stats);
            FrozenModel::ResNet(m)
        }
    };
    checkpoint::load(&mut ps, blob)?;
    Ok((model, ps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips() {
        let cfgs = [
            ModelConfig::MnistLstm { proj: 64, hidden: 128 },
            ModelConfig::PtbLm { vocab: 30, embed: 48, hidden: 48, layers: 2 },
            ModelConfig::Seq2Seq { vocab: 23, embed: 12, hidden: 12, attn: 8, max_decode: 8 },
            ModelConfig::ResNet {
                width: 4,
                n_classes: 6,
                bn_stats: vec![(vec![0.5, -0.5], vec![1.0, 2.0]), (vec![0.0], vec![1.5])],
            },
        ];
        for cfg in &cfgs {
            let mut bytes = Vec::new();
            cfg.encode(&mut bytes);
            assert_eq!(&ModelConfig::decode(&bytes).unwrap(), cfg);
        }
    }

    #[test]
    fn decode_rejects_malformed_configs() {
        assert_eq!(ModelConfig::decode(&[]), Err(ArtifactError::BadConfig("empty config")));
        assert_eq!(
            ModelConfig::decode(&[9, 0, 0, 0, 0]),
            Err(ArtifactError::BadConfig("unknown model tag"))
        );
        let mut ok = Vec::new();
        ModelConfig::MnistLstm { proj: 1, hidden: 2 }.encode(&mut ok);
        assert_eq!(
            ModelConfig::decode(&ok[..ok.len() - 1]),
            Err(ArtifactError::BadConfig("truncated field"))
        );
        ok.push(0);
        assert_eq!(
            ModelConfig::decode(&ok),
            Err(ArtifactError::BadConfig("trailing bytes"))
        );
    }

    #[test]
    fn restore_rejects_configless_checkpoints() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _m = MnistLstm::new(&mut ps, &mut rng, 8, 8);
        let blob = checkpoint::save(&ps);
        match restore(&blob) {
            Err(ArtifactError::MissingConfig) => {}
            other => panic!("expected MissingConfig, got {:?}", other.err()),
        }
    }

    #[test]
    fn restore_rejects_config_payload_mismatch() {
        // Freeze MNIST params but lie about the family in the config: the
        // rebuilt PTB model's parameter names don't match the payload, and
        // the all-or-nothing load must reject before any mutation.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _m = MnistLstm::new(&mut ps, &mut rng, 8, 8);
        let wrong = ModelConfig::PtbLm { vocab: 10, embed: 8, hidden: 8, layers: 2 };
        let blob = freeze(&wrong, &ps);
        match restore(&blob) {
            Err(ArtifactError::Checkpoint(_)) => {}
            Err(other) => panic!("expected a checkpoint-layer rejection, got {other:?}"),
            Ok(_) => panic!("mismatched config/payload must not restore"),
        }
    }
}
