//! # legw-serve
//!
//! Frozen-model inference serving on top of the training stack:
//!
//! * [`artifact`] — **freeze/restore**: snapshot a trained `ParamSet` into a
//!   self-describing versioned artifact (checkpoint v2 payload + a
//!   model-config header naming the family and its dimensions, plus the
//!   non-parameter state eval needs, e.g. ResNet's BatchNorm running
//!   statistics). `restore` rebuilds the model and reloads the parameters
//!   all-or-nothing.
//! * [`session`] — [`InferEngine`]: frozen params + a shape-keyed cache of
//!   *forward-only* plans ([`legw_models::Infer`]), so steady-state serving
//!   runs tape-free with no gradient buffers and no backward schedule.
//!   [`InferSession`] adds per-client recurrent-state carryover (the PTB
//!   LM's `LmState` survives across requests).
//! * [`server`] — [`Server`]: a dynamic batcher that coalesces concurrent
//!   single-row queries into one batched forward under a max-latency
//!   deadline ([`BatchConfig`]), grouping compatible requests
//!   ([`legw_models::Infer::coalesce_key`]) and scattering outputs back to
//!   the waiting clients.
//!
//! The serving forward is the *same math* as the training-path forward:
//! equivalence (bitwise for MNIST/PTB/ResNet, token-for-token for seq2seq
//! greedy decoding) is enforced by this crate's integration tests.

pub mod artifact;
pub mod server;
pub mod session;

pub use artifact::{freeze, restore, ArtifactError, FrozenModel, ModelConfig};
pub use server::{BatchConfig, Server, ServerSession, ServerStats};
pub use session::{InferEngine, InferSession, DEFAULT_PLAN_CAPACITY};
