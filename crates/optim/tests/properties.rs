//! Property tests of solver invariants — algebraic identities every
//! implementation must satisfy regardless of problem.

use legw_nn::ParamSet;
use legw_optim::{build, Adam, Momentum, Nesterov, Optimizer, Sgd, SolverKind};
use legw_tensor::Tensor;
use proptest::prelude::*;

fn one_param(vals: &[f32]) -> (ParamSet, legw_nn::ParamId) {
    let mut ps = ParamSet::new();
    let id = ps.add("w", Tensor::from_vec(vals.to_vec(), &[vals.len()]));
    (ps, id)
}

proptest! {
    /// With zero gradients and zero weight decay, no solver moves.
    #[test]
    fn zero_gradient_means_no_motion(
        vals in proptest::collection::vec(-5f32..5.0, 1..8),
        steps in 1usize..5,
    ) {
        for kind in [
            SolverKind::Sgd, SolverKind::Momentum, SolverKind::Nesterov,
            SolverKind::Adagrad, SolverKind::RmsProp, SolverKind::Adam,
            SolverKind::Adadelta, SolverKind::Lars,
        ] {
            let (mut ps, id) = one_param(&vals);
            let mut opt = build(kind, 0.0);
            for _ in 0..steps {
                ps.zero_grad();
                opt.step(&mut ps, 0.3);
            }
            let moved: f32 = ps
                .value(id)
                .as_slice()
                .iter()
                .zip(&vals)
                .map(|(a, b)| (a - b).abs())
                .sum();
            prop_assert!(moved < 1e-6, "{kind:?} moved {moved} on zero grads");
        }
    }

    /// SGD's update is linear in the learning rate.
    #[test]
    fn sgd_update_linear_in_lr(
        v in -3f32..3.0,
        g in -2f32..2.0,
        lr in 0.01f32..1.0,
    ) {
        let run = |lr: f32| {
            let (mut ps, id) = one_param(&[v]);
            ps.get_mut(id).grad = Tensor::from_vec(vec![g], &[1]);
            Sgd::new(0.0).step(&mut ps, lr);
            v - ps.value(id).as_slice()[0]
        };
        let d1 = run(lr);
        let d2 = run(2.0 * lr);
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-5, "2x lr must give 2x step: {d1} {d2}");
    }

    /// Momentum and Nesterov with m = 0 reduce exactly to SGD over any
    /// gradient sequence.
    #[test]
    fn zero_momentum_reduces_to_sgd(
        grads in proptest::collection::vec(-2f32..2.0, 1..10),
        lr in 0.01f32..0.5,
    ) {
        let run = |mut opt: Box<dyn Optimizer>| {
            let (mut ps, id) = one_param(&[1.0]);
            for &g in &grads {
                ps.get_mut(id).grad = Tensor::from_vec(vec![g], &[1]);
                opt.step(&mut ps, lr);
                ps.zero_grad();
            }
            ps.value(id).as_slice()[0]
        };
        let sgd = run(Box::new(Sgd::new(0.0)));
        let mom = run(Box::new(Momentum::new(0.0, 0.0)));
        let nes = run(Box::new(Nesterov::new(0.0, 0.0)));
        prop_assert!((sgd - mom).abs() < 1e-5, "momentum(0) ≠ sgd: {sgd} vs {mom}");
        prop_assert!((sgd - nes).abs() < 1e-5, "nesterov(0) ≠ sgd: {sgd} vs {nes}");
    }

    /// Adam's per-step displacement is bounded by ~lr regardless of the
    /// gradient scale (the bounded-update property that makes it a safe
    /// default — and why the paper treats it as the auto-tuning baseline).
    #[test]
    fn adam_steps_bounded_by_lr(
        gscale in 0.001f32..1000.0,
        lr in 0.001f32..0.5,
        steps in 1usize..20,
    ) {
        let (mut ps, id) = one_param(&[0.0]);
        let mut opt = Adam::new(0.9, 0.999, 0.0);
        let mut prev = 0.0f32;
        for _ in 0..steps {
            ps.get_mut(id).grad = Tensor::from_vec(vec![gscale], &[1]);
            opt.step(&mut ps, lr);
            let now = ps.value(id).as_slice()[0];
            // bias correction makes the bound ~lr·(1/(1−β1))/√(1/(1−β2))
            prop_assert!((now - prev).abs() <= lr * 3.0 + 1e-6,
                "step {} exceeded bound {}", (now - prev).abs(), lr * 3.0);
            prev = now;
        }
    }

    /// Weight decay alone (zero gradient) shrinks weights monotonically for
    /// the decoupled-style solvers that apply it through the gradient.
    #[test]
    fn weight_decay_contracts(
        v in 0.5f32..4.0,
        wd in 0.01f32..0.3,
    ) {
        for kind in [SolverKind::Sgd, SolverKind::Momentum, SolverKind::Lars] {
            let (mut ps, id) = one_param(&[v]);
            let mut opt = build(kind, wd);
            let mut last = v;
            for _ in 0..10 {
                ps.zero_grad();
                opt.step(&mut ps, 0.1);
                let now = ps.value(id).as_slice()[0];
                prop_assert!(now <= last + 1e-6, "{kind:?} grew under pure decay");
                last = now;
            }
            prop_assert!(last < v, "{kind:?} never shrank");
        }
    }
}

#[test]
fn solver_names_are_distinct() {
    let names: Vec<&str> = [
        SolverKind::Sgd,
        SolverKind::Momentum,
        SolverKind::Nesterov,
        SolverKind::Adagrad,
        SolverKind::RmsProp,
        SolverKind::Adam,
        SolverKind::Adadelta,
        SolverKind::Lars,
    ]
    .iter()
    .map(|&k| {
        let b = build(k, 0.0);
        b.name()
    })
    .collect();
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(unique.len(), names.len(), "duplicate solver names: {names:?}");
}
