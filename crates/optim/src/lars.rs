//! LARS — Layer-wise Adaptive Rate Scaling (You, Gitman & Ginsburg 2017),
//! the solver the paper pairs with LEGW for ImageNet/ResNet-50 (§6) and for
//! PTB-large (§5.1.2).

use crate::Optimizer;
use legw_nn::ParamSet;
use legw_tensor::Tensor;

/// LARS with momentum:
///
/// ```text
/// local_lr = η · ‖w‖ / (‖g‖ + wd·‖w‖)       (per parameter tensor)
/// v ← m·v + local_lr · (g + wd·w)
/// w ← w − lr · v
/// ```
///
/// `η` is the trust coefficient (paper value 0.001). The layer-wise ratio
/// makes the update magnitude proportional to the weight magnitude, which is
/// what lets the batch size scale to 32K.
pub struct Lars {
    momentum: f32,
    weight_decay: f32,
    trust: f32,
    buf: Vec<Option<Tensor>>,
}

impl Lars {
    /// Creates the solver with trust coefficient `trust` (η).
    pub fn new(momentum: f32, weight_decay: f32, trust: f32) -> Self {
        Self { momentum, weight_decay, trust, buf: Vec::new() }
    }

    /// The trust ratio LARS would apply for a weight/gradient pair — exposed
    /// for tests and diagnostics.
    pub fn trust_ratio(&self, w_norm: f32, g_norm: f32) -> f32 {
        if w_norm == 0.0 || g_norm == 0.0 {
            1.0
        } else {
            self.trust * w_norm / (g_norm + self.weight_decay * w_norm)
        }
    }
}

impl Optimizer for Lars {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.buf.resize(n, None);
        for i in 0..n {
            let (g, local_lr) = {
                let (_, p) = ps.iter().nth(i).unwrap();
                let w_norm = p.value.l2_norm();
                let g_norm = p.grad.l2_norm();
                let mut g = p.grad.clone();
                if self.weight_decay != 0.0 {
                    g.axpy(self.weight_decay, &p.value);
                }
                (g, self.trust_ratio(w_norm, g_norm))
            };
            let v = self.buf[i].get_or_insert_with(|| g.zeros_like());
            v.scale_inplace(self.momentum);
            v.axpy(local_lr, &g);
            let update = v.clone();
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "lars"
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_ratio_formula() {
        let lars = Lars::new(0.9, 0.0005, 0.001);
        let r = lars.trust_ratio(10.0, 1.0);
        let expect = 0.001 * 10.0 / (1.0 + 0.0005 * 10.0);
        assert!((r - expect).abs() < 1e-9);
    }

    #[test]
    fn trust_ratio_degenerate_cases() {
        let lars = Lars::new(0.9, 0.0, 0.001);
        assert_eq!(lars.trust_ratio(0.0, 1.0), 1.0);
        assert_eq!(lars.trust_ratio(1.0, 0.0), 1.0);
    }

    #[test]
    fn update_magnitude_scales_with_weight_norm() {
        // two tensors with identical gradient direction but different weight
        // norms must receive updates proportional to their weight norms —
        // the defining LARS property.
        let mut ps = ParamSet::new();
        let small = ps.add("small", Tensor::from_vec(vec![0.1, 0.0], &[2]));
        let large = ps.add("large", Tensor::from_vec(vec![10.0, 0.0], &[2]));
        for id in [small, large] {
            ps.get_mut(id).grad = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        }
        let before_s = ps.value(small).clone();
        let before_l = ps.value(large).clone();
        Lars::new(0.0, 0.0, 0.001).step(&mut ps, 1.0);
        let ds = ps.value(small).sub(&before_s).l2_norm();
        let dl = ps.value(large).sub(&before_l).l2_norm();
        let ratio = dl / ds;
        assert!((ratio - 100.0).abs() < 1.0, "update ratio {ratio} should track 10.0/0.1");
    }

    #[test]
    fn gradient_rescale_invariance() {
        // scaling all gradients by c leaves the LARS update unchanged
        // (wd = 0): the trust ratio absorbs the scale.
        let build = |gscale: f32| {
            let mut ps = ParamSet::new();
            let id = ps.add("w", Tensor::from_vec(vec![3.0, -4.0], &[2]));
            ps.get_mut(id).grad = Tensor::from_vec(vec![1.0 * gscale, 2.0 * gscale], &[2]);
            let mut opt = Lars::new(0.0, 0.0, 0.01);
            opt.step(&mut ps, 0.5);
            ps.value(id).as_slice().to_vec()
        };
        let a = build(1.0);
        let b = build(1000.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn converges_on_quadratic_with_momentum() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_vec(vec![2.0, -1.0, 0.5], &[3]));
        let mut opt = Lars::new(0.9, 0.0001, 0.01);
        let start = ps.value(id).l2_norm();
        for _ in 0..300 {
            let g = ps.value(id).clone();
            ps.get_mut(id).grad = g;
            opt.step(&mut ps, 1.0);
            ps.zero_grad();
        }
        assert!(ps.value(id).l2_norm() < start * 0.5);
        assert!(ps.value(id).all_finite());
    }
}
