//! # legw-optim
//!
//! The optimizers evaluated in the LEGW paper. §5.2 compares seven solvers —
//! SGD, Momentum, Nesterov, Adagrad, RMSprop, Adam, Adadelta — and the CNN
//! experiments use LARS (You, Gitman & Ginsburg 2017) with layer-wise trust
//! ratios. All eight are implemented here against
//! [`legw_nn::ParamSet`], with per-parameter state allocated lazily.
//!
//! Every optimizer consumes the gradients accumulated in the store (it does
//! not zero them — call [`legw_nn::ParamSet::zero_grad`] after stepping) and
//! applies the learning rate passed to [`Optimizer::step`], which lets the
//! schedule crate drive LR without the optimizer knowing about warmup.
//!
//! ```
//! use legw_nn::ParamSet;
//! use legw_optim::{Optimizer, Sgd};
//! use legw_tensor::Tensor;
//!
//! let mut ps = ParamSet::new();
//! let w = ps.add("w", Tensor::from_vec(vec![1.0], &[1]));
//! ps.get_mut(w).grad = Tensor::from_vec(vec![0.5], &[1]);
//! let mut opt = Sgd::new(0.0);
//! opt.step(&mut ps, 0.1);
//! assert!((ps.value(w).as_slice()[0] - 0.95).abs() < 1e-6);
//! ```

mod adaptive;
mod lars;
mod sgd;

pub use adaptive::{Adadelta, Adagrad, Adam, RmsProp};
pub use lars::Lars;
pub use sgd::{Momentum, Nesterov, Sgd};

use legw_nn::ParamSet;

/// A first-order optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Applies one update using the gradients currently in the store and
    /// the supplied learning rate.
    fn step(&mut self, ps: &mut ParamSet, lr: f32);

    /// Solver name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Clears all internal state (momentum buffers, moment estimates).
    fn reset(&mut self);
}

/// The solver families of §5.2, for harness construction by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Heavy-ball momentum (the paper's LSTM baseline, momentum 0.9).
    Momentum,
    /// Nesterov accelerated gradient.
    Nesterov,
    /// Adagrad.
    Adagrad,
    /// RMSprop.
    RmsProp,
    /// Adam (the paper's adaptive baseline).
    Adam,
    /// Adadelta (the paper's second hyper-parameter-free baseline).
    Adadelta,
    /// Layer-wise adaptive rate scaling.
    Lars,
}

/// Builds a boxed optimizer with the defaults used throughout the paper's
/// comparisons (momentum 0.9, Adam β = (0.9, 0.999), Adadelta ρ = 0.95,
/// LARS trust coefficient 0.001).
pub fn build(kind: SolverKind, weight_decay: f32) -> Box<dyn Optimizer> {
    match kind {
        SolverKind::Sgd => Box::new(Sgd::new(weight_decay)),
        SolverKind::Momentum => Box::new(Momentum::new(0.9, weight_decay)),
        SolverKind::Nesterov => Box::new(Nesterov::new(0.9, weight_decay)),
        SolverKind::Adagrad => Box::new(Adagrad::new(weight_decay)),
        SolverKind::RmsProp => Box::new(RmsProp::new(0.9, weight_decay)),
        SolverKind::Adam => Box::new(Adam::new(0.9, 0.999, weight_decay)),
        SolverKind::Adadelta => Box::new(Adadelta::new(0.95, weight_decay)),
        SolverKind::Lars => Box::new(Lars::new(0.9, weight_decay, 0.001)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_tensor::Tensor;

    /// Every solver must descend a convex quadratic `f(w) = ½‖w‖²`.
    #[test]
    fn all_solvers_descend_quadratic() {
        for kind in [
            SolverKind::Sgd,
            SolverKind::Momentum,
            SolverKind::Nesterov,
            SolverKind::Adagrad,
            SolverKind::RmsProp,
            SolverKind::Adam,
            SolverKind::Adadelta,
            SolverKind::Lars,
        ] {
            let mut ps = ParamSet::new();
            let w = ps.add("w", Tensor::from_vec(vec![3.0, -2.0, 1.5], &[3]));
            let mut opt = build(kind, 0.0);
            let initial = ps.value(w).l2_norm();
            // LARS normalises updates by the tiny trust coefficient, so it
            // is used with large global LRs (exactly the paper's 2^2.5…2^5).
            let lr = if kind == SolverKind::Lars { 5.0 } else { 0.1 };
            for _ in 0..500 {
                let grad = ps.value(w).clone(); // ∇½‖w‖² = w
                ps.get_mut(w).grad = grad;
                opt.step(&mut ps, lr);
                ps.zero_grad();
            }
            let fin = ps.value(w).l2_norm();
            // Adadelta's self-scaled steps start near √ε and grow slowly —
            // genuine behaviour, so it only has to make clear progress.
            let factor = if kind == SolverKind::Adadelta { 0.9 } else { 0.5 };
            assert!(
                fin < initial * factor,
                "{} failed to descend: {initial} → {fin}",
                opt.name()
            );
            assert!(ps.value(w).all_finite(), "{} diverged", opt.name());
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = build(SolverKind::Momentum, 0.0);
        ps.get_mut(w).grad = Tensor::from_vec(vec![1.0], &[1]);
        opt.step(&mut ps, 0.1);
        let after_one = ps.value(w).as_slice()[0];
        opt.reset();
        // after reset, next step behaves like the first (no stale momentum)
        ps.get_mut(w).grad = Tensor::from_vec(vec![1.0], &[1]);
        opt.step(&mut ps, 0.1);
        let delta2 = after_one - ps.value(w).as_slice()[0];
        assert!((delta2 - 0.1).abs() < 1e-6, "step after reset must equal first step");
    }
}
