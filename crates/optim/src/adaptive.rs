//! Adaptive solvers: Adagrad, RMSprop, Adam, Adadelta.

use crate::Optimizer;
use legw_nn::ParamSet;
use legw_tensor::Tensor;

fn decayed_grad(ps: &ParamSet, idx: usize, weight_decay: f32) -> Tensor {
    let (_, p) = ps.iter().nth(idx).expect("param index in range");
    if weight_decay == 0.0 {
        p.grad.clone()
    } else {
        let mut g = p.grad.clone();
        g.axpy(weight_decay, &p.value);
        g
    }
}

/// Adagrad (Duchi et al. 2011): `acc += g²; w ← w − lr·g/(√acc + ε)`.
pub struct Adagrad {
    weight_decay: f32,
    eps: f32,
    acc: Vec<Option<Tensor>>,
}

impl Adagrad {
    /// Creates the solver.
    pub fn new(weight_decay: f32) -> Self {
        Self { weight_decay, eps: 1e-10, acc: Vec::new() }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.acc.resize(n, None);
        for i in 0..n {
            let g = decayed_grad(ps, i, self.weight_decay);
            let acc = self.acc[i].get_or_insert_with(|| g.zeros_like());
            acc.zip_inplace(&g, |a, gi| a + gi * gi);
            let eps = self.eps;
            let update = {
                let a = acc.as_slice();
                let gs = g.as_slice();
                Tensor::from_vec(
                    gs.iter().zip(a).map(|(&gi, &ai)| gi / (ai.sqrt() + eps)).collect(),
                    g.shape(),
                )
            };
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn reset(&mut self) {
        self.acc.clear();
    }
}

/// RMSprop (Hinton): `acc ← ρ·acc + (1−ρ)·g²; w ← w − lr·g/(√acc + ε)`.
pub struct RmsProp {
    rho: f32,
    weight_decay: f32,
    eps: f32,
    acc: Vec<Option<Tensor>>,
}

impl RmsProp {
    /// Creates the solver with decay `rho` (paper default 0.9).
    pub fn new(rho: f32, weight_decay: f32) -> Self {
        Self { rho, weight_decay, eps: 1e-8, acc: Vec::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.acc.resize(n, None);
        for i in 0..n {
            let g = decayed_grad(ps, i, self.weight_decay);
            let acc = self.acc[i].get_or_insert_with(|| g.zeros_like());
            let rho = self.rho;
            acc.zip_inplace(&g, |a, gi| rho * a + (1.0 - rho) * gi * gi);
            let eps = self.eps;
            let update = {
                let a = acc.as_slice();
                let gs = g.as_slice();
                Tensor::from_vec(
                    gs.iter().zip(a).map(|(&gi, &ai)| gi / (ai.sqrt() + eps)).collect(),
                    g.shape(),
                )
            };
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn reset(&mut self) {
        self.acc.clear();
    }
}

/// Adam (Kingma & Ba 2014) with bias correction.
pub struct Adam {
    beta1: f32,
    beta2: f32,
    weight_decay: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates the solver (paper default β₁ = 0.9, β₂ = 0.999).
    pub fn new(beta1: f32, beta2: f32, weight_decay: f32) -> Self {
        Self { beta1, beta2, weight_decay, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        self.t += 1;
        let n = ps.len();
        self.m.resize(n, None);
        self.v.resize(n, None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            let g = decayed_grad(ps, i, self.weight_decay);
            let (b1, b2) = (self.beta1, self.beta2);
            let m = self.m[i].get_or_insert_with(|| g.zeros_like());
            m.zip_inplace(&g, |mi, gi| b1 * mi + (1.0 - b1) * gi);
            let v = self.v[i].get_or_insert_with(|| g.zeros_like());
            v.zip_inplace(&g, |vi, gi| b2 * vi + (1.0 - b2) * gi * gi);
            let eps = self.eps;
            let update = {
                let ms = self.m[i].as_ref().unwrap().as_slice();
                let vs = self.v[i].as_ref().unwrap().as_slice();
                Tensor::from_vec(
                    ms.iter()
                        .zip(vs)
                        .map(|(&mi, &vi)| (mi / bc1) / ((vi / bc2).sqrt() + eps))
                        .collect(),
                    g.shape(),
                )
            };
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

/// Adadelta (Zeiler 2012): requires no learning rate; the `lr` passed to
/// [`Optimizer::step`] acts as an optional multiplier (1.0 = pure Adadelta),
/// exactly how the paper uses it as a "no hyper-parameter" baseline.
pub struct Adadelta {
    rho: f32,
    weight_decay: f32,
    eps: f32,
    acc_g: Vec<Option<Tensor>>,
    acc_dx: Vec<Option<Tensor>>,
}

impl Adadelta {
    /// Creates the solver (paper default ρ = 0.95).
    pub fn new(rho: f32, weight_decay: f32) -> Self {
        Self { rho, weight_decay, eps: 1e-6, acc_g: Vec::new(), acc_dx: Vec::new() }
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.acc_g.resize(n, None);
        self.acc_dx.resize(n, None);
        for i in 0..n {
            let g = decayed_grad(ps, i, self.weight_decay);
            let rho = self.rho;
            let eps = self.eps;
            let acc_g = self.acc_g[i].get_or_insert_with(|| g.zeros_like());
            acc_g.zip_inplace(&g, |a, gi| rho * a + (1.0 - rho) * gi * gi);
            self.acc_dx[i].get_or_insert_with(|| g.zeros_like());
            // Δx = −√(acc_dx + ε)/√(acc_g + ε) · g
            let delta = {
                let ag = self.acc_g[i].as_ref().unwrap().as_slice();
                let ad = self.acc_dx[i].as_ref().unwrap().as_slice();
                let gs = g.as_slice();
                Tensor::from_vec(
                    gs.iter()
                        .zip(ag.iter().zip(ad))
                        .map(|(&gi, (&agi, &adi))| {
                            -((adi + eps).sqrt() / (agi + eps).sqrt()) * gi
                        })
                        .collect(),
                    g.shape(),
                )
            };
            let acc_dx = self.acc_dx[i].as_mut().unwrap();
            acc_dx.zip_inplace(&delta, |a, d| rho * a + (1.0 - rho) * d * d);
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(lr, &delta); // delta already carries the minus sign
        }
    }

    fn name(&self) -> &'static str {
        "adadelta"
    }

    fn reset(&mut self) {
        self.acc_g.clear();
        self.acc_dx.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_param(v: f32, g: f32) -> (ParamSet, legw_nn::ParamId) {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_vec(vec![v], &[1]));
        ps.get_mut(id).grad = Tensor::from_vec(vec![g], &[1]);
        (ps, id)
    }

    #[test]
    fn adagrad_first_step_is_lr_sign_g() {
        let (mut ps, id) = one_param(0.0, 4.0);
        Adagrad::new(0.0).step(&mut ps, 0.1);
        // g/(sqrt(g²)+ε) ≈ 1 ⇒ step ≈ lr
        assert!((ps.value(id).as_slice()[0] + 0.1).abs() < 1e-5);
    }

    #[test]
    fn adagrad_steps_shrink_over_time() {
        let (mut ps, id) = one_param(0.0, 1.0);
        let mut opt = Adagrad::new(0.0);
        let mut prev = 0.0f32;
        let mut deltas = Vec::new();
        for _ in 0..5 {
            ps.get_mut(id).grad = Tensor::from_vec(vec![1.0], &[1]);
            opt.step(&mut ps, 0.1);
            let now = ps.value(id).as_slice()[0];
            deltas.push((prev - now).abs());
            prev = now;
        }
        for w in deltas.windows(2) {
            assert!(w[1] < w[0], "adagrad effective step must decay: {deltas:?}");
        }
    }

    #[test]
    fn adam_first_step_equals_lr() {
        // bias correction makes the very first Adam step ≈ lr·sign(g)
        let (mut ps, id) = one_param(0.0, 0.01);
        Adam::new(0.9, 0.999, 0.0).step(&mut ps, 0.1);
        assert!((ps.value(id).as_slice()[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    fn adam_scale_invariance_of_first_step() {
        // the first-step size is independent of gradient magnitude
        let (mut a, ia) = one_param(0.0, 1e-3);
        let (mut b, ib) = one_param(0.0, 1e3);
        Adam::new(0.9, 0.999, 0.0).step(&mut a, 0.1);
        Adam::new(0.9, 0.999, 0.0).step(&mut b, 0.1);
        let da = a.value(ia).as_slice()[0];
        let db = b.value(ib).as_slice()[0];
        assert!((da - db).abs() < 1e-4, "{da} vs {db}");
    }

    #[test]
    fn rmsprop_matches_hand_recurrence() {
        let (mut ps, id) = one_param(1.0, 2.0);
        let mut opt = RmsProp::new(0.9, 0.0);
        opt.step(&mut ps, 0.01);
        // acc = 0.1·4 = 0.4; w = 1 − 0.01·2/(√0.4+1e-8)
        let expect = 1.0 - 0.01 * 2.0 / 0.4f32.sqrt();
        assert!((ps.value(id).as_slice()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn adadelta_moves_without_lr_tuning() {
        let (mut ps, id) = one_param(5.0, 0.0);
        let mut opt = Adadelta::new(0.95, 0.0);
        for _ in 0..50 {
            let g = ps.value(id).clone();
            ps.get_mut(id).grad = g;
            opt.step(&mut ps, 1.0);
            ps.zero_grad();
        }
        let v = ps.value(id).as_slice()[0];
        assert!(v < 5.0 && v.is_finite(), "adadelta should make progress, got {v}");
    }

    #[test]
    fn weight_decay_pulls_toward_zero_for_all() {
        for mut opt in [
            Box::new(Adagrad::new(0.1)) as Box<dyn Optimizer>,
            Box::new(RmsProp::new(0.9, 0.1)),
            Box::new(Adam::new(0.9, 0.999, 0.1)),
        ] {
            let (mut ps, id) = one_param(1.0, 0.0);
            for _ in 0..20 {
                ps.get_mut(id).grad = Tensor::zeros(&[1]);
                opt.step(&mut ps, 0.05);
            }
            assert!(
                ps.value(id).as_slice()[0] < 1.0,
                "{} ignored weight decay",
                opt.name()
            );
        }
    }
}
