//! Non-adaptive solvers: SGD, heavy-ball Momentum, Nesterov.

use crate::Optimizer;
use legw_nn::ParamSet;
use legw_tensor::Tensor;

fn grad_with_decay(ps: &ParamSet, idx: usize, weight_decay: f32) -> Tensor {
    let (_, p) = ps.iter().nth(idx).expect("param index in range");
    if weight_decay == 0.0 {
        p.grad.clone()
    } else {
        let mut g = p.grad.clone();
        g.axpy(weight_decay, &p.value);
        g
    }
}

/// Plain stochastic gradient descent: `w ← w − lr·(g + wd·w)`.
pub struct Sgd {
    weight_decay: f32,
}

impl Sgd {
    /// Creates the solver with L2 weight decay `weight_decay`.
    pub fn new(weight_decay: f32) -> Self {
        Self { weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        for i in 0..n {
            let g = grad_with_decay(ps, i, self.weight_decay);
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &g);
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn reset(&mut self) {}
}

/// Heavy-ball momentum: `v ← m·v + g; w ← w − lr·v`
/// (the paper's LSTM baseline solver with m = 0.9).
pub struct Momentum {
    momentum: f32,
    weight_decay: f32,
    buf: Vec<Option<Tensor>>,
}

impl Momentum {
    /// Creates the solver.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Self { momentum, weight_decay, buf: Vec::new() }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.buf.resize(n, None);
        for i in 0..n {
            let g = grad_with_decay(ps, i, self.weight_decay);
            let v = self.buf[i].get_or_insert_with(|| g.zeros_like());
            v.scale_inplace(self.momentum);
            v.axpy(1.0, &g);
            let update = v.clone();
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// Nesterov accelerated gradient:
/// `v ← m·v + g; w ← w − lr·(g + m·v)`.
pub struct Nesterov {
    momentum: f32,
    weight_decay: f32,
    buf: Vec<Option<Tensor>>,
}

impl Nesterov {
    /// Creates the solver.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Self { momentum, weight_decay, buf: Vec::new() }
    }
}

impl Optimizer for Nesterov {
    fn step(&mut self, ps: &mut ParamSet, lr: f32) {
        let n = ps.len();
        self.buf.resize(n, None);
        for i in 0..n {
            let g = grad_with_decay(ps, i, self.weight_decay);
            let v = self.buf[i].get_or_insert_with(|| g.zeros_like());
            v.scale_inplace(self.momentum);
            v.axpy(1.0, &g);
            let mut update = g;
            update.axpy(self.momentum, v);
            let (_, p) = ps.iter_mut().nth(i).unwrap();
            p.value.axpy(-lr, &update);
        }
    }

    fn name(&self) -> &'static str {
        "nesterov"
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_param(v: f32, g: f32) -> (ParamSet, legw_nn::ParamId) {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_vec(vec![v], &[1]));
        ps.get_mut(id).grad = Tensor::from_vec(vec![g], &[1]);
        (ps, id)
    }

    #[test]
    fn sgd_single_step_algebra() {
        let (mut ps, id) = one_param(1.0, 2.0);
        Sgd::new(0.0).step(&mut ps, 0.1);
        assert!((ps.value(id).as_slice()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let (mut ps, id) = one_param(1.0, 0.0);
        Sgd::new(0.5).step(&mut ps, 0.1);
        // w ← 1 − 0.1·(0 + 0.5·1) = 0.95
        assert!((ps.value(id).as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let (mut ps, id) = one_param(0.0, 1.0);
        let mut opt = Momentum::new(0.9, 0.0);
        opt.step(&mut ps, 1.0); // v=1, w=-1
        ps.get_mut(id).grad = Tensor::from_vec(vec![1.0], &[1]);
        opt.step(&mut ps, 1.0); // v=1.9, w=-2.9
        assert!((ps.value(id).as_slice()[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn nesterov_first_step_larger_than_momentum() {
        let (mut ps_m, idm) = one_param(0.0, 1.0);
        let (mut ps_n, idn) = one_param(0.0, 1.0);
        Momentum::new(0.9, 0.0).step(&mut ps_m, 1.0);
        Nesterov::new(0.9, 0.0).step(&mut ps_n, 1.0);
        // momentum: -1; nesterov: -(1 + 0.9·1) = -1.9
        assert!((ps_m.value(idm).as_slice()[0] + 1.0).abs() < 1e-6);
        assert!((ps_n.value(idn).as_slice()[0] + 1.9).abs() < 1e-6);
    }

    #[test]
    fn momentum_matches_unrolled_recurrence() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_vec(vec![0.0], &[1]));
        let mut opt = Momentum::new(0.5, 0.0);
        let grads = [1.0f32, -0.5, 2.0, 0.0];
        let mut v = 0.0f32;
        let mut w = 0.0f32;
        for &g in &grads {
            ps.get_mut(id).grad = Tensor::from_vec(vec![g], &[1]);
            opt.step(&mut ps, 0.1);
            v = 0.5 * v + g;
            w -= 0.1 * v;
            assert!((ps.value(id).as_slice()[0] - w).abs() < 1e-6);
        }
    }
}
