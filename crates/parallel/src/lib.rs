//! # legw-parallel
//!
//! A small, dependency-light data-parallelism substrate used by the rest of
//! the LEGW reproduction stack. It provides:
//!
//! * [`ThreadPool`] — a persistent pool of worker threads fed through a
//!   crossbeam channel. Workers stay alive for the lifetime of the pool, so
//!   hot training loops pay no thread-spawn cost per kernel launch.
//! * [`ThreadPool::run`] — a blocking fork/join primitive: run a closure for
//!   every task index `0..n` across the pool and return once all tasks have
//!   finished. Because the call blocks until completion, the closure may
//!   borrow from the caller's stack (the same soundness argument as rayon's
//!   `scope`).
//! * [`parallel_for`], [`par_chunks_mut`], [`par_map_reduce`],
//!   [`par_tiles_2d`] — the data-parallel helpers the tensor kernels are
//!   built on (the last one is the 2-D grid launch used by blocked GEMM).
//! * [`global`] — a process-wide lazily initialised pool (size taken from
//!   [`set_default_threads`] if called before first use, otherwise the
//!   machine's available parallelism). This crate reads no environment
//!   variables: `LEGW_THREADS` is parsed exactly once, in
//!   `legw::exec::ExecConfig::from_env`, which installs the budget here.
//! * [`current`] / [`with_pool`] — thread-local pool scoping so nested
//!   parallelism (e.g. data-parallel shard workers in the training
//!   executor) can give each outer worker its own small intra-op pool
//!   instead of oversubscribing the global one.
//!
//! The design follows the classic channel + latch structure: jobs are
//! `Box<dyn FnOnce() + Send>` values pushed into an unbounded channel;
//! completion is tracked with a [`CountLatch`] built from an atomic counter
//! and a `parking_lot` mutex/condvar pair. Panics inside tasks are caught and
//! re-raised on the submitting thread so a failed kernel cannot deadlock the
//! latch.
//!
//! ```
//! let pool = legw_parallel::ThreadPool::new(4);
//! let mut out = vec![0usize; 1000];
//! legw_parallel::par_chunks_mut(&pool, &mut out, 64, |start, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (start + i) * 2;
//!     }
//! });
//! assert_eq!(out[123], 246);
//! ```

mod latch;
mod pool;
mod iter;
mod scope;

pub use latch::CountLatch;
pub use pool::ThreadPool;
pub use iter::{par_chunks_mut, par_map, par_map_reduce, par_tiles_2d, parallel_for, split_evenly};
pub use scope::{current, with_pool, PoolHandle};

use std::sync::OnceLock;

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Returns the process-wide thread pool, creating it on first use.
///
/// The pool size is the value installed by [`set_default_threads`] (if any),
/// otherwise [`std::thread::available_parallelism`], otherwise 4.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Installs the worker-thread budget [`global`] (and [`default_threads`])
/// will report. First caller wins; calls after the global pool has been
/// created (or after an earlier install) have no effect. Returns whether
/// this call's value took.
///
/// This is how the executor's `ExecConfig` — the single place `LEGW_THREADS`
/// is parsed — propagates the configured budget down to the kernel pool
/// without this crate touching the environment.
pub fn set_default_threads(threads: usize) -> bool {
    DEFAULT_THREADS.set(threads.max(1)).is_ok()
}

/// The thread count [`global`] will use (before the pool is created):
/// the [`set_default_threads`] value, else the machine's parallelism.
pub fn default_threads() -> usize {
    if let Some(&n) = DEFAULT_THREADS.get() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_usable() {
        let pool = global();
        assert!(pool.threads() >= 1);
        let mut v = vec![0u64; 257];
        par_chunks_mut(pool, &mut v, 16, |start, c| {
            for (i, x) in c.iter_mut().enumerate() {
                *x = (start + i) as u64;
            }
        });
        assert_eq!(v[256], 256);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
