//! Thread-local pool scoping for nested parallelism.
//!
//! The tensor kernels launch their intra-op work on whatever
//! [`current`] returns. By default that is the process-wide [`global`]
//! pool, but a caller that already *is* a parallel worker — e.g. a
//! data-parallel shard task in the training executor — can install a
//! smaller dedicated pool with [`with_pool`] for the duration of a
//! closure. This splits an explicit thread budget (`P` shard workers ×
//! `T/P` intra-op threads each) instead of letting every shard fan out
//! onto the same `T`-thread pool, which would oversubscribe the machine
//! and, worse, let one shard's fork/join latch wait starve another
//! shard's queued kernel jobs.
//!
//! The override is per-thread and restored (even on panic) when the
//! closure returns, so scoping one shard never affects kernels launched
//! from the main thread or from other shards.

use crate::pool::ThreadPool;
use crate::global;
use std::cell::RefCell;
use std::ops::Deref;
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadPool>>> = const { RefCell::new(None) };
}

/// The pool kernels on this thread should use: either the process-wide
/// global pool or a scoped override installed by [`with_pool`].
///
/// Derefs to [`ThreadPool`], so call sites can stay pool-agnostic:
/// `par_chunks_mut(&current(), ...)`.
pub enum PoolHandle {
    /// The process-wide pool from [`global`].
    Global(&'static ThreadPool),
    /// A pool installed by an enclosing [`with_pool`] call.
    Scoped(Arc<ThreadPool>),
}

impl Deref for PoolHandle {
    type Target = ThreadPool;

    fn deref(&self) -> &ThreadPool {
        match self {
            PoolHandle::Global(p) => p,
            PoolHandle::Scoped(p) => p,
        }
    }
}

/// Returns the pool the current thread should launch intra-op work on.
///
/// Inside a [`with_pool`] scope this is the scoped pool; everywhere else
/// it is [`global`].
pub fn current() -> PoolHandle {
    match CURRENT.with(|c| c.borrow().clone()) {
        Some(p) => PoolHandle::Scoped(p),
        None => PoolHandle::Global(global()),
    }
}

/// Runs `f` with `pool` installed as this thread's [`current`] pool.
///
/// Scopes nest: the previous override (if any) is restored when `f`
/// returns or panics.
pub fn with_pool<R>(pool: &Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<ThreadPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(pool)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn current_defaults_to_global() {
        assert_eq!(current().threads(), global().threads());
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let small = Arc::new(ThreadPool::new(1));
        let seen = with_pool(&small, || current().threads());
        assert_eq!(seen, 1);
        // Restored after the scope.
        assert_eq!(current().threads(), global().threads());
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let a = Arc::new(ThreadPool::new(2));
        let b = Arc::new(ThreadPool::new(3));
        with_pool(&a, || {
            assert_eq!(current().threads(), 2);
            with_pool(&b, || assert_eq!(current().threads(), 3));
            assert_eq!(current().threads(), 2);
        });
        assert_eq!(current().threads(), global().threads());
    }

    #[test]
    fn override_is_restored_on_panic() {
        let small = Arc::new(ThreadPool::new(1));
        let res = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&small, || panic!("boom"));
        }));
        assert!(res.is_err());
        assert_eq!(current().threads(), global().threads());
    }

    #[test]
    fn override_is_per_thread() {
        let small = Arc::new(ThreadPool::new(1));
        with_pool(&small, || {
            // A fresh thread must not inherit this thread's override.
            let t = std::thread::spawn(|| current().threads());
            assert_eq!(t.join().unwrap(), global().threads());
            assert_eq!(current().threads(), 1);
        });
    }
}
