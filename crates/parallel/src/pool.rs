//! The persistent worker pool.

use crate::latch::CountLatch;
use crossbeam::channel::{unbounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
///
/// Jobs are dispatched through an unbounded crossbeam channel; dropping the
/// pool closes the channel and joins every worker. The pool is `Sync`, so a
/// single `&'static ThreadPool` (see [`crate::global`]) can be shared by all
/// tensor kernels.
pub struct ThreadPool {
    sender: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(threads);
        for idx in 0..threads {
            let rx = receiver.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("legw-worker-{idx}"))
                    .spawn(move || {
                        // Channel disconnect (pool drop) terminates the loop.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        Self { sender, workers, threads }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a detached job. Prefer [`ThreadPool::run`] for fork/join work.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.sender.send(Box::new(f)).expect("thread pool has shut down");
    }

    /// Runs `body(task_index)` for every index in `0..tasks`, distributing
    /// indices dynamically over the pool, and blocks until all have finished.
    ///
    /// The closure may borrow from the caller's stack: the borrow cannot
    /// outlive the call because `run` does not return until every worker has
    /// finished with it (enforced by a [`CountLatch`]). A panic in any task is
    /// captured and re-raised here after the remaining tasks drain.
    ///
    /// The calling thread participates in the work, so `run` makes progress
    /// even on a single-threaded pool (and nested `run` calls from inside a
    /// task cannot deadlock: the inner call's caller-participation drains its
    /// own tasks).
    pub fn run<F>(&self, tasks: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.threads == 1 {
            for i in 0..tasks {
                body(i);
            }
            return;
        }

        struct Shared<F> {
            body: *const F,
            next: AtomicUsize,
            tasks: usize,
            panicked: AtomicBool,
        }

        /// Drains task indices from the shared counter until exhausted.
        ///
        /// # Safety
        /// `addr` must point at a live `Shared<F>` whose `body` pointer is
        /// valid for the whole call. `run` guarantees this by blocking on the
        /// completion latch before either value leaves scope.
        unsafe fn drain<F: Fn(usize) + Sync>(addr: usize) {
            let shared = &*(addr as *const Shared<F>);
            let body = &*shared.body;
            loop {
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= shared.tasks {
                    return;
                }
                if catch_unwind(AssertUnwindSafe(|| body(i))).is_err() {
                    shared.panicked.store(true, Ordering::Release);
                }
            }
        }

        let shared = Shared {
            body: &body as *const F,
            next: AtomicUsize::new(0),
            tasks,
            panicked: AtomicBool::new(false),
        };
        // Erase the generic type and stack lifetime by shipping a plain
        // address plus a monomorphised trampoline; both are Send + 'static.
        let addr = &shared as *const Shared<F> as usize;
        let trampoline: unsafe fn(usize) = drain::<F>;

        let helpers = (self.threads - 1).min(tasks - 1);
        let latch = Arc::new(CountLatch::new(helpers));
        for _ in 0..helpers {
            let latch = Arc::clone(&latch);
            self.spawn(move || {
                // SAFETY: `run` waits on the latch below before `shared` or
                // `body` can be dropped, so `addr` is valid for this call.
                unsafe { trampoline(addr) };
                latch.count_down();
            });
        }
        // The caller drains alongside the helpers.
        unsafe { trampoline(addr) };
        latch.wait();

        if shared.panicked.load(Ordering::Acquire) {
            panic!("a task panicked inside ThreadPool::run");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Replace the sender with a dummy so the channel disconnects and the
        // workers' recv() loops end.
        let (dummy, _) = unbounded::<Job>();
        self.sender = dummy;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_on_single_thread_pool() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.run(100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn run_zero_tasks_is_noop() {
        let pool = ThreadPool::new(2);
        pool.run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn panic_in_task_propagates_without_deadlock() {
        let pool = ThreadPool::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // Pool must still be usable afterwards.
        let sum = AtomicUsize::new(0);
        pool.run(16, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.run(4, |_| {
            pool.run(4, |j| {
                total.fetch_add(j, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 6);
    }

    #[test]
    fn borrows_from_stack_are_visible_after_run() {
        let pool = ThreadPool::new(4);
        let data = vec![1u32; 512];
        let sum = AtomicUsize::new(0);
        pool.run(8, |i| {
            let chunk = &data[i * 64..(i + 1) * 64];
            sum.fetch_add(chunk.iter().map(|&x| x as usize).sum(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 512);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        pool.run(10, |_| {});
        drop(pool); // must not hang
    }
}
