//! Data-parallel helpers built on [`ThreadPool::run`].

use crate::pool::ThreadPool;
use parking_lot::Mutex;
use std::ops::Range;

/// Splits `0..len` into at most `max_parts` near-equal contiguous ranges.
///
/// Every element is covered exactly once and ranges are returned in order.
/// Used by the kernels to decide a work decomposition up front.
pub fn split_evenly(len: usize, max_parts: usize) -> Vec<Range<usize>> {
    if len == 0 || max_parts == 0 {
        return Vec::new();
    }
    let parts = max_parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Runs `body` over contiguous sub-ranges of `0..len` in parallel.
///
/// `min_chunk` bounds the smallest range a task will receive; work smaller
/// than one chunk runs inline on the caller with no synchronisation cost.
pub fn parallel_for<F>(pool: &ThreadPool, len: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let min_chunk = min_chunk.max(1);
    if len == 0 {
        return;
    }
    if len <= min_chunk || pool.threads() == 1 {
        body(0..len);
        return;
    }
    let max_parts = (len / min_chunk).max(1).min(pool.threads() * 4);
    let ranges = split_evenly(len, max_parts);
    pool.run(ranges.len(), |i| body(ranges[i].clone()));
}

/// Mutably processes disjoint chunks of `data` in parallel.
///
/// `body(start, chunk)` receives the chunk's offset into `data` and the chunk
/// itself. Chunks are `chunk_len` long except possibly the last.
pub fn par_chunks_mut<T, F>(pool: &ThreadPool, data: &mut [T], chunk_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk_len);
    if n_chunks == 1 || pool.threads() == 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            body(ci * chunk_len, chunk);
        }
        return;
    }
    // SAFETY: each task touches the disjoint half-open range
    // [i*chunk_len, min((i+1)*chunk_len, len)), so no two tasks alias.
    struct SendPtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    impl<T> SendPtr<T> {
        // Method access keeps the closure capturing the whole wrapper (which
        // is Sync) rather than the raw-pointer field (which is not).
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let base = SendPtr(data.as_mut_ptr());
    pool.run(n_chunks, |i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        body(start, chunk);
    });
}

/// Runs `body(ti, tj)` for every tile of a `tiles_m × tiles_n` grid in
/// parallel.
///
/// This is the launch shape of 2-D blocked kernels (GEMM): the output is cut
/// into an (M-block × N-block) grid and every grid cell is an independent
/// task, so tall-skinny and short-wide problems still fan out over all
/// threads — a row-only decomposition would leave most of the pool idle when
/// `tiles_m < threads`. Tiles are dispatched through [`ThreadPool::run`]'s
/// dynamic counter, so uneven tile costs load-balance automatically.
pub fn par_tiles_2d<F>(pool: &ThreadPool, tiles_m: usize, tiles_n: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let total = tiles_m.checked_mul(tiles_n).expect("tile grid overflows usize");
    if total == 0 {
        return;
    }
    pool.run(total, |idx| body(idx / tiles_n, idx % tiles_n));
}

/// Parallel map-reduce over `0..len`.
///
/// `map(range) -> A` produces a partial result per contiguous range;
/// partials are folded with `reduce` starting from `identity`. The fold
/// order is the range order, so `reduce` need not be commutative — only
/// associative with respect to the chosen chunking (floating-point sums over
/// different chunkings may of course differ in the last ulps).
pub fn par_map_reduce<A, M, R>(
    pool: &ThreadPool,
    len: usize,
    min_chunk: usize,
    identity: A,
    map: M,
    reduce: R,
) -> A
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let min_chunk = min_chunk.max(1);
    if len == 0 {
        return identity;
    }
    if len <= min_chunk || pool.threads() == 1 {
        return reduce(identity, map(0..len));
    }
    let max_parts = (len / min_chunk).max(1).min(pool.threads() * 4);
    let ranges = split_evenly(len, max_parts);
    let slots: Vec<Mutex<Option<A>>> = (0..ranges.len()).map(|_| Mutex::new(None)).collect();
    pool.run(ranges.len(), |i| {
        *slots[i].lock() = Some(map(ranges[i].clone()));
    });
    let mut acc = identity;
    for slot in slots {
        let part = slot.into_inner().expect("partial result missing");
        acc = reduce(acc, part);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn split_evenly_covers_all() {
        let parts = split_evenly(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn split_evenly_more_parts_than_items() {
        let parts = split_evenly(2, 8);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], 0..1);
        assert_eq!(parts[1], 1..2);
    }

    #[test]
    fn split_evenly_empty() {
        assert!(split_evenly(0, 4).is_empty());
        assert!(split_evenly(4, 0).is_empty());
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let p = pool();
        let hits: Vec<AtomicUsize> = (0..513).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&p, hits.len(), 8, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_small_runs_inline() {
        let p = pool();
        let count = AtomicUsize::new(0);
        parallel_for(&p, 3, 64, |r| {
            assert_eq!(r, 0..3);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let p = pool();
        let mut v = vec![0usize; 1003];
        par_chunks_mut(&p, &mut v, 100, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_tiles_2d_covers_grid_once() {
        let p = pool();
        let tiles: Vec<AtomicUsize> = (0..7 * 5).map(|_| AtomicUsize::new(0)).collect();
        par_tiles_2d(&p, 7, 5, |ti, tj| {
            tiles[ti * 5 + tj].fetch_add(1, Ordering::Relaxed);
        });
        assert!(tiles.iter().all(|t| t.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_tiles_2d_empty_grid_is_noop() {
        let p = pool();
        par_tiles_2d(&p, 0, 5, |_, _| panic!("no tiles"));
        par_tiles_2d(&p, 3, 0, |_, _| panic!("no tiles"));
    }

    #[test]
    fn par_map_reduce_sums() {
        let p = pool();
        let total = par_map_reduce(&p, 10_000, 128, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_map_reduce_empty_returns_identity() {
        let p = pool();
        let total = par_map_reduce(&p, 0, 8, 42u64, |_| panic!("no work"), |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn par_map_reduce_is_ordered() {
        // Concatenation is associative but not commutative; the result must
        // respect range order.
        let p = pool();
        let s = par_map_reduce(
            &p,
            26,
            2,
            String::new(),
            |r| r.map(|i| (b'a' + i as u8) as char).collect::<String>(),
            |a, b| a + &b,
        );
        assert_eq!(s, "abcdefghijklmnopqrstuvwxyz");
    }

    proptest! {
        #[test]
        fn prop_split_evenly_partition(len in 0usize..500, parts in 0usize..32) {
            let rs = split_evenly(len, parts);
            // ranges are contiguous, ordered, and cover 0..len exactly
            let mut cursor = 0usize;
            for r in &rs {
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end > r.start);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, if parts == 0 { 0 } else { len });
            if len > 0 && parts > 0 {
                let max = rs.iter().map(|r| r.len()).max().unwrap();
                let min = rs.iter().map(|r| r.len()).min().unwrap();
                prop_assert!(max - min <= 1, "near-equal split");
            }
        }

        #[test]
        fn prop_par_sum_matches_serial(v in proptest::collection::vec(-1000i64..1000, 0..2000), chunk in 1usize..64) {
            let p = ThreadPool::new(3);
            let par = par_map_reduce(&p, v.len(), chunk, 0i64, |r| v[r].iter().sum(), |a, b| a + b);
            let ser: i64 = v.iter().sum();
            prop_assert_eq!(par, ser);
        }

        #[test]
        fn prop_par_chunks_mut_equiv_serial(len in 0usize..800, chunk in 1usize..97) {
            let p = ThreadPool::new(4);
            let mut a = vec![0usize; len];
            let mut b = vec![0usize; len];
            par_chunks_mut(&p, &mut a, chunk, |start, c| {
                for (i, x) in c.iter_mut().enumerate() { *x = (start + i) * 3 + 1; }
            });
            for (i, x) in b.iter_mut().enumerate() { *x = i * 3 + 1; }
            prop_assert_eq!(a, b);
        }
    }
}

/// Parallel map over a slice, preserving order.
///
/// Each element is processed independently on the pool; results land in a
/// pre-sized output vector, so ordering is deterministic regardless of
/// scheduling.
pub fn par_map<T, R, F>(pool: &ThreadPool, items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    if n <= min_chunk || pool.threads() == 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    parallel_for(pool, n, min_chunk, |r| {
        for i in r {
            *slots[i].lock() = Some(f(&items[i]));
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("par_map slot unfilled"))
        .collect()
}

#[cfg(test)]
mod par_map_tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&pool, &items, 16, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(3);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&pool, &empty, 8, |&x| x).is_empty());
        let one = [7u32];
        assert_eq!(par_map(&pool, &one, 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn non_copy_results() {
        let pool = ThreadPool::new(2);
        let items = ["a", "bb", "ccc"];
        let out = par_map(&pool, &items, 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A".to_string(), "BB".into(), "CCC".into()]);
    }
}
