//! Completion latch used by the fork/join primitives.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting latch: set to `n`, decremented once per finished task, and
/// waited on by the submitting thread.
///
/// The fast path is a single `fetch_sub(Release)`; the mutex/condvar pair is
/// only touched when the last task completes or when the waiter has to sleep.
/// This is the pattern recommended in *Rust Atomics and Locks* for building
/// one-shot synchronisation on top of a condition variable.
pub struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Creates a latch expecting `count` completions.
    pub fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Records one task completion. The final completion wakes all waiters.
    pub fn count_down(&self) {
        // Release pairs with the Acquire in `wait`, so everything the task
        // wrote happens-before the waiter resumes.
        let prev = self.remaining.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "CountLatch decremented below zero");
        if prev == 1 {
            // Take the lock so a waiter can't check `remaining` and sleep
            // between our load and our notify (missed-wakeup race).
            let _g = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Number of completions still outstanding.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        if self.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut g = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cond.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_is_immediately_open() {
        let l = CountLatch::new(0);
        l.wait(); // must not block
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn wait_blocks_until_all_count_down() {
        let latch = Arc::new(CountLatch::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || l.count_down()));
        }
        latch.wait();
        assert_eq!(latch.remaining(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn many_waiters_all_released() {
        let latch = Arc::new(CountLatch::new(1));
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&latch);
            waiters.push(std::thread::spawn(move || l.wait()));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        latch.count_down();
        for w in waiters {
            w.join().unwrap();
        }
    }
}
