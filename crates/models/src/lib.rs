//! # legw-models
//!
//! The four model families of the LEGW paper (Table 1), assembled from
//! `legw-nn` layers and trained through `legw-autograd` tapes:
//!
//! * [`MnistLstm`] — §5.1.1: a 28-step row-per-timestep LSTM classifier with
//!   a 128-wide input projection (configurable width here).
//! * [`PtbLm`] — §5.1.2: a 2-layer LSTM language model with stateful
//!   truncated BPTT; "small" and "large" configurations.
//! * [`Seq2Seq`] — §5.1.3: a GNMT-style encoder/decoder with a bidirectional
//!   first encoder layer, shared embeddings, additive attention, and greedy
//!   decoding for BLEU.
//! * [`ResNet`] — §6: a compact residual CNN (conv/BN/residual stages +
//!   global average pooling) standing in for ResNet-50 in the LARS
//!   experiments.
//!
//! Every model exposes `forward_loss` (builds a tape, returns the loss
//! variable ready for `backward`) and an evaluation entry point producing
//! the paper's metric for that application.

mod mnist_lstm;
mod planned;
mod ptb_lm;
mod resnet;
mod seq2seq;

pub use mnist_lstm::MnistLstm;
pub use planned::{Infer, StepPlan};
pub use ptb_lm::{LmState, PtbLm, PtbLmConfig};
pub use resnet::ResNet;
pub use seq2seq::{Seq2Seq, Seq2SeqConfig};
