//! The GNMT-style sequence-to-sequence model of §5.1.3: shared embeddings,
//! a bidirectional first encoder layer, additive (Bahdanau) attention, and
//! greedy decoding scored with corpus BLEU.
//!
//! Scaled-down but structurally faithful: the paper's GNMT has 4+4 layers of
//! width 1024 with residuals from layer 3; this model defaults to 2+2
//! layers and keeps the bidirectional first layer, attention mechanism,
//! shared embeddings, and encoder-state initialisation of the decoder.

use crate::planned::StepPlan;
use legw_autograd::{Feeds, Graph, Var};
use legw_data::{metrics, SynthTranslation, TranslationBatch, EOS};
use legw_nn::{
    BahdanauAttention, Binding, Embedding, GradBuffer, Linear, LstmCell, LstmState, ParamSet,
};
use legw_tensor::Tensor;
use rand::Rng;

/// Model dimensions.
#[derive(Clone, Copy, Debug)]
pub struct Seq2SeqConfig {
    /// Shared vocabulary size (includes BOS/EOS/PAD).
    pub vocab: usize,
    /// Embedding width.
    pub embed: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Attention projection width.
    pub attn: usize,
    /// Maximum decode length for greedy decoding.
    pub max_decode: usize,
}

impl Seq2SeqConfig {
    /// A compact configuration suitable for the synthetic corpus.
    pub fn compact(vocab: usize, max_decode: usize) -> Self {
        Self { vocab, embed: 32, hidden: 32, attn: 32, max_decode }
    }
}

/// Encoder/decoder with attention.
pub struct Seq2Seq {
    cfg: Seq2SeqConfig,
    embedding: Embedding,
    enc_fwd: LstmCell,
    enc_bwd: LstmCell,
    enc_top: LstmCell,
    dec0: LstmCell,
    dec1: LstmCell,
    attention: BahdanauAttention,
    classifier: Linear,
}

struct Encoded {
    /// Encoder top-layer output per source position, `[B, H]`.
    states: Vec<Var>,
    /// Cached attention projections of `states`.
    proj: Vec<Var>,
    /// Final top-layer state (initialises the decoder).
    last: LstmState,
}

impl Seq2Seq {
    /// Builds the model into `ps`.
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, cfg: Seq2SeqConfig) -> Self {
        let h = cfg.hidden;
        Self {
            cfg,
            embedding: Embedding::new(ps, rng, "s2s.embed", cfg.vocab, cfg.embed),
            enc_fwd: LstmCell::new(ps, rng, "s2s.enc_fwd", cfg.embed, h),
            enc_bwd: LstmCell::new(ps, rng, "s2s.enc_bwd", cfg.embed, h),
            enc_top: LstmCell::new(ps, rng, "s2s.enc_top", 2 * h, h),
            dec0: LstmCell::new(ps, rng, "s2s.dec0", cfg.embed + h, h),
            dec1: LstmCell::new(ps, rng, "s2s.dec1", h, h),
            attention: BahdanauAttention::new(ps, rng, "s2s.attn", h, h, cfg.attn),
            classifier: Linear::new(ps, rng, "s2s.fc", 2 * h, cfg.vocab, true),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.cfg
    }

    /// Sequence-hoisted encoder: all three LSTM layers run through
    /// [`LstmCell::forward_seq`], so each layer's input projection is one
    /// `[T·B, in] × [in, 4H]` GEMM. The backward direction packs the
    /// sequence in reversed time order and un-reverses its outputs — the
    /// recurrence itself is direction-agnostic. Matches the retained
    /// [`Seq2Seq::encode_stepwise`] to ~1e-5 relative (the hoisting splits
    /// each cell GEMM's k-sum at the input/hidden boundary).
    fn encode(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        src: &[Vec<usize>],
    ) -> Encoded {
        let b = src[0].len();
        let t_len = src.len();
        let embeds: Vec<Var> =
            src.iter().map(|ids| self.embedding.forward(g, bd, ps, ids)).collect();

        // bidirectional first layer
        let s = self.enc_fwd.zero_state(g, b);
        let (fwd_states, _) = self.enc_fwd.forward_seq(g, bd, ps, &embeds, s);
        let rev: Vec<Var> = embeds.iter().rev().copied().collect();
        let s = self.enc_bwd.zero_state(g, b);
        let (mut bwd_states, _) = self.enc_bwd.forward_seq(g, bd, ps, &rev, s);
        bwd_states.reverse();

        // unidirectional top layer over the concatenated bi outputs
        let cats: Vec<Var> = (0..t_len)
            .map(|t| g.concat_cols(&[fwd_states[t], bwd_states[t]]))
            .collect();
        let s = self.enc_top.zero_state(g, b);
        let (states, top) = self.enc_top.forward_seq(g, bd, ps, &cats, s);
        let proj = self.attention.project_encoder(g, bd, ps, &states);
        Encoded { states, proj, last: top }
    }

    /// The pre-hoisting per-step encoder, kept as the cross-check twin of
    /// [`Seq2Seq::encode`].
    fn encode_stepwise(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        src: &[Vec<usize>],
    ) -> Encoded {
        let b = src[0].len();
        let t_len = src.len();
        let embeds: Vec<Var> =
            src.iter().map(|ids| self.embedding.forward(g, bd, ps, ids)).collect();

        // bidirectional first layer
        let mut fwd_states = Vec::with_capacity(t_len);
        let mut s = self.enc_fwd.zero_state(g, b);
        for &e in &embeds {
            s = self.enc_fwd.step(g, bd, ps, e, s);
            fwd_states.push(s.h);
        }
        let mut bwd_states = vec![None; t_len];
        let mut s = self.enc_bwd.zero_state(g, b);
        for t in (0..t_len).rev() {
            s = self.enc_bwd.step(g, bd, ps, embeds[t], s);
            bwd_states[t] = Some(s.h);
        }

        // unidirectional top layer over the concatenated bi outputs
        let mut states = Vec::with_capacity(t_len);
        let mut top = self.enc_top.zero_state(g, b);
        for t in 0..t_len {
            let cat = g.concat_cols(&[fwd_states[t], bwd_states[t].unwrap()]);
            top = self.enc_top.step(g, bd, ps, cat, top);
            states.push(top.h);
        }
        let proj = self.attention.project_encoder(g, bd, ps, &states);
        Encoded { states, proj, last: top }
    }

    /// One decoder step: embeds `tokens`, attends with the previous top
    /// hidden as query, advances both decoder layers, returns the logits
    /// and the new states.
    #[allow(clippy::too_many_arguments)]
    fn decode_step(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        enc: &Encoded,
        tokens: &[usize],
        s0: LstmState,
        s1: LstmState,
    ) -> (Var, LstmState, LstmState) {
        let emb = self.embedding.forward(g, bd, ps, tokens);
        let (ctx, _) = self.attention.step(g, bd, ps, &enc.states, &enc.proj, s1.h);
        let x = g.concat_cols(&[emb, ctx]);
        let ns0 = self.dec0.step(g, bd, ps, x, s0);
        let ns1 = self.dec1.step(g, bd, ps, ns0.h, s1);
        let feat = g.concat_cols(&[ns1.h, ctx]);
        let logits = self.classifier.forward(g, bd, ps, feat);
        (logits, ns0, ns1)
    }

    /// Teacher-forced training pass over one padded batch. Returns the tape,
    /// the mean per-token loss variable, and its value (nats/token over
    /// unmasked positions).
    pub fn forward_loss(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> (Graph, Binding, Var, f64) {
        self.forward_loss_scaled(ps, batch, None)
    }

    /// [`Seq2Seq::forward_loss`] with optional per-decode-step loss scales.
    ///
    /// The data-parallel executor needs this for exact batch sharding: the
    /// serial loss averages each step over the *globally* active (unmasked)
    /// rows, so a shard must weight step `t` by `active_in_shard /
    /// active_in_batch`; the sum of the scaled shard losses then equals the
    /// serial loss. A scale of exactly `1.0` adds no tape node, keeping the
    /// single-shard path bit-identical to the unscaled one.
    pub fn forward_loss_scaled(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
        step_scale: Option<&[f32]>,
    ) -> (Graph, Binding, Var, f64) {
        self.forward_loss_inner(ps, batch, step_scale, false)
    }

    /// [`Seq2Seq::forward_loss`] over the retained stepwise encoder
    /// ([`Seq2Seq::encode_stepwise`]) — the cross-check / benchmark twin of
    /// the hoisted path. The attention-coupled decoder is per-step in both.
    pub fn forward_loss_stepwise(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> (Graph, Binding, Var, f64) {
        self.forward_loss_inner(ps, batch, None, true)
    }

    fn forward_loss_inner(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
        step_scale: Option<&[f32]>,
        stepwise_enc: bool,
    ) -> (Graph, Binding, Var, f64) {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let enc = if stepwise_enc {
            self.encode_stepwise(&mut g, &mut bd, ps, &batch.src)
        } else {
            self.encode(&mut g, &mut bd, ps, &batch.src)
        };
        let loss = self.decode_loss(&mut g, &mut bd, ps, &enc, batch, step_scale);
        let nll = g.value(loss).item() as f64;
        (g, bd, loss, nll)
    }

    /// Teacher-forced decoder + loss over an already-encoded source —
    /// shared by the tape path ([`Seq2Seq::forward_loss_inner`]) and the
    /// encoder-plan path ([`Seq2Seq::planned_loss_grads`]), so both decode
    /// identically by construction.
    fn decode_loss(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        enc: &Encoded,
        batch: &TranslationBatch,
        step_scale: Option<&[f32]>,
    ) -> Var {
        let mut s0 = self.dec0.zero_state(g, batch.batch_size());
        let mut s1 = LstmState { h: enc.last.h, c: enc.last.c };

        let steps = batch.dec_in.len();
        if let Some(s) = step_scale {
            assert_eq!(s.len(), steps, "one loss scale per decode step");
        }
        let mut total: Option<Var> = None;
        for t in 0..steps {
            let (logits, ns0, ns1) =
                self.decode_step(g, bd, ps, enc, &batch.dec_in[t], s0, s1);
            s0 = ns0;
            s1 = ns1;
            let mut step_loss = g.softmax_cross_entropy(logits, &batch.dec_tgt[t]);
            if let Some(s) = step_scale {
                if s[t] != 1.0 {
                    step_loss = g.scale(step_loss, s[t]);
                }
            }
            total = Some(match total {
                Some(acc) => g.add(acc, step_loss),
                None => step_loss,
            });
        }
        g.scale(total.expect("non-empty batch"), 1.0 / steps as f32)
    }

    /// Captures the encoder (the attention-free, shape-static part of the
    /// model) into a seed-mode [`StepPlan`]. Plan outputs are the per-step
    /// top states, their attention projections, and the final cell state —
    /// everything the decoder consumes. The final *hidden* state is the
    /// same tape node as the last per-step state, so it is not listed
    /// twice; [`Seq2Seq::planned_loss_grads`] reconstructs it from
    /// `states[t-1]`. The token-dependent, data-dependent decoder stays
    /// tape-driven.
    pub fn capture_encoder_plan(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> Option<StepPlan> {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let enc = self.encode(&mut g, &mut bd, ps, &batch.src);
        let mut outputs: Vec<Var> = Vec::with_capacity(2 * enc.states.len() + 1);
        outputs.extend(&enc.states);
        outputs.extend(&enc.proj);
        outputs.push(enc.last.c);
        StepPlan::capture(&g, &bd, None, &outputs)
    }

    /// One training step with the encoder replayed from `enc_plan` and the
    /// decoder on a fresh tape: encoder forward replay → decoder tape with
    /// the encoder outputs re-entered as gradient-tracked leaves → decoder
    /// backward → encoder backward replay seeded with the leaf gradients.
    /// Accumulates all parameter gradients into `grads` and returns the
    /// mean per-token NLL.
    ///
    /// Equivalence vs [`Seq2Seq::forward_loss_scaled`] + backward: bitwise
    /// for all decoder-only parameters; ≤1e-5 relative for the parameters
    /// shared across the boundary (embedding table, attention projections)
    /// because the plan pre-sums the encoder-side contributions before the
    /// single cross-boundary add, reassociating the tape's accumulation
    /// order.
    pub fn planned_loss_grads(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
        step_scale: Option<&[f32]>,
        enc_plan: &mut StepPlan,
        grads: &mut GradBuffer,
    ) -> f64 {
        let b = batch.batch_size();
        let t_len = batch.src.len();
        let h = self.cfg.hidden;

        // Encoder forward replay. Inputs are the six zero [B, H] initial
        // states `encode` records (fwd h/c, bwd h/c, top h/c); source
        // token ids enter as embedding feeds in time order.
        let zero_state = Tensor::zeros(&[b, h]);
        let enc_inputs: Vec<&Tensor> = vec![&zero_state; 6];
        let ids: Vec<&[usize]> = batch.src.iter().map(|v| v.as_slice()).collect();
        let feeds = Feeds { ids: &ids, ..Feeds::default() };
        enc_plan.replay_forward(ps, &enc_inputs, &feeds);

        // Decoder tape over the replayed encoder outputs, re-entered as
        // gradient-tracked leaves so backward leaves their grads behind.
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let states: Vec<Var> = (0..t_len).map(|t| g.param(enc_plan.output(t))).collect();
        let proj: Vec<Var> =
            (0..t_len).map(|t| g.param(enc_plan.output(t_len + t))).collect();
        let last_c = g.param(enc_plan.output(2 * t_len));
        let enc = Encoded {
            last: LstmState { h: states[t_len - 1], c: last_c },
            states,
            proj,
        };
        let loss = self.decode_loss(&mut g, &mut bd, ps, &enc, batch, step_scale);
        let nll = g.value(loss).item() as f64;
        g.backward(loss);
        bd.write_grads_to(&g, grads);

        // Encoder backward replay, seeded with the decoder's gradients at
        // the boundary leaves (zero where the decoder never touched one).
        let zero_h = Tensor::zeros(&[b, h]);
        let zero_a = Tensor::zeros(&[b, self.cfg.attn]);
        let leaves: Vec<Var> = enc
            .states
            .iter()
            .chain(&enc.proj)
            .copied()
            .chain([enc.last.c])
            .collect();
        let seeds: Vec<&Tensor> = leaves
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                g.grad(v).unwrap_or(if k >= t_len && k < 2 * t_len { &zero_a } else { &zero_h })
            })
            .collect();
        enc_plan.replay_backward(ps, &enc_inputs, &seeds);
        enc_plan.write_grads_to(grads);
        nll
    }

    /// Greedy decoding of one padded batch: feeds back the argmax token
    /// until [`EOS`] or `max_decode`. Returns one hypothesis per sequence.
    pub fn greedy_decode(&self, ps: &ParamSet, batch: &TranslationBatch) -> Vec<Vec<usize>> {
        let mut g = Graph::new();
        self.greedy_decode_into(&mut g, ps, batch)
    }

    /// [`Seq2Seq::greedy_decode`] onto a caller-owned tape (reset here), so
    /// evaluation loops reuse one node allocation across batches.
    fn greedy_decode_into(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> Vec<Vec<usize>> {
        g.reset();
        let b = batch.batch_size();
        let mut bd = Binding::new();
        let enc = self.encode(g, &mut bd, ps, &batch.src);
        self.greedy_loop(g, &mut bd, ps, &enc, b)
    }

    /// The feedback decode loop over an already-encoded source — shared by
    /// the tape path ([`Seq2Seq::greedy_decode_into`]) and the frozen-plan
    /// path ([`Seq2Seq::greedy_decode_planned`]), so both decode
    /// identically by construction.
    fn greedy_loop(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        enc: &Encoded,
        b: usize,
    ) -> Vec<Vec<usize>> {
        let mut s0 = self.dec0.zero_state(g, b);
        let mut s1 = LstmState { h: enc.last.h, c: enc.last.c };

        let mut hyps: Vec<Vec<usize>> = vec![Vec::new(); b];
        let mut done = vec![false; b];
        let mut tokens = vec![legw_data::BOS; b];
        for _ in 0..self.cfg.max_decode {
            let (logits, ns0, ns1) = self.decode_step(g, bd, ps, enc, &tokens, s0, s1);
            s0 = ns0;
            s1 = ns1;
            let preds = g.value(logits).argmax_rows();
            for i in 0..b {
                if done[i] {
                    continue;
                }
                if preds[i] == EOS {
                    done[i] = true;
                } else {
                    hyps[i].push(preds[i]);
                }
            }
            tokens = preds;
            if done.iter().all(|&d| d) {
                break;
            }
        }
        hyps
    }

    /// Captures the encoder into a *forward-only* plan for frozen-model
    /// serving — same tape and outputs as [`Seq2Seq::capture_encoder_plan`],
    /// but with no backward schedule or gradient buffers.
    pub fn capture_infer_plan(
        &self,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> Option<StepPlan> {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let enc = self.encode(&mut g, &mut bd, ps, &batch.src);
        let mut outputs: Vec<Var> = Vec::with_capacity(2 * enc.states.len() + 1);
        outputs.extend(&enc.states);
        outputs.extend(&enc.proj);
        outputs.push(enc.last.c);
        StepPlan::capture_forward(&g, &bd, &outputs)
    }

    /// Greedy decoding with the encoder replayed from a forward-only plan:
    /// the shape-static encoder runs tape-free; the data-dependent feedback
    /// decoder runs on a small fresh tape over the replayed encoder
    /// outputs, re-entered as plain (gradient-free) inputs. Matches
    /// [`Seq2Seq::greedy_decode`] token-for-token on the same padded batch.
    pub fn greedy_decode_planned(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> Vec<Vec<usize>> {
        let b = batch.batch_size();
        let t_len = batch.src.len();
        let zero_state = Tensor::zeros(&[b, self.cfg.hidden]);
        let enc_inputs: Vec<&Tensor> = vec![&zero_state; 6];
        let ids: Vec<&[usize]> = batch.src.iter().map(|v| v.as_slice()).collect();
        let feeds = Feeds { ids: &ids, ..Feeds::default() };
        plan.replay_forward(ps, &enc_inputs, &feeds);

        let mut g = Graph::new();
        let mut bd = Binding::new();
        let states: Vec<Var> = (0..t_len).map(|t| g.input(plan.output(t))).collect();
        let proj: Vec<Var> =
            (0..t_len).map(|t| g.input(plan.output(t_len + t))).collect();
        let last_c = g.input(plan.output(2 * t_len));
        let enc = Encoded {
            last: LstmState { h: states[t_len - 1], c: last_c },
            states,
            proj,
        };
        self.greedy_loop(&mut g, &mut bd, ps, &enc, b)
    }

    /// Corpus BLEU over a split (paper metric, higher is better).
    pub fn evaluate_bleu(&self, ps: &ParamSet, data: &SynthTranslation, batch: usize) -> f64 {
        let mut cands = Vec::new();
        let mut refs = Vec::new();
        // One tape reused across batches via greedy_decode_into.
        let mut g = Graph::new();
        for b in data.batches(false, batch) {
            let hyps = self.greedy_decode_into(&mut g, ps, &b);
            cands.extend(hyps);
            refs.extend(b.refs.clone());
        }
        metrics::corpus_bleu(&cands, &refs)
    }
}

impl crate::planned::Infer for Seq2Seq {
    type Req = Vec<usize>;
    type Out = Vec<usize>;
    type RowState = ();
    type Batch = TranslationBatch;

    fn zero_state(&self) {}

    fn coalesce_key(&self, _req: &Vec<usize>) -> Vec<usize> {
        // Pad-tolerant: ragged sources PAD-pad into one batch, exactly like
        // the evaluation batches the model is scored on.
        Vec::new()
    }

    fn assemble(&self, reqs: &[Vec<usize>], _states: &[()]) -> TranslationBatch {
        TranslationBatch::for_inference(reqs)
    }

    fn infer_key(&self, batch: &TranslationBatch) -> Vec<usize> {
        vec![batch.batch_size(), batch.src.len()]
    }

    fn capture_infer(&self, ps: &ParamSet, batch: &TranslationBatch) -> Option<StepPlan> {
        self.capture_infer_plan(ps, batch)
    }

    fn replay_infer(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &TranslationBatch,
    ) -> Vec<(Vec<usize>, ())> {
        self.greedy_decode_planned(plan, ps, batch).into_iter().map(|h| (h, ())).collect()
    }

    fn infer_tape(&self, ps: &ParamSet, batch: &TranslationBatch) -> Vec<(Vec<usize>, ())> {
        self.greedy_decode(ps, batch).into_iter().map(|h| (h, ())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny() -> (ParamSet, Seq2Seq, SynthTranslation) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let d = SynthTranslation::generate(6, 12, 64, 16, 3, 5);
        let cfg = Seq2SeqConfig { vocab: d.vocab, embed: 12, hidden: 12, attn: 8, max_decode: 8 };
        let m = Seq2Seq::new(&mut ps, &mut rng, cfg);
        (ps, m, d)
    }

    #[test]
    fn forward_loss_near_uniform_untrained() {
        let (ps, m, d) = tiny();
        let batch = &d.batches(true, 8)[0];
        let (_, _, _, nll) = m.forward_loss(&ps, batch);
        let uniform = (d.vocab as f64).ln();
        assert!((nll - uniform).abs() < 1.0, "nll {nll} vs uniform {uniform}");
    }

    #[test]
    fn gradients_reach_encoder_decoder_and_attention() {
        let (mut ps, m, d) = tiny();
        let batch = &d.batches(true, 4)[0];
        let (mut g, bd, loss, _) = m.forward_loss(&ps, batch);
        g.backward(loss);
        bd.write_grads(&g, &mut ps);
        for (_, p) in ps.iter() {
            assert!(p.grad.l2_norm() > 0.0, "no gradient for {}", p.name);
        }
    }

    #[test]
    fn greedy_decode_shapes_and_token_range() {
        let (ps, m, d) = tiny();
        let batch = &d.batches(false, 8)[0];
        let hyps = m.greedy_decode(&ps, batch);
        assert_eq!(hyps.len(), 8);
        for h in &hyps {
            assert!(h.len() <= 8);
            assert!(h.iter().all(|&t| t < d.vocab && t != EOS));
        }
    }

    #[test]
    fn evaluate_bleu_is_bounded_and_low_untrained() {
        let (ps, m, d) = tiny();
        let bleu = m.evaluate_bleu(&ps, &d, 8);
        assert!((0.0..=100.0).contains(&bleu));
        assert!(bleu < 30.0, "untrained BLEU suspiciously high: {bleu}");
    }

    /// Hoisted vs stepwise encoder through the full teacher-forced pass:
    /// loss and every parameter gradient within 1e-5 relative.
    #[test]
    fn hoisted_encoder_matches_stepwise_reference() {
        let (ps, m, d) = tiny();
        let batch = &d.batches(true, 6)[0];
        let run = |hoisted: bool| -> (f64, Vec<(String, legw_tensor::Tensor)>) {
            let (mut g, bd, loss, nll) = if hoisted {
                m.forward_loss(&ps, batch)
            } else {
                m.forward_loss_stepwise(&ps, batch)
            };
            g.backward(loss);
            let mut ps2 = ps.clone();
            bd.write_grads(&g, &mut ps2);
            let grads = ps2.iter().map(|(_, p)| (p.name.clone(), p.grad.clone())).collect();
            (nll, grads)
        };
        let (nh, gh) = run(true);
        let (nu, gu) = run(false);
        assert!((nh - nu).abs() <= 1e-5 * (1.0 + nu.abs()), "nll: {nh} vs {nu}");
        for ((name, ga), (_, gb)) in gh.iter().zip(&gu) {
            for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{name} grad: {a} vs {b}");
            }
        }
    }

    /// Frozen-encoder greedy decoding vs the live-tape path: identical
    /// token sequences on a ragged request set the plan was never captured
    /// on, via the `Infer` surface (PAD-coalescing like evaluation).
    #[test]
    fn planned_greedy_decode_matches_tape() {
        use crate::planned::Infer;
        let (ps, m, d) = tiny();
        let cap: Vec<Vec<usize>> = d.test.iter().map(|(s, _)| s.clone()).take(4).collect();
        let fresh: Vec<Vec<usize>> =
            d.test.iter().map(|(s, _)| s.clone()).skip(4).take(4).collect();
        let pad_to = cap.iter().chain(&fresh).map(|s| s.len()).max().unwrap();
        // Equal padded width so one captured plan serves both request sets.
        let widen = |rows: &[Vec<usize>]| -> Vec<Vec<usize>> {
            let mut rows = rows.to_vec();
            let fill = rows[0][0];
            rows[0].resize(pad_to, fill);
            rows
        };
        let cap_batch = m.assemble(&widen(&cap), &[(); 4]);
        let batch = m.assemble(&widen(&fresh), &[(); 4]);
        let mut plan = m.capture_infer(&ps, &cap_batch).expect("encoder tape must capture");
        let planned = m.replay_infer(&mut plan, &ps, &batch);
        let taped = m.infer_tape(&ps, &batch);
        for ((a, ()), (b, ())) in planned.iter().zip(&taped) {
            assert_eq!(a, b, "frozen-path decode must match the tape token-for-token");
        }
    }

    #[test]
    fn training_on_fixed_batch_reduces_loss() {
        let (mut ps, m, d) = tiny();
        let batch = &d.batches(true, 8)[0];
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..8 {
            let (mut g, bd, loss, nll) = m.forward_loss(&ps, batch);
            if i == 0 {
                first = nll;
            }
            last = nll;
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            for (_, p) in ps.iter_mut() {
                let gr = p.grad.clone();
                p.value.axpy(-0.7, &gr);
                p.grad.fill_(0.0);
            }
        }
        assert!(last < first * 0.98, "loss should fall: {first} → {last}");
    }
}
