//! A compact residual CNN (ResNet-8) standing in for ResNet-50 in the
//! LARS/LEGW experiments (§6, Table 3, Figure 1).
//!
//! Stem conv → three residual stages (16, 32, 64 channels; stages 2–3
//! downsample by stride 2 with a 1×1 projection skip) → global average
//! pool → linear classifier. BatchNorm uses batch statistics in training
//! and running statistics in evaluation, as usual.

use crate::planned::StepPlan;
use legw_autograd::{Feeds, Graph, Var};
use legw_data::{metrics, Classification};
use legw_nn::{BatchNorm2d, Binding, Conv2d, Linear, ParamSet};
use legw_tensor::Tensor;
use rand::Rng;

#[derive(Clone)]
struct Block {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    /// 1×1 stride-matching projection when the shape changes.
    proj: Option<(Conv2d, BatchNorm2d)>,
}

impl Block {
    fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
    ) -> Self {
        let proj = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(ps, rng, &format!("{name}.proj"), in_ch, out_ch, 1, stride, 0),
                BatchNorm2d::new(ps, &format!("{name}.proj_bn"), out_ch),
            )
        });
        Self {
            conv1: Conv2d::new(ps, rng, &format!("{name}.conv1"), in_ch, out_ch, 3, stride, 1),
            bn1: BatchNorm2d::new(ps, &format!("{name}.bn1"), out_ch),
            conv2: Conv2d::new(ps, rng, &format!("{name}.conv2"), out_ch, out_ch, 3, 1, 1),
            bn2: BatchNorm2d::new(ps, &format!("{name}.bn2"), out_ch),
            proj,
        }
    }

    fn forward(
        &mut self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        x: Var,
        train: bool,
    ) -> Var {
        let y = self.conv1.forward(g, bd, ps, x);
        let y = if train {
            self.bn1.forward_train(g, bd, ps, y)
        } else {
            self.bn1.forward_eval(g, ps, y)
        };
        let y = g.relu(y);
        let y = self.conv2.forward(g, bd, ps, y);
        let y = if train {
            self.bn2.forward_train(g, bd, ps, y)
        } else {
            self.bn2.forward_eval(g, ps, y)
        };
        let skip = match &mut self.proj {
            Some((conv, bn)) => {
                let s = conv.forward(g, bd, ps, x);
                if train {
                    bn.forward_train(g, bd, ps, s)
                } else {
                    bn.forward_eval(g, ps, s)
                }
            }
            None => x,
        };
        let sum = g.add(y, skip);
        g.relu(sum)
    }
}

/// The ResNet-8 stand-in.
///
/// `Clone` copies the layer wiring *and* the BatchNorm running statistics;
/// the data-parallel executor clones the model per batch shard (forward
/// passes mutate BN state) and folds the shard stats back with
/// [`ResNet::merge_shard_stats`].
#[derive(Clone)]
pub struct ResNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<Block>,
    head: Linear,
    n_classes: usize,
}

impl ResNet {
    /// Builds the network for `[N, 3, 32, 32]` inputs and `n_classes`
    /// outputs. `width` is the stem channel count (default experiments
    /// use 8; channels double per stage).
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, width: usize, n_classes: usize) -> Self {
        let w = width;
        Self {
            stem: Conv2d::new(ps, rng, "resnet.stem", 3, w, 3, 1, 1),
            stem_bn: BatchNorm2d::new(ps, "resnet.stem_bn", w),
            blocks: vec![
                Block::new(ps, rng, "resnet.b1", w, w, 1),
                Block::new(ps, rng, "resnet.b2", w, 2 * w, 2),
                Block::new(ps, rng, "resnet.b3", 2 * w, 4 * w, 2),
            ],
            head: Linear::new(ps, rng, "resnet.head", 4 * w, n_classes, true),
            n_classes,
        }
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Forward pass producing logits. `train` selects batch-statistics vs
    /// running-statistics normalisation.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        images: &Tensor,
        train: bool,
    ) -> Var {
        let x = g.input(images.clone());
        let y = self.stem.forward(g, bd, ps, x);
        let y = if train {
            self.stem_bn.forward_train(g, bd, ps, y)
        } else {
            self.stem_bn.forward_eval(g, ps, y)
        };
        let mut y = g.relu(y);
        for b in &mut self.blocks {
            y = b.forward(g, bd, ps, y, train);
        }
        let pooled = g.global_avg_pool(y);
        self.head.forward(g, bd, ps, pooled)
    }

    /// Builds the tape for one training step.
    pub fn forward_loss(
        &mut self,
        ps: &ParamSet,
        images: &Tensor,
        labels: &[usize],
    ) -> (Graph, Binding, Var, Tensor) {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let logits = self.forward(&mut g, &mut bd, ps, images, true);
        let loss = g.softmax_cross_entropy(logits, labels);
        let lv = g.value(logits).clone();
        (g, bd, loss, lv)
    }

    /// Captures one training step into a replayable [`StepPlan`]. The
    /// capture forward runs on a throwaway clone of `self` so the
    /// running-statistics update of the capture pass is discarded — the
    /// first replay applies that batch's statistics itself, keeping the
    /// plan path's running stats in lockstep with the tape path.
    pub fn capture_step_plan(
        &self,
        ps: &ParamSet,
        images: &Tensor,
        labels: &[usize],
    ) -> Option<StepPlan> {
        let mut probe = self.clone();
        let (g, bd, loss, _) = probe.forward_loss(ps, images, labels);
        let plan = StepPlan::capture(&g, &bd, Some(loss), &[])?;
        debug_assert_eq!(
            plan.num_batch_norms(),
            self.batch_norms().len(),
            "plan BN count must match the model's BN layers"
        );
        Some(plan)
    }

    /// Replays a captured step on a fresh same-shape batch: forward +
    /// backward without a tape, then folds each BatchNorm's batch
    /// statistics into the running averages (the tape order of BN ops
    /// equals [`ResNet::batch_norms`] order). Returns the loss; gradients
    /// are read with [`StepPlan::write_grads_to`].
    pub fn replay_step_plan(
        &mut self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        images: &Tensor,
        labels: &[usize],
    ) -> f32 {
        let label_feed: [&[usize]; 1] = [labels];
        let feeds = Feeds { labels: &label_feed, ..Feeds::default() };
        let loss = plan.replay_step(ps, &[images], &feeds);
        for (i, bn) in self.batch_norms_mut().into_iter().enumerate() {
            let (mean, var) = plan.bn_batch_stats(i);
            bn.update_running_stats(mean, var);
        }
        loss
    }

    /// Every BatchNorm layer in forward order.
    fn batch_norms(&self) -> Vec<&BatchNorm2d> {
        let mut bns = vec![&self.stem_bn];
        for b in &self.blocks {
            bns.push(&b.bn1);
            bns.push(&b.bn2);
            if let Some((_, bn)) = &b.proj {
                bns.push(bn);
            }
        }
        bns
    }

    /// Every BatchNorm layer, mutably, in the same order as
    /// [`ResNet::batch_norms`].
    fn batch_norms_mut(&mut self) -> Vec<&mut BatchNorm2d> {
        let mut bns = vec![&mut self.stem_bn];
        for b in &mut self.blocks {
            bns.push(&mut b.bn1);
            bns.push(&mut b.bn2);
            if let Some((_, bn)) = &mut b.proj {
                bns.push(bn);
            }
        }
        bns
    }

    /// Builds an eval-mode (running-statistics) inference tape on a
    /// throwaway clone — eval never mutates BN state, but `forward` takes
    /// `&mut self` for the training path's sake. Returns graph/binding and
    /// the logits variable.
    pub fn forward_infer(&self, ps: &ParamSet, images: &Tensor) -> (Graph, Binding, Var) {
        let mut probe = self.clone();
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let logits = probe.forward(&mut g, &mut bd, ps, images, false);
        (g, bd, logits)
    }

    /// Captures the eval-mode forward into a forward-only [`StepPlan`].
    /// Eval BN folds gamma/beta and the running statistics into per-capture
    /// constants, so the plan is valid only while parameters *and* running
    /// stats stay frozen — exactly the serving contract.
    pub fn capture_infer_plan(&self, ps: &ParamSet, images: &Tensor) -> Option<StepPlan> {
        let (g, bd, logits) = self.forward_infer(ps, images);
        StepPlan::capture_forward(&g, &bd, &[logits])
    }

    /// Replays a captured eval forward on fresh same-shape images,
    /// returning the logits. The empty mask feed re-uses the captured
    /// folded-BN scale masks.
    pub fn replay_infer_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        images: &Tensor,
    ) -> Tensor {
        plan.replay_forward(ps, &[images], &Feeds::default());
        plan.output(0)
    }

    /// Running statistics `(mean, var)` of every BatchNorm layer in
    /// [`ResNet::batch_norms`] order — the non-parameter state a frozen
    /// artifact must carry alongside the checkpointed `ParamSet`.
    pub fn bn_running_stats(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        self.batch_norms()
            .iter()
            .map(|bn| (bn.running_mean.clone(), bn.running_var.clone()))
            .collect()
    }

    /// Restores statistics exported by [`ResNet::bn_running_stats`].
    pub fn set_bn_running_stats(&mut self, stats: &[(Vec<f32>, Vec<f32>)]) {
        let bns = self.batch_norms_mut();
        assert_eq!(stats.len(), bns.len(), "BN layer count mismatch");
        for (bn, (m, v)) in bns.into_iter().zip(stats) {
            assert_eq!(bn.running_mean.len(), m.len(), "BN channel count mismatch");
            bn.running_mean.copy_from_slice(m);
            bn.running_var.copy_from_slice(v);
        }
    }

    /// Replaces this model's BatchNorm running statistics with the
    /// weighted average of the shard clones' statistics (weights must sum
    /// to 1; use shard-example fractions). Deterministic: iterates shards
    /// in the order given.
    pub fn merge_shard_stats(&mut self, shards: &[(f32, &ResNet)]) {
        let shard_bns: Vec<Vec<&BatchNorm2d>> = shards.iter().map(|(_, m)| m.batch_norms()).collect();
        for (i, bn) in self.batch_norms_mut().into_iter().enumerate() {
            let sources: Vec<(f32, &BatchNorm2d)> = shards
                .iter()
                .zip(&shard_bns)
                .map(|((w, _), bns)| (*w, bns[i]))
                .collect();
            bn.set_stats_weighted(&sources);
        }
    }

    /// `(top-1, top-k)` accuracy over a dataset in evaluation mode.
    pub fn evaluate(
        &mut self,
        ps: &ParamSet,
        data: &Classification,
        chunk: usize,
        k: usize,
    ) -> (f64, f64) {
        let mut top1 = 0.0;
        let mut topk = 0.0;
        let mut total = 0usize;
        let n = data.len();
        let mut i = 0;
        // One tape reused across chunks: reset() keeps the node Vec's
        // capacity, so only the first chunk pays the growth.
        let mut g = Graph::new();
        while i < n {
            let idx: Vec<usize> = (i..(i + chunk).min(n)).collect();
            let (batch, labels) = data.gather(&idx);
            g.reset();
            let mut bd = Binding::new();
            let logits = self.forward(&mut g, &mut bd, ps, &batch, false);
            top1 += metrics::accuracy(g.value(logits), &labels) * labels.len() as f64;
            topk += metrics::top_k_accuracy(g.value(logits), &labels, k) * labels.len() as f64;
            total += labels.len();
            i += chunk;
        }
        (top1 / total.max(1) as f64, topk / total.max(1) as f64)
    }
}

impl crate::planned::Infer for ResNet {
    type Req = Vec<f32>;
    type Out = Vec<f32>;
    type RowState = ();
    type Batch = Tensor;

    fn zero_state(&self) {}

    fn coalesce_key(&self, _req: &Vec<f32>) -> Vec<usize> {
        Vec::new() // fixed shape: everything coalesces
    }

    fn assemble(&self, reqs: &[Vec<f32>], _states: &[()]) -> Tensor {
        const IMG: usize = 3 * 32 * 32;
        let b = reqs.len();
        let mut flat = Vec::with_capacity(b * IMG);
        for r in reqs {
            assert_eq!(r.len(), IMG, "ResNet request must be a 3×32×32 image");
            flat.extend_from_slice(r);
        }
        Tensor::from_vec(flat, &[b, 3, 32, 32])
    }

    fn infer_key(&self, batch: &Tensor) -> Vec<usize> {
        vec![batch.dim(0)]
    }

    fn capture_infer(&self, ps: &ParamSet, batch: &Tensor) -> Option<StepPlan> {
        self.capture_infer_plan(ps, batch)
    }

    fn replay_infer(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Tensor,
    ) -> Vec<(Vec<f32>, ())> {
        let logits = self.replay_infer_plan(plan, ps, batch);
        crate::planned::tensor_rows(&logits).into_iter().map(|r| (r, ())).collect()
    }

    fn infer_tape(&self, ps: &ParamSet, batch: &Tensor) -> Vec<(Vec<f32>, ())> {
        let (g, _bd, logits) = self.forward_infer(ps, batch);
        crate::planned::tensor_rows(g.value(logits)).into_iter().map(|r| (r, ())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_data::SynthImageNet;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny() -> (ParamSet, ResNet, SynthImageNet) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let m = ResNet::new(&mut ps, &mut rng, 4, 6);
        let d = SynthImageNet::generate(8, 6, 36, 12);
        (ps, m, d)
    }

    #[test]
    fn forward_shapes_and_untrained_loss() {
        let (ps, mut m, d) = tiny();
        let (batch, labels) = d.train.gather(&[0, 1, 2, 3]);
        let (g, _, loss, logits) = m.forward_loss(&ps, &batch, &labels);
        assert_eq!(logits.shape(), &[4, 6]);
        assert!((g.value(loss).item() - 6f32.ln()).abs() < 1.2);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let (mut ps, mut m, d) = tiny();
        let (batch, labels) = d.train.gather(&[0, 1, 2, 3]);
        let (mut g, bd, loss, _) = m.forward_loss(&ps, &batch, &labels);
        g.backward(loss);
        bd.write_grads(&g, &mut ps);
        for (_, p) in ps.iter() {
            assert!(p.grad.l2_norm() > 0.0, "no grad for {}", p.name);
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let (mut ps, mut m, d) = tiny();
        let (batch, labels) = d.train.gather(&(0..12).collect::<Vec<_>>());
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..6 {
            let (mut g, bd, loss, _) = m.forward_loss(&ps, &batch, &labels);
            if i == 0 {
                first = g.value(loss).item();
            }
            last = g.value(loss).item();
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            for (_, p) in ps.iter_mut() {
                let gr = p.grad.clone();
                p.value.axpy(-0.1, &gr);
                p.grad.fill_(0.0);
            }
        }
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    /// Eval-mode inference plan vs the live eval tape: bitwise logits on a
    /// fresh batch, after training passes have moved the BN running stats
    /// off their initial values (so the folded constants matter).
    #[test]
    fn infer_plan_matches_eval_tape_bitwise() {
        use crate::planned::Infer;
        let (ps, mut m, d) = tiny();
        let (batch, labels) = d.train.gather(&(0..8).collect::<Vec<_>>());
        for _ in 0..2 {
            let _ = m.forward_loss(&ps, &batch, &labels);
        }
        let (cap_batch, _) = d.train.gather(&[0, 1, 2]);
        let (fresh, _) = d.test.gather(&[3, 4, 5]);
        let mut plan = m.capture_infer(&ps, &cap_batch).expect("eval tape must capture");
        let planned = m.replay_infer(&mut plan, &ps, &fresh);
        let taped = m.infer_tape(&ps, &fresh);
        for ((a, ()), (b, ())) in planned.iter().zip(&taped) {
            assert_eq!(a.len(), 6);
            assert_eq!(a, b, "frozen-path logits must match the eval tape bitwise");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats_consistently() {
        let (mut ps, mut m, d) = tiny();
        // prime running stats with a couple of training passes
        let (batch, labels) = d.train.gather(&(0..12).collect::<Vec<_>>());
        for _ in 0..3 {
            let _ = m.forward_loss(&ps, &batch, &labels);
        }
        ps.zero_grad();
        let (t1, tk) = m.evaluate(&ps, &d.test, 6, 3);
        assert!((0.0..=1.0).contains(&t1));
        assert!(tk >= t1, "top-k must dominate top-1");
    }
}
