//! The pure-LSTM MNIST classifier of §5.1.1.
//!
//! Architecture, following the paper exactly (widths configurable): each
//! 28×28 image is consumed as 28 time steps of 28-vectors; a linear
//! transform lifts each step to `proj` dims; a single LSTM layer with
//! `hidden` units processes the sequence; the final hidden state feeds a
//! 10-way classifier. With `proj = hidden = 128` the LSTM cell kernel is
//! the paper's 256×512 matrix.

use crate::planned::StepPlan;
use legw_autograd::{Feeds, Graph, Var};
use legw_data::{metrics, Classification, SynthMnist};
use legw_nn::{Binding, Linear, LstmCell, ParamSet};
use legw_tensor::Tensor;
use rand::Rng;

/// Row-per-timestep LSTM classifier.
pub struct MnistLstm {
    proj: Linear,
    cell: LstmCell,
    classifier: Linear,
}

impl MnistLstm {
    /// Builds the model into `ps`. The paper's configuration is
    /// `proj = hidden = 128`; the experiments here default to 64 for speed
    /// (documented in DESIGN.md).
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, proj: usize, hidden: usize) -> Self {
        Self {
            proj: Linear::new(ps, rng, "mnist.proj", 28, proj, true),
            cell: LstmCell::new(ps, rng, "mnist.lstm", proj, hidden),
            classifier: Linear::new(ps, rng, "mnist.fc", hidden, 10, true),
        }
    }

    /// Runs the forward pass on a gathered batch `[B, 784]`, returning the
    /// logits variable.
    ///
    /// Sequence-hoisted: the 28 timesteps enter as ONE timestep-major
    /// `[28·B, 28]` block, so the projection + tanh run once over the whole
    /// sequence and the LSTM's input half collapses into a single GEMM
    /// ([`LstmCell::forward_seq_packed`]); only the small recurrent product
    /// stays inside the time loop. Matches the retained
    /// [`MnistLstm::forward_stepwise`] to ~1e-5 relative.
    pub fn forward(&self, g: &mut Graph, bd: &mut Binding, ps: &ParamSet, batch: &Tensor) -> Var {
        let b = batch.dim(0);
        let x = g.input(SynthMnist::row_steps_packed(batch));
        let p = self.proj.forward(g, bd, ps, x);
        let p = g.tanh(p);
        let state = self.cell.zero_state(g, b);
        let (_hs, st) = self.cell.forward_seq_packed(g, bd, ps, p, 28, b, state);
        self.classifier.forward(g, bd, ps, st.h)
    }

    /// The pre-hoisting reference forward: per step, one input clone, one
    /// projection GEMM, and one full `[B, proj+hid]` cell step. Kept for
    /// cross-checks and back-to-back benchmarking against
    /// [`MnistLstm::forward`].
    pub fn forward_stepwise(
        &self,
        g: &mut Graph,
        bd: &mut Binding,
        ps: &ParamSet,
        batch: &Tensor,
    ) -> Var {
        let steps = SynthMnist::row_steps(batch);
        let b = batch.dim(0);
        let mut state = self.cell.zero_state(g, b);
        for step in &steps {
            let x = g.input(step.clone());
            let p = self.proj.forward(g, bd, ps, x);
            let p = g.tanh(p);
            state = self.cell.step(g, bd, ps, p, state);
        }
        self.classifier.forward(g, bd, ps, state.h)
    }

    /// Builds the tape for one training step: returns the graph/binding,
    /// the scalar loss variable, and the logits value.
    pub fn forward_loss(
        &self,
        ps: &ParamSet,
        batch: &Tensor,
        labels: &[usize],
    ) -> (Graph, Binding, Var, Tensor) {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let logits = self.forward(&mut g, &mut bd, ps, batch);
        let loss = g.softmax_cross_entropy(logits, labels);
        let lv = g.value(logits).clone();
        (g, bd, loss, lv)
    }

    /// [`MnistLstm::forward_loss`] over the stepwise reference path —
    /// the cross-check / benchmark twin.
    pub fn forward_loss_stepwise(
        &self,
        ps: &ParamSet,
        batch: &Tensor,
        labels: &[usize],
    ) -> (Graph, Binding, Var, Tensor) {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let logits = self.forward_stepwise(&mut g, &mut bd, ps, batch);
        let loss = g.softmax_cross_entropy(logits, labels);
        let lv = g.value(logits).clone();
        (g, bd, loss, lv)
    }

    /// Captures one training step into a replayable [`StepPlan`]. The
    /// tape's input signature is `[packed rows, h0, c0]` (the order
    /// [`MnistLstm::forward`] creates them); labels enter as a feed.
    /// Returns `None` if the tape has an op the plan interpreter does not
    /// cover — callers keep the tape path.
    pub fn capture_step_plan(
        &self,
        ps: &ParamSet,
        batch: &Tensor,
        labels: &[usize],
    ) -> Option<StepPlan> {
        let (g, bd, loss, _) = self.forward_loss(ps, batch, labels);
        StepPlan::capture(&g, &bd, Some(loss), &[])
    }

    /// Replays a captured step on a fresh batch of the same size:
    /// forward + backward without building a tape. Returns the loss;
    /// gradients are read with [`StepPlan::write_grads_to`].
    pub fn replay_step_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Tensor,
        labels: &[usize],
    ) -> f32 {
        let b = batch.dim(0);
        let packed = SynthMnist::row_steps_packed(batch);
        let h0 = Tensor::zeros(&[b, self.cell.hidden()]);
        let c0 = Tensor::zeros(&[b, self.cell.hidden()]);
        let label_feed: [&[usize]; 1] = [labels];
        let feeds = Feeds { labels: &label_feed, ..Feeds::default() };
        plan.replay_step(ps, &[&packed, &h0, &c0], &feeds)
    }

    /// Forward-only replay of a captured step — loss without gradients,
    /// for benchmarking the replay interpreter against tape construction.
    pub fn replay_forward_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Tensor,
        labels: &[usize],
    ) -> f32 {
        let b = batch.dim(0);
        let packed = SynthMnist::row_steps_packed(batch);
        let h0 = Tensor::zeros(&[b, self.cell.hidden()]);
        let c0 = Tensor::zeros(&[b, self.cell.hidden()]);
        let label_feed: [&[usize]; 1] = [labels];
        let feeds = Feeds { labels: &label_feed, ..Feeds::default() };
        plan.replay_forward(ps, &[&packed, &h0, &c0], &feeds);
        plan.loss()
    }

    /// Builds a loss-free inference tape on a gathered batch `[B, 784]`,
    /// returning the graph/binding and the logits variable.
    pub fn forward_infer(&self, ps: &ParamSet, batch: &Tensor) -> (Graph, Binding, Var) {
        let mut g = Graph::new();
        let mut bd = Binding::new();
        let logits = self.forward(&mut g, &mut bd, ps, batch);
        (g, bd, logits)
    }

    /// Captures the inference forward into a forward-only [`StepPlan`]
    /// whose single output is the logits. Input signature is
    /// `[packed rows, h0, c0]`, same as the training capture.
    pub fn capture_infer_plan(&self, ps: &ParamSet, batch: &Tensor) -> Option<StepPlan> {
        let (g, bd, logits) = self.forward_infer(ps, batch);
        StepPlan::capture_forward(&g, &bd, &[logits])
    }

    /// Replays a captured inference plan on a fresh same-size batch,
    /// returning the logits `[B, 10]`.
    pub fn replay_infer_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Tensor,
    ) -> Tensor {
        let b = batch.dim(0);
        let packed = SynthMnist::row_steps_packed(batch);
        let h0 = Tensor::zeros(&[b, self.cell.hidden()]);
        let c0 = Tensor::zeros(&[b, self.cell.hidden()]);
        plan.replay_forward(ps, &[&packed, &h0, &c0], &Feeds::default());
        plan.output(0)
    }

    /// Top-1 accuracy over a dataset, evaluated in chunks of `chunk`.
    pub fn evaluate(&self, ps: &ParamSet, data: &Classification, chunk: usize) -> f64 {
        let mut correct = 0.0;
        let mut total = 0usize;
        let n = data.len();
        let mut i = 0;
        // One tape reused across chunks: reset() keeps the node Vec's
        // capacity, so only the first chunk pays the growth.
        let mut g = Graph::new();
        while i < n {
            let idx: Vec<usize> = (i..(i + chunk).min(n)).collect();
            let (batch, labels) = data.gather(&idx);
            g.reset();
            let mut bd = Binding::new();
            let logits = self.forward(&mut g, &mut bd, ps, &batch);
            correct += metrics::accuracy(g.value(logits), &labels) * labels.len() as f64;
            total += labels.len();
            i += chunk;
        }
        correct / total.max(1) as f64
    }
}

impl crate::planned::Infer for MnistLstm {
    type Req = Vec<f32>;
    type Out = Vec<f32>;
    type RowState = ();
    type Batch = Tensor;

    fn zero_state(&self) {}

    fn coalesce_key(&self, _req: &Vec<f32>) -> Vec<usize> {
        Vec::new() // fixed shape: everything coalesces
    }

    fn assemble(&self, reqs: &[Vec<f32>], _states: &[()]) -> Tensor {
        const IMG: usize = 28 * 28;
        let b = reqs.len();
        let mut flat = Vec::with_capacity(b * IMG);
        for r in reqs {
            assert_eq!(r.len(), IMG, "MNIST request must be 28×28 pixels");
            flat.extend_from_slice(r);
        }
        Tensor::from_vec(flat, &[b, IMG])
    }

    fn infer_key(&self, batch: &Tensor) -> Vec<usize> {
        vec![batch.dim(0)]
    }

    fn capture_infer(&self, ps: &ParamSet, batch: &Tensor) -> Option<StepPlan> {
        self.capture_infer_plan(ps, batch)
    }

    fn replay_infer(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Tensor,
    ) -> Vec<(Vec<f32>, ())> {
        let logits = self.replay_infer_plan(plan, ps, batch);
        crate::planned::tensor_rows(&logits).into_iter().map(|r| (r, ())).collect()
    }

    fn infer_tape(&self, ps: &ParamSet, batch: &Tensor) -> Vec<(Vec<f32>, ())> {
        let (g, _bd, logits) = self.forward_infer(ps, batch);
        crate::planned::tensor_rows(g.value(logits)).into_iter().map(|r| (r, ())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny() -> (ParamSet, MnistLstm, SynthMnist) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let m = MnistLstm::new(&mut ps, &mut rng, 16, 16);
        let d = SynthMnist::generate(2, 60, 20);
        (ps, m, d)
    }

    #[test]
    fn forward_shapes() {
        let (ps, m, d) = tiny();
        let (batch, labels) = d.train.gather(&[0, 1, 2, 3]);
        let (g, _, loss, logits) = m.forward_loss(&ps, &batch, &labels);
        assert_eq!(logits.shape(), &[4, 10]);
        assert!(g.value(loss).item() > 0.0);
        // untrained loss near ln(10)
        assert!((g.value(loss).item() - 10f32.ln()).abs() < 1.0);
    }

    #[test]
    fn backward_reaches_all_parameters() {
        let (mut ps, m, d) = tiny();
        let (batch, labels) = d.train.gather(&[0, 1]);
        let (mut g, bd, loss, _) = m.forward_loss(&ps, &batch, &labels);
        g.backward(loss);
        bd.write_grads(&g, &mut ps);
        for (_, p) in ps.iter() {
            assert!(p.grad.l2_norm() > 0.0, "no grad for {}", p.name);
        }
    }

    #[test]
    fn single_sgd_steps_reduce_loss_on_fixed_batch() {
        let (mut ps, m, d) = tiny();
        let (batch, labels) = d.train.gather(&(0..20).collect::<Vec<_>>());
        let mut losses = Vec::new();
        for _ in 0..25 {
            let (mut g, bd, loss, _) = m.forward_loss(&ps, &batch, &labels);
            losses.push(g.value(loss).item());
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            for (_, p) in ps.iter_mut() {
                let gr = p.grad.clone();
                p.value.axpy(-0.5, &gr);
                p.grad.fill_(0.0);
            }
        }
        // lr 0.5 eventually overshoots on this tiny batch (expected for raw
        // SGD); assert that optimisation made clear progress at some point.
        let best = losses.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(
            best < losses[0] * 0.92,
            "loss must decrease on a fixed batch: {losses:?}"
        );
    }

    /// Hoisted forward/loss/grads vs the retained stepwise reference:
    /// within 1e-5 relative (the hoisting reassociates the cell GEMM's
    /// k-sum at the input/hidden boundary).
    #[test]
    fn hoisted_forward_matches_stepwise_reference() {
        let (ps, m, d) = tiny();
        let (batch, labels) = d.train.gather(&[0, 1, 2, 3, 4]);
        let run = |hoisted: bool, ps: &ParamSet| -> (Tensor, f32, Vec<(String, Tensor)>) {
            let (mut g, bd, loss, logits) = if hoisted {
                m.forward_loss(ps, &batch, &labels)
            } else {
                m.forward_loss_stepwise(ps, &batch, &labels)
            };
            let lv = g.value(loss).item();
            g.backward(loss);
            let mut ps2 = ps.clone();
            bd.write_grads(&g, &mut ps2);
            let grads =
                ps2.iter().map(|(_, p)| (p.name.clone(), p.grad.clone())).collect();
            (logits, lv, grads)
        };
        let (lh, lossh, gh) = run(true, &ps);
        let (lu, lossu, gu) = run(false, &ps);
        assert!((lossh - lossu).abs() <= 1e-5 * (1.0 + lossu.abs()));
        for (a, b) in lh.as_slice().iter().zip(lu.as_slice()) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "logits: {a} vs {b}");
        }
        for ((name, ga), (_, gb)) in gh.iter().zip(&gu) {
            for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{name} grad: {a} vs {b}");
            }
        }
    }

    /// Forward-only inference plan vs the live tape: bitwise logits on a
    /// batch the plan was never captured on, via the `Infer` surface.
    #[test]
    fn infer_plan_matches_tape_bitwise() {
        use crate::planned::Infer;
        let (ps, m, d) = tiny();
        let (cap_batch, _) = d.train.gather(&[0, 1, 2]);
        let (batch, _) = d.train.gather(&[7, 8, 9]);
        let mut plan = m.capture_infer(&ps, &cap_batch).expect("inference tape must capture");
        let planned = m.replay_infer(&mut plan, &ps, &batch);
        let taped = m.infer_tape(&ps, &batch);
        assert_eq!(planned.len(), 3);
        for ((a, ()), (b, ())) in planned.iter().zip(&taped) {
            assert_eq!(a.len(), 10);
            assert_eq!(a, b, "frozen-path logits must match the tape bitwise");
        }
    }

    #[test]
    fn evaluate_runs_in_chunks_and_is_chance_level_untrained() {
        let (ps, m, d) = tiny();
        let acc = m.evaluate(&ps, &d.test, 7);
        assert!((0.0..=1.0).contains(&acc));
        // untrained should be near 10% (allow broad band)
        assert!(acc < 0.5, "untrained accuracy suspiciously high: {acc}");
    }
}
