//! The PTB language model of §5.1.2: embedding → 2-layer LSTM → softmax,
//! trained with stateful truncated BPTT.

use crate::planned::StepPlan;
use legw_autograd::{Feeds, Graph, Var};
use legw_data::{LmBatch, SynthPtb};
use legw_nn::{Binding, DropCtx, Dropout, Embedding, Linear, Lstm, LstmState, ParamSet};
use legw_tensor::Tensor;
use rand::Rng;

/// Model dimensions; mirrors the paper's PTB-small/PTB-large split at
/// reduced scale.
#[derive(Clone, Copy, Debug)]
pub struct PtbLmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width (paper: 200 small / 1500 large).
    pub embed: usize,
    /// LSTM hidden width per layer (paper: 200 small / 1500 large).
    pub hidden: usize,
    /// Number of LSTM layers (paper: 2).
    pub layers: usize,
    /// Dropout keep probability on the embedding output and the pre-head
    /// activation (`1.0` disables dropout, matching the historical model).
    /// Masks come from counter-based per-row streams ([`DropCtx`]), so
    /// training with dropout stays deterministic and shard-count-invariant
    /// under the data-parallel executor.
    pub keep: f32,
}

impl PtbLmConfig {
    /// A scaled-down PTB-small analogue.
    pub fn small(vocab: usize) -> Self {
        Self { vocab, embed: 48, hidden: 48, layers: 2, keep: 1.0 }
    }

    /// A scaled-down PTB-large analogue.
    pub fn large(vocab: usize) -> Self {
        Self { vocab, embed: 96, hidden: 96, layers: 2, keep: 1.0 }
    }
}

/// Detached recurrent state carried across BPTT windows: `(h, c)` values
/// per layer.
#[derive(Clone)]
pub struct LmState(Vec<(Tensor, Tensor)>);

impl LmState {
    /// Zero state for `batch` tracks.
    pub fn zeros(cfg: &PtbLmConfig, batch: usize) -> Self {
        Self(
            (0..cfg.layers)
                .map(|_| {
                    (
                        Tensor::zeros(&[batch, cfg.hidden]),
                        Tensor::zeros(&[batch, cfg.hidden]),
                    )
                })
                .collect(),
        )
    }

    /// Rows `[start, end)` of every layer's `(h, c)` — the state slice for
    /// one batch shard in the data-parallel executor.
    pub fn slice_rows(&self, start: usize, end: usize) -> LmState {
        Self(
            self.0
                .iter()
                .map(|(h, c)| (h.rows(start, end), c.rows(start, end)))
                .collect(),
        )
    }

    /// Reassembles per-shard carried states (given in shard order) back
    /// into the full-batch state. Inverse of [`LmState::slice_rows`].
    pub fn concat(parts: &[LmState]) -> LmState {
        assert!(!parts.is_empty(), "concat of zero states");
        let layers = parts[0].0.len();
        Self(
            (0..layers)
                .map(|l| {
                    let hs: Vec<&Tensor> = parts.iter().map(|p| &p.0[l].0).collect();
                    let cs: Vec<&Tensor> = parts.iter().map(|p| &p.0[l].1).collect();
                    (Tensor::concat_outer(&hs), Tensor::concat_outer(&cs))
                })
                .collect(),
        )
    }
}

/// The language model.
pub struct PtbLm {
    cfg: PtbLmConfig,
    embedding: Embedding,
    lstm: Lstm,
    head: Linear,
    /// Present when `cfg.keep < 1.0`; applied to each timestep's embedding
    /// output (mask stream site `2t`) and pre-head activation (site
    /// `2t + 1`), the paper's standard non-recurrent LSTM-LM placement.
    drop: Option<Dropout>,
}

impl PtbLm {
    /// Builds the model into `ps`.
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, cfg: PtbLmConfig) -> Self {
        Self {
            cfg,
            embedding: Embedding::new(ps, rng, "lm.embed", cfg.vocab, cfg.embed),
            lstm: Lstm::new(ps, rng, "lm.lstm", cfg.embed, cfg.hidden, cfg.layers),
            head: Linear::new(ps, rng, "lm.head", cfg.hidden, cfg.vocab, true),
            drop: (cfg.keep < 1.0).then(|| Dropout::new(cfg.keep)),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PtbLmConfig {
        &self.cfg
    }

    /// Builds the tape for one BPTT window without dropout (evaluation, or
    /// training a `keep = 1.0` model). Returns graph/binding, the mean
    /// per-token loss variable, the mean NLL (nats/token) as f64, and the
    /// detached state to carry into the next window.
    pub fn forward_loss(
        &self,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
    ) -> (Graph, Binding, Var, f64, LmState) {
        self.forward_loss_with(ps, batch, state, None)
    }

    /// [`PtbLm::forward_loss`] with an optional dropout context. `Some`
    /// enables the training-mode masks (a no-op for `keep = 1.0` models);
    /// `None` is the evaluation path. Runs the sequence-hoisted LSTM path
    /// ([`Lstm::forward_seq`]).
    pub fn forward_loss_with(
        &self,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
        drop: Option<&DropCtx>,
    ) -> (Graph, Binding, Var, f64, LmState) {
        self.forward_loss_inner(ps, batch, state, drop, false)
    }

    /// [`PtbLm::forward_loss`] over the retained stepwise LSTM reference
    /// ([`Lstm::forward_seq_stepwise`]) — the cross-check / benchmark twin
    /// of the hoisted path.
    pub fn forward_loss_stepwise(
        &self,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
    ) -> (Graph, Binding, Var, f64, LmState) {
        self.forward_loss_inner(ps, batch, state, None, true)
    }

    fn forward_loss_inner(
        &self,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
        drop: Option<&DropCtx>,
        stepwise: bool,
    ) -> (Graph, Binding, Var, f64, LmState) {
        let mut g = Graph::new();
        let (bd, loss, finals) = self.window_tape(&mut g, ps, batch, state, drop, stepwise);
        let nll = g.value(loss).item() as f64;
        let carried = LmState(
            finals
                .iter()
                .map(|s| (g.value(s.h).clone(), g.value(s.c).clone()))
                .collect(),
        );
        (g, bd, loss, nll, carried)
    }

    /// Records one BPTT window onto an existing tape (callers reuse one
    /// graph across windows via [`Graph::reset`]). Returns the binding,
    /// the mean per-token loss variable, and the final per-layer states.
    fn window_tape(
        &self,
        mut g: &mut Graph,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
        drop: Option<&DropCtx>,
        stepwise: bool,
    ) -> (Binding, Var, Vec<LstmState>) {
        let mut bd = Binding::new();
        let dropout = match (&self.drop, drop) {
            (Some(d), Some(ctx)) => Some((d, ctx)),
            _ => None,
        };
        let states: Vec<LstmState> = state
            .0
            .iter()
            .map(|(h, c)| LstmState { h: g.input(h.clone()), c: g.input(c.clone()) })
            .collect();

        let xs: Vec<Var> = batch
            .inputs
            .iter()
            .enumerate()
            .map(|(t, ids)| {
                let e = self.embedding.forward(&mut g, &mut bd, ps, ids);
                match dropout {
                    Some((d, ctx)) => d.forward_train(&mut g, e, ctx, 2 * t as u64),
                    None => e,
                }
            })
            .collect();
        let (outputs, final_states) = if stepwise {
            self.lstm.forward_seq_stepwise(&mut g, &mut bd, ps, &xs, states)
        } else {
            self.lstm.forward_seq(&mut g, &mut bd, ps, &xs, states)
        };

        let t_len = outputs.len();
        let mut total: Option<Var> = None;
        for (t, (out, tgt)) in outputs.iter().zip(&batch.targets).enumerate() {
            let h = match dropout {
                Some((d, ctx)) => d.forward_train(&mut g, *out, ctx, 2 * t as u64 + 1),
                None => *out,
            };
            let logits = self.head.forward(&mut g, &mut bd, ps, h);
            let step_loss = g.softmax_cross_entropy(logits, tgt);
            total = Some(match total {
                Some(acc) => g.add(acc, step_loss),
                None => step_loss,
            });
        }
        let loss = g.scale(total.expect("window has at least one step"), 1.0 / t_len as f32);
        (bd, loss, final_states)
    }

    /// Captures one BPTT window into a replayable [`StepPlan`] whose
    /// outputs are the final per-layer `[h, c]` states (so replays can
    /// carry state across windows). Token ids, targets, and dropout masks
    /// enter as feeds. Capture with the dropout context the training loop
    /// will replay with — the mask *count* is frozen into the plan, the
    /// mask *values* are per-replay feeds.
    pub fn capture_window_plan(
        &self,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
        drop: Option<&DropCtx>,
    ) -> Option<StepPlan> {
        let mut g = Graph::new();
        let (bd, loss, finals) = self.window_tape(&mut g, ps, batch, state, drop, false);
        let outputs: Vec<Var> = finals.iter().flat_map(|s| [s.h, s.c]).collect();
        StepPlan::capture(&g, &bd, Some(loss), &outputs)
    }

    /// Replays a captured window on a fresh batch/state of the same shape:
    /// forward + backward without a tape. Mirrors
    /// [`PtbLm::forward_loss_with`]: returns the mean NLL and the detached
    /// carried state; gradients are read with [`StepPlan::write_grads_to`].
    pub fn replay_window_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &LmBatch,
        state: &LmState,
        drop: Option<&DropCtx>,
    ) -> (f64, LmState) {
        let inputs: Vec<&Tensor> = state.0.iter().flat_map(|(h, c)| [h, c]).collect();
        let ids: Vec<&[usize]> = batch.inputs.iter().map(|v| v.as_slice()).collect();
        let labels: Vec<&[usize]> = batch.targets.iter().map(|v| v.as_slice()).collect();
        // Mask feed order = tape op order: every embedding-site mask
        // (site 2t, t ascending) precedes every pre-head mask (site 2t+1)
        // because the xs loop records all its dropouts before the loss loop.
        let mask_store: Vec<Tensor> = match (&self.drop, drop) {
            (Some(d), Some(ctx)) => {
                let b = batch.tracks();
                let t_len = batch.inputs.len();
                let mut ms = Vec::with_capacity(2 * t_len);
                ms.extend((0..t_len).map(|t| d.mask(b, self.cfg.embed, ctx, 2 * t as u64)));
                ms.extend(
                    (0..t_len).map(|t| d.mask(b, self.cfg.hidden, ctx, 2 * t as u64 + 1)),
                );
                ms
            }
            _ => Vec::new(),
        };
        let mask_refs: Vec<&Tensor> = mask_store.iter().collect();
        let feeds = Feeds { ids: &ids, labels: &labels, masks: &mask_refs };
        let nll = plan.replay_step(ps, &inputs, &feeds) as f64;
        let carried = LmState(
            (0..state.0.len())
                .map(|l| (plan.output(2 * l), plan.output(2 * l + 1)))
                .collect(),
        );
        (nll, carried)
    }

    /// Records a loss-free next-token inference window onto `g`: embeds the
    /// time-major ids, runs the hoisted LSTM from `state`, and applies the
    /// head at the *last* position only (a streaming next-token query).
    /// No dropout — inference is always eval-mode. Returns the binding, the
    /// logits variable `[B, vocab]`, and the final per-layer states.
    fn infer_window_tape(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        inputs_tm: &[Vec<usize>],
        state: &LmState,
    ) -> (Binding, Var, Vec<LstmState>) {
        let mut bd = Binding::new();
        let mut states = Vec::with_capacity(state.0.len());
        for (h, c) in &state.0 {
            states.push(LstmState { h: g.input(h.clone()), c: g.input(c.clone()) });
        }
        let mut xs = Vec::with_capacity(inputs_tm.len());
        for ids in inputs_tm {
            xs.push(self.embedding.forward(g, &mut bd, ps, ids));
        }
        let (outputs, finals) = self.lstm.forward_seq(g, &mut bd, ps, &xs, states);
        let last = *outputs.last().expect("window has at least one step");
        let logits = self.head.forward(g, &mut bd, ps, last);
        (bd, logits, finals)
    }

    /// Captures a next-token inference window into a forward-only
    /// [`StepPlan`]: output 0 is the last position's logits `[B, vocab]`;
    /// outputs `1 + 2l` / `2 + 2l` are layer `l`'s final `h` / `c`, so
    /// replays carry streaming state across requests. Inputs are the
    /// per-layer `[h, c]` states; token ids enter as feeds.
    pub fn capture_infer_plan(
        &self,
        ps: &ParamSet,
        inputs_tm: &[Vec<usize>],
        state: &LmState,
    ) -> Option<StepPlan> {
        let mut g = Graph::new();
        let (bd, logits, finals) = self.infer_window_tape(&mut g, ps, inputs_tm, state);
        let mut outputs = vec![logits];
        outputs.extend(finals.iter().flat_map(|s| [s.h, s.c]));
        StepPlan::capture_forward(&g, &bd, &outputs)
    }

    /// Replays a captured inference window on fresh tokens/state of the
    /// same shape. Returns the last-position logits and the carried state.
    pub fn replay_infer_plan(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        inputs_tm: &[Vec<usize>],
        state: &LmState,
    ) -> (Tensor, LmState) {
        let inputs: Vec<&Tensor> = state.0.iter().flat_map(|(h, c)| [h, c]).collect();
        let ids: Vec<&[usize]> = inputs_tm.iter().map(|v| v.as_slice()).collect();
        let feeds = Feeds { ids: &ids, ..Feeds::default() };
        plan.replay_forward(ps, &inputs, &feeds);
        let carried = LmState(
            (0..state.0.len())
                .map(|l| (plan.output(1 + 2 * l), plan.output(2 + 2 * l)))
                .collect(),
        );
        (plan.output(0), carried)
    }

    /// Mean NLL (nats/token) over a full split; exp of this is perplexity.
    pub fn evaluate_nll(&self, ps: &ParamSet, data: &SynthPtb, train_split: bool, batch: usize, seq_len: usize) -> f64 {
        let mut state = LmState::zeros(&self.cfg, batch);
        let mut total = 0.0f64;
        let mut count = 0usize;
        // One tape reused across windows: reset() keeps the node Vec's
        // capacity, so only the first window pays the growth.
        let mut g = Graph::new();
        for window in data.batches(train_split, batch, seq_len) {
            g.reset();
            let (_bd, loss, finals) = self.window_tape(&mut g, ps, &window, &state, None, false);
            total += g.value(loss).item() as f64;
            count += 1;
            state = LmState(
                finals
                    .iter()
                    .map(|s| (g.value(s.h).clone(), g.value(s.c).clone()))
                    .collect(),
            );
        }
        total / count.max(1) as f64
    }

    /// Perplexity over the validation stream.
    pub fn evaluate_perplexity(&self, ps: &ParamSet, data: &SynthPtb, batch: usize, seq_len: usize) -> f64 {
        self.evaluate_nll(ps, data, false, batch, seq_len).exp()
    }
}

impl crate::planned::Infer for PtbLm {
    type Req = Vec<usize>;
    type Out = Vec<f32>;
    type RowState = LmState;
    /// Time-major token ids plus the gathered carried state.
    type Batch = (Vec<Vec<usize>>, LmState);

    fn zero_state(&self) -> LmState {
        LmState::zeros(&self.cfg, 1)
    }

    fn coalesce_key(&self, req: &Vec<usize>) -> Vec<usize> {
        // Only equal-length windows coalesce: padding a recurrent stream
        // would corrupt the carried state of the padded rows.
        vec![req.len()]
    }

    fn assemble(&self, reqs: &[Vec<usize>], states: &[LmState]) -> Self::Batch {
        let b = reqs.len();
        let t_len = reqs[0].len();
        assert!(t_len > 0, "empty token window");
        let mut tm = vec![vec![0usize; b]; t_len];
        for (bi, r) in reqs.iter().enumerate() {
            assert_eq!(r.len(), t_len, "coalesced LM requests must share a window length");
            for (ti, &tok) in r.iter().enumerate() {
                tm[ti][bi] = tok;
            }
        }
        (tm, LmState::concat(states))
    }

    fn infer_key(&self, batch: &Self::Batch) -> Vec<usize> {
        vec![batch.0[0].len(), batch.0.len()] // [B, T]
    }

    fn capture_infer(&self, ps: &ParamSet, batch: &Self::Batch) -> Option<StepPlan> {
        self.capture_infer_plan(ps, &batch.0, &batch.1)
    }

    fn replay_infer(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Self::Batch,
    ) -> Vec<(Vec<f32>, LmState)> {
        let (logits, carried) = self.replay_infer_plan(plan, ps, &batch.0, &batch.1);
        crate::planned::tensor_rows(&logits)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, carried.slice_rows(i, i + 1)))
            .collect()
    }

    fn infer_tape(&self, ps: &ParamSet, batch: &Self::Batch) -> Vec<(Vec<f32>, LmState)> {
        let mut g = Graph::new();
        let (_bd, logits, finals) = self.infer_window_tape(&mut g, ps, &batch.0, &batch.1);
        let carried = LmState(
            finals
                .iter()
                .map(|s| (g.value(s.h).clone(), g.value(s.c).clone()))
                .collect(),
        );
        crate::planned::tensor_rows(g.value(logits))
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, carried.slice_rows(i, i + 1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny() -> (ParamSet, PtbLm, SynthPtb) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PtbLmConfig { vocab: 30, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
        let m = PtbLm::new(&mut ps, &mut rng, cfg);
        let d = SynthPtb::generate(4, 30, 4, 4000, 800);
        (ps, m, d)
    }

    #[test]
    fn untrained_nll_near_uniform() {
        let (ps, m, d) = tiny();
        let nll = m.evaluate_nll(&ps, &d, false, 4, 8);
        assert!((nll - (30f64).ln()).abs() < 0.6, "nll {nll} vs ln30 {}", 30f64.ln());
    }

    #[test]
    fn state_carries_between_windows() {
        let (ps, m, d) = tiny();
        let windows = d.batches(true, 4, 6);
        let s0 = LmState::zeros(m.config(), 4);
        let (_, _, _, _, s1) = m.forward_loss(&ps, &windows[0], &s0);
        // state moved away from zero
        assert!(s1.0[0].0.l2_norm() > 0.0);
        assert!(s1.0[1].1.l2_norm() > 0.0);
        // feeding it into the next window must change the loss vs zero state
        let (_, _, _, nll_carried, _) = m.forward_loss(&ps, &windows[1], &s1);
        let (_, _, _, nll_fresh, _) = m.forward_loss(&ps, &windows[1], &s0);
        assert!((nll_carried - nll_fresh).abs() > 1e-7);
    }

    #[test]
    fn training_on_fixed_window_reduces_loss() {
        let (mut ps, m, d) = tiny();
        let windows = d.batches(true, 8, 6);
        let s0 = LmState::zeros(m.config(), 8);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..10 {
            let (mut g, bd, loss, nll, _) = m.forward_loss(&ps, &windows[0], &s0);
            if i == 0 {
                first = nll;
            }
            last = nll;
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            for (_, p) in ps.iter_mut() {
                let gr = p.grad.clone();
                p.value.axpy(-1.0, &gr);
                p.grad.fill_(0.0);
            }
        }
        assert!(last < first * 0.98, "loss should fall: {first} → {last}");
    }

    /// Hoisted vs stepwise LSTM path through the full LM: loss, carried
    /// state, and every parameter gradient within 1e-5 relative.
    #[test]
    fn hoisted_window_matches_stepwise_reference() {
        let (ps, m, d) = tiny();
        let windows = d.batches(true, 5, 7);
        let s0 = LmState::zeros(m.config(), 5);
        let run = |hoisted: bool| -> (f64, LmState, Vec<(String, Tensor)>) {
            let (mut g, bd, loss, nll, carried) = if hoisted {
                m.forward_loss(&ps, &windows[0], &s0)
            } else {
                m.forward_loss_stepwise(&ps, &windows[0], &s0)
            };
            g.backward(loss);
            let mut ps2 = ps.clone();
            bd.write_grads(&g, &mut ps2);
            let grads = ps2.iter().map(|(_, p)| (p.name.clone(), p.grad.clone())).collect();
            (nll, carried, grads)
        };
        let (nh, ch, gh) = run(true);
        let (nu, cu, gu) = run(false);
        assert!((nh - nu).abs() <= 1e-5 * (1.0 + nu.abs()), "nll: {nh} vs {nu}");
        for ((h1, c1), (h2, c2)) in ch.0.iter().zip(&cu.0) {
            for (a, b) in h1
                .as_slice()
                .iter()
                .zip(h2.as_slice())
                .chain(c1.as_slice().iter().zip(c2.as_slice()))
            {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "state: {a} vs {b}");
            }
        }
        for ((name, ga), (_, gb)) in gh.iter().zip(&gu) {
            for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{name} grad: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dropout_masks_apply_only_with_context() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PtbLmConfig { vocab: 30, embed: 12, hidden: 12, layers: 2, keep: 0.7 };
        let m = PtbLm::new(&mut ps, &mut rng, cfg);
        let d = SynthPtb::generate(4, 30, 4, 4000, 800);
        let w = d.batches(true, 4, 6);
        let s0 = LmState::zeros(m.config(), 4);
        let ctx = DropCtx { seed: 1, step: 0, row0: 0 };
        let (_, _, _, nll_eval, _) = m.forward_loss(&ps, &w[0], &s0);
        let (_, _, _, nll_train, _) = m.forward_loss_with(&ps, &w[0], &s0, Some(&ctx));
        assert_ne!(nll_eval, nll_train, "masks must perturb the training loss");
        let (_, _, _, nll_replay, _) = m.forward_loss_with(&ps, &w[0], &s0, Some(&ctx));
        assert_eq!(nll_train, nll_replay, "same stream key replays the same masks");
    }

    /// Forward-only inference plan vs the live tape, with carried state:
    /// bitwise logits and carried `(h, c)` on fresh tokens and a fresh
    /// (non-zero) state, via the `Infer` surface.
    #[test]
    fn infer_plan_matches_tape_and_carries_state() {
        use crate::planned::Infer;
        let (ps, m, _d) = tiny();
        let reqs: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let states = vec![m.zero_state(); 3];
        let batch = m.assemble(&reqs, &states);
        let mut plan = m.capture_infer(&ps, &batch).expect("inference tape must capture");

        // First window primes a non-zero carried state per row.
        let first = m.replay_infer(&mut plan, &ps, &batch);
        assert!(first[0].1 .0[0].0.l2_norm() > 0.0, "state must move off zero");

        // Second window replays from the carried states; tape must agree.
        let reqs2: Vec<Vec<usize>> = vec![vec![9, 8, 7], vec![6, 5, 4], vec![3, 2, 1]];
        let states2: Vec<LmState> = first.iter().map(|(_, s)| s.clone()).collect();
        let batch2 = m.assemble(&reqs2, &states2);
        let planned = m.replay_infer(&mut plan, &ps, &batch2);
        let taped = m.infer_tape(&ps, &batch2);
        for ((la, sa), (lb, sb)) in planned.iter().zip(&taped) {
            assert_eq!(la, lb, "frozen-path logits must match the tape bitwise");
            for ((ha, ca), (hb, cb)) in sa.0.iter().zip(&sb.0) {
                assert_eq!(ha.as_slice(), hb.as_slice(), "carried h must match");
                assert_eq!(ca.as_slice(), cb.as_slice(), "carried c must match");
            }
        }
    }

    #[test]
    fn perplexity_bounded_by_vocab_for_sane_models() {
        let (ps, m, d) = tiny();
        let ppl = m.evaluate_perplexity(&ps, &d, 4, 8);
        assert!(ppl > d.perplexity_floor());
        assert!(ppl < 30.0 * 3.0, "untrained ppl should be near vocab size, got {ppl}");
    }
}
