//! Captured-plan execution of one model training step.
//!
//! [`StepPlan`] glues a [`legw_autograd::Plan`] to the `ParamSet` world:
//! it captures a just-built tape using the tape's own positional input
//! signature ([`legw_autograd::Graph::input_vars`]) and the binding's
//! parameter order ([`legw_nn::Binding::bound`]), then replays steps
//! against fresh batch tensors with the parameter *values* read straight
//! from the store and the parameter *gradients* written back by
//! [`ParamId`]. Each model exposes a `capture_*_plan` constructor that
//! knows its forward's input order and a `replay_*` driver that rebuilds
//! the input/feed lists for a new batch.
//!
//! Replays skip all tape recording and (steady-state) all pool
//! allocation; see `legw-autograd`'s plan module for the machinery.

use legw_autograd::{CaptureSpec, Feeds, Graph, Plan, PlanStats, Var};
use legw_nn::{Binding, GradBuffer, ParamId, ParamSet};
use legw_tensor::Tensor;

/// A captured training-step plan plus the parameter wiring needed to
/// replay it against a [`ParamSet`].
pub struct StepPlan {
    plan: Plan,
    ids: Vec<ParamId>,
}

impl StepPlan {
    /// Captures the tape `g` into a plan. `inputs` are the tape's
    /// [`Graph::input`] leaves in creation order; `params` are the
    /// binding's bound parameters in binding order. Returns `None` when
    /// the tape contains something the plan interpreter does not cover —
    /// callers fall back to the tape path.
    pub fn capture(g: &Graph, bd: &Binding, loss: Option<Var>, outputs: &[Var]) -> Option<Self> {
        let params: Vec<Var> = bd.bound().iter().map(|&(_, v)| v).collect();
        let ids: Vec<ParamId> = bd.bound().iter().map(|&(id, _)| id).collect();
        let spec = CaptureSpec { inputs: g.input_vars(), params: &params, loss, outputs };
        Plan::capture(g, &spec).map(|plan| Self { plan, ids })
    }

    /// Forward-only capture for inference serving: same wiring as
    /// [`StepPlan::capture`], but via [`Plan::capture_forward`] — no
    /// backward schedule, no gradient buffers, and a forward-liveness
    /// arena. Replays run through [`StepPlan::replay_forward`];
    /// the backward entry points panic on a plan captured this way.
    pub fn capture_forward(g: &Graph, bd: &Binding, outputs: &[Var]) -> Option<Self> {
        let params: Vec<Var> = bd.bound().iter().map(|&(_, v)| v).collect();
        let ids: Vec<ParamId> = bd.bound().iter().map(|&(id, _)| id).collect();
        let spec = CaptureSpec { inputs: g.input_vars(), params: &params, loss: None, outputs };
        Plan::capture_forward(g, &spec).map(|plan| Self { plan, ids })
    }

    fn param_values<'a>(&self, ps: &'a ParamSet) -> Vec<&'a Tensor> {
        self.ids.iter().map(|&id| ps.value(id)).collect()
    }

    /// Forward + backward-from-loss replay; returns the loss value.
    pub fn replay_step(&mut self, ps: &ParamSet, inputs: &[&Tensor], feeds: &Feeds) -> f32 {
        let pv = self.param_values(ps);
        self.plan.replay_step(inputs, &pv, feeds);
        self.plan.loss()
    }

    /// Forward-only replay (outputs readable afterwards).
    pub fn replay_forward(&mut self, ps: &ParamSet, inputs: &[&Tensor], feeds: &Feeds) {
        let pv = self.param_values(ps);
        self.plan.replay_forward(inputs, &pv, feeds);
    }

    /// Backward replay seeded at the plan outputs (one seed per output,
    /// in output order) — the encoder half of a split plan/tape model.
    pub fn replay_backward(&mut self, ps: &ParamSet, inputs: &[&Tensor], seeds: &[&Tensor]) {
        let pv = self.param_values(ps);
        self.plan.replay_backward(inputs, &pv, seeds);
    }

    /// The loss value of the last replay (loss-mode plans).
    pub fn loss(&self) -> f32 {
        self.plan.loss()
    }

    /// Output `k`'s value after a forward replay. The returned tensor is a
    /// copy-on-write alias — drop it before the next replay or that replay
    /// pays one buffer copy for the slot.
    pub fn output(&self, k: usize) -> Tensor {
        self.plan.output(k)
    }

    /// Batch statistics `(mean, var)` of the `i`-th BatchNorm op (tape
    /// order) from the last forward replay.
    pub fn bn_batch_stats(&self, i: usize) -> (&[f32], &[f32]) {
        self.plan.bn_batch_stats(i)
    }

    /// Number of BatchNorm ops in the plan.
    pub fn num_batch_norms(&self) -> usize {
        self.plan.num_batch_norms()
    }

    /// Accumulates the last replay's parameter gradients into `buf`,
    /// visiting parameters in binding order — the replay twin of
    /// [`Binding::write_grads_to`].
    pub fn write_grads_to(&self, buf: &mut GradBuffer) {
        for (k, &id) in self.ids.iter().enumerate() {
            if let Some(grad) = self.plan.param_grad(k) {
                buf.accumulate(id, grad);
            }
        }
    }

    /// Static plan statistics (schedule/arena sizes).
    pub fn stats(&self) -> PlanStats {
        self.plan.stats()
    }

    /// One-line schedule summary (instruction counts by kind, arena and
    /// scratch footprints) — see [`Plan::describe`].
    pub fn describe(&self) -> String {
        self.plan.describe()
    }
}

/// Splits a row-major tensor into one `Vec<f32>` per leading-dimension
/// row — the scatter half of batched serving.
pub(crate) fn tensor_rows(t: &Tensor) -> Vec<Vec<f32>> {
    let rows = t.dim(0);
    let w = t.numel() / rows.max(1);
    t.as_slice().chunks(w).map(|c| c.to_vec()).collect()
}

/// One model family's frozen-inference surface, unifying the per-model
/// `capture_*_plan` / `replay_*_plan` zoo behind a single interface the
/// serving stack (and any model-generic eval loop) can drive: assemble
/// client rows into a batch, capture a forward-only plan for that batch
/// shape, replay it tape-free, and carry per-row recurrent state between
/// requests.
///
/// Implementations for the four families:
///
/// | family      | `Req`         | `Out`          | `RowState` |
/// |-------------|---------------|----------------|------------|
/// | `MnistLstm` | 784 pixels    | 10 logits      | none       |
/// | `PtbLm`     | token window  | vocab logits   | `LmState`  |
/// | `Seq2Seq`   | source tokens | decoded tokens | none       |
/// | `ResNet`    | 3·32·32 image | class logits   | none       |
pub trait Infer {
    /// One client request (a single row).
    type Req: Send + 'static;
    /// One row's inference result.
    type Out: Send + 'static;
    /// Per-row recurrent state carried across requests (`()` for
    /// stateless families).
    type RowState: Clone + Send + 'static;
    /// The assembled batch the forward consumes.
    type Batch;

    /// Fresh carried state for a new session.
    fn zero_state(&self) -> Self::RowState;

    /// Requests with equal keys may share one batched forward — the
    /// dynamic batcher groups by this. Length-sensitive families key on
    /// the token count; fixed-shape and pad-tolerant families return a
    /// constant so everything coalesces.
    fn coalesce_key(&self, req: &Self::Req) -> Vec<usize>;

    /// Packs coalesced rows and their carried states into one batch.
    /// `reqs` and `states` are parallel slices.
    fn assemble(&self, reqs: &[Self::Req], states: &[Self::RowState]) -> Self::Batch;

    /// Plan-cache key of an assembled batch (batch size plus whatever
    /// shape dimensions the capture freezes).
    fn infer_key(&self, batch: &Self::Batch) -> Vec<usize>;

    /// Captures a forward-only plan for this batch shape. `None` means
    /// the plan interpreter cannot cover the tape — callers fall back to
    /// [`Infer::infer_tape`].
    fn capture_infer(&self, ps: &ParamSet, batch: &Self::Batch) -> Option<StepPlan>;

    /// Replays a captured plan on the batch, returning one
    /// `(output, carried state)` per row.
    fn replay_infer(
        &self,
        plan: &mut StepPlan,
        ps: &ParamSet,
        batch: &Self::Batch,
    ) -> Vec<(Self::Out, Self::RowState)>;

    /// The live-tape forward on the same batch — the equivalence oracle
    /// for the frozen path and the fallback when capture declines.
    fn infer_tape(&self, ps: &ParamSet, batch: &Self::Batch)
        -> Vec<(Self::Out, Self::RowState)>;
}
