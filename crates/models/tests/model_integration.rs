//! Cross-layer integration tests for the model crate: checkpointing
//! through every architecture, determinism, and evaluation consistency.

use legw_data::{SynthImageNet, SynthMnist, SynthPtb, SynthTranslation};
use legw_models::{LmState, MnistLstm, PtbLm, PtbLmConfig, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::{checkpoint, ParamSet};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn every_architecture_checkpoints_losslessly() {
    let mut rng = StdRng::seed_from_u64(0);

    // MNIST-LSTM
    let mut ps = ParamSet::new();
    let _ = MnistLstm::new(&mut ps, &mut rng, 16, 16);
    let blob = checkpoint::save(&ps);
    let mut ps2 = ParamSet::new();
    let mut rng2 = StdRng::seed_from_u64(77);
    let _ = MnistLstm::new(&mut ps2, &mut rng2, 16, 16);
    checkpoint::load(&mut ps2, &blob).unwrap();
    assert_eq!(ps.value_norm(), ps2.value_norm());

    // PTB LM
    let mut ps = ParamSet::new();
    let cfg = PtbLmConfig { vocab: 40, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
    let _ = PtbLm::new(&mut ps, &mut rng, cfg);
    let blob = checkpoint::save(&ps);
    let mut ps2 = ParamSet::new();
    let _ = PtbLm::new(&mut ps2, &mut rng2, cfg);
    checkpoint::load(&mut ps2, &blob).unwrap();
    assert_eq!(ps.value_norm(), ps2.value_norm());

    // Seq2Seq
    let mut ps = ParamSet::new();
    let scfg = Seq2SeqConfig { vocab: 20, embed: 10, hidden: 10, attn: 8, max_decode: 6 };
    let _ = Seq2Seq::new(&mut ps, &mut rng, scfg);
    let blob = checkpoint::save(&ps);
    let mut ps2 = ParamSet::new();
    let _ = Seq2Seq::new(&mut ps2, &mut rng2, scfg);
    checkpoint::load(&mut ps2, &blob).unwrap();
    assert_eq!(ps.value_norm(), ps2.value_norm());

    // ResNet
    let mut ps = ParamSet::new();
    let _ = ResNet::new(&mut ps, &mut rng, 4, 6);
    let blob = checkpoint::save(&ps);
    let mut ps2 = ParamSet::new();
    let _ = ResNet::new(&mut ps2, &mut rng2, 4, 6);
    checkpoint::load(&mut ps2, &blob).unwrap();
    assert_eq!(ps.value_norm(), ps2.value_norm());
}

#[test]
fn forward_passes_are_deterministic_given_weights() {
    let data = SynthMnist::generate(3, 32, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let mut ps = ParamSet::new();
    let model = MnistLstm::new(&mut ps, &mut rng, 12, 12);
    let (bx, by) = data.train.gather(&[0, 1, 2]);
    let (g1, _, l1, _) = model.forward_loss(&ps, &bx, &by);
    let (g2, _, l2, _) = model.forward_loss(&ps, &bx, &by);
    assert_eq!(g1.value(l1).item(), g2.value(l2).item());
}

#[test]
fn lm_eval_is_independent_of_eval_batch_split() {
    // the validation NLL must not depend on how many tracks we split the
    // stream into beyond stream-truncation effects
    let data = SynthPtb::generate(6, 40, 6, 8_000, 4_000);
    let cfg = PtbLmConfig { vocab: 40, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
    let mut rng = StdRng::seed_from_u64(8);
    let mut ps = ParamSet::new();
    let model = PtbLm::new(&mut ps, &mut rng, cfg);
    let _ = &mut ps;
    let a = model.evaluate_nll(&ps, &data, false, 4, 10);
    let b = model.evaluate_nll(&ps, &data, false, 8, 10);
    assert!((a - b).abs() < 0.2, "batch-split sensitivity too high: {a} vs {b}");
    let _ = LmState::zeros(&cfg, 4);
}

#[test]
fn greedy_decode_is_deterministic() {
    let data = SynthTranslation::generate_with(9, 10, 32, 8, 3, 4, false);
    let cfg = Seq2SeqConfig { vocab: data.vocab, embed: 10, hidden: 10, attn: 8, max_decode: 6 };
    let mut rng = StdRng::seed_from_u64(10);
    let mut ps = ParamSet::new();
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);
    let batch = &data.batches(false, 8)[0];
    assert_eq!(model.greedy_decode(&ps, batch), model.greedy_decode(&ps, batch));
    let _ = &mut ps;
}

#[test]
fn resnet_eval_consistent_across_chunk_sizes() {
    let data = SynthImageNet::generate_sized(11, 4, 48, 24, 16);
    let mut rng = StdRng::seed_from_u64(12);
    let mut ps = ParamSet::new();
    let mut model = ResNet::new(&mut ps, &mut rng, 4, 4);
    // prime running stats so eval mode is well-defined
    let (bx, by) = data.train.gather(&(0..24).collect::<Vec<_>>());
    let _ = model.forward_loss(&ps, &bx, &by);
    ps.zero_grad();
    let (a1, _) = model.evaluate(&ps, &data.test, 6, 2);
    let (a2, _) = model.evaluate(&ps, &data.test, 24, 2);
    assert!((a1 - a2).abs() < 1e-9, "chunking must not change eval: {a1} vs {a2}");
}
