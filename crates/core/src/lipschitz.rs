//! Finite-difference estimation of the local Lipschitz constant along the
//! gradient direction, `L(x, g) = |gᵀ∇²f(x)g| / ‖g‖²` — the quantity the
//! paper plots in Figure 3 to explain LEGW: its early-training peak shifts
//! right roughly linearly with batch size, so warmup should lengthen
//! linearly in epochs.

use legw_data::SynthMnist;
use legw_models::MnistLstm;
use legw_nn::ParamSet;
use legw_optim::{build, SolverKind};
use legw_schedules::BaselineSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One probe of `L(x,g)` at the current parameters.
///
/// `grad_fn` must populate fresh gradients of a **fixed** loss into `ps`
/// (the same mini-batch on both calls — the estimator differentiates the
/// gradient field, not the sampling noise). The Hessian-vector product is
/// approximated by the forward difference
/// `H·u ≈ (∇f(w + ε·u) − ∇f(w)) / ε` with `u = g/‖g‖`, giving
/// `L = |gᵀ(H·u)| / ‖g‖`.
///
/// Parameters are restored exactly before returning.
pub fn local_lipschitz(
    ps: &mut ParamSet,
    eps: f32,
    grad_fn: &mut dyn FnMut(&mut ParamSet),
) -> f32 {
    assert!(eps > 0.0, "probe step must be positive");
    ps.zero_grad();
    grad_fn(ps);
    let g_norm = ps.grad_norm();
    if g_norm == 0.0 || !g_norm.is_finite() {
        ps.zero_grad();
        return 0.0;
    }
    let g0: Vec<_> = ps.iter().map(|(_, p)| p.grad.clone()).collect();
    let snapshot = ps.snapshot();

    // w ← w + ε·g/‖g‖
    ps.perturb_along_grad(eps / g_norm);
    ps.zero_grad();
    grad_fn(ps);

    // gᵀ(g₂ − g₀)/ε, accumulated in f64
    let mut dot = 0.0f64;
    for ((_, p), old) in ps.iter().zip(&g0) {
        dot += p.grad.dot(old) as f64 - (old.l2_norm() as f64).powi(2);
    }
    let gtd = dot / eps as f64;

    ps.restore(&snapshot);
    ps.zero_grad();
    (gtd.abs() / g_norm as f64) as f32
}

/// One `(iteration, L)` sample of a Lipschitz trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LipschitzSample {
    /// Optimizer iteration at which the probe was taken.
    pub iteration: usize,
    /// Epoch position of the probe.
    pub epoch: f64,
    /// Estimated `L(x,g)`.
    pub value: f32,
}

/// Trains the MNIST-LSTM model while probing `L(x,g)` on a fixed probe
/// batch every `probe_every` iterations — the Figure 3 experiment.
///
/// Returns the probe trace. The probe batch is the first `probe_batch`
/// training samples, fixed across the run and across batch sizes so traces
/// are comparable.
pub fn mnist_lipschitz_trace(
    data: &SynthMnist,
    proj: usize,
    hidden: usize,
    schedule: &BaselineSchedule,
    solver: SolverKind,
    seed: u64,
    probe_every: usize,
    probe_batch: usize,
) -> Vec<LipschitzSample> {
    assert!(probe_every >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = MnistLstm::new(&mut ps, &mut rng, proj, hidden);
    let mut opt = build(solver, 0.0);

    let probe_idx: Vec<usize> = (0..probe_batch.min(data.train.len())).collect();
    let (probe_x, probe_y) = data.train.gather(&probe_idx);
    let mut grad_fn = |ps: &mut ParamSet| {
        let (mut g, bd, loss, _) = model.forward_loss(ps, &probe_x, &probe_y);
        g.backward(loss);
        bd.write_grads(&g, ps);
    };

    let batch = schedule.batch_size();
    let ipe = data.train.iters_per_epoch(batch);
    let total_iters = (schedule.total_epochs() * ipe as f64).round() as usize;
    let mut trace = Vec::new();
    let mut iter = 0usize;
    while iter < total_iters {
        for (bx, by) in data.train.epoch_batches(batch, &mut rng) {
            if iter >= total_iters {
                break;
            }
            if iter % probe_every == 0 {
                let l = local_lipschitz(&mut ps, 1e-2, &mut grad_fn);
                trace.push(LipschitzSample {
                    iteration: iter,
                    epoch: iter as f64 / ipe as f64,
                    value: l,
                });
            }
            let lr = schedule.lr_at_iter(iter, ipe) as f32;
            let (mut g, bd, loss, _) = model.forward_loss(&ps, &bx, &by);
            if !g.value(loss).item().is_finite() {
                return trace;
            }
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            ps.clip_grad_norm(crate::trainer::RNN_CLIP);
            opt.step(&mut ps, lr);
            ps.zero_grad();
            iter += 1;
        }
    }
    trace
}

/// The epoch position of the largest probe in a trace — Figure 3's "peak",
/// which the paper observes shifting right as batch grows.
pub fn peak_epoch(trace: &[LipschitzSample]) -> Option<f64> {
    trace
        .iter()
        .max_by(|a, b| a.value.total_cmp(&b.value))
        .map(|s| s.epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_tensor::Tensor;

    /// For a pure quadratic f(w) = ½ wᵀDw the estimator must return the
    /// Rayleigh quotient gᵀDg/‖g‖² exactly (the Hessian is constant).
    #[test]
    fn exact_on_quadratic() {
        let d = [4.0f32, 1.0, 0.25];
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_vec(vec![1.0, 2.0, -1.0], &[3]));
        let mut grad_fn = |ps: &mut ParamSet| {
            let w = ps.value(id).clone();
            let g = Tensor::from_vec(
                w.as_slice().iter().zip(&d).map(|(&wi, &di)| di * wi).collect(),
                &[3],
            );
            ps.get_mut(id).grad.axpy(1.0, &g);
        };
        let l = local_lipschitz(&mut ps, 1e-3, &mut grad_fn);
        // g = Dw = [4, 2, -0.25]; L = gᵀDg/‖g‖²
        let g = [4.0f64, 2.0, -0.25];
        let num: f64 = g.iter().zip(&d).map(|(&gi, &di)| gi * gi * di as f64).sum();
        let den: f64 = g.iter().map(|&gi| gi * gi).sum();
        let expect = (num / den) as f32;
        assert!((l - expect).abs() < 1e-2 * expect, "{l} vs {expect}");
        // parameters restored
        assert_eq!(ps.value(id).as_slice(), &[1.0, 2.0, -1.0]);
        assert_eq!(ps.get(id).grad.l2_norm(), 0.0);
    }

    #[test]
    fn zero_gradient_returns_zero() {
        let mut ps = ParamSet::new();
        let _ = ps.add("w", Tensor::ones(&[2]));
        let mut grad_fn = |_: &mut ParamSet| {};
        assert_eq!(local_lipschitz(&mut ps, 1e-2, &mut grad_fn), 0.0);
    }

    #[test]
    fn mnist_trace_produces_positive_probes() {
        let data = SynthMnist::generate(6, 160, 20);
        let sched = BaselineSchedule::constant(16, 0.1, 0.2, 2.0);
        let trace =
            mnist_lipschitz_trace(&data, 12, 12, &sched, SolverKind::Momentum, 1, 2, 32);
        assert!(trace.len() >= 8, "expected ≥8 probes, got {}", trace.len());
        assert!(trace.iter().all(|s| s.value.is_finite()));
        assert!(trace.iter().any(|s| s.value > 0.0));
        let peak = peak_epoch(&trace).unwrap();
        assert!((0.0..=2.0).contains(&peak));
    }

    #[test]
    fn peak_epoch_of_empty_trace_is_none() {
        assert!(peak_epoch(&[]).is_none());
    }
}
