//! Convergence-curve analysis over [`crate::TrainReport`] histories:
//! time-to-target extraction and curve summaries, the quantities behind
//! "same accuracy in fewer steps" claims.

use crate::trainer::TrainReport;

/// First epoch position at which the metric history reaches `target`
/// (`higher_better` selects the comparison), linearly interpolated between
/// evaluation points. `None` if the run never reaches it.
pub fn epochs_to_target(report: &TrainReport, target: f64, higher_better: bool) -> Option<f64> {
    let reached = |m: f64| if higher_better { m >= target } else { m <= target };
    let mut prev: Option<(f64, f64)> = None;
    for &(e, m) in &report.history {
        if reached(m) {
            if let Some((pe, pm)) = prev {
                // linear interpolation between the straddling evaluations
                let denom = m - pm;
                if denom.abs() > 1e-12 {
                    let t = (target - pm) / denom;
                    return Some(pe + t.clamp(0.0, 1.0) * (e - pe));
                }
            }
            return Some(e);
        }
        prev = Some((e, m));
    }
    None
}

/// The best metric over the whole history (and the final one), a robust
/// summary for unstable runs.
pub fn best_metric(report: &TrainReport, higher_better: bool) -> Option<f64> {
    report
        .history
        .iter()
        .map(|&(_, m)| m)
        .reduce(|a, b| if higher_better { a.max(b) } else { a.min(b) })
}

/// Area under the metric curve per epoch (trapezoidal) — a single-number
/// progress summary that rewards both speed and level.
pub fn metric_auc(report: &TrainReport) -> f64 {
    let h = &report.history;
    if h.len() < 2 {
        return h.first().map(|&(_, m)| m).unwrap_or(0.0);
    }
    let mut area = 0.0;
    for w in h.windows(2) {
        let (e0, m0) = w[0];
        let (e1, m1) = w[1];
        area += 0.5 * (m0 + m1) * (e1 - e0);
    }
    let span = h.last().unwrap().0 - h[0].0;
    if span > 0.0 {
        area / span
    } else {
        h.last().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(history: Vec<(f64, f64)>) -> TrainReport {
        TrainReport {
            final_metric: history.last().map(|&(_, m)| m).unwrap_or(0.0),
            secondary_metric: None,
            history,
            epoch_losses: Vec::new(),
            diverged: false,
            iterations: 0,
        }
    }

    #[test]
    fn target_interpolates_between_evaluations() {
        let r = report(vec![(1.0, 0.2), (2.0, 0.6), (3.0, 0.9)]);
        // 0.4 is halfway between 0.2@1 and 0.6@2
        let e = epochs_to_target(&r, 0.4, true).unwrap();
        assert!((e - 1.5).abs() < 1e-9, "{e}");
        // already reached at the first point
        assert_eq!(epochs_to_target(&r, 0.1, true).unwrap(), 1.0);
        // never reached
        assert!(epochs_to_target(&r, 0.95, true).is_none());
    }

    #[test]
    fn target_for_lower_is_better_metrics() {
        let r = report(vec![(1.0, 100.0), (2.0, 40.0), (3.0, 20.0)]);
        let e = epochs_to_target(&r, 30.0, false).unwrap();
        assert!((2.0..3.0).contains(&e), "{e}");
    }

    #[test]
    fn best_metric_directional() {
        let r = report(vec![(1.0, 0.5), (2.0, 0.9), (3.0, 0.7)]);
        assert_eq!(best_metric(&r, true), Some(0.9));
        assert_eq!(best_metric(&r, false), Some(0.5));
        assert_eq!(best_metric(&report(vec![]), true), None);
    }

    #[test]
    fn auc_of_constant_curve_is_the_constant() {
        let r = report(vec![(0.0, 0.8), (1.0, 0.8), (2.0, 0.8)]);
        assert!((metric_auc(&r) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn auc_orders_fast_and_slow_learners() {
        let fast = report(vec![(0.0, 0.0), (1.0, 0.9), (2.0, 0.9)]);
        let slow = report(vec![(0.0, 0.0), (1.0, 0.1), (2.0, 0.9)]);
        assert!(metric_auc(&fast) > metric_auc(&slow));
    }

    #[test]
    fn degenerate_histories() {
        assert_eq!(metric_auc(&report(vec![])), 0.0);
        assert_eq!(metric_auc(&report(vec![(1.0, 0.4)])), 0.4);
    }
}
