//! Compiled-plan execution of the sharded training step.
//!
//! [`super::steps::ShardStep`] rebuilds a fresh autograd tape per shard per
//! step. For the shape-static workloads that tape is identical every step
//! modulo the batch data, so `legw-autograd`'s `Plan` can freeze one step's
//! tape into a static schedule and replay it with zero tape recording and
//! (steady-state) zero pool allocation. This module threads that through
//! the executor:
//!
//! * [`PlannedStep`] — a [`ShardStep`] that can additionally capture a
//!   per-shard plan and replay it. A workload opts in per shard via
//!   [`PlannedStep::plan_key`]: `Some(key)` promises the shard's tape
//!   structure is a pure function of `key` (shapes, lengths, dropout
//!   arity); `None` keeps the tape path for that shard.
//! * [`PlanCache`] — one key→plan map per shard index. Keying by shard
//!   index keeps replay buffers thread-local (a plan's arena is mutable
//!   scratch) and keying by shape makes ragged tails safe: a partial final
//!   batch simply captures its own plan, it never replays a mismatched one.
//! * [`Executor::step_planned`] — drop-in variant of [`Executor::step`]:
//!   per shard, look up (or capture) the plan and replay it; fall back to
//!   [`ShardStep::run_shard`] transparently when the workload declines a
//!   key or the capture fails. Identical reduction, loss bookkeeping, and
//!   gradient application.
//!
//! First sight of a key costs one extra forward (the capture tape runs the
//! model once, then the replay recomputes it); every later step with that
//! key skips tape construction entirely.

use crate::exec::{Executor, ShardOut, StepOutcome};
use crate::steps::{MnistStep, PtbStep, ResnetStep, Seq2SeqStep, ShardStep};
use legw_autograd::{with_fuse_override, PlanStats};
use legw_models::StepPlan;
use legw_nn::{DropCtx, GradBuffer, ParamSet};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// `LEGW_PLAN_DEBUG=1` makes [`Executor::step_planned`] print each shard's
/// schedule summary to stderr on first capture.
fn plan_debug() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("LEGW_PLAN_DEBUG").is_ok_and(|v| v.trim() == "1"))
}

/// A [`ShardStep`] whose shards can be captured into reusable plans.
pub trait PlannedStep: ShardStep {
    /// Per-(shard, shape) replay state — typically a
    /// [`legw_models::StepPlan`].
    type PlanState: Send;

    /// The cache key identifying this shard's tape structure, or `None` to
    /// run this shard on the tape path. Two shards of one workload with
    /// equal keys must build structurally identical tapes (same ops, same
    /// shapes) — only the fed data may differ.
    fn plan_key(&self, shard: &Self::Shard) -> Option<Vec<usize>>;

    /// Captures a plan for this shard, or `None` when the tape contains
    /// something the plan interpreter does not cover (the executor then
    /// falls back to [`ShardStep::run_shard`] — and retries the capture on
    /// the shape's next occurrence).
    fn capture(&self, ps: &ParamSet, shard: &Self::Shard) -> Option<Self::PlanState>;

    /// Replays the captured plan for one shard. Must produce the same
    /// [`ShardOut`] as [`ShardStep::run_shard`] (bitwise, or to the
    /// documented ≤1e-5 for reassociated reductions).
    fn replay(
        &self,
        ps: &ParamSet,
        state: &mut Self::PlanState,
        index: usize,
        shard: &Self::Shard,
    ) -> ShardOut<Self::Extra>;

    /// Static statistics of a captured plan, when the state exposes them.
    /// `Some` lets the executor pre-size the worker's buffer pool to the
    /// plan's exact peak live set right after capture, so even the *first*
    /// replay allocates nothing.
    fn plan_stats(&self, _state: &Self::PlanState) -> Option<PlanStats> {
        None
    }

    /// One-line schedule summary for the `LEGW_PLAN_DEBUG=1` capture log.
    fn plan_describe(&self, _state: &Self::PlanState) -> Option<String> {
        None
    }
}

/// One shard slot: the key→plan map plus the logical clock driving LRU
/// eviction. Each cached plan carries the tick of its last use.
struct Slot<P> {
    map: HashMap<Vec<usize>, (u64, P)>,
    tick: u64,
}

impl<P> Slot<P> {
    fn new() -> Self {
        Self { map: HashMap::new(), tick: 0 }
    }
}

/// Shape-keyed plan store for [`Executor::step_planned`]: one map per
/// shard index, so concurrent shard workers never contend and every plan's
/// mutable replay arena stays with its worker slot.
///
/// A cache built with [`PlanCache::with_capacity`] holds at most `capacity`
/// plans **per slot**, evicting the least-recently-used entry to make room
/// for a new capture. Training steps use the unbounded [`PlanCache::new`]
/// (a run sees a handful of shapes: the steady batch plus ragged tails);
/// the bounded form is for serving, where adversarial batch-shape traffic
/// would otherwise grow the cache without limit. Eviction is safe by
/// construction: a plan is pure replay state, so dropping one only means
/// the next occurrence of that shape pays one re-capture — which produces
/// a bitwise-identical plan (captures are deterministic functions of the
/// frozen weights and the shape).
pub struct PlanCache<P> {
    slots: Vec<Mutex<Slot<P>>>,
    /// Max plans per slot; `None` = unbounded.
    capacity: Option<usize>,
}

impl<P> PlanCache<P> {
    /// An unbounded cache for up to `shards` shard slots.
    pub fn new(shards: usize) -> Self {
        Self { slots: (0..shards.max(1)).map(|_| Mutex::new(Slot::new())).collect(), capacity: None }
    }

    /// A cache holding at most `capacity` plans per shard slot (clamped to
    /// ≥ 1), with least-recently-used eviction on overflow.
    pub fn with_capacity(shards: usize, capacity: usize) -> Self {
        Self { capacity: Some(capacity.max(1)), ..Self::new(shards) }
    }

    /// A cache sized for `exec`'s shard count.
    pub fn for_executor(exec: &Executor) -> Self {
        Self::new(exec.shards())
    }

    /// Number of shard slots this cache was built for.
    pub fn shard_slots(&self) -> usize {
        self.slots.len()
    }

    /// Per-slot plan capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Total number of cached plans across all shard slots.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// True when no plan has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (e.g. after a config change).
    pub fn clear(&self) {
        for s in &self.slots {
            s.lock().unwrap().map.clear();
        }
    }

    /// Runs `f` on the plan cached under `(slot, key)`, calling `make` to
    /// capture it on first sight. `make` returning `None` (the plan
    /// interpreter cannot cover the tape) caches nothing and skips `f`, so
    /// the caller can fall back to its tape path. The slot lock is held
    /// across `f` — a plan's replay arena is mutable scratch, so this is
    /// what serialises concurrent users of one slot (e.g. the inference
    /// server's batch worker vs. ad-hoc engine calls).
    ///
    /// Every hit refreshes the entry's LRU stamp; on a bounded cache, an
    /// insert that would exceed the slot's capacity first evicts the
    /// least-recently-used plan (O(slot len) scan — capacities are small
    /// and captures are rare, so this never sits on a hot path).
    pub fn with_plan<R>(
        &self,
        slot: usize,
        key: Vec<usize>,
        make: impl FnOnce() -> Option<P>,
        f: impl FnOnce(&mut P) -> R,
    ) -> Option<R> {
        let mut guard = self.slots[slot].lock().unwrap();
        let s = &mut *guard;
        s.tick += 1;
        let tick = s.tick;
        if let Some(v) = s.map.get_mut(&key) {
            v.0 = tick;
            return Some(f(&mut v.1));
        }
        let p = make()?;
        if let Some(cap) = self.capacity {
            while s.map.len() >= cap {
                let oldest = s.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        s.map.remove(&k);
                    }
                    None => break,
                }
            }
        }
        match s.map.entry(key) {
            Entry::Vacant(v) => Some(f(&mut v.insert((tick, p)).1)),
            // get_mut above returned None for this key under the same lock.
            Entry::Occupied(_) => unreachable!("plan inserted concurrently under the slot lock"),
        }
    }
}

impl Executor {
    /// [`Executor::step`] with per-shard plan replay: each shard looks up
    /// its [`PlannedStep::plan_key`] in `cache`, captures on first sight,
    /// and replays thereafter; shards without a key (or whose capture
    /// fails) run the ordinary tape path. Reduction and gradient
    /// application are shared with [`Executor::step`], so the two are
    /// interchangeable step-by-step — including mid-run shape changes,
    /// which simply miss the cache and capture fresh plans.
    pub fn step_planned<W: PlannedStep>(
        &self,
        w: &W,
        ps: &mut ParamSet,
        cache: &PlanCache<W::PlanState>,
    ) -> (StepOutcome, Vec<W::Extra>) {
        let shards = w.split(self);
        assert!(
            shards.len() <= cache.shard_slots(),
            "plan cache has {} shard slots but the step split into {}",
            cache.shard_slots(),
            shards.len()
        );
        let weights: Vec<f64> = shards.iter().map(|s| w.weight(s)).collect();
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, extras) =
            self.run_shards(w.reduce(), &shards, &weights, |i, s| match w.plan_key(s) {
                // Shard i's slot is only ever touched by shard task i, so
                // the slot lock is uncontended; it exists to keep
                // `PlanCache` Sync across the worker threads.
                Some(key) => cache
                    .with_plan(
                        i,
                        key,
                        || {
                            // The capture runs on this shard's worker
                            // thread, so the fuse override (thread-local)
                            // and the pool prewarm (thread-local free list)
                            // both land where the replays will run.
                            let captured = match self.plan_fuse() {
                                Some(b) => with_fuse_override(b, || w.capture(ps_ref, s)),
                                None => w.capture(ps_ref, s),
                            };
                            if let Some(p) = &captured {
                                if let Some(stats) = w.plan_stats(p) {
                                    legw_tensor::pool::prewarm(stats.peak_live_bytes);
                                }
                                if plan_debug() {
                                    if let Some(d) = w.plan_describe(p) {
                                        eprintln!("legw: shard {i} captured {d}");
                                    }
                                }
                            }
                            captured
                        },
                        |p| w.replay(ps_ref, p, i, s),
                    )
                    .unwrap_or_else(|| w.run_shard(ps_ref, i, s)),
                None => w.run_shard(ps_ref, i, s),
            });
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);
        (out, extras)
    }
}

impl PlannedStep for MnistStep<'_> {
    type PlanState = StepPlan;

    fn plan_key(&self, (_, sy): &Self::Shard) -> Option<Vec<usize>> {
        Some(vec![sy.len()])
    }

    fn capture(&self, ps: &ParamSet, (sx, sy): &Self::Shard) -> Option<StepPlan> {
        self.model.capture_step_plan(ps, sx, sy)
    }

    fn replay(
        &self,
        ps: &ParamSet,
        plan: &mut StepPlan,
        _i: usize,
        (sx, sy): &Self::Shard,
    ) -> ShardOut<()> {
        let loss = self.model.replay_step_plan(plan, ps, sx, sy) as f64;
        let mut buf = GradBuffer::for_params(ps);
        plan.write_grads_to(&mut buf);
        ShardOut { grads: buf, loss, extra: () }
    }

    fn plan_stats(&self, plan: &StepPlan) -> Option<PlanStats> {
        Some(plan.stats())
    }

    fn plan_describe(&self, plan: &StepPlan) -> Option<String> {
        Some(plan.describe())
    }
}

impl PlannedStep for PtbStep<'_> {
    type PlanState = StepPlan;

    /// Tracks × window length × dropout arity. Dropout masks are feeds, so
    /// the *step* is not part of the key — one plan serves the whole run.
    fn plan_key(&self, (sw, _, _): &Self::Shard) -> Option<Vec<usize>> {
        Some(vec![sw.tracks(), sw.inputs.len(), usize::from(self.drop.is_some())])
    }

    fn capture(&self, ps: &ParamSet, (sw, ss, row0): &Self::Shard) -> Option<StepPlan> {
        let ctx = self.drop.map(|d| DropCtx { seed: d.seed, step: d.step, row0: *row0 });
        self.model.capture_window_plan(ps, sw, ss, ctx.as_ref())
    }

    fn replay(
        &self,
        ps: &ParamSet,
        plan: &mut StepPlan,
        _i: usize,
        (sw, ss, row0): &Self::Shard,
    ) -> ShardOut<legw_models::LmState> {
        let ctx = self.drop.map(|d| DropCtx { seed: d.seed, step: d.step, row0: *row0 });
        let (nll, next) = self.model.replay_window_plan(plan, ps, sw, ss, ctx.as_ref());
        let mut buf = GradBuffer::for_params(ps);
        plan.write_grads_to(&mut buf);
        ShardOut { grads: buf, loss: nll, extra: next }
    }

    fn plan_stats(&self, plan: &StepPlan) -> Option<PlanStats> {
        Some(plan.stats())
    }

    fn plan_describe(&self, plan: &StepPlan) -> Option<String> {
        Some(plan.describe())
    }
}

impl PlannedStep for ResnetStep<'_> {
    type PlanState = StepPlan;

    fn plan_key(&self, (sx, _, _): &Self::Shard) -> Option<Vec<usize>> {
        Some(sx.shape().to_vec())
    }

    fn capture(&self, ps: &ParamSet, (sx, sy, _): &Self::Shard) -> Option<StepPlan> {
        self.model.capture_step_plan(ps, sx, sy)
    }

    fn replay(
        &self,
        ps: &ParamSet,
        plan: &mut StepPlan,
        _i: usize,
        (sx, sy, cell): &Self::Shard,
    ) -> ShardOut<(f32, legw_models::ResNet)> {
        let mut m = cell.lock().unwrap().take().expect("resnet shard clone already taken");
        let loss = m.replay_step_plan(plan, ps, sx, sy) as f64;
        let mut buf = GradBuffer::for_params(ps);
        plan.write_grads_to(&mut buf);
        ShardOut { grads: buf, loss, extra: (sy.len() as f32, m) }
    }

    fn plan_stats(&self, plan: &StepPlan) -> Option<PlanStats> {
        Some(plan.stats())
    }

    fn plan_describe(&self, plan: &StepPlan) -> Option<String> {
        Some(plan.describe())
    }
}

impl PlannedStep for Seq2SeqStep<'_> {
    type PlanState = StepPlan;

    /// Batch size × source length key the *encoder* plan; the
    /// token-dependent decoder runs on a fresh tape every step inside
    /// [`legw_models::Seq2Seq::planned_loss_grads`], so decoder lengths and
    /// loss scales need not be keyed.
    fn plan_key(&self, (sb, _): &Self::Shard) -> Option<Vec<usize>> {
        Some(vec![sb.batch_size(), sb.src.len()])
    }

    fn capture(&self, ps: &ParamSet, (sb, _): &Self::Shard) -> Option<StepPlan> {
        self.model.capture_encoder_plan(ps, sb)
    }

    fn replay(
        &self,
        ps: &ParamSet,
        plan: &mut StepPlan,
        _i: usize,
        (sb, scale): &Self::Shard,
    ) -> ShardOut<()> {
        let mut buf = GradBuffer::for_params(ps);
        let nll = self.model.planned_loss_grads(ps, sb, scale.as_deref(), plan, &mut buf);
        ShardOut { grads: buf, loss: nll, extra: () }
    }

    fn plan_stats(&self, plan: &StepPlan) -> Option<PlanStats> {
        Some(plan.stats())
    }

    fn plan_describe(&self, plan: &StepPlan) -> Option<String> {
        Some(plan.describe())
    }
}
