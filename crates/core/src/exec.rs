//! Data-parallel training executor: shard a batch across workers,
//! all-reduce the gradients deterministically, step once.
//!
//! This is the paper's own computation structure — batch size `B` split
//! over `P` workers, per-worker gradients combined before a single
//! optimizer update (You et al., SC'19) — applied to the local thread
//! pool instead of a cluster:
//!
//! 1. the batch is split into `P` contiguous shards ([`Executor::shards`]
//!    workers, configured via [`ExecConfig`]);
//! 2. each shard runs forward + [`legw_autograd::Graph::backward`] +
//!    `Binding::write_grads_to` concurrently, on its own tape, into its
//!    own [`GradBuffer`] — no shared `&mut ParamSet`;
//! 3. shard buffers are weighted by shard example counts and merged with
//!    the fixed-order pairwise tree of [`crate::reduce_sched`]. By default
//!    the merge is *streaming*: each shard's buffer enters the tree the
//!    moment it completes, so reduction latency hides behind still-running
//!    shards instead of waiting for the slowest one. The merge schedule is
//!    data-independent, so the result is byte-identical to the post-barrier
//!    reduce (and across runs) regardless of worker timing;
//! 4. the combined gradient is applied to the `ParamSet` and the caller
//!    performs the single optimizer step.
//!
//! Nested-parallelism budget: shard tasks run on a dedicated `P`-thread
//! pool, and each shard installs a private `max(1, T/P)`-thread intra-op
//! pool via [`legw_parallel::with_pool`], so the tensor kernels inside a
//! shard never contend with other shards' fork/join latches and the
//! total thread budget stays at `T` ([`ExecConfig::with_threads`]).
//!
//! With one shard (the default) every step runs on the caller's thread
//! against the global pool and is bit-identical to the historical serial
//! trainer path.
//!
//! Configuration is explicit: build an [`ExecConfig`] (or parse the
//! `LEGW_SHARDS` / `LEGW_THREADS` / `LEGW_REDUCE_OVERLAP` /
//! `LEGW_PLAN_FUSE` environment variables with [`ExecConfig::from_env`] —
//! the one place in the library that reads them) and hand it to
//! [`Executor::new`]. The four training
//! workloads plug in through the [`ShardStep`](crate::steps::ShardStep)
//! trait and run via [`Executor::step`](crate::steps).

use crate::reduce_sched::{tree_reduce, ReduceScheduler};
use legw_nn::GradBuffer;
use legw_parallel::{default_threads, with_pool, ThreadPool};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Executor configuration: how many shards each batch is split into, the
/// total worker-thread budget, and whether gradient reduction streams
/// (overlaps with still-running shards) or waits for the post-shard
/// barrier. Build with the `with_*` methods or [`ExecConfig::from_env`]:
///
/// ```no_run
/// use legw::exec::{ExecConfig, Executor};
/// let exec = Executor::new(ExecConfig::default().with_shards(4).with_threads(8));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum shards per batch (`1` = serial executor). Clamped to ≥ 1.
    pub shards: usize,
    /// Total worker-thread budget shared by all shards. `None` leaves the
    /// kernel pool at its default (machine parallelism). Installed via
    /// [`legw_parallel::set_default_threads`], so the first `Executor`
    /// built in a process decides; a later, *different* value is ignored
    /// once the global budget is fixed, and [`Executor::new`] warns on
    /// stderr when that happens.
    pub threads: Option<usize>,
    /// Stream the gradient tree-reduce as shards complete (default) rather
    /// than running it after the all-shards barrier. Same bits either way;
    /// `false` exists for benchmarking the barrier path and as an escape
    /// hatch.
    pub reduce_overlap: bool,
    /// Plan-optimizer override for captures made through this executor
    /// (see `legw-autograd`'s plan module): `Some(b)` forces fusion on/off
    /// for [`step_planned`](crate::plan_cache) captures; `None` (default)
    /// inherits the `LEGW_PLAN_FUSE` environment toggle read by the
    /// autograd crate at first capture. Replays are bitwise identical
    /// either way — the setting only trades schedule size for debuggability.
    pub plan_fuse: Option<bool>,
    /// SIMD kernel variant for the runtime-dispatched tensor kernels
    /// (GEMM micro-tile, `matvec` dot, activation sweeps, fused LSTM gate
    /// row). `Some(k)` asks [`Executor::new`] to install `k` as the
    /// process-wide selection (first-wins, like `threads`; ignored with a
    /// stderr warning if a different selection is already fixed or the CPU
    /// can't run it). `None` (default) leaves selection to the
    /// `LEGW_KERNEL` variable / CPUID detection at init. Every variant is
    /// bitwise-equal, so this is a performance knob, never a numerics one.
    pub kernel: Option<legw_tensor::kernels::Kernel>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { shards: 1, threads: None, reduce_overlap: true, plan_fuse: None, kernel: None }
    }
}

impl ExecConfig {
    /// `shards` shards, default threads, streaming reduction.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the total worker-thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables/disables streaming reduction.
    pub fn with_reduce_overlap(mut self, on: bool) -> Self {
        self.reduce_overlap = on;
        self
    }

    /// Forces the plan optimizer on/off for captures made through this
    /// executor, overriding the `LEGW_PLAN_FUSE` environment toggle.
    pub fn with_plan_fuse(mut self, on: bool) -> Self {
        self.plan_fuse = Some(on);
        self
    }

    /// Requests a specific SIMD kernel variant (see [`ExecConfig::kernel`]).
    pub fn with_kernel(mut self, k: legw_tensor::kernels::Kernel) -> Self {
        self.kernel = Some(k);
        self
    }

    /// Reads `LEGW_SHARDS` (positive integer, default 1), `LEGW_THREADS`
    /// (positive integer, default machine parallelism),
    /// `LEGW_REDUCE_OVERLAP` (`0`/`false`/`off`/`no` disable, default on),
    /// `LEGW_PLAN_FUSE` (same boolean grammar; unset leaves the plan
    /// optimizer at the autograd crate's own default) and `LEGW_KERNEL`
    /// (`scalar`/`avx2`/`avx512`; unset leaves SIMD kernel selection to
    /// CPUID detection — the tensor crate also honours the variable
    /// directly for standalone use, with identical grammar).
    ///
    /// A variable that is *set* but malformed (unparsable, zero, or an
    /// unrecognised boolean) falls back to the default **with a warning on
    /// stderr** — a typo in an experiment script must not silently demote
    /// the run to serial.
    ///
    /// This is the **only** place the library consults these variables —
    /// call it at the composition root (trainers, binaries) and pass the
    /// config down explicitly.
    pub fn from_env() -> Self {
        fn positive(key: &str) -> Option<usize> {
            let raw = std::env::var(key).ok()?;
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!(
                        "legw: ignoring {key}={raw:?} (expected a positive integer); \
                         falling back to the default"
                    );
                    None
                }
            }
        }
        fn boolean(key: &str) -> Option<bool> {
            let raw = std::env::var(key).ok()?;
            match raw.trim().to_ascii_lowercase().as_str() {
                "0" | "false" | "off" | "no" => Some(false),
                "1" | "true" | "on" | "yes" | "" => Some(true),
                other => {
                    eprintln!(
                        "legw: ignoring {key}={other:?} (expected 0/false/off/no or \
                         1/true/on/yes); falling back to the default"
                    );
                    None
                }
            }
        }
        fn kernel_var() -> Option<legw_tensor::kernels::Kernel> {
            let raw = std::env::var("LEGW_KERNEL").ok()?;
            match legw_tensor::kernels::Kernel::parse(&raw) {
                Some(k) => Some(k),
                None => {
                    eprintln!(
                        "legw: ignoring LEGW_KERNEL={raw:?} (expected scalar/avx2/avx512); \
                         falling back to runtime detection"
                    );
                    None
                }
            }
        }
        Self {
            shards: positive("LEGW_SHARDS").unwrap_or(1),
            threads: positive("LEGW_THREADS"),
            reduce_overlap: boolean("LEGW_REDUCE_OVERLAP").unwrap_or(true),
            plan_fuse: boolean("LEGW_PLAN_FUSE"),
            kernel: kernel_var(),
        }
    }
}

/// How shard gradients (and losses) are combined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduce {
    /// `Σ (wₛ/W) · gₛ` — exact for losses that are means over examples
    /// (MNIST/ResNet cross-entropy, PTB per-token NLL) when `wₛ` is the
    /// shard example count.
    WeightedMean,
    /// `Σ gₛ` — for shard losses that are already globally normalised
    /// (the seq2seq masked loss with per-step `active_shard/active_batch`
    /// scales).
    Sum,
}

/// What one shard worker returns. Combination weights are supplied to
/// [`Executor::run_shards`] up front (they derive from the shard *data*,
/// not the computation), which is what lets the streaming reduction scale
/// and merge a buffer the moment it completes.
pub struct ShardOut<E> {
    /// The shard's accumulated gradients.
    pub grads: GradBuffer,
    /// The shard's loss value (per [`Reduce`] semantics).
    pub loss: f64,
    /// Arbitrary extra payload (e.g. the carried LSTM state).
    pub extra: E,
}

/// Aggregate result of one sharded training step.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// Combined batch loss, equal (within fp tolerance; exactly, for one
    /// shard) to what the serial path would have reported.
    pub loss: f64,
    /// True if any shard produced a non-finite loss.
    pub diverged: bool,
    /// `Σ gᵢ²` (f64) of the `ParamSet` gradients right after the combined
    /// gradient was applied, accumulated during the apply itself —
    /// `sqrt` gives the global ℓ₂ norm, so the caller's gradient clipping
    /// needs no extra full-parameter sweep. Zero until a step helper has
    /// applied gradients.
    pub grad_sq_norm: f64,
}

/// The data-parallel step executor. See the module docs for the design.
pub struct Executor {
    shards: usize,
    overlap: bool,
    plan_fuse: Option<bool>,
    /// Pool the shard closures run on (absent for the serial executor).
    /// Sized so `run(n ≤ shards)` gives each shard its own concurrent
    /// worker (the caller participates as one of them).
    shard_pool: Option<ThreadPool>,
    /// Per-shard intra-op pools installed via `with_pool` while the shard
    /// closure runs.
    intra: Vec<Arc<ThreadPool>>,
}

impl Executor {
    /// Builds an executor from an explicit configuration. A `threads`
    /// budget, if set, is installed as the kernel pool's default before
    /// any pool is sized; the default is process-global and sticks at its
    /// first value, so if an earlier `Executor` (or pool use) already fixed
    /// a *different* budget this one cannot take effect and a warning is
    /// printed to stderr. `shards == 1` builds the serial executor: no
    /// extra threads, every step bit-identical to the historical
    /// single-tape path.
    pub fn new(config: ExecConfig) -> Self {
        if let Some(t) = config.threads {
            if !legw_parallel::set_default_threads(t) && default_threads() != t {
                eprintln!(
                    "legw: ExecConfig.threads = {t} ignored: the process-global kernel \
                     thread budget is already fixed at {}",
                    default_threads()
                );
            }
        }
        // SIMD kernel selection happens here, at executor init, not on a
        // hot path: either install the requested variant (first-wins, same
        // contract as the thread budget) or eagerly resolve detection.
        match config.kernel {
            Some(k) => {
                if !legw_tensor::kernels::force(k) {
                    eprintln!(
                        "legw: ExecConfig.kernel = {} ignored: {}",
                        k.name(),
                        if legw_tensor::kernels::supported(k) {
                            format!(
                                "the process-wide kernel selection is already fixed at {}",
                                legw_tensor::kernels::init().name()
                            )
                        } else {
                            "this CPU does not support it".to_string()
                        }
                    );
                }
            }
            None => {
                legw_tensor::kernels::init();
            }
        }
        let shards = config.shards.max(1);
        let overlap = config.reduce_overlap;
        let plan_fuse = config.plan_fuse;
        if shards == 1 {
            return Self { shards, overlap, plan_fuse, shard_pool: None, intra: Vec::new() };
        }
        let budget = default_threads();
        let intra_threads = (budget / shards).max(1);
        Self {
            shards,
            overlap,
            plan_fuse,
            shard_pool: Some(ThreadPool::new(shards)),
            intra: (0..shards).map(|_| Arc::new(ThreadPool::new(intra_threads))).collect(),
        }
    }

    /// Maximum number of shards a batch is split into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// True when gradient reduction streams as shards complete.
    pub fn reduce_overlap(&self) -> bool {
        self.overlap
    }

    /// The plan-optimizer override captures made through this executor run
    /// under (`None` = inherit the `LEGW_PLAN_FUSE` environment toggle).
    pub fn plan_fuse(&self) -> Option<bool> {
        self.plan_fuse
    }

    /// Contiguous example ranges for a batch of `n` examples: at most
    /// [`Executor::shards`] shards, never an empty one.
    pub fn shard_ranges(&self, n: usize) -> Vec<Range<usize>> {
        legw_parallel::split_evenly(n, self.shards)
    }

    /// Runs `f` once per shard (concurrently when this executor is
    /// parallel), combining the shard gradients with the fixed-order tree
    /// reduction — streaming through [`ReduceScheduler`] as shards finish
    /// when [`ExecConfig::reduce_overlap`] is on, after the all-shards
    /// barrier otherwise. Returns the combined buffer, the aggregate
    /// loss/divergence outcome, and the per-shard extras in shard order.
    ///
    /// `weights` are the [`Reduce::WeightedMean`] combination weights
    /// (shard example counts), one per shard; ignored by [`Reduce::Sum`].
    ///
    /// Determinism: `f` must be deterministic per shard; the merge
    /// schedule is data-independent (same pairs, same left/right roles —
    /// see [`crate::reduce_sched`]), so repeated runs and both reduction
    /// modes are byte-identical.
    pub fn run_shards<S, E, F>(
        &self,
        reduce: Reduce,
        shards: &[S],
        weights: &[f64],
        f: F,
    ) -> (GradBuffer, StepOutcome, Vec<E>)
    where
        S: Sync,
        E: Send,
        F: Fn(usize, &S) -> ShardOut<E> + Sync,
    {
        let n = shards.len();
        assert!(n >= 1, "run_shards needs at least one shard");
        assert_eq!(weights.len(), n, "one combination weight per shard");
        assert!(
            self.shard_pool.is_none() || n <= self.intra.len(),
            "more shards than the executor was built for"
        );

        // Combination fractions are fixed before any shard runs — this is
        // what lets the streaming path scale a buffer the moment its shard
        // completes. The fraction is computed in f64 and cast once at
        // scale time, exactly as the post-barrier path always did.
        let fracs: Option<Vec<f64>> = match reduce {
            Reduce::WeightedMean if n > 1 => {
                let total: f64 = weights.iter().sum();
                Some(weights.iter().map(|w| w / total).collect())
            }
            _ => None,
        };

        let (combined, losses, extras) = match &self.shard_pool {
            Some(pool) if n > 1 && self.overlap => {
                // Streaming reduction: the completing worker scales its own
                // buffer and offers it to the scheduler, which immediately
                // performs every tree merge the arrival enables.
                let sched = ReduceScheduler::new(n);
                let fr = fracs.as_deref();
                let slots: Vec<Mutex<Option<(f64, E)>>> =
                    (0..n).map(|_| Mutex::new(None)).collect();
                pool.run(n, |i| {
                    let out = with_pool(&self.intra[i], || f(i, &shards[i]));
                    let mut buf = out.grads;
                    if let Some(fr) = fr {
                        buf.scale(fr[i] as f32);
                    }
                    sched.complete(i, buf);
                    *slots[i].lock().unwrap() = Some((out.loss, out.extra));
                });
                let (losses, extras): (Vec<f64>, Vec<E>) = slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("shard task did not report"))
                    .unzip();
                (sched.finish(), losses, extras)
            }
            _ => {
                // Post-barrier reduction: collect every shard, then scale
                // and tree-reduce in shard order on the calling thread.
                let outs: Vec<ShardOut<E>> = match &self.shard_pool {
                    None => shards.iter().enumerate().map(|(i, s)| f(i, s)).collect(),
                    Some(_) if n == 1 => vec![f(0, &shards[0])],
                    Some(pool) => {
                        let slots: Vec<Mutex<Option<ShardOut<E>>>> =
                            (0..n).map(|_| Mutex::new(None)).collect();
                        pool.run(n, |i| {
                            let out = with_pool(&self.intra[i], || f(i, &shards[i]));
                            *slots[i].lock().unwrap() = Some(out);
                        });
                        slots
                            .into_iter()
                            .map(|s| s.into_inner().unwrap().expect("shard task did not report"))
                            .collect()
                    }
                };
                let mut losses = Vec::with_capacity(n);
                let mut bufs = Vec::with_capacity(n);
                let mut extras = Vec::with_capacity(n);
                for o in outs {
                    losses.push(o.loss);
                    bufs.push(o.grads);
                    extras.push(o.extra);
                }
                if let Some(fr) = &fracs {
                    for (buf, fr) in bufs.iter_mut().zip(fr) {
                        buf.scale(*fr as f32);
                    }
                }
                (tree_reduce(bufs), losses, extras)
            }
        };

        let diverged = losses.iter().any(|l| !l.is_finite());
        let loss = if n == 1 {
            // Single shard: no scaling at all, so the result is
            // bit-identical to the serial path.
            losses[0]
        } else {
            match reduce {
                Reduce::WeightedMean => {
                    fracs.as_ref().unwrap().iter().zip(&losses).map(|(fr, l)| fr * l).sum()
                }
                Reduce::Sum => losses.iter().sum(),
            }
        };
        (combined, StepOutcome { loss, diverged, grad_sq_norm: 0.0 }, extras)
    }

    /// Forward-only companion to [`Executor::run_shards`]: runs `f` once
    /// per item (concurrently on the shard pool when this executor is
    /// parallel, serially in item order otherwise) and returns the
    /// results in item order. No gradient combine, no loss bookkeeping —
    /// this is what epoch-end validation uses so a sharded executor
    /// accelerates evaluation too. Each shard runs under its private
    /// intra-op pool, same as training shards.
    pub fn map_shards<S, R, F>(&self, shards: &[S], f: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        let n = shards.len();
        if n == 0 {
            return Vec::new();
        }
        match &self.shard_pool {
            None => shards.iter().enumerate().map(|(i, s)| f(i, s)).collect(),
            Some(_) if n == 1 => vec![f(0, &shards[0])],
            Some(pool) => {
                assert!(n <= self.intra.len(), "more shards than the executor was built for");
                let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
                pool.run(n, |i| {
                    let out = with_pool(&self.intra[i], || f(i, &shards[i]));
                    *slots[i].lock().unwrap() = Some(out);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("shard task did not report"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_nn::ParamSet;
    use legw_tensor::Tensor;

    /// A synthetic "model": shard i contributes gradient `grad[i]` on one
    /// scalar parameter with weight `w[i]` and loss `loss[i]`.
    fn run_synthetic(
        exec: &Executor,
        reduce: Reduce,
        cases: &[(f32, f64, f64)], // (grad, loss, weight)
    ) -> (f32, StepOutcome) {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[1]));
        let ps_ref = &ps;
        let weights: Vec<f64> = cases.iter().map(|c| c.2).collect();
        let (grads, out, _) = exec.run_shards(reduce, cases, &weights, |_, &(g, l, _)| {
            let mut buf = GradBuffer::for_params(ps_ref);
            buf.accumulate(id, &Tensor::from_vec(vec![g], &[1]));
            ShardOut { grads: buf, loss: l, extra: () }
        });
        (grads.get(id).unwrap().as_slice()[0], out)
    }

    fn serial() -> Executor {
        Executor::new(ExecConfig::default())
    }

    #[test]
    fn weighted_mean_weights_by_example_count() {
        let exec = serial(); // serial executor still reduces n shards
        let (g, out) = run_synthetic(
            &exec,
            Reduce::WeightedMean,
            &[(1.0, 1.0, 3.0), (5.0, 5.0, 1.0)],
        );
        // (3/4)·1 + (1/4)·5 = 2
        assert!((g - 2.0).abs() < 1e-6);
        assert!((out.loss - 2.0).abs() < 1e-9);
        assert!(!out.diverged);
    }

    #[test]
    fn sum_reduce_ignores_weights() {
        let exec = serial();
        let (g, out) =
            run_synthetic(&exec, Reduce::Sum, &[(1.0, 0.5, 99.0), (2.0, 0.25, 1.0)]);
        assert!((g - 3.0).abs() < 1e-6);
        assert!((out.loss - 0.75).abs() < 1e-9);
    }

    #[test]
    fn single_shard_skips_scaling_entirely() {
        let exec = serial();
        let (g, out) = run_synthetic(&exec, Reduce::WeightedMean, &[(0.1, 7.0, 13.0)]);
        assert_eq!(g, 0.1); // bit-identical, not 0.1 * (13/13)
        assert_eq!(out.loss, 7.0);
    }

    #[test]
    fn divergence_aggregates_across_shards() {
        let exec = serial();
        let (_, out) = run_synthetic(
            &exec,
            Reduce::WeightedMean,
            &[(1.0, 1.0, 1.0), (1.0, f64::NAN, 1.0)],
        );
        assert!(out.diverged);
    }

    #[test]
    fn parallel_executor_matches_serial_bitwise() {
        let serial = serial();
        let parallel = Executor::new(ExecConfig::default().with_shards(3));
        let cases = [(0.3f32, 1.0, 2.0), (0.7, 2.0, 3.0), (0.11, 3.0, 1.0)];
        let (gs, os) = run_synthetic(&serial, Reduce::WeightedMean, &cases);
        for _ in 0..3 {
            let (gp, op) = run_synthetic(&parallel, Reduce::WeightedMean, &cases);
            assert_eq!(gs, gp, "tree reduce must not depend on worker timing");
            assert_eq!(os.loss, op.loss);
        }
    }

    #[test]
    fn streaming_and_barrier_reduction_agree_bitwise() {
        let cases = [(0.3f32, 1.0, 2.0), (0.7, 2.0, 3.0), (0.11, 3.0, 1.0), (0.013, 0.5, 5.0)];
        let on = Executor::new(ExecConfig::default().with_shards(4));
        let off = Executor::new(ExecConfig::default().with_shards(4).with_reduce_overlap(false));
        assert!(on.reduce_overlap() && !off.reduce_overlap());
        for reduce in [Reduce::WeightedMean, Reduce::Sum] {
            let (g_on, o_on) = run_synthetic(&on, reduce, &cases);
            let (g_off, o_off) = run_synthetic(&off, reduce, &cases);
            assert_eq!(g_on.to_bits(), g_off.to_bits());
            assert_eq!(o_on.loss.to_bits(), o_off.loss.to_bits());
        }
    }

    #[test]
    fn shard_ranges_never_empty() {
        let exec = Executor::new(ExecConfig::default().with_shards(7));
        let ranges = exec.shard_ranges(3);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn config_builder_and_defaults() {
        let cfg = ExecConfig::default();
        assert_eq!(
            cfg,
            ExecConfig {
                shards: 1,
                threads: None,
                reduce_overlap: true,
                plan_fuse: None,
                kernel: None
            }
        );
        let cfg = cfg.with_shards(0).with_reduce_overlap(false);
        assert_eq!(cfg.shards, 1, "shards clamp to >= 1");
        assert!(!cfg.reduce_overlap);
        let cfg = cfg.with_threads(6);
        assert_eq!(cfg.threads, Some(6));
        let cfg = cfg.with_plan_fuse(false);
        assert_eq!(cfg.plan_fuse, Some(false));
        let cfg = cfg.with_kernel(legw_tensor::kernels::Kernel::Scalar);
        assert_eq!(cfg.kernel, Some(legw_tensor::kernels::Kernel::Scalar));
    }
}
