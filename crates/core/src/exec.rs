//! Data-parallel training executor: shard a batch across workers,
//! all-reduce the gradients deterministically, step once.
//!
//! This is the paper's own computation structure — batch size `B` split
//! over `P` workers, per-worker gradients combined before a single
//! optimizer update (You et al., SC'19) — applied to the local thread
//! pool instead of a cluster:
//!
//! 1. the batch is split into `P` contiguous shards
//!    ([`Executor::shards`] workers, overridable via `LEGW_SHARDS`);
//! 2. each shard runs forward + [`legw_autograd::Graph::backward`] +
//!    `Binding::write_grads_to` concurrently, on its own tape, into its
//!    own [`GradBuffer`] — no shared `&mut ParamSet`;
//! 3. shard buffers are weighted by shard example counts and merged
//!    with a fixed-order pairwise tree ([`tree reduce`](GradBuffer::merge)),
//!    so results are byte-identical across runs and independent of
//!    worker scheduling;
//! 4. the combined gradient is applied to the `ParamSet` and the caller
//!    performs the single optimizer step.
//!
//! Nested-parallelism budget: shard tasks run on a dedicated `P`-thread
//! pool, and each shard installs a private `max(1, T/P)`-thread intra-op
//! pool via [`legw_parallel::with_pool`], so the tensor kernels inside a
//! shard never contend with other shards' fork/join latches and the
//! total thread budget stays at `T` (`LEGW_THREADS`).
//!
//! With `LEGW_SHARDS=1` (the default) every step runs on the caller's
//! thread against the global pool and is bit-identical to the historical
//! serial trainer path.

use legw_data::{LmBatch, TranslationBatch};
use legw_models::{LmState, MnistLstm, PtbLm, ResNet, Seq2Seq};
use legw_nn::{GradBuffer, ParamSet};
use legw_parallel::{default_threads, with_pool, ThreadPool};
use legw_tensor::Tensor;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

/// How shard gradients (and losses) are combined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduce {
    /// `Σ (wₛ/W) · gₛ` — exact for losses that are means over examples
    /// (MNIST/ResNet cross-entropy, PTB per-token NLL) when `wₛ` is the
    /// shard example count.
    WeightedMean,
    /// `Σ gₛ` — for shard losses that are already globally normalised
    /// (the seq2seq masked loss with per-step `active_shard/active_batch`
    /// scales).
    Sum,
}

/// What one shard worker returns.
pub struct ShardOut<E> {
    /// The shard's accumulated gradients.
    pub grads: GradBuffer,
    /// The shard's loss value (per [`Reduce`] semantics).
    pub loss: f64,
    /// Combination weight (example count) — ignored by [`Reduce::Sum`].
    pub weight: f64,
    /// Arbitrary extra payload (e.g. the carried LSTM state).
    pub extra: E,
}

/// Aggregate result of one sharded training step.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// Combined batch loss, equal (within fp tolerance; exactly, for one
    /// shard) to what the serial path would have reported.
    pub loss: f64,
    /// True if any shard produced a non-finite loss.
    pub diverged: bool,
    /// `Σ gᵢ²` (f64) of the `ParamSet` gradients right after the combined
    /// gradient was applied, accumulated during the apply itself —
    /// `sqrt` gives the global ℓ₂ norm, so the caller's gradient clipping
    /// needs no extra full-parameter sweep. Zero until a `step_*` helper
    /// has applied gradients.
    pub grad_sq_norm: f64,
}

/// The data-parallel step executor. See the module docs for the design.
pub struct Executor {
    shards: usize,
    /// Pool the shard closures run on (absent for the serial executor).
    /// Sized so `run(n ≤ shards)` gives each shard its own concurrent
    /// worker (the caller participates as one of them).
    shard_pool: Option<ThreadPool>,
    /// Per-shard intra-op pools installed via `with_pool` while the shard
    /// closure runs.
    intra: Vec<Arc<ThreadPool>>,
}

impl Executor {
    /// An executor that splits each batch into (at most) `shards` shards.
    /// `shards <= 1` builds the serial executor: no extra threads, every
    /// step bit-identical to the historical single-tape path.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        if shards == 1 {
            return Self { shards, shard_pool: None, intra: Vec::new() };
        }
        let budget = default_threads();
        let intra_threads = (budget / shards).max(1);
        Self {
            shards,
            shard_pool: Some(ThreadPool::new(shards)),
            intra: (0..shards).map(|_| Arc::new(ThreadPool::new(intra_threads))).collect(),
        }
    }

    /// The process-wide executor, sized from `LEGW_SHARDS` (default 1).
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(default_shards()))
    }

    /// Maximum number of shards a batch is split into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Contiguous example ranges for a batch of `n` examples: at most
    /// [`Executor::shards`] shards, never an empty one.
    pub fn shard_ranges(&self, n: usize) -> Vec<Range<usize>> {
        legw_parallel::split_evenly(n, self.shards)
    }

    /// Runs `f` once per shard (concurrently when this executor is
    /// parallel), then combines the shard gradients with a fixed-order
    /// tree reduction. Returns the combined buffer, the aggregate
    /// loss/divergence outcome, and the per-shard extras in shard order.
    ///
    /// Determinism: `f` must be deterministic per shard; everything the
    /// executor adds (assignment of shards to workers aside) is a fixed
    /// serial order on the calling thread, so repeated runs are
    /// byte-identical.
    pub fn run_shards<S, E, F>(&self, reduce: Reduce, shards: &[S], f: F) -> (GradBuffer, StepOutcome, Vec<E>)
    where
        S: Sync,
        E: Send,
        F: Fn(usize, &S) -> ShardOut<E> + Sync,
    {
        let n = shards.len();
        assert!(n >= 1, "run_shards needs at least one shard");
        assert!(
            self.shard_pool.is_none() || n <= self.intra.len(),
            "more shards than the executor was built for"
        );

        let outs: Vec<ShardOut<E>> = match &self.shard_pool {
            None => shards.iter().enumerate().map(|(i, s)| f(i, s)).collect(),
            Some(_) if n == 1 => vec![f(0, &shards[0])],
            Some(pool) => {
                let slots: Vec<Mutex<Option<ShardOut<E>>>> =
                    (0..n).map(|_| Mutex::new(None)).collect();
                pool.run(n, |i| {
                    let out = with_pool(&self.intra[i], || f(i, &shards[i]));
                    *slots[i].lock().unwrap() = Some(out);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("shard task did not report"))
                    .collect()
            }
        };

        let diverged = outs.iter().any(|o| !o.loss.is_finite());
        let mut losses = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut bufs = Vec::with_capacity(n);
        let mut extras = Vec::with_capacity(n);
        for o in outs {
            losses.push(o.loss);
            weights.push(o.weight);
            bufs.push(o.grads);
            extras.push(o.extra);
        }

        let loss = if n == 1 {
            // Single shard: no scaling at all, so the result is
            // bit-identical to the serial path.
            losses[0]
        } else {
            match reduce {
                Reduce::WeightedMean => {
                    let total: f64 = weights.iter().sum();
                    let mut loss = 0.0f64;
                    for ((l, w), buf) in losses.iter().zip(&weights).zip(bufs.iter_mut()) {
                        let frac = w / total;
                        loss += frac * l;
                        buf.scale(frac as f32);
                    }
                    loss
                }
                Reduce::Sum => losses.iter().sum(),
            }
        };
        let combined = tree_reduce(bufs);
        (combined, StepOutcome { loss, diverged, grad_sq_norm: 0.0 }, extras)
    }

    /// Forward-only companion to [`Executor::run_shards`]: runs `f` once
    /// per item (concurrently on the shard pool when this executor is
    /// parallel, serially in item order otherwise) and returns the
    /// results in item order. No gradient combine, no loss bookkeeping —
    /// this is what epoch-end validation uses so `LEGW_SHARDS > 1`
    /// accelerates evaluation too. Each shard runs under its private
    /// intra-op pool, same as training shards.
    pub fn map_shards<S, R, F>(&self, shards: &[S], f: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        let n = shards.len();
        if n == 0 {
            return Vec::new();
        }
        match &self.shard_pool {
            None => shards.iter().enumerate().map(|(i, s)| f(i, s)).collect(),
            Some(_) if n == 1 => vec![f(0, &shards[0])],
            Some(pool) => {
                assert!(n <= self.intra.len(), "more shards than the executor was built for");
                let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
                pool.run(n, |i| {
                    let out = with_pool(&self.intra[i], || f(i, &shards[i]));
                    *slots[i].lock().unwrap() = Some(out);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("shard task did not report"))
                    .collect()
            }
        }
    }
}

impl Executor {
    /// One sharded training step of the MNIST-LSTM classifier: forward +
    /// backward per shard, deterministic gradient combine into `ps.grad`.
    /// The caller clips/steps/zeroes as usual.
    pub fn step_mnist(
        &self,
        model: &MnistLstm,
        ps: &mut ParamSet,
        bx: &Tensor,
        by: &[usize],
    ) -> StepOutcome {
        let ranges = self.shard_ranges(by.len());
        let shards: Vec<(Tensor, &[usize])> = if ranges.len() == 1 {
            vec![(bx.clone(), by)]
        } else {
            ranges.iter().map(|r| (bx.rows(r.start, r.end), &by[r.start..r.end])).collect()
        };
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, _) = self.run_shards(Reduce::WeightedMean, &shards, |_, shard| {
            let (sx, sy) = shard;
            let (mut g, bd, loss, _) = model.forward_loss(ps_ref, sx, sy);
            let lv = g.value(loss).item() as f64;
            g.backward(loss);
            let mut buf = GradBuffer::for_params(ps_ref);
            bd.write_grads_to(&g, &mut buf);
            ShardOut { grads: buf, loss: lv, weight: sy.len() as f64, extra: () }
        });
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);
        out
    }

    /// One sharded BPTT window of the PTB language model. Tracks are
    /// sharded by index, so each shard carries its own slice of the
    /// recurrent state; the returned state is the shard states
    /// reassembled in order.
    pub fn step_ptb(
        &self,
        model: &PtbLm,
        ps: &mut ParamSet,
        window: &LmBatch,
        state: &LmState,
    ) -> (StepOutcome, LmState) {
        let ranges = self.shard_ranges(window.tracks());
        let shards: Vec<(LmBatch, LmState)> = if ranges.len() == 1 {
            vec![(window.clone(), state.clone())]
        } else {
            ranges
                .iter()
                .map(|r| (window.slice_tracks(r.start, r.end), state.slice_rows(r.start, r.end)))
                .collect()
        };
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, states) = self.run_shards(Reduce::WeightedMean, &shards, |_, shard| {
            let (sw, ss) = shard;
            let (mut g, bd, loss, nll, next) = model.forward_loss(ps_ref, sw, ss);
            g.backward(loss);
            let mut buf = GradBuffer::for_params(ps_ref);
            bd.write_grads_to(&g, &mut buf);
            ShardOut { grads: buf, loss: nll, weight: sw.tracks() as f64, extra: next }
        });
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);
        let next_state =
            if states.len() == 1 { states.into_iter().next().unwrap() } else { LmState::concat(&states) };
        (out, next_state)
    }

    /// One sharded training step of the seq2seq model.
    ///
    /// The serial loss averages each decode step over the globally active
    /// (unmasked) rows, so an example-count weighted mean of shard losses
    /// would be wrong for ragged batches. Instead each shard scales step
    /// `t` by `active_in_shard / active_in_batch` (computed here from the
    /// full batch) and the shards combine by plain [`Reduce::Sum`], which
    /// reproduces the serial loss and gradient exactly.
    pub fn step_seq2seq(
        &self,
        model: &Seq2Seq,
        ps: &mut ParamSet,
        batch: &TranslationBatch,
    ) -> StepOutcome {
        let active = |step: &[usize]| step.iter().filter(|&&t| t != usize::MAX).count() as f32;
        let ranges = self.shard_ranges(batch.batch_size());
        let shards: Vec<(TranslationBatch, Option<Vec<f32>>)> = if ranges.len() == 1 {
            vec![(batch.clone(), None)]
        } else {
            let global: Vec<f32> = batch.dec_tgt.iter().map(|s| active(s)).collect();
            ranges
                .iter()
                .map(|r| {
                    let sb = batch.slice(r.start, r.end);
                    let scale: Vec<f32> = sb
                        .dec_tgt
                        .iter()
                        .zip(&global)
                        .map(|(s, &ga)| if ga > 0.0 { active(s) / ga } else { 0.0 })
                        .collect();
                    (sb, Some(scale))
                })
                .collect()
        };
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, _) = self.run_shards(Reduce::Sum, &shards, |_, shard| {
            let (sb, scale) = shard;
            let (mut g, bd, loss, nll) = model.forward_loss_scaled(ps_ref, sb, scale.as_deref());
            g.backward(loss);
            let mut buf = GradBuffer::for_params(ps_ref);
            bd.write_grads_to(&g, &mut buf);
            ShardOut { grads: buf, loss: nll, weight: sb.batch_size() as f64, extra: () }
        });
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);
        out
    }

    /// One sharded training step of the ResNet. Each shard trains a clone
    /// of the model (BatchNorm normalises with shard statistics — the
    /// standard non-synchronised distributed-BN semantics) and the shard
    /// running stats are folded back deterministically afterwards.
    pub fn step_resnet(
        &self,
        model: &mut ResNet,
        ps: &mut ParamSet,
        bx: &Tensor,
        by: &[usize],
    ) -> StepOutcome {
        let ranges = self.shard_ranges(by.len());
        if ranges.len() == 1 {
            // Serial path: mutate the model's BN stats in place, exactly as
            // the historical trainer did.
            let (mut g, bd, loss, _) = model.forward_loss(ps, bx, by);
            let lv = g.value(loss).item() as f64;
            g.backward(loss);
            let mut buf = GradBuffer::for_params(ps);
            bd.write_grads_to(&g, &mut buf);
            let gsq = buf.apply_with_sq_norm(ps);
            return StepOutcome { loss: lv, diverged: !lv.is_finite(), grad_sq_norm: gsq };
        }

        let clones: Vec<Mutex<ResNet>> =
            ranges.iter().map(|_| Mutex::new(model.clone())).collect();
        let shards: Vec<(Tensor, &[usize])> = ranges
            .iter()
            .map(|r| (bx.slice_outer(r.start, r.end), &by[r.start..r.end]))
            .collect();
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, _) = self.run_shards(Reduce::WeightedMean, &shards, |i, shard| {
            let (sx, sy) = shard;
            let mut m = clones[i].lock().unwrap();
            let (mut g, bd, loss, _) = m.forward_loss(ps_ref, sx, sy);
            let lv = g.value(loss).item() as f64;
            g.backward(loss);
            let mut buf = GradBuffer::for_params(ps_ref);
            bd.write_grads_to(&g, &mut buf);
            ShardOut { grads: buf, loss: lv, weight: sy.len() as f64, extra: () }
        });
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);

        let total = by.len() as f32;
        let clones: Vec<ResNet> =
            clones.into_iter().map(|m| m.into_inner().unwrap()).collect();
        let sources: Vec<(f32, &ResNet)> = ranges
            .iter()
            .zip(&clones)
            .map(|(r, m)| ((r.end - r.start) as f32 / total, m))
            .collect();
        model.merge_shard_stats(&sources);
        out
    }
}

/// Fixed-order pairwise tree reduction (stride doubling): `bufs[i] +=
/// bufs[i+s]` for `i ≡ 0 (mod 2s)`, `s = 1, 2, 4, …` — the same
/// combination tree regardless of which worker finished first, so the
/// floating-point result is deterministic for a given shard count.
fn tree_reduce(mut bufs: Vec<GradBuffer>) -> GradBuffer {
    let n = bufs.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let right = std::mem::take(&mut bufs[i + stride]);
            bufs[i].merge(&right);
            i += 2 * stride;
        }
        stride *= 2;
    }
    bufs.swap_remove(0)
}

/// `LEGW_SHARDS` parsed as a positive integer, else 1.
pub fn default_shards() -> usize {
    if let Ok(v) = std::env::var("LEGW_SHARDS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_data::SynthMnist;
    use legw_models::MnistLstm;
    use rand::{rngs::StdRng, SeedableRng};

    /// A synthetic "model": shard i contributes gradient `grad[i]` on one
    /// scalar parameter with weight `w[i]` and loss `loss[i]`.
    fn run_synthetic(
        exec: &Executor,
        reduce: Reduce,
        cases: &[(f32, f64, f64)], // (grad, loss, weight)
    ) -> (f32, StepOutcome) {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[1]));
        let ps_ref = &ps;
        let (grads, out, _) = exec.run_shards(reduce, cases, |_, &(g, l, w)| {
            let mut buf = GradBuffer::for_params(ps_ref);
            buf.accumulate(id, &Tensor::from_vec(vec![g], &[1]));
            ShardOut { grads: buf, loss: l, weight: w, extra: () }
        });
        (grads.get(id).unwrap().as_slice()[0], out)
    }

    #[test]
    fn weighted_mean_weights_by_example_count() {
        let exec = Executor::new(1); // serial executor still reduces n shards
        let (g, out) = run_synthetic(
            &exec,
            Reduce::WeightedMean,
            &[(1.0, 1.0, 3.0), (5.0, 5.0, 1.0)],
        );
        // (3/4)·1 + (1/4)·5 = 2
        assert!((g - 2.0).abs() < 1e-6);
        assert!((out.loss - 2.0).abs() < 1e-9);
        assert!(!out.diverged);
    }

    #[test]
    fn sum_reduce_ignores_weights() {
        let exec = Executor::new(1);
        let (g, out) =
            run_synthetic(&exec, Reduce::Sum, &[(1.0, 0.5, 99.0), (2.0, 0.25, 1.0)]);
        assert!((g - 3.0).abs() < 1e-6);
        assert!((out.loss - 0.75).abs() < 1e-9);
    }

    #[test]
    fn single_shard_skips_scaling_entirely() {
        let exec = Executor::new(1);
        let (g, out) = run_synthetic(&exec, Reduce::WeightedMean, &[(0.1, 7.0, 13.0)]);
        assert_eq!(g, 0.1); // bit-identical, not 0.1 * (13/13)
        assert_eq!(out.loss, 7.0);
    }

    #[test]
    fn divergence_aggregates_across_shards() {
        let exec = Executor::new(1);
        let (_, out) = run_synthetic(
            &exec,
            Reduce::WeightedMean,
            &[(1.0, 1.0, 1.0), (1.0, f64::NAN, 1.0)],
        );
        assert!(out.diverged);
    }

    #[test]
    fn parallel_executor_matches_serial_bitwise() {
        let serial = Executor::new(1);
        let parallel = Executor::new(3);
        let cases = [(0.3f32, 1.0, 2.0), (0.7, 2.0, 3.0), (0.11, 3.0, 1.0)];
        let (gs, os) = run_synthetic(&serial, Reduce::WeightedMean, &cases);
        for _ in 0..3 {
            let (gp, op) = run_synthetic(&parallel, Reduce::WeightedMean, &cases);
            assert_eq!(gs, gp, "tree reduce must not depend on worker timing");
            assert_eq!(os.loss, op.loss);
        }
    }

    #[test]
    fn shard_ranges_never_empty() {
        let exec = Executor::new(7);
        let ranges = exec.shard_ranges(3);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn step_mnist_sharded_matches_serial_grads() {
        let data = SynthMnist::generate(1, 24, 8);
        let (bx, by) = data.train.gather(&(0..11).collect::<Vec<_>>());
        let grads_at = |shards: usize| {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(5);
            let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
            let exec = Executor::new(shards);
            let out = exec.step_mnist(&model, &mut ps, &bx, &by);
            assert!(!out.diverged);
            // The fused apply's norm accumulation must agree with the
            // post-apply sweep it replaces.
            let norm = ps.grad_norm() as f64;
            assert!(
                (out.grad_sq_norm.sqrt() - norm).abs() < 1e-4 * (1.0 + norm),
                "fused grad norm {} vs swept {}",
                out.grad_sq_norm.sqrt(),
                norm
            );
            let grads: Vec<f32> =
                ps.iter().flat_map(|(_, p)| p.grad.as_slice().to_vec()).collect();
            (out.loss, grads)
        };
        let (l1, g1) = grads_at(1);
        let (l3, g3) = grads_at(3);
        assert!((l1 - l3).abs() < 1e-6, "loss {l1} vs {l3}");
        for (a, b) in g1.iter().zip(&g3) {
            assert!((a - b).abs() < 1e-5, "grad mismatch {a} vs {b}");
        }
    }
}
