//! Sharded epoch-end evaluation: the forward-only side of the
//! data-parallel executor.
//!
//! Training already splits each batch across [`Executor`] shards; these
//! helpers do the same for the validation sweeps the trainer runs at every
//! epoch boundary, so `LEGW_SHARDS > 1` accelerates evaluation too.
//!
//! Shard-count invariance: for the chunked evaluators (MNIST, ResNet,
//! seq2seq) the *work items* are the exact evaluation batches the serial
//! sweep would build, merely distributed over shards — every forward pass
//! sees byte-identical inputs, and the per-item results (integer correct
//! counts, decoded token sequences) combine by exact concatenation or
//! integer addition. The metric is therefore identical for any shard
//! count. The PTB stream carries recurrent state across windows, so its
//! only parallel axis is the track (row) dimension; shard NLLs combine by
//! track-count weighted mean, which matches the full-batch mean up to
//! floating-point association (the single-shard path reproduces the
//! historical sweep exactly).

use crate::exec::Executor;
use legw_data::{metrics, Classification, SynthPtb, SynthTranslation};
use legw_models::{LmState, MnistLstm, PtbLm, ResNet, Seq2Seq};
use legw_nn::ParamSet;
use std::ops::Range;

/// The serial chunk boundaries for `n` examples: `⌈n/chunk⌉` index ranges
/// of at most `chunk` examples, in dataset order.
fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk)).map(|i| i * chunk..((i + 1) * chunk).min(n)).collect()
}

/// Splits `items` work items over at most `shards` contiguous groups.
fn item_groups(n_items: usize, shards: usize) -> Vec<Range<usize>> {
    legw_parallel::split_evenly(n_items, shards)
}

impl Executor {
    /// Top-1 accuracy of the MNIST-LSTM classifier over a dataset,
    /// sharded over this executor's workers. Evaluates the same
    /// `chunk`-sized batches as [`MnistLstm::evaluate`] and returns the
    /// same metric for every shard count (integer correct counts combine
    /// exactly).
    pub fn eval_mnist(
        &self,
        model: &MnistLstm,
        ps: &ParamSet,
        data: &Classification,
        chunk: usize,
    ) -> f64 {
        let n = data.len();
        if n == 0 {
            return 0.0;
        }
        let chunks = chunk_ranges(n, chunk);
        let groups = item_groups(chunks.len(), self.shards());
        let correct: u64 = self
            .map_shards(&groups, |_, g| {
                let mut c = 0u64;
                // One tape per shard, reset between chunks: reset() keeps
                // the node Vec's capacity, so only the first chunk pays
                // the allocation growth.
                let mut graph = legw_autograd::Graph::new();
                for r in &chunks[g.start..g.end] {
                    let idx: Vec<usize> = (r.start..r.end).collect();
                    let (batch, labels) = data.gather(&idx);
                    graph.reset();
                    let mut bd = legw_nn::Binding::new();
                    let logits = model.forward(&mut graph, &mut bd, ps, &batch);
                    let acc = metrics::accuracy(graph.value(logits), &labels);
                    c += (acc * labels.len() as f64).round() as u64;
                }
                c
            })
            .into_iter()
            .sum();
        correct as f64 / n as f64
    }

    /// `(top-1, top-k)` accuracy of the ResNet over a dataset, sharded
    /// over this executor's workers. Each shard evaluates a clone of the
    /// model (evaluation mode only reads the BN running stats, but the
    /// forward signature is `&mut`), over the same `chunk`-sized batches
    /// the serial [`ResNet::evaluate`] sweep builds.
    pub fn eval_resnet(
        &self,
        model: &ResNet,
        ps: &ParamSet,
        data: &Classification,
        chunk: usize,
        k: usize,
    ) -> (f64, f64) {
        let n = data.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        let chunks = chunk_ranges(n, chunk);
        let groups = item_groups(chunks.len(), self.shards());
        let counts = self.map_shards(&groups, |_, g| {
            let mut m = model.clone();
            let (mut c1, mut ck) = (0u64, 0u64);
            // One tape per shard, reset between chunks (capacity reuse).
            let mut graph = legw_autograd::Graph::new();
            for r in &chunks[g.start..g.end] {
                let idx: Vec<usize> = (r.start..r.end).collect();
                let (batch, labels) = data.gather(&idx);
                graph.reset();
                let mut bd = legw_nn::Binding::new();
                let logits = m.forward(&mut graph, &mut bd, ps, &batch, false);
                let lv = graph.value(logits);
                c1 += (metrics::accuracy(lv, &labels) * labels.len() as f64).round() as u64;
                ck += (metrics::top_k_accuracy(lv, &labels, k) * labels.len() as f64).round()
                    as u64;
            }
            (c1, ck)
        });
        let (c1, ck) = counts.into_iter().fold((0u64, 0u64), |(a, b), (x, y)| (a + x, b + y));
        (c1 as f64 / n as f64, ck as f64 / n as f64)
    }

    /// Validation perplexity of the PTB language model, sharded by track.
    /// Each shard walks the full window stream carrying its own slice of
    /// the recurrent state; shard NLLs combine by track-count weighted
    /// mean. The single-shard path is the historical
    /// [`PtbLm::evaluate_perplexity`] sweep, term for term.
    pub fn eval_ptb_perplexity(
        &self,
        model: &PtbLm,
        ps: &ParamSet,
        data: &SynthPtb,
        batch: usize,
        seq_len: usize,
    ) -> f64 {
        let windows = data.batches(false, batch, seq_len);
        if windows.is_empty() {
            return f64::INFINITY;
        }
        let tracks = windows[0].tracks();
        let ranges = self.shard_ranges(tracks);
        let nll = if ranges.len() == 1 {
            let mut state = LmState::zeros(model.config(), tracks);
            let mut total = 0.0f64;
            for w in &windows {
                let (_, _, _, nll, next) = model.forward_loss(ps, w, &state);
                total += nll;
                state = next;
            }
            total / windows.len() as f64
        } else {
            let partials = self.map_shards(&ranges, |_, r| {
                let mut state = LmState::zeros(model.config(), r.end - r.start);
                let mut total = 0.0f64;
                for w in &windows {
                    let sw = w.slice_tracks(r.start, r.end);
                    let (_, _, _, nll, next) = model.forward_loss(ps, &sw, &state);
                    total += nll;
                    state = next;
                }
                total
            });
            let weighted: f64 = ranges
                .iter()
                .zip(&partials)
                .map(|(r, p)| (r.end - r.start) as f64 / tracks as f64 * p)
                .sum();
            weighted / windows.len() as f64
        };
        nll.exp()
    }

    /// Corpus BLEU of the seq2seq model over the test split, sharded over
    /// this executor's workers. The work items are the exact padded
    /// batches the serial [`Seq2Seq::evaluate_bleu`] sweep decodes;
    /// hypotheses and references concatenate in batch order, so the score
    /// is identical for every shard count.
    pub fn eval_seq2seq_bleu(
        &self,
        model: &Seq2Seq,
        ps: &ParamSet,
        data: &SynthTranslation,
        batch: usize,
    ) -> f64 {
        let batches = data.batches(false, batch);
        if batches.is_empty() {
            return 0.0;
        }
        let groups = item_groups(batches.len(), self.shards());
        let parts = self.map_shards(&groups, |_, g| {
            let mut cands = Vec::new();
            let mut refs = Vec::new();
            for b in &batches[g.start..g.end] {
                cands.extend(model.greedy_decode(ps, b));
                refs.extend(b.refs.clone());
            }
            (cands, refs)
        });
        let mut cands = Vec::new();
        let mut refs = Vec::new();
        for (c, r) in parts {
            cands.extend(c);
            refs.extend(r);
        }
        metrics::corpus_bleu(&cands, &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use legw_data::SynthMnist;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(4, 4), vec![0..4]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
    }

    #[test]
    fn map_shards_preserves_item_order() {
        for shards in [1usize, 2, 3] {
            let exec = Executor::new(ExecConfig::default().with_shards(shards));
            let items: Vec<usize> = (0..shards).collect();
            let out = exec.map_shards(&items, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..shards).map(|x| x * 10).collect::<Vec<_>>());
        }
        // The serial executor maps any number of items, in order.
        let exec = Executor::new(ExecConfig::default());
        let out = exec.map_shards(&[5usize, 6, 7], |i, &x| (i, x));
        assert_eq!(out, vec![(0, 5), (1, 6), (2, 7)]);
    }

    #[test]
    fn eval_mnist_matches_model_evaluate() {
        let data = SynthMnist::generate(31, 48, 40);
        let mut rng = StdRng::seed_from_u64(9);
        let mut ps = ParamSet::new();
        let model = MnistLstm::new(&mut ps, &mut rng, 10, 10);
        let serial = model.evaluate(&ps, &data.test, 16);
        for shards in [1usize, 2, 3, 7] {
            let exec = Executor::new(ExecConfig::default().with_shards(shards));
            let acc = exec.eval_mnist(&model, &ps, &data.test, 16);
            assert!(
                (acc - serial).abs() < 1e-12,
                "shards={shards}: {acc} vs serial {serial}"
            );
        }
    }
}
