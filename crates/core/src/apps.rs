//! The Table 1 application registry: synthetic dataset parameters, tuned
//! baseline schedules, and a single `run` entry point for the experiment
//! harness.
//!
//! Baselines here play the role of the paper's hand-tuned small-batch
//! configurations (the paper's own Table 1 references). Every figure/table
//! harness derives its large-batch configurations from these via
//! [`legw_schedules::Legw`] or the comparison rules, exactly as the paper
//! prescribes — nothing downstream re-tunes per batch size.

use crate::trainer::{self, TrainReport};
use legw_data::{SynthImageNet, SynthMnist, SynthPtb, SynthTranslation};
use legw_models::{PtbLmConfig, Seq2SeqConfig};
use legw_optim::SolverKind;
use legw_schedules::BaselineSchedule;
use std::sync::OnceLock;

/// The five applications of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum App {
    /// 1-layer LSTM on (synthetic) MNIST.
    MnistLstm,
    /// PTB-small language model.
    PtbSmall,
    /// PTB-large language model.
    PtbLarge,
    /// GNMT-style seq2seq.
    Gnmt,
    /// ResNet on (synthetic) ImageNet.
    ImageNet,
}

/// Whether larger metric values are better for an app.
pub fn higher_is_better(app: App) -> bool {
    !matches!(app, App::PtbSmall | App::PtbLarge)
}

/// Registry row: identification plus the tuned baseline.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Which application.
    pub app: App,
    /// Display name.
    pub name: &'static str,
    /// Paper's dataset and sample counts (Table 1).
    pub paper_dataset: &'static str,
    /// Paper's quality target (Table 1).
    pub paper_target: &'static str,
    /// This repo's synthetic substitute, one line.
    pub substitute: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// The tuned small-batch baseline schedule.
    pub baseline: BaselineSchedule,
    /// Solver the paper uses for this app's LEGW runs.
    pub solver: SolverKind,
    /// Largest batch the experiments scale to (k × baseline).
    pub max_batch: usize,
}

/// The registry (Table 1 analogue).
pub fn registry() -> Vec<AppSpec> {
    vec![
        spec(App::MnistLstm),
        spec(App::PtbSmall),
        spec(App::PtbLarge),
        spec(App::Gnmt),
        spec(App::ImageNet),
    ]
}

/// Specification of one application.
pub fn spec(app: App) -> AppSpec {
    match app {
        App::MnistLstm => AppSpec {
            app,
            name: "mnist-lstm",
            paper_dataset: "MNIST 60K/10K",
            paper_target: "98.7% accuracy, 25 epochs, batch 128→8K",
            substitute: "SynthMnist 8192/1024, LSTM proj/hidden 32, 5 epochs, batch 32→256",
            metric: "test accuracy",
            baseline: BaselineSchedule::constant(32, 0.2, 0.0625, 5.0),
            solver: SolverKind::Momentum,
            max_batch: 256,
        },
        App::PtbSmall => AppSpec {
            app,
            name: "ptb-small",
            paper_dataset: "PTB 930K/82K words",
            paper_target: "116 perplexity, 13 epochs, batch 20→640",
            substitute: "SynthPtb vocab 64 (branch 8), LSTM 2×32, 5 epochs, batch 8→128",
            metric: "valid perplexity",
            baseline: BaselineSchedule::exponential(8, 1.0, 0.1, 5.0, 3.0, 0.4),
            solver: SolverKind::Momentum,
            max_batch: 128,
        },
        App::PtbLarge => AppSpec {
            app,
            name: "ptb-large",
            paper_dataset: "PTB 930K/82K words",
            paper_target: "78 perplexity, 55 epochs, batch 20→640",
            substitute: "SynthPtb vocab 160 (branch 12), LSTM 2×48, 6 epochs, batch 8→128, LARS",
            metric: "valid perplexity",
            baseline: BaselineSchedule::poly(8, 8.0, 0.1, 6.0, 2.0),
            solver: SolverKind::Lars,
            max_batch: 128,
        },
        App::Gnmt => AppSpec {
            app,
            name: "gnmt",
            paper_dataset: "WMT16 En-De 3.5M/3K",
            paper_target: "21.8 BLEU, batch 256→4K",
            substitute: "SynthTranslation 16 tokens, 4096/256 pairs, 2+2 LSTM w/ attention, 8 epochs, batch 16→128",
            metric: "test BLEU",
            baseline: BaselineSchedule::constant(16, 0.5, 0.05, 8.0),
            solver: SolverKind::Momentum,
            max_batch: 128,
        },
        App::ImageNet => AppSpec {
            app,
            name: "imagenet-resnet",
            paper_dataset: "ImageNet 1.3M/5K",
            paper_target: "93% top-5, 90 epochs, batch 1K→32K, LARS",
            substitute: "SynthImageNet 12 classes 1024/252 @16x16, ResNet-8 width 8, 8 epochs, batch 16→128, LARS",
            metric: "test top-1 (top-3 secondary)",
            baseline: BaselineSchedule::poly(16, 4.0, 0.125, 8.0, 2.0),
            solver: SolverKind::Lars,
            max_batch: 128,
        },
    }
}

// --- cached datasets (generation is deterministic; cache avoids repeating
// --- it across the dozens of runs in a sweep)

fn mnist_data() -> &'static SynthMnist {
    static D: OnceLock<SynthMnist> = OnceLock::new();
    D.get_or_init(|| SynthMnist::generate(1234, 8192, 1024))
}

fn ptb_small_data() -> &'static SynthPtb {
    static D: OnceLock<SynthPtb> = OnceLock::new();
    D.get_or_init(|| SynthPtb::generate(1234, 64, 8, 80_000, 10_000))
}

fn ptb_large_data() -> &'static SynthPtb {
    static D: OnceLock<SynthPtb> = OnceLock::new();
    D.get_or_init(|| SynthPtb::generate(4321, 160, 12, 60_000, 10_000))
}

fn gnmt_data() -> &'static SynthTranslation {
    static D: OnceLock<SynthTranslation> = OnceLock::new();
    D.get_or_init(|| SynthTranslation::generate_with(1234, 16, 4096, 256, 3, 5, false))
}

fn imagenet_data() -> &'static SynthImageNet {
    static D: OnceLock<SynthImageNet> = OnceLock::new();
    D.get_or_init(|| SynthImageNet::generate_sized(1234, 12, 1024, 252, 16))
}

/// Sequence length used by the PTB batchers.
pub const PTB_SEQ_LEN: usize = 16;

/// Runs one application under an arbitrary schedule and solver. This is the
/// single entry point every figure/table harness uses.
pub fn run(app: App, schedule: &BaselineSchedule, solver: SolverKind, seed: u64) -> TrainReport {
    match app {
        App::MnistLstm => trainer::train_mnist(mnist_data(), 32, 32, schedule, solver, seed),
        App::PtbSmall => trainer::train_ptb(
            ptb_small_data(),
            PtbLmConfig { vocab: 64, embed: 32, hidden: 32, layers: 2, keep: 1.0 },
            PTB_SEQ_LEN,
            schedule,
            solver,
            seed,
        ),
        App::PtbLarge => trainer::train_ptb(
            ptb_large_data(),
            PtbLmConfig { vocab: 160, embed: 48, hidden: 48, layers: 2, keep: 1.0 },
            PTB_SEQ_LEN,
            schedule,
            solver,
            seed,
        ),
        App::Gnmt => {
            let data = gnmt_data();
            trainer::train_seq2seq(
                data,
                Seq2SeqConfig { vocab: data.vocab, embed: 32, hidden: 32, attn: 24, max_decode: 8 },
                schedule,
                solver,
                seed,
            )
        }
        App::ImageNet => {
            trainer::train_resnet(imagenet_data(), 8, 3, schedule, solver, 1e-4, seed)
        }
    }
}

/// Perplexity floor of the PTB corpora (for EXPERIMENTS.md context).
pub fn ptb_floor(app: App) -> Option<f64> {
    match app {
        App::PtbSmall => Some(ptb_small_data().perplexity_floor()),
        App::PtbLarge => Some(ptb_large_data().perplexity_floor()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_schedules::Legw;

    #[test]
    fn registry_covers_table_1() {
        let r = registry();
        assert_eq!(r.len(), 5);
        let names: Vec<_> = r.iter().map(|s| s.name).collect();
        assert!(names.contains(&"mnist-lstm"));
        assert!(names.contains(&"gnmt"));
        assert!(names.contains(&"imagenet-resnet"));
    }

    #[test]
    fn max_batch_is_power_of_two_multiple_of_baseline() {
        for s in registry() {
            let k = s.max_batch / s.baseline.batch_size();
            assert!(k >= 8, "{}: scale factor {k} too small to be interesting", s.name);
            assert_eq!(s.max_batch % s.baseline.batch_size(), 0);
            assert!(k.is_power_of_two());
        }
    }

    #[test]
    fn legw_scaling_of_each_baseline_is_well_formed() {
        for s in registry() {
            let big = Legw::scale_to(&s.baseline, s.max_batch);
            assert!(big.peak_lr() > s.baseline.peak_lr());
            assert!(big.warmup_epochs() <= big.total_epochs(), "{}: warmup exceeds budget", s.name);
        }
    }

    #[test]
    fn direction_of_metrics() {
        assert!(higher_is_better(App::MnistLstm));
        assert!(higher_is_better(App::Gnmt));
        assert!(!higher_is_better(App::PtbSmall));
        assert!(!higher_is_better(App::PtbLarge));
        assert!(higher_is_better(App::ImageNet));
    }

    #[test]
    fn ptb_floors_are_sane() {
        let f_small = ptb_floor(App::PtbSmall).unwrap();
        let f_large = ptb_floor(App::PtbLarge).unwrap();
        assert!(f_small > 1.0 && f_small < 50.0);
        assert!(f_large > 1.0 && f_large < 60.0);
        assert!(ptb_floor(App::Gnmt).is_none());
    }
}
