//! The four training workloads as pluggable [`ShardStep`] implementations.
//!
//! PR 2/3 grew one bespoke `Executor::step_*` method per model family, each
//! repeating the same plumbing: slice the batch into shard ranges, run
//! forward/backward per shard into a [`GradBuffer`], hand the buffers to
//! the reduction, apply the combined gradient. [`ShardStep`] factors that
//! spine out: a workload says how to *split* its batch, what each shard
//! *weighs*, and how to *run* one shard; [`Executor::step`] owns the rest.
//! Trainers call `exec.step(&MnistStep { .. }, &mut ps)` and friends.
//!
//! Workload-specific post-processing stays next to the workload:
//! [`PtbStep::merge_states`] reassembles the carried LSTM state and
//! [`ResnetStep::fold_stats`] folds shard BatchNorm statistics back into
//! the model.

use crate::exec::{Executor, Reduce, ShardOut, StepOutcome};
use legw_data::{LmBatch, TranslationBatch};
use legw_models::{LmState, MnistLstm, PtbLm, ResNet, Seq2Seq};
use legw_nn::{DropCtx, GradBuffer, ParamSet};
use legw_tensor::Tensor;
use std::sync::Mutex;

/// One data-parallel training workload: how a batch splits into shards and
/// how one shard computes its loss and gradients. Implementations are
/// borrowed views over the model + batch, built per step.
pub trait ShardStep: Sync {
    /// Per-shard owned work item (sliced inputs, shard state, …).
    type Shard: Sync;
    /// Per-shard result payload returned alongside the [`StepOutcome`].
    type Extra: Send;

    /// How shard gradients and losses combine.
    fn reduce(&self) -> Reduce;

    /// Splits the batch into at most [`Executor::shards`] work items.
    fn split(&self, exec: &Executor) -> Vec<Self::Shard>;

    /// The [`Reduce::WeightedMean`] combination weight (example count) of
    /// one shard. Ignored for [`Reduce::Sum`] workloads.
    fn weight(&self, shard: &Self::Shard) -> f64;

    /// Forward + backward for one shard. Must be deterministic per shard —
    /// the executor may run it on any worker thread.
    fn run_shard(&self, ps: &ParamSet, index: usize, shard: &Self::Shard)
        -> ShardOut<Self::Extra>;
}

impl Executor {
    /// One sharded training step of any [`ShardStep`] workload: split, run
    /// shards (streaming the gradient reduction as they complete), apply
    /// the combined gradient into `ps.grad` with the fused Σg² sweep.
    /// Returns the outcome plus the per-shard extras in shard order. The
    /// caller clips/steps/zeroes as usual.
    pub fn step<W: ShardStep>(&self, w: &W, ps: &mut ParamSet) -> (StepOutcome, Vec<W::Extra>) {
        let shards = w.split(self);
        let weights: Vec<f64> = shards.iter().map(|s| w.weight(s)).collect();
        let ps_ref: &ParamSet = ps;
        let (grads, mut out, extras) =
            self.run_shards(w.reduce(), &shards, &weights, |i, s| w.run_shard(ps_ref, i, s));
        out.grad_sq_norm = grads.apply_with_sq_norm(ps);
        (out, extras)
    }
}

/// Shared tail of every shard body: backward, drain the tape's gradients
/// into a fresh buffer.
fn collect_grads(
    mut g: legw_autograd::Graph,
    bd: legw_nn::Binding,
    loss: legw_autograd::Var,
    ps: &ParamSet,
) -> GradBuffer {
    g.backward(loss);
    let mut buf = GradBuffer::for_params(ps);
    bd.write_grads_to(&g, &mut buf);
    buf
}

/// The MNIST-LSTM classifier step.
pub struct MnistStep<'a> {
    pub model: &'a MnistLstm,
    pub bx: &'a Tensor,
    pub by: &'a [usize],
}

impl ShardStep for MnistStep<'_> {
    type Shard = (Tensor, Vec<usize>);
    type Extra = ();

    fn reduce(&self) -> Reduce {
        Reduce::WeightedMean
    }

    fn split(&self, exec: &Executor) -> Vec<Self::Shard> {
        let ranges = exec.shard_ranges(self.by.len());
        if ranges.len() == 1 {
            vec![(self.bx.clone(), self.by.to_vec())]
        } else {
            ranges
                .iter()
                .map(|r| (self.bx.rows(r.start, r.end), self.by[r.start..r.end].to_vec()))
                .collect()
        }
    }

    fn weight(&self, shard: &Self::Shard) -> f64 {
        shard.1.len() as f64
    }

    fn run_shard(&self, ps: &ParamSet, _i: usize, (sx, sy): &Self::Shard) -> ShardOut<()> {
        let (g, bd, loss, _) = self.model.forward_loss(ps, sx, sy);
        let lv = g.value(loss).item() as f64;
        ShardOut { grads: collect_grads(g, bd, loss, ps), loss: lv, extra: () }
    }
}

/// The per-step dropout stream key for workloads with stochastic layers:
/// fixed `seed` for the run, `step` advancing every optimizer step. Shards
/// derive their [`DropCtx`] from this plus their global row offset, so
/// masks are identical for every shard count.
#[derive(Clone, Copy, Debug)]
pub struct DropPlan {
    pub seed: u64,
    pub step: u64,
}

/// One BPTT window of the PTB language model. Tracks are sharded by index,
/// so each shard carries its own slice of the recurrent state; reassemble
/// the returned extras with [`PtbStep::merge_states`].
pub struct PtbStep<'a> {
    pub model: &'a PtbLm,
    pub window: &'a LmBatch,
    pub state: &'a LmState,
    /// `Some` enables training-mode dropout (a no-op for `keep = 1.0`
    /// models); `None` runs the deterministic mask-free forward.
    pub drop: Option<DropPlan>,
}

impl PtbStep<'_> {
    /// Reassembles per-shard carried states (in shard order) into the
    /// full-batch state for the next window.
    pub fn merge_states(states: Vec<LmState>) -> LmState {
        assert!(!states.is_empty(), "merge of zero shard states");
        if states.len() == 1 {
            states.into_iter().next().unwrap()
        } else {
            LmState::concat(&states)
        }
    }
}

impl ShardStep for PtbStep<'_> {
    /// `(window slice, state slice, global index of the shard's first track)`.
    type Shard = (LmBatch, LmState, usize);
    type Extra = LmState;

    fn reduce(&self) -> Reduce {
        Reduce::WeightedMean
    }

    fn split(&self, exec: &Executor) -> Vec<Self::Shard> {
        let ranges = exec.shard_ranges(self.window.tracks());
        if ranges.len() == 1 {
            vec![(self.window.clone(), self.state.clone(), 0)]
        } else {
            ranges
                .iter()
                .map(|r| {
                    (
                        self.window.slice_tracks(r.start, r.end),
                        self.state.slice_rows(r.start, r.end),
                        r.start,
                    )
                })
                .collect()
        }
    }

    fn weight(&self, shard: &Self::Shard) -> f64 {
        shard.0.tracks() as f64
    }

    fn run_shard(
        &self,
        ps: &ParamSet,
        _i: usize,
        (sw, ss, row0): &Self::Shard,
    ) -> ShardOut<LmState> {
        let ctx = self.drop.map(|d| DropCtx { seed: d.seed, step: d.step, row0: *row0 });
        let (mut g, bd, loss, nll, next) = self.model.forward_loss_with(ps, sw, ss, ctx.as_ref());
        g.backward(loss);
        let mut buf = GradBuffer::for_params(ps);
        bd.write_grads_to(&g, &mut buf);
        ShardOut { grads: buf, loss: nll, extra: next }
    }
}

/// One step of the seq2seq model.
///
/// The serial loss averages each decode step over the globally active
/// (unmasked) rows, so an example-count weighted mean of shard losses
/// would be wrong for ragged batches. Instead each shard scales step `t`
/// by `active_in_shard / active_in_batch` (computed at split time from the
/// full batch) and the shards combine by plain [`Reduce::Sum`], which
/// reproduces the serial loss and gradient exactly.
pub struct Seq2SeqStep<'a> {
    pub model: &'a Seq2Seq,
    pub batch: &'a TranslationBatch,
}

impl ShardStep for Seq2SeqStep<'_> {
    type Shard = (TranslationBatch, Option<Vec<f32>>);
    type Extra = ();

    fn reduce(&self) -> Reduce {
        Reduce::Sum
    }

    fn split(&self, exec: &Executor) -> Vec<Self::Shard> {
        let active = |step: &[usize]| step.iter().filter(|&&t| t != usize::MAX).count() as f32;
        let ranges = exec.shard_ranges(self.batch.batch_size());
        if ranges.len() == 1 {
            vec![(self.batch.clone(), None)]
        } else {
            let global: Vec<f32> = self.batch.dec_tgt.iter().map(|s| active(s)).collect();
            ranges
                .iter()
                .map(|r| {
                    let sb = self.batch.slice(r.start, r.end);
                    let scale: Vec<f32> = sb
                        .dec_tgt
                        .iter()
                        .zip(&global)
                        .map(|(s, &ga)| if ga > 0.0 { active(s) / ga } else { 0.0 })
                        .collect();
                    (sb, Some(scale))
                })
                .collect()
        }
    }

    fn weight(&self, shard: &Self::Shard) -> f64 {
        shard.0.batch_size() as f64
    }

    fn run_shard(&self, ps: &ParamSet, _i: usize, (sb, scale): &Self::Shard) -> ShardOut<()> {
        let (g, bd, loss, nll) = self.model.forward_loss_scaled(ps, sb, scale.as_deref());
        ShardOut { grads: collect_grads(g, bd, loss, ps), loss: nll, extra: () }
    }
}

/// One step of the ResNet. Each shard trains a clone of the model
/// (BatchNorm normalises with shard statistics — the standard
/// non-synchronised distributed-BN semantics); the shard running stats
/// come back as extras and must be folded into the model with
/// [`ResnetStep::fold_stats`]. The single-shard fold uses weight 1.0, so
/// the serial path stays bit-identical to mutating the model in place.
pub struct ResnetStep<'a> {
    pub model: &'a ResNet,
    pub bx: &'a Tensor,
    pub by: &'a [usize],
}

impl ResnetStep<'_> {
    /// Folds per-shard `(example count, trained clone)` extras back into
    /// `model`'s BatchNorm running statistics, weighted by example
    /// fraction. Deterministic: extras arrive in shard order.
    pub fn fold_stats(model: &mut ResNet, extras: &[(f32, ResNet)]) {
        let total: f32 = extras.iter().map(|(c, _)| c).sum();
        let sources: Vec<(f32, &ResNet)> =
            extras.iter().map(|(c, m)| (c / total, m)).collect();
        model.merge_shard_stats(&sources);
    }
}

impl ShardStep for ResnetStep<'_> {
    /// The clone travels in a `Mutex<Option<…>>` so the worker can move it
    /// out (forward mutates BN running stats) and return it as the extra.
    type Shard = (Tensor, Vec<usize>, Mutex<Option<ResNet>>);
    type Extra = (f32, ResNet);

    fn reduce(&self) -> Reduce {
        Reduce::WeightedMean
    }

    fn split(&self, exec: &Executor) -> Vec<Self::Shard> {
        let ranges = exec.shard_ranges(self.by.len());
        if ranges.len() == 1 {
            vec![(self.bx.clone(), self.by.to_vec(), Mutex::new(Some(self.model.clone())))]
        } else {
            ranges
                .iter()
                .map(|r| {
                    (
                        self.bx.slice_outer(r.start, r.end),
                        self.by[r.start..r.end].to_vec(),
                        Mutex::new(Some(self.model.clone())),
                    )
                })
                .collect()
        }
    }

    fn weight(&self, shard: &Self::Shard) -> f64 {
        shard.1.len() as f64
    }

    fn run_shard(
        &self,
        ps: &ParamSet,
        _i: usize,
        (sx, sy, cell): &Self::Shard,
    ) -> ShardOut<(f32, ResNet)> {
        let mut m = cell.lock().unwrap().take().expect("resnet shard clone already taken");
        let (g, bd, loss, _) = m.forward_loss(ps, sx, sy);
        let lv = g.value(loss).item() as f64;
        ShardOut {
            grads: collect_grads(g, bd, loss, ps),
            loss: lv,
            extra: (sy.len() as f32, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use legw_data::SynthMnist;
    use legw_models::MnistLstm;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn step_mnist_sharded_matches_serial_grads() {
        let data = SynthMnist::generate(1, 24, 8);
        let (bx, by) = data.train.gather(&(0..11).collect::<Vec<_>>());
        let grads_at = |shards: usize| {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(5);
            let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
            let exec = Executor::new(ExecConfig::default().with_shards(shards));
            let (out, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps);
            assert!(!out.diverged);
            // The fused apply's norm accumulation must agree with the
            // post-apply sweep it replaces.
            let norm = ps.grad_norm() as f64;
            assert!(
                (out.grad_sq_norm.sqrt() - norm).abs() < 1e-4 * (1.0 + norm),
                "fused grad norm {} vs swept {}",
                out.grad_sq_norm.sqrt(),
                norm
            );
            let grads: Vec<f32> =
                ps.iter().flat_map(|(_, p)| p.grad.as_slice().to_vec()).collect();
            (out.loss, grads)
        };
        let (l1, g1) = grads_at(1);
        let (l3, g3) = grads_at(3);
        assert!((l1 - l3).abs() < 1e-6, "loss {l1} vs {l3}");
        for (a, b) in g1.iter().zip(&g3) {
            assert!((a - b).abs() < 1e-5, "grad mismatch {a} vs {b}");
        }
    }
}
