//! Training loops for the four applications, schedule-driven and
//! divergence-aware. Every step runs through the data-parallel
//! [`Executor`](crate::exec::Executor), configured from the environment at
//! the top of each loop ([`ExecConfig::from_env`] — serial by default; set
//! `LEGW_SHARDS` to shard batches across workers) and driven through the
//! per-workload [`ShardStep`](crate::steps::ShardStep) implementations.

use crate::exec::{ExecConfig, Executor};
use crate::plan_cache::PlanCache;
use crate::steps::{DropPlan, MnistStep, PtbStep, ResnetStep, Seq2SeqStep};
use legw_data::{Classification, SynthImageNet, SynthMnist, SynthPtb, SynthTranslation};
use legw_models::{LmState, MnistLstm, PtbLm, PtbLmConfig, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::ParamSet;
use legw_optim::{build, SolverKind};
use legw_schedules::BaselineSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome of one training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// The application's final quality metric (accuracy / perplexity / BLEU
    /// / top-1 — see the producing function).
    pub final_metric: f64,
    /// Secondary metric when the application has one (ImageNet top-5).
    pub secondary_metric: Option<f64>,
    /// `(epoch, metric)` samples taken during training.
    pub history: Vec<(f64, f64)>,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// True if the run produced NaN/Inf and was aborted (the metric is then
    /// the worst possible value for the application).
    pub diverged: bool,
    /// Optimizer steps executed.
    pub iterations: usize,
}

/// Gradient-clipping norm used by the recurrent applications (standard LSTM
/// practice; applied identically to every method under comparison).
pub const RNN_CLIP: f32 = 5.0;

fn check_divergence(loss_diverged: bool, ps: &ParamSet) -> bool {
    loss_diverged || ps.any_nonfinite_fast()
}

trait FastFinite {
    fn any_nonfinite_fast(&self) -> bool;
}

impl FastFinite for ParamSet {
    fn any_nonfinite_fast(&self) -> bool {
        // Chunked scan exploiting `x * 0.0`: the product is +/-0 for every
        // finite x and NaN for NaN/±Inf, so a chunk is all-finite iff the
        // sum of products compares equal to zero. Branch-free per element
        // (vectorises), and — unlike the old `value_norm().is_finite()`
        // proxy — cannot overflow to Inf on large-but-finite parameters
        // and falsely flag divergence.
        for (_, p) in self.iter() {
            for chunk in p.value.as_slice().chunks(4096) {
                let acc: f32 = chunk.iter().map(|&v| v * 0.0).sum();
                if acc != 0.0 {
                    return true;
                }
            }
        }
        false
    }
}

/// Trains the MNIST-LSTM classifier (§5.1.1). Metric: test accuracy.
pub fn train_mnist(
    data: &SynthMnist,
    proj: usize,
    hidden: usize,
    schedule: &BaselineSchedule,
    solver: SolverKind,
    seed: u64,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = MnistLstm::new(&mut ps, &mut rng, proj, hidden);
    let mut opt = build(solver, 0.0);
    let exec = Executor::new(ExecConfig::from_env());
    // Shape-keyed compiled plans: after the first batch of each shard
    // shape, steps replay tape-free (see crate::plan_cache).
    let cache = PlanCache::for_executor(&exec);

    let batch = schedule.batch_size();
    let ipe = data.train.iters_per_epoch(batch);
    let total_iters = (schedule.total_epochs() * ipe as f64).round() as usize;
    let mut report = TrainReport {
        final_metric: 0.0,
        secondary_metric: None,
        history: Vec::new(),
        epoch_losses: Vec::new(),
        diverged: false,
        iterations: 0,
    };

    let mut iter = 0usize;
    'outer: while iter < total_iters {
        let mut epoch_loss = 0.0f64;
        let mut epoch_count = 0usize;
        for (bx, by) in data.train.epoch_batches(batch, &mut rng) {
            if iter >= total_iters {
                break;
            }
            let lr = schedule.lr_at_iter(iter, ipe) as f32;
            let (out, _) =
                exec.step_planned(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps, &cache);
            epoch_loss += out.loss;
            epoch_count += 1;
            if check_divergence(out.diverged, &ps) {
                report.diverged = true;
                break 'outer;
            }
            // The executor accumulated Σg² while applying the combined
            // gradient, so clipping needs no extra full-parameter sweep.
            ps.clip_grad_norm_from(out.grad_sq_norm.sqrt() as f32, RNN_CLIP);
            opt.step(&mut ps, lr);
            ps.zero_grad();
            iter += 1;
        }
        if epoch_count > 0 {
            report.epoch_losses.push(epoch_loss / epoch_count as f64);
        }
        let acc = exec.eval_mnist(&model, &ps, &data.test, 256);
        report.history.push((iter as f64 / ipe as f64, acc));
    }
    report.iterations = iter;
    report.final_metric = if report.diverged {
        0.0
    } else {
        exec.eval_mnist(&model, &ps, &data.test, 256)
    };
    report
}

/// Trains the PTB language model (§5.1.2). Metric: validation perplexity
/// (lower is better). Divergence reports perplexity = vocab size.
pub fn train_ptb(
    data: &SynthPtb,
    cfg: PtbLmConfig,
    seq_len: usize,
    schedule: &BaselineSchedule,
    solver: SolverKind,
    seed: u64,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = PtbLm::new(&mut ps, &mut rng, cfg);
    let mut opt = build(solver, 0.0);
    let exec = Executor::new(ExecConfig::from_env());
    // One compiled plan per (shard, window shape); dropout masks enter as
    // per-step feeds, so a single plan serves the whole run.
    let cache = PlanCache::for_executor(&exec);

    let batch = schedule.batch_size();
    let ipe = data.iters_per_epoch(batch, seq_len);
    let total_iters = (schedule.total_epochs() * ipe as f64).round() as usize;
    let mut report = TrainReport {
        final_metric: cfg.vocab as f64,
        secondary_metric: None,
        history: Vec::new(),
        epoch_losses: Vec::new(),
        diverged: false,
        iterations: 0,
    };

    let mut iter = 0usize;
    'outer: while iter < total_iters {
        let mut state = LmState::zeros(&cfg, batch);
        let mut epoch_loss = 0.0f64;
        let mut epoch_count = 0usize;
        for window in data.batches(true, batch, seq_len) {
            if iter >= total_iters {
                break;
            }
            let lr = schedule.lr_at_iter(iter, ipe) as f32;
            // Counter-based dropout streams: masks are a pure function of
            // (run seed, optimizer step, global row), so they replay
            // exactly and are identical for every shard count.
            let step = PtbStep {
                model: &model,
                window: &window,
                state: &state,
                drop: Some(DropPlan { seed, step: iter as u64 }),
            };
            let (out, shard_states) = exec.step_planned(&step, &mut ps, &cache);
            let next_state = PtbStep::merge_states(shard_states);
            epoch_loss += out.loss;
            epoch_count += 1;
            if check_divergence(out.diverged, &ps) {
                report.diverged = true;
                break 'outer;
            }
            state = next_state;
            // The executor accumulated Σg² while applying the combined
            // gradient, so clipping needs no extra full-parameter sweep.
            ps.clip_grad_norm_from(out.grad_sq_norm.sqrt() as f32, RNN_CLIP);
            opt.step(&mut ps, lr);
            ps.zero_grad();
            iter += 1;
        }
        if epoch_count > 0 {
            report.epoch_losses.push(epoch_loss / epoch_count as f64);
        }
        let ppl = exec.eval_ptb_perplexity(&model, &ps, data, batch.min(32), seq_len);
        report.history.push((iter as f64 / ipe as f64, ppl));
    }
    report.iterations = iter;
    report.final_metric = if report.diverged {
        cfg.vocab as f64
    } else {
        exec.eval_ptb_perplexity(&model, &ps, data, batch.min(32), seq_len)
    };
    report
}

/// Trains the GNMT-style seq2seq model (§5.1.3). Metric: test BLEU.
pub fn train_seq2seq(
    data: &SynthTranslation,
    cfg: Seq2SeqConfig,
    schedule: &BaselineSchedule,
    solver: SolverKind,
    seed: u64,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);
    let mut opt = build(solver, 0.0);
    let exec = Executor::new(ExecConfig::from_env());
    // Compiled plans cover the shape-static encoder, keyed by
    // (batch, source length); the attention decoder stays tape-driven.
    let cache = PlanCache::for_executor(&exec);

    let batch = schedule.batch_size();
    let ipe = data.iters_per_epoch(batch);
    let total_iters = (schedule.total_epochs() * ipe as f64).round() as usize;
    let mut report = TrainReport {
        final_metric: 0.0,
        secondary_metric: None,
        history: Vec::new(),
        epoch_losses: Vec::new(),
        diverged: false,
        iterations: 0,
    };

    let mut iter = 0usize;
    'outer: while iter < total_iters {
        let mut epoch_loss = 0.0f64;
        let mut epoch_count = 0usize;
        for b in data.batches(true, batch) {
            if iter >= total_iters {
                break;
            }
            let lr = schedule.lr_at_iter(iter, ipe) as f32;
            let (out, _) =
                exec.step_planned(&Seq2SeqStep { model: &model, batch: &b }, &mut ps, &cache);
            epoch_loss += out.loss;
            epoch_count += 1;
            if check_divergence(out.diverged, &ps) {
                report.diverged = true;
                break 'outer;
            }
            // The executor accumulated Σg² while applying the combined
            // gradient, so clipping needs no extra full-parameter sweep.
            ps.clip_grad_norm_from(out.grad_sq_norm.sqrt() as f32, RNN_CLIP);
            opt.step(&mut ps, lr);
            ps.zero_grad();
            iter += 1;
        }
        if epoch_count > 0 {
            report.epoch_losses.push(epoch_loss / epoch_count as f64);
        }
        let bleu = exec.eval_seq2seq_bleu(&model, &ps, data, 64);
        report.history.push((iter as f64 / ipe as f64, bleu));
    }
    report.iterations = iter;
    report.final_metric =
        if report.diverged { 0.0 } else { exec.eval_seq2seq_bleu(&model, &ps, data, 64) };
    report
}

/// Trains the ResNet stand-in (§6). Metric: test top-1; secondary: top-k
/// (the ImageNet experiments report top-5; with fewer classes we use top-3).
pub fn train_resnet(
    data: &SynthImageNet,
    width: usize,
    top_k: usize,
    schedule: &BaselineSchedule,
    solver: SolverKind,
    weight_decay: f32,
    seed: u64,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let mut model = ResNet::new(&mut ps, &mut rng, width, data.n_classes);
    let mut opt = build(solver, weight_decay);
    let exec = Executor::new(ExecConfig::from_env());
    // Compiled plans keyed by image-batch shape; replays fold each step's
    // BatchNorm batch statistics into the shard clone like the tape path.
    let cache = PlanCache::for_executor(&exec);

    let batch = schedule.batch_size();
    let ipe = data.train.iters_per_epoch(batch);
    let total_iters = (schedule.total_epochs() * ipe as f64).round() as usize;
    let mut report = TrainReport {
        final_metric: 0.0,
        secondary_metric: None,
        history: Vec::new(),
        epoch_losses: Vec::new(),
        diverged: false,
        iterations: 0,
    };

    let mut iter = 0usize;
    'outer: while iter < total_iters {
        let mut epoch_loss = 0.0f64;
        let mut epoch_count = 0usize;
        for (bx, by) in data.train.epoch_batches(batch, &mut rng) {
            if iter >= total_iters {
                break;
            }
            let lr = schedule.lr_at_iter(iter, ipe) as f32;
            let (out, stats) = exec.step_planned(
                &ResnetStep { model: &model, bx: &bx, by: &by },
                &mut ps,
                &cache,
            );
            ResnetStep::fold_stats(&mut model, &stats);
            epoch_loss += out.loss;
            epoch_count += 1;
            if check_divergence(out.diverged, &ps) {
                report.diverged = true;
                break 'outer;
            }
            opt.step(&mut ps, lr);
            ps.zero_grad();
            iter += 1;
        }
        if epoch_count > 0 {
            report.epoch_losses.push(epoch_loss / epoch_count as f64);
        }
        let (t1, tk) = exec.eval_resnet(&model, &ps, &data.test, 128, top_k);
        report.history.push((iter as f64 / ipe as f64, t1));
        report.secondary_metric = Some(tk);
    }
    report.iterations = iter;
    if report.diverged {
        report.final_metric = 0.0;
        report.secondary_metric = Some(0.0);
    } else {
        let (t1, tk) = exec.eval_resnet(&model, &ps, &data.test, 128, top_k);
        report.final_metric = t1;
        report.secondary_metric = Some(tk);
    }
    report
}

/// Helper shared by examples/benches: evaluates a freshly initialised
/// (untrained) classifier, giving the chance-level floor for a dataset.
pub fn untrained_accuracy(data: &Classification) -> f64 {
    1.0 / data.n_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_short_run_learns_above_chance() {
        let data = SynthMnist::generate(1, 400, 120);
        let sched = BaselineSchedule::constant(32, 0.4, 0.2, 3.0);
        let rep = train_mnist(&data, 24, 24, &sched, SolverKind::Momentum, 7);
        assert!(!rep.diverged);
        assert!(rep.final_metric > 0.25, "3-epoch accuracy {:.3} should beat chance", rep.final_metric);
        assert_eq!(rep.history.len(), 3);
        assert!(rep.iterations > 0);
    }

    #[test]
    fn mnist_huge_lr_destroys_training() {
        // With bounded activations and a clamped CE the run may not reach
        // literal NaN, but an absurd LR must leave accuracy at chance level.
        let data = SynthMnist::generate(1, 200, 50);
        let sched = BaselineSchedule::constant(32, 1e4, 0.0, 1.0);
        let rep = train_mnist(&data, 16, 16, &sched, SolverKind::Sgd, 7);
        assert!(rep.diverged || rep.final_metric <= 0.25, "metric {}", rep.final_metric);
    }

    #[test]
    fn ptb_short_run_beats_uniform() {
        let data = SynthPtb::generate(2, 60, 6, 20_000, 4_000);
        let cfg = PtbLmConfig { vocab: 60, embed: 24, hidden: 24, layers: 2, keep: 1.0 };
        let sched = BaselineSchedule::constant(8, 0.8, 0.1, 1.0);
        let rep = train_ptb(&data, cfg, 10, &sched, SolverKind::Momentum, 3);
        assert!(!rep.diverged);
        assert!(
            rep.final_metric < 60.0 * 0.8,
            "1-epoch ppl {:.1} should beat uniform 60",
            rep.final_metric
        );
        assert!(rep.final_metric > data.perplexity_floor());
    }

    #[test]
    fn seq2seq_short_run_moves_loss() {
        let data = SynthTranslation::generate(3, 16, 128, 32, 3, 5);
        let cfg = Seq2SeqConfig { vocab: data.vocab, embed: 16, hidden: 16, attn: 12, max_decode: 7 };
        let sched = BaselineSchedule::constant(16, 0.5, 0.2, 2.0);
        let rep = train_seq2seq(&data, cfg, &sched, SolverKind::Momentum, 5);
        assert!(!rep.diverged);
        assert!(rep.epoch_losses.len() >= 2);
        assert!(
            rep.epoch_losses.last().unwrap() < &rep.epoch_losses[0],
            "loss should fall: {:?}",
            rep.epoch_losses
        );
    }

    #[test]
    fn resnet_short_run_learns_above_chance() {
        let data = SynthImageNet::generate_sized(4, 6, 360, 60, 16);
        let sched = BaselineSchedule::poly(16, 4.0, 0.125, 5.0, 2.0);
        let rep = train_resnet(&data, 8, 3, &sched, SolverKind::Lars, 1e-4, 9);
        assert!(!rep.diverged);
        assert!(rep.final_metric > 1.0 / 6.0, "top-1 {:.3} above chance", rep.final_metric);
        let tk = rep.secondary_metric.unwrap();
        assert!(tk >= rep.final_metric);
    }

    #[test]
    fn schedule_epoch_budget_controls_iteration_count() {
        let data = SynthMnist::generate(5, 128, 32);
        let sched = BaselineSchedule::constant(32, 0.1, 0.0, 3.0);
        let rep = train_mnist(&data, 8, 8, &sched, SolverKind::Sgd, 1);
        assert_eq!(rep.iterations, 3 * (128 / 32));
    }
}
