//! Grid-search tuning — the machinery behind the paper's "comprehensive
//! tuning" baselines (§5.3) and the tuned-Adam comparisons (§5.2).

use serde::{Deserialize, Serialize};

/// Result of a grid search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneResult {
    /// The hyper-parameter value that won.
    pub best_value: f64,
    /// Its metric.
    pub best_metric: f64,
    /// All `(value, metric)` trials in evaluation order.
    pub trials: Vec<(f64, f64)>,
}

/// Evaluates `eval` at every candidate and returns the best
/// (`higher_better` selects the comparison direction).
pub fn grid_search(
    candidates: &[f64],
    higher_better: bool,
    mut eval: impl FnMut(f64) -> f64,
) -> TuneResult {
    assert!(!candidates.is_empty(), "empty tuning grid");
    let mut trials = Vec::with_capacity(candidates.len());
    for &v in candidates {
        trials.push((v, eval(v)));
    }
    let best = trials
        .iter()
        .copied()
        .reduce(|a, b| {
            let a_wins = if higher_better { a.1 >= b.1 } else { a.1 <= b.1 };
            if a_wins {
                a
            } else {
                b
            }
        })
        .unwrap();
    TuneResult { best_value: best.0, best_metric: best.1, trials }
}

/// Log₂-spaced grid: `base · 2^(i/per_octave)` for exponents covering
/// `[lo_exp, hi_exp]` octaves — the shape of the paper's LR search ranges
/// (e.g. "only the range [0.01, 0.16] is effective").
pub fn log2_grid(base: f64, lo_exp: f64, hi_exp: f64, per_octave: usize) -> Vec<f64> {
    assert!(hi_exp >= lo_exp && per_octave >= 1);
    let steps = ((hi_exp - lo_exp) * per_octave as f64).round() as usize;
    (0..=steps)
        .map(|i| base * 2f64.powf(lo_exp + i as f64 / per_octave as f64))
        .collect()
}

/// Linear grid `lo, lo+step, …` of `n` values — the paper's Adam tuning
/// spaces like {0.001, 0.002, …, 0.020}.
pub fn linear_grid(lo: f64, step: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_search_finds_max_and_min() {
        let f = |x: f64| -(x - 3.0) * (x - 3.0); // peak at 3
        let grid: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let up = grid_search(&grid, true, f);
        assert_eq!(up.best_value, 3.0);
        let down = grid_search(&grid, false, f);
        assert!(down.best_value == 0.0 || down.best_value == 6.0);
        assert_eq!(up.trials.len(), 7);
    }

    #[test]
    fn grid_search_ties_keep_first() {
        let r = grid_search(&[1.0, 2.0, 3.0], true, |_| 5.0);
        assert_eq!(r.best_value, 1.0);
    }

    #[test]
    fn log2_grid_spacing() {
        let g = log2_grid(0.01, 0.0, 4.0, 1);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.01).abs() < 1e-12);
        assert!((g[4] - 0.16).abs() < 1e-12, "paper's MNIST effective range endpoint");
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_grid_matches_paper_adam_space() {
        let g = linear_grid(0.001, 0.001, 20);
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.001).abs() < 1e-12);
        assert!((g[19] - 0.020).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty tuning grid")]
    fn empty_grid_panics() {
        grid_search(&[], true, |_| 0.0);
    }
}
