//! # legw
//!
//! The primary-contribution crate of this reproduction: everything that
//! turns the substrates (tensors, autograd, layers, optimizers, schedules,
//! synthetic data, models) into the paper's experiments.
//!
//! * [`trainer`] — end-to-end training loops for the four applications of
//!   Table 1, driven by a [`legw_schedules::BaselineSchedule`] and any
//!   [`legw_optim::SolverKind`], with divergence detection and per-epoch
//!   metric histories.
//! * [`exec`] — the data-parallel step executor the trainers run on:
//!   batches are sharded over [`exec::ExecConfig::shards`] workers and
//!   shard gradients are combined with a deterministic fixed-order tree
//!   reduction — streamed through [`reduce_sched`] as shards complete —
//!   before the single optimizer step. The four workloads plug in via the
//!   [`steps::ShardStep`] trait.
//! * [`plan_cache`] — compiled execution plans: one recorded step per
//!   (worker, shape) is frozen into a `legw_autograd` plan and replayed
//!   tape-free and allocation-free by [`exec::Executor::step_planned`],
//!   with transparent fallback to the tape path on unseen shapes.
//! * [`apps`] — the Table 1 registry: per-application synthetic dataset
//!   parameters, tuned baseline schedules, and a single entry point
//!   ([`apps::run`]) the figure/table harness calls.
//! * [`tuning`] — the grid searches behind the paper's "comprehensive
//!   tuning" baselines (§5.3) and tuned-Adam comparisons (§5.2).
//! * [`lipschitz`] — the finite-difference Hessian-vector estimator of the
//!   local Lipschitz constant `L(x,g) = |gᵀHg|/‖g‖²` used to regenerate
//!   Figure 3 and the paper's §4 explanation of why warmup length should
//!   grow with batch size.
//!
//! ```no_run
//! use legw::apps::{self, App};
//! use legw_optim::SolverKind;
//!
//! // Train the MNIST-LSTM app at 8× its baseline batch with LEGW scaling:
//! let spec = apps::spec(App::MnistLstm);
//! let schedule = legw_schedules::Legw::scale_to(&spec.baseline, spec.baseline.batch_size() * 8);
//! let report = apps::run(App::MnistLstm, &schedule, SolverKind::Momentum, 42);
//! println!("accuracy {:.4}", report.final_metric);
//! ```

pub mod apps;
pub mod convergence;
pub mod eval;
pub mod exec;
pub mod lipschitz;
pub mod plan_cache;
pub mod reduce_sched;
pub mod steps;
pub mod trainer;
pub mod tuning;

pub use exec::{ExecConfig, Executor, StepOutcome};
pub use plan_cache::{PlanCache, PlannedStep};
pub use steps::{DropPlan, MnistStep, PtbStep, ResnetStep, Seq2SeqStep, ShardStep};
pub use trainer::TrainReport;
