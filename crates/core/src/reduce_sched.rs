//! Order-preserving streaming gradient reduction.
//!
//! The executor's post-barrier combine ([`tree_reduce`]) waits for *every*
//! shard before running the fixed stride-doubling tree, so one slow shard
//! stalls the whole reduction — the classic straggler effect large-batch
//! systems engineering works around (You et al., SC'19 §5). This module
//! performs the *same* tree incrementally: as each shard's
//! [`GradBuffer`] completes, the completing thread immediately merges every
//! pair that has just become ready, walking as far up the tree as the
//! already-arrived neighbours allow. Reduction latency hides behind the
//! still-running shards; by the time the last shard finishes, only the
//! merges on its own root path remain.
//!
//! # Why the result is bit-identical to the post-barrier reduce
//!
//! The schedule is *data-independent*: the set of merges is exactly
//! `{(i, i+s) : s = 1,2,4,…, i ≡ 0 (mod 2s), i+s < n}` — the same pairs, in
//! the same left/right roles, as [`tree_reduce`]. Completion order only
//! decides *when* a merge runs and on *which thread*, never *what* it
//! combines: each merge's operands are the fully-reduced left subtree
//! `[i, i+s)` and right subtree `[i+s, min(i+2s, n))`, whose contents are
//! themselves fixed by the same argument, inductively. Every floating-point
//! addition therefore happens between the same values in the same
//! per-element order as the serial tree, and the root buffer is
//! bit-identical for any arrival order — the property the executor's
//! byte-determinism guarantee rests on.
//!
//! Threading: one mutex guards the readiness bookkeeping; the `O(params)`
//! axpy sweeps of the merges themselves run *outside* the lock, on the
//! thread that completed the enabling shard. Disjoint pairs can merge
//! concurrently; a chain up the tree runs sequentially on one thread.
//! Crucially, a partial that finds no ready partner is parked in the *same*
//! critical section that made that observation: whichever of two partner
//! subtrees reaches the lock second is guaranteed to see the other's
//! published partial and perform their merge, so no merge can be stranded
//! by both sides parking.
//!
//! The completion order is fully injectable — [`ReduceScheduler::complete`]
//! is a plain method call — which is how the adversarial-order tests drive
//! reverse, interleaved, straggler, and random schedules without touching
//! real threads.

use legw_nn::GradBuffer;
use std::sync::Mutex;

/// Fixed-order pairwise tree reduction (stride doubling): `bufs[i] +=
/// bufs[i+s]` for `i ≡ 0 (mod 2s)`, `s = 1, 2, 4, …` — the same
/// combination tree regardless of which worker finished first, so the
/// floating-point result is deterministic for a given shard count. This is
/// the post-barrier reference path; [`ReduceScheduler`] streams the same
/// tree and must stay bit-identical to it.
pub fn tree_reduce(mut bufs: Vec<GradBuffer>) -> GradBuffer {
    let n = bufs.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let right = std::mem::take(&mut bufs[i + stride]);
            bufs[i].absorb(right);
            i += 2 * stride;
        }
        stride *= 2;
    }
    bufs.swap_remove(0)
}

/// Shared bookkeeping for one in-flight streaming reduction.
struct State {
    /// Published partial results waiting for their next merge partner.
    /// `slots[p]` is `Some` iff `width[p] > 0`.
    slots: Vec<Option<GradBuffer>>,
    /// Leaves merged into the published partial at position `p`
    /// (`0` = nothing published, or the partial was claimed by a merge).
    width: Vec<usize>,
    /// Leaves completed so far (duplicate-completion guard).
    seen: Vec<bool>,
    /// Pairwise merges performed so far (always `n - 1` at the end).
    merges: usize,
}

/// Streams shard gradient buffers through the fixed reduction tree as they
/// complete. Create one per step with [`ReduceScheduler::new`], call
/// [`ReduceScheduler::complete`] exactly once per shard (any order, any
/// thread), then collect the root with [`ReduceScheduler::finish`].
pub struct ReduceScheduler {
    n: usize,
    state: Mutex<State>,
}

impl ReduceScheduler {
    /// A scheduler expecting `n ≥ 1` leaf buffers.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "reduction needs at least one shard");
        Self {
            n,
            state: Mutex::new(State {
                slots: (0..n).map(|_| None).collect(),
                width: vec![0; n],
                seen: vec![false; n],
                merges: 0,
            }),
        }
    }

    /// Number of leaves this scheduler reduces.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// Pairwise merges performed so far.
    pub fn merges(&self) -> usize {
        self.state.lock().unwrap().merges
    }

    /// Leaf count of the complete subtree rooted at `pos` for `stride`
    /// (truncated at the right edge, mirroring the serial tree).
    fn subtree(&self, pos: usize, stride: usize) -> usize {
        stride.min(self.n - pos)
    }

    /// Offers leaf `i`'s buffer and performs every merge it enables,
    /// walking up the tree until a missing subtree blocks further
    /// progress. Merge sweeps run outside the scheduler lock.
    pub fn complete(&self, i: usize, buf: GradBuffer) {
        assert!(i < self.n, "shard index {i} out of range for {} shards", self.n);
        let mut pos = i; // position our carried partial reduces into
        let mut carry = buf; // owned partial covering `width` leaves at `pos`
        let mut width = 1usize;
        {
            let mut st = self.state.lock().unwrap();
            assert!(!st.seen[i], "duplicate completion for shard {i}");
            st.seen[i] = true;
        }
        loop {
            // Decide the next merge under the lock; claimed operands leave
            // their slots so no other thread can initiate the same merge.
            // When no partner is ready the partial is parked *inside the
            // same critical section* — check-then-park must be atomic, or
            // two threads carrying partner subtrees could each observe the
            // other as absent and both park, stranding their merge.
            enum Act {
                /// Merge `carry += right` (we are the left parent).
                Right(GradBuffer, usize),
                /// Merge `left += carry` and keep climbing from `new_pos`.
                Left(GradBuffer, usize),
            }
            let act = {
                let mut st = self.state.lock().unwrap();
                if pos % (2 * width) == 0 && pos + width < self.n {
                    // `carry` is a full left subtree at stride `width`;
                    // partner is the right subtree starting at pos+width.
                    let q = pos + width;
                    let full = self.subtree(q, width);
                    if st.width[q] == full {
                        st.width[q] = 0;
                        st.merges += 1;
                        Act::Right(st.slots[q].take().expect("width>0 implies slot"), full)
                    } else {
                        st.slots[pos] = Some(carry);
                        st.width[pos] = width;
                        return;
                    }
                } else if pos > 0 {
                    // `carry` is the full right subtree at stride
                    // `lowbit(pos)`; its parent's left part starts at
                    // pos - lowbit(pos) and must cover exactly that stride.
                    let s = pos & pos.wrapping_neg();
                    debug_assert_eq!(width, self.subtree(pos, s));
                    let q = pos - s;
                    if st.width[q] == s {
                        st.width[q] = 0;
                        st.merges += 1;
                        Act::Left(st.slots[q].take().expect("width>0 implies slot"), q)
                    } else {
                        st.slots[pos] = Some(carry);
                        st.width[pos] = width;
                        return;
                    }
                } else {
                    // pos == 0 and no in-range partner: the root is done.
                    debug_assert_eq!(width, self.n);
                    st.slots[pos] = Some(carry);
                    st.width[pos] = width;
                    return;
                }
            };
            match act {
                Act::Right(right, w) => {
                    carry.absorb(right); // bufs[pos] += bufs[pos+width]
                    width += w;
                }
                Act::Left(mut left, q) => {
                    left.absorb(carry); // bufs[q] += bufs[q+s]
                    carry = left;
                    width += pos - q;
                    pos = q;
                }
            }
        }
    }

    /// Returns the fully-reduced root buffer. Panics if any leaf has not
    /// completed.
    pub fn finish(self) -> GradBuffer {
        let mut st = self.state.into_inner().unwrap();
        assert_eq!(
            st.width[0], self.n,
            "reduction incomplete: root covers {} of {} shards",
            st.width[0], self.n
        );
        st.slots[0].take().expect("complete root has a buffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legw_nn::{GradBuffer, ParamSet};
    use legw_tensor::Tensor;

    use legw_nn::ParamId;

    /// Distinctly-valued leaf buffers over two params whose sums are
    /// order-sensitive in floating point (so a wrong tree shows up).
    fn leaves(n: usize) -> (Vec<ParamId>, Vec<GradBuffer>) {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::zeros(&[3]));
        let b = ps.add("b", Tensor::zeros(&[2]));
        let bufs = (0..n)
            .map(|i| {
                let mut g = GradBuffer::for_params(&ps);
                let x = i as f32 + 1.0;
                g.accumulate(a, &Tensor::from_vec(vec![0.1 * x, 1.0 / x, x * x], &[3]));
                // leave `b` empty on every third leaf: sparse-slot coverage
                if i % 3 != 2 {
                    g.accumulate(b, &Tensor::from_vec(vec![x.sqrt(), -x], &[2]));
                }
                g
            })
            .collect();
        (vec![a, b], bufs)
    }

    fn bits(buf: &GradBuffer, ids: &[ParamId]) -> Vec<u32> {
        ids.iter()
            .flat_map(|&id| {
                buf.get(id)
                    .map(|t| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect()
    }

    fn run_order(n: usize, order: &[usize]) -> Vec<u32> {
        let (ids, bufs) = leaves(n);
        let sched = ReduceScheduler::new(n);
        let mut bufs: Vec<Option<GradBuffer>> = bufs.into_iter().map(Some).collect();
        for &i in order {
            sched.complete(i, bufs[i].take().unwrap());
        }
        assert_eq!(sched.merges(), n - 1, "a tree over {n} leaves has n-1 merges");
        bits(&sched.finish(), &ids)
    }

    fn reference(n: usize) -> Vec<u32> {
        let (ids, bufs) = leaves(n);
        bits(&tree_reduce(bufs), &ids)
    }

    #[test]
    fn in_order_matches_post_barrier_reduce() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13] {
            let order: Vec<usize> = (0..n).collect();
            assert_eq!(run_order(n, &order), reference(n), "n={n}");
        }
    }

    #[test]
    fn reverse_order_matches() {
        for n in [2usize, 3, 4, 6, 7, 8, 13] {
            let order: Vec<usize> = (0..n).rev().collect();
            assert_eq!(run_order(n, &order), reference(n), "n={n}");
        }
    }

    #[test]
    fn interleaved_order_matches() {
        // evens first, then odds — adjacent pairs always complete apart
        for n in [4usize, 5, 7, 8, 13] {
            let mut order: Vec<usize> = (0..n).step_by(2).collect();
            order.extend((1..n).step_by(2));
            assert_eq!(run_order(n, &order), reference(n), "n={n}");
        }
    }

    #[test]
    fn every_single_straggler_matches() {
        // shard k arrives last: everything else must pre-reduce, leaving
        // only k's root path.
        for n in [3usize, 4, 7, 8] {
            for k in 0..n {
                let mut order: Vec<usize> = (0..n).filter(|&i| i != k).collect();
                order.push(k);
                assert_eq!(run_order(n, &order), reference(n), "n={n} straggler={k}");
            }
        }
    }

    #[test]
    fn single_leaf_passes_through_untouched() {
        let (ids, mut bufs) = leaves(1);
        let before = bits(&bufs[0], &ids);
        let sched = ReduceScheduler::new(1);
        sched.complete(0, bufs.remove(0));
        assert_eq!(sched.merges(), 0);
        assert_eq!(bits(&sched.finish(), &ids), before);
    }

    #[test]
    #[should_panic(expected = "duplicate completion")]
    fn duplicate_completion_panics() {
        let sched = ReduceScheduler::new(2);
        sched.complete(0, GradBuffer::with_len(1));
        sched.complete(0, GradBuffer::with_len(1));
    }

    #[test]
    #[should_panic(expected = "reduction incomplete")]
    fn finish_before_all_leaves_panics() {
        let sched = ReduceScheduler::new(2);
        sched.complete(1, GradBuffer::with_len(1));
        let _ = sched.finish();
    }
}
