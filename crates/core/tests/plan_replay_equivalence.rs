//! Plan-replay vs tape-rebuild equivalence: a training curve driven by
//! [`Executor::step_planned`] (capture once per shard shape, replay
//! thereafter) must reproduce [`Executor::step`] (fresh tape every step)
//! for every model family at shard counts {1, 2, 4}.
//!
//! Equivalence strength:
//!
//! * MNIST-LSTM, PTB (with dropout feeds), ResNet (including BatchNorm
//!   running statistics): **bitwise** — the plan executes the identical op
//!   schedule with the identical accumulation order.
//! * seq2seq: bitwise for every parameter except the shared embedding
//!   table, which receives gradient contributions from both the planned
//!   encoder and the tape decoder. The split path adds the encoder's
//!   pre-summed total in one operation where the full tape interleaves the
//!   per-op contributions — a documented reassociation bounded at ≤1e-5
//!   relative (see DESIGN.md §11).
//!
//! Every model-family suite runs its full shard matrix twice — once with
//! the plan optimizer forced on ([`ExecConfig::with_plan_fuse`]) and once
//! forced off — because fused replays must be bitwise identical to
//! unfused replays (and both to the tape): fusion only removes memory
//! round-trips, never a rounding step.
//!
//! Plus cache-invalidation coverage: a partial final batch and a changed
//! source length must transparently capture fresh plans in the same
//! [`PlanCache`] rather than replaying a mismatched one.

use legw::{
    DropPlan, ExecConfig, Executor, MnistStep, PlanCache, PtbStep, ResnetStep, Seq2SeqStep,
};
use legw_data::{SynthImageNet, SynthMnist, SynthPtb, SynthTranslation};
use legw_models::{LmState, MnistLstm, PtbLm, PtbLmConfig, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const STEPS: usize = 3;
const LR: f32 = 0.1;

fn sgd_apply(ps: &mut ParamSet, lr: f32) {
    for (_, p) in ps.iter_mut() {
        let gr = p.grad.clone();
        p.value.axpy(-lr, &gr);
        p.grad.fill_(0.0);
    }
}

fn named_values(ps: &ParamSet) -> Vec<(String, Vec<f32>)> {
    ps.iter().map(|(_, p)| (p.name.clone(), p.value.as_slice().to_vec())).collect()
}

fn named_grads(ps: &ParamSet) -> Vec<(String, Vec<f32>)> {
    ps.iter().map(|(_, p)| (p.name.clone(), p.grad.as_slice().to_vec())).collect()
}

fn assert_bitwise(tape: &[(String, Vec<f32>)], plan: &[(String, Vec<f32>)], what: &str) {
    for ((name, a), (_, b)) in tape.iter().zip(plan) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {name} diverged: tape {x} vs plan {y}"
            );
        }
    }
}

fn assert_close(
    tape: &[(String, Vec<f32>)],
    plan: &[(String, Vec<f32>)],
    tol: f32,
    what: &str,
) {
    for ((name, a), (_, b)) in tape.iter().zip(plan) {
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs()),
                "{what}: {name}: tape {x} vs plan {y}"
            );
        }
    }
}

/// MNIST-LSTM: loss and every parameter bitwise across a 3-step curve at
/// each shard count; steps 2+ are cache hits.
#[test]
fn mnist_plan_replay_matches_tape_bitwise() {
    let data = SynthMnist::generate(11, 72, 8);
    for (shards, fuse) in SHARD_COUNTS.into_iter().flat_map(|s| [(s, true), (s, false)]) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ps_t = ParamSet::new();
        let model = MnistLstm::new(&mut ps_t, &mut rng, 10, 10);
        let mut ps_p = ps_t.clone();

        let exec =
            Executor::new(ExecConfig::default().with_shards(shards).with_plan_fuse(fuse));
        let cache = PlanCache::for_executor(&exec);
        for step in 0..STEPS {
            let idx: Vec<usize> = (step * 24..(step + 1) * 24).collect();
            let (bx, by) = data.train.gather(&idx);
            let (ot, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps_t);
            let (op, _) = exec.step_planned(
                &MnistStep { model: &model, bx: &bx, by: &by },
                &mut ps_p,
                &cache,
            );
            assert_eq!(ot.loss.to_bits(), op.loss.to_bits(), "mnist loss s{shards} step {step}");
            assert_eq!(ot.grad_sq_norm.to_bits(), op.grad_sq_norm.to_bits());
            assert_bitwise(&named_grads(&ps_t), &named_grads(&ps_p), "mnist grads");
            sgd_apply(&mut ps_t, LR);
            sgd_apply(&mut ps_p, LR);
        }
        assert!(!cache.is_empty(), "plans were captured");
        assert_bitwise(&named_values(&ps_t), &named_values(&ps_p), "mnist params");
    }
}

/// PTB with active dropout (masks enter the replay as feeds) and carried
/// state: loss, state, and parameters bitwise at each shard count.
#[test]
fn ptb_plan_replay_matches_tape_bitwise_with_dropout() {
    let data = SynthPtb::generate(5, 40, 5, 6000, 1200);
    let cfg = PtbLmConfig { vocab: 40, embed: 14, hidden: 14, layers: 2, keep: 0.7 };
    for (shards, fuse) in SHARD_COUNTS.into_iter().flat_map(|s| [(s, true), (s, false)]) {
        let mut rng = StdRng::seed_from_u64(23);
        let mut ps_t = ParamSet::new();
        let model = PtbLm::new(&mut ps_t, &mut rng, cfg);
        let mut ps_p = ps_t.clone();

        let exec =
            Executor::new(ExecConfig::default().with_shards(shards).with_plan_fuse(fuse));
        let cache = PlanCache::for_executor(&exec);
        let windows = data.batches(true, 8, 6);
        let mut state_t = LmState::zeros(&cfg, 8);
        let mut state_p = LmState::zeros(&cfg, 8);
        for (step, window) in windows.iter().take(STEPS).enumerate() {
            let drop = Some(DropPlan { seed: 77, step: step as u64 });
            let (ot, st) = exec.step(
                &PtbStep { model: &model, window, state: &state_t, drop },
                &mut ps_t,
            );
            let (op, sp) = exec.step_planned(
                &PtbStep { model: &model, window, state: &state_p, drop },
                &mut ps_p,
                &cache,
            );
            assert_eq!(ot.loss.to_bits(), op.loss.to_bits(), "ptb loss s{shards} step {step}");
            state_t = PtbStep::merge_states(st);
            state_p = PtbStep::merge_states(sp);
            assert_bitwise(&named_grads(&ps_t), &named_grads(&ps_p), "ptb grads");
            sgd_apply(&mut ps_t, LR);
            sgd_apply(&mut ps_p, LR);
        }
        assert_bitwise(&named_values(&ps_t), &named_values(&ps_p), "ptb params");
    }
}

/// ResNet: loss, parameters, and BatchNorm running statistics bitwise —
/// the replay folds each step's batch statistics exactly as the tape
/// forward does.
#[test]
fn resnet_plan_replay_matches_tape_bitwise_including_bn_stats() {
    let data = SynthImageNet::generate(6, 5, 72, 12);
    for (shards, fuse) in SHARD_COUNTS.into_iter().flat_map(|s| [(s, true), (s, false)]) {
        let mut rng = StdRng::seed_from_u64(29);
        let mut ps_t = ParamSet::new();
        let mut model_t = ResNet::new(&mut ps_t, &mut rng, 4, 5);
        let mut ps_p = ps_t.clone();
        let mut model_p = model_t.clone();

        let exec =
            Executor::new(ExecConfig::default().with_shards(shards).with_plan_fuse(fuse));
        let cache = PlanCache::for_executor(&exec);
        for step in 0..STEPS {
            let idx: Vec<usize> = (step * 16..(step + 1) * 16).collect();
            let (bx, by) = data.train.gather(&idx);
            let (ot, ex_t) =
                exec.step(&ResnetStep { model: &model_t, bx: &bx, by: &by }, &mut ps_t);
            ResnetStep::fold_stats(&mut model_t, &ex_t);
            let (op, ex_p) = exec.step_planned(
                &ResnetStep { model: &model_p, bx: &bx, by: &by },
                &mut ps_p,
                &cache,
            );
            ResnetStep::fold_stats(&mut model_p, &ex_p);
            assert_eq!(ot.loss.to_bits(), op.loss.to_bits(), "resnet loss s{shards} step {step}");
            assert_bitwise(&named_grads(&ps_t), &named_grads(&ps_p), "resnet grads");
            sgd_apply(&mut ps_t, LR);
            sgd_apply(&mut ps_p, LR);
        }
        assert_bitwise(&named_values(&ps_t), &named_values(&ps_p), "resnet params");
        // Running statistics travel outside the ParamSet; compare via an
        // eval forward, which folds them into the output.
        let (t1_t, _) = model_t.evaluate(&ps_t, &data.test, 6, 3);
        let (t1_p, _) = model_p.evaluate(&ps_p, &data.test, 6, 3);
        assert_eq!(t1_t.to_bits(), t1_p.to_bits(), "resnet eval after fold s{shards}");
    }
}

/// seq2seq: first-step gradients bitwise for every parameter except the
/// cross-boundary shared embedding (≤1e-5, documented reassociation);
/// the 3-step curve stays within 1e-4 as the embedding delta compounds.
#[test]
fn seq2seq_plan_replay_matches_tape_with_documented_embedding_tolerance() {
    let data = SynthTranslation::generate(13, 10, 96, 12, 3, 5);
    for (shards, fuse) in SHARD_COUNTS.into_iter().flat_map(|s| [(s, true), (s, false)]) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ps_t = ParamSet::new();
        let cfg =
            Seq2SeqConfig { vocab: data.vocab, embed: 12, hidden: 12, attn: 8, max_decode: 7 };
        let model = Seq2Seq::new(&mut ps_t, &mut rng, cfg);
        let mut ps_p = ps_t.clone();

        let exec =
            Executor::new(ExecConfig::default().with_shards(shards).with_plan_fuse(fuse));
        let cache = PlanCache::for_executor(&exec);
        let batches = data.batches(true, 8);
        for (step, b) in batches.iter().take(STEPS).enumerate() {
            let (ot, _) = exec.step(&Seq2SeqStep { model: &model, batch: b }, &mut ps_t);
            let (op, _) =
                exec.step_planned(&Seq2SeqStep { model: &model, batch: b }, &mut ps_p, &cache);
            assert!(
                (ot.loss - op.loss).abs() <= 1e-6 * (1.0 + ot.loss.abs()),
                "seq2seq loss s{shards} step {step}: {} vs {}",
                ot.loss,
                op.loss
            );
            if step == 0 {
                // Same initial parameters: everything but the shared
                // embedding must agree bitwise.
                for ((name, a), (_, b)) in named_grads(&ps_t).iter().zip(&named_grads(&ps_p)) {
                    let shared = name.contains("embed");
                    for (x, y) in a.iter().zip(b) {
                        if shared {
                            assert!(
                                (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                                "{name}: {x} vs {y}"
                            );
                        } else {
                            assert_eq!(x.to_bits(), y.to_bits(), "{name}: {x} vs {y}");
                        }
                    }
                }
            }
            sgd_apply(&mut ps_t, LR);
            sgd_apply(&mut ps_p, LR);
        }
        assert_close(&named_values(&ps_t), &named_values(&ps_p), 1e-4, "seq2seq params");
    }
}

/// A partial final batch (different shard shapes) must miss the cache and
/// capture its own plan — never replay the full-batch plan.
#[test]
fn partial_final_batch_captures_a_second_plan() {
    let data = SynthMnist::generate(17, 64, 8);
    let mut rng = StdRng::seed_from_u64(37);
    let mut ps_t = ParamSet::new();
    let model = MnistLstm::new(&mut ps_t, &mut rng, 10, 10);
    let mut ps_p = ps_t.clone();

    let exec = Executor::new(ExecConfig::default());
    let cache = PlanCache::for_executor(&exec);
    // Full batch of 32, then the ragged 20-example tail, then both again
    // (cache hits for both shapes).
    let sizes = [(0usize, 32usize), (32, 52), (0, 32), (32, 52)];
    for (lo, hi) in sizes {
        let idx: Vec<usize> = (lo..hi).collect();
        let (bx, by) = data.train.gather(&idx);
        let (ot, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps_t);
        let (op, _) =
            exec.step_planned(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps_p, &cache);
        assert_eq!(ot.loss.to_bits(), op.loss.to_bits());
        assert_bitwise(&named_grads(&ps_t), &named_grads(&ps_p), "ragged-tail grads");
        sgd_apply(&mut ps_t, LR);
        sgd_apply(&mut ps_p, LR);
    }
    assert_eq!(cache.len(), 2, "one plan per batch shape");
}

/// A changed source length through the same cache keys a second encoder
/// plan (shape-signature invalidation).
#[test]
fn seq2seq_source_length_change_keys_a_second_plan() {
    // Same seed and content vocabulary, different padded source lengths.
    let short = SynthTranslation::generate(19, 10, 32, 8, 3, 4);
    let long = SynthTranslation::generate(19, 10, 32, 8, 5, 6);
    assert_eq!(short.vocab, long.vocab);

    let mut rng = StdRng::seed_from_u64(41);
    let mut ps_t = ParamSet::new();
    let cfg = Seq2SeqConfig { vocab: short.vocab, embed: 10, hidden: 10, attn: 8, max_decode: 8 };
    let model = Seq2Seq::new(&mut ps_t, &mut rng, cfg);
    let mut ps_p = ps_t.clone();

    let exec = Executor::new(ExecConfig::default());
    let cache = PlanCache::for_executor(&exec);
    let b_short = &short.batches(true, 8)[0];
    let b_long = &long.batches(true, 8)[0];
    assert_ne!(b_short.src.len(), b_long.src.len());
    for b in [b_short, b_long, b_short, b_long] {
        let (ot, _) = exec.step(&Seq2SeqStep { model: &model, batch: b }, &mut ps_t);
        let (op, _) =
            exec.step_planned(&Seq2SeqStep { model: &model, batch: b }, &mut ps_p, &cache);
        assert!(
            (ot.loss - op.loss).abs() <= 1e-6 * (1.0 + ot.loss.abs()),
            "loss {} vs {}",
            ot.loss,
            op.loss
        );
        sgd_apply(&mut ps_t, LR);
        sgd_apply(&mut ps_p, LR);
    }
    assert_eq!(cache.len(), 2, "one encoder plan per source length");
    assert_close(&named_values(&ps_t), &named_values(&ps_p), 1e-4, "params");
}
