//! Pool pre-sizing contract: a thread whose pool was seeded with
//! [`legw_tensor::pool::prewarm`] at a plan's exact `peak_live_bytes`
//! serves the plan's warm-up tensors from the pool (recycles, not
//! allocations), and the first replay on that thread runs with zero
//! pool allocations.
//!
//! The measurement windows deliberately exclude `Tensor::from_vec`
//! (packing a batch always counts as one allocation — the buffer is
//! handed in, never taken from the pool), so every input tensor and the
//! `GradBuffer` are built *before* the window opens. Pool statistics are
//! process-global, so a background thread could in principle dirty a
//! window; each attempt runs on a fresh scoped thread and the test
//! passes as soon as one attempt observes a quiet window.

use legw_autograd::Feeds;
use legw_data::SynthMnist;
use legw_models::MnistLstm;
use legw_nn::{GradBuffer, ParamSet};
use legw_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn prewarmed_pool_serves_first_replay_without_allocating() {
    let data = SynthMnist::generate(3, 64, 8);
    let (bx, by) = data.train.gather(&(0..64).collect::<Vec<_>>());
    let mut rng = StdRng::seed_from_u64(7);
    let mut ps = ParamSet::new();
    let model = MnistLstm::new(&mut ps, &mut rng, 32, 32);
    let mut plan = model.capture_step_plan(&ps, &bx, &by).expect("plan capture");
    let stats = plan.stats();
    assert!(stats.peak_live_bytes > 0);

    // Inputs built once, outside every measurement window.
    let packed = SynthMnist::row_steps_packed(&bx);
    let hidden = bx.dim(0) * 32;

    let mut quiet = false;
    for _ in 0..20 {
        let (plan_ref, ps_ref, packed_ref, by_ref) = (&mut plan, &ps, &packed, &by);
        let attempt = std::thread::scope(|s| {
            s.spawn(move || {
                legw_parallel::set_default_threads(1);
                pool::prewarm(stats.peak_live_bytes);

                // Window A: the state tensors a replay warms up with must
                // come out of the prewarmed rungs.
                let before = pool::stats();
                let h0 = Tensor::zeros(&[by_ref.len(), 32]);
                let c0 = Tensor::zeros(&[by_ref.len(), 32]);
                assert_eq!(h0.as_slice().len() + c0.as_slice().len(), 2 * hidden);
                let warm = pool::stats().since(&before);
                if warm.allocations != 0 || warm.recycles < 2 {
                    return false;
                }

                // Window B: first replay + gradient export, allocation-free.
                let mut buf = GradBuffer::for_params(ps_ref);
                let label_feed: [&[usize]; 1] = [by_ref];
                let feeds = Feeds { labels: &label_feed, ..Feeds::default() };
                let before = pool::stats();
                let loss = plan_ref.replay_step(ps_ref, &[packed_ref, &h0, &c0], &feeds);
                plan_ref.write_grads_to(&mut buf);
                let step = pool::stats().since(&before);
                assert!(loss.is_finite());
                assert_eq!(buf.filled(), ps_ref.len());
                step.allocations == 0
            })
            .join()
            .expect("prewarm attempt thread")
        });
        if attempt {
            quiet = true;
            break;
        }
    }
    assert!(quiet, "no attempt out of 20 observed a zero-allocation prewarmed replay");
}
