//! Adversarial-order properties of the streaming gradient reduction
//! ([`legw::reduce_sched`]): whatever order shard buffers arrive in, the
//! scheduler must produce the *bit-identical* result of the serial
//! fixed-order tree reduce — and the executor's streaming mode must be
//! byte-equal to the post-barrier mode for every training workload.

use legw::exec::{ExecConfig, Executor};
use legw::reduce_sched::{tree_reduce, ReduceScheduler};
use legw::{DropPlan, MnistStep, PtbStep, ResnetStep, Seq2SeqStep};
use legw_data::{SynthMnist, SynthTranslation};
use legw_models::{MnistLstm, ResNet, Seq2Seq, Seq2SeqConfig};
use legw_nn::{GradBuffer, ParamId, ParamSet};
use legw_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Scheduler vs serial reference under random completion orders.

/// Two parameters so leaves can have *sparse* buffers (param `b` absent on
/// every third leaf), exercising empty-slot absorbs.
fn params() -> (ParamSet, Vec<ParamId>) {
    let mut ps = ParamSet::new();
    let a = ps.add("a", Tensor::zeros(&[4]));
    let b = ps.add("b", Tensor::zeros(&[2]));
    (ps, vec![a, b])
}

/// Deterministic per-leaf gradients; leaf `i` skips param `b` when
/// `i % 3 == 0`.
fn make_leaves(ps: &ParamSet, ids: &[ParamId], n: usize) -> Vec<GradBuffer> {
    (0..n)
        .map(|i| {
            let mut buf = GradBuffer::for_params(ps);
            let va: Vec<f32> = (0..4).map(|k| ((i * 4 + k) as f32 * 0.731).sin()).collect();
            buf.accumulate(ids[0], &Tensor::from_vec(va, &[4]));
            if i % 3 != 0 {
                let vb: Vec<f32> = (0..2).map(|k| ((i * 2 + k) as f32 * 0.113).cos()).collect();
                buf.accumulate(ids[1], &Tensor::from_vec(vb, &[2]));
            }
            buf
        })
        .collect()
}

/// Bit pattern of a reduced buffer over the given params (`None` slots
/// render as empty).
fn bits(buf: &GradBuffer, ids: &[ParamId]) -> Vec<Vec<u32>> {
    ids.iter()
        .map(|&id| {
            buf.get(id)
                .map(|t| t.as_slice().iter().map(|v| v.to_bits()).collect())
                .unwrap_or_default()
        })
        .collect()
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut s = seed | 1;
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (xorshift(&mut s) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    /// Every completion order — sampled over seeds, at power-of-two and
    /// ragged widths — reproduces the serial tree reduce bit-for-bit.
    #[test]
    fn random_completion_orders_match_serial_reference(
        n in 1usize..14,
        seed in 0u64..1_000_000_000,
    ) {
        let (ps, ids) = params();
        let reference = bits(&tree_reduce(make_leaves(&ps, &ids, n)), &ids);
        let sched = ReduceScheduler::new(n);
        let mut leaves = make_leaves(&ps, &ids, n);
        for &i in &permutation(n, seed) {
            sched.complete(i, std::mem::take(&mut leaves[i]));
        }
        prop_assert_eq!(reference, bits(&sched.finish(), &ids));
    }
}

/// Genuinely concurrent completions: one OS thread per leaf, all released
/// by a barrier so partner subtrees race to the scheduler lock. Guards the
/// check-then-park atomicity of [`ReduceScheduler::complete`] — a lost
/// merge shows up as a `finish` panic or a bit mismatch. The single-thread
/// order tests above cannot exercise this.
#[test]
fn concurrent_completions_from_real_threads_match_serial_reference() {
    use std::sync::{Arc, Barrier};
    for n in [2usize, 3, 4, 7, 8] {
        let (ps, ids) = params();
        let reference = bits(&tree_reduce(make_leaves(&ps, &ids, n)), &ids);
        for round in 0..200 {
            let sched = Arc::new(ReduceScheduler::new(n));
            let start = Arc::new(Barrier::new(n));
            let handles: Vec<_> = make_leaves(&ps, &ids, n)
                .into_iter()
                .enumerate()
                .map(|(i, buf)| {
                    let sched = Arc::clone(&sched);
                    let start = Arc::clone(&start);
                    std::thread::spawn(move || {
                        start.wait();
                        sched.complete(i, buf);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let sched = Arc::try_unwrap(sched).ok().expect("all threads joined");
            assert_eq!(reference, bits(&sched.finish(), &ids), "n={n} round={round}");
        }
    }
}

// ---------------------------------------------------------------------------
// Executor streaming vs post-barrier: byte-equal for all four workloads.

/// Shard counts exercised, including a prime and one exceeding some
/// batches (ranges cap at the batch size).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn grad_bits(ps: &ParamSet) -> Vec<u32> {
    ps.iter().flat_map(|(_, p)| p.grad.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()).collect()
}

fn exec_with(shards: usize, overlap: bool) -> Executor {
    Executor::new(ExecConfig::default().with_shards(shards).with_reduce_overlap(overlap))
}

fn mnist_bits(shards: usize, overlap: bool) -> (u64, Vec<u32>) {
    let data = SynthMnist::generate(7, 32, 8);
    let (bx, by) = data.train.gather(&(0..19).collect::<Vec<_>>());
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(3);
    let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
    let (out, _) = exec_with(shards, overlap)
        .step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps);
    (out.loss.to_bits(), grad_bits(&ps))
}

fn ptb_bits(shards: usize, overlap: bool) -> (u64, Vec<u32>) {
    use legw_models::{LmState, PtbLm, PtbLmConfig};
    let data = legw_data::SynthPtb::generate(31, 24, 6, 4_000, 800);
    let cfg = PtbLmConfig { vocab: 24, embed: 10, hidden: 10, layers: 2, keep: 0.8 };
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(37);
    let model = PtbLm::new(&mut ps, &mut rng, cfg);
    let window = data.batches(true, 8, 12).remove(0);
    let state = LmState::zeros(&cfg, 8);
    let step = PtbStep {
        model: &model,
        window: &window,
        state: &state,
        drop: Some(DropPlan { seed: 5, step: 2 }),
    };
    let (out, _) = exec_with(shards, overlap).step(&step, &mut ps);
    (out.loss.to_bits(), grad_bits(&ps))
}

fn seq2seq_bits(shards: usize, overlap: bool) -> (u64, Vec<u32>) {
    let data = SynthTranslation::generate(9, 12, 16, 4, 2, 5);
    let b = data.batches(true, 11).into_iter().next().unwrap();
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = Seq2SeqConfig::compact(data.vocab, data.max_len() + 1);
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);
    let (out, _) = exec_with(shards, overlap).step(&Seq2SeqStep { model: &model, batch: &b }, &mut ps);
    (out.loss.to_bits(), grad_bits(&ps))
}

fn resnet_bits(shards: usize, overlap: bool) -> (u64, Vec<u32>) {
    let data = legw_data::SynthImageNet::generate_sized(4, 8, 32, 8, 16);
    let (bx, by) = data.train.gather(&(0..14).collect::<Vec<_>>());
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(6);
    let mut model = ResNet::new(&mut ps, &mut rng, 8, 8);
    let snapshot = model.clone();
    let step = ResnetStep { model: &snapshot, bx: &bx, by: &by };
    let (out, stats) = exec_with(shards, overlap).step(&step, &mut ps);
    ResnetStep::fold_stats(&mut model, &stats);
    (out.loss.to_bits(), grad_bits(&ps))
}

#[test]
fn mnist_streaming_matches_barrier_bitwise() {
    for shards in SHARD_COUNTS {
        assert_eq!(mnist_bits(shards, true), mnist_bits(shards, false), "shards={shards}");
    }
}

#[test]
fn ptb_dropout_streaming_matches_barrier_bitwise() {
    for shards in SHARD_COUNTS {
        assert_eq!(ptb_bits(shards, true), ptb_bits(shards, false), "shards={shards}");
    }
}

#[test]
fn seq2seq_streaming_matches_barrier_bitwise() {
    for shards in SHARD_COUNTS {
        assert_eq!(seq2seq_bits(shards, true), seq2seq_bits(shards, false), "shards={shards}");
    }
}

#[test]
fn resnet_streaming_matches_barrier_bitwise() {
    for shards in SHARD_COUNTS {
        assert_eq!(resnet_bits(shards, true), resnet_bits(shards, false), "shards={shards}");
    }
}
