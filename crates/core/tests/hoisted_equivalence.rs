//! End-to-end equivalence of the sequence-hoisted LSTM path: short
//! training curves driven through the data-parallel executor (which runs
//! the hoisted forward) must agree with the retained stepwise serial
//! reference at every shard count.
//!
//! The hoisting reassociates each cell GEMM's k-sum at the input/hidden
//! boundary (`x·W_x + h·W_h` instead of one `[x‖h]·W` product), so losses
//! match within fp tolerance rather than bitwise; the tolerance here is
//! loose enough to absorb a few steps of compounding but far below any
//! real divergence.

use legw::{ExecConfig, Executor, MnistStep, PtbStep};
use legw_data::{SynthMnist, SynthPtb};
use legw_models::{LmState, MnistLstm, PtbLm, PtbLmConfig};
use legw_nn::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STEPS: usize = 6;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn sgd_apply(ps: &mut ParamSet, lr: f32) {
    for (_, p) in ps.iter_mut() {
        let gr = p.grad.clone();
        p.value.axpy(-lr, &gr);
        p.grad.fill_(0.0);
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + b.abs())
}

/// MNIST-LSTM: a fixed-batch SGD curve through the executor's hoisted
/// forward matches the stepwise serial curve at shards {1, 2, 4}.
#[test]
fn mnist_hoisted_training_curve_matches_stepwise_serial() {
    let data = SynthMnist::generate(41, 64, 16);
    let (bx, by) = data.train.gather(&(0..32).collect::<Vec<_>>());
    let mut ps0 = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(17);
    let model = MnistLstm::new(&mut ps0, &mut rng, 12, 12);

    // stepwise serial reference curve
    let mut ref_curve = Vec::with_capacity(STEPS);
    {
        let mut ps = ps0.clone();
        for _ in 0..STEPS {
            let (mut g, bd, loss, _) = model.forward_loss_stepwise(&ps, &bx, &by);
            ref_curve.push(g.value(loss).item() as f64);
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            sgd_apply(&mut ps, 0.2);
        }
    }

    for shards in SHARD_COUNTS {
        let mut ps = ps0.clone();
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        for (t, &r) in ref_curve.iter().enumerate() {
            let (out, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps);
            assert!(!out.diverged);
            assert!(
                close(out.loss, r, 1e-4),
                "shards={shards} step {t}: hoisted {} vs stepwise {r}",
                out.loss
            );
            sgd_apply(&mut ps, 0.2);
        }
    }
}

/// PTB LM: a stateful truncated-BPTT curve (state carried across windows)
/// through the executor's hoisted forward matches the stepwise serial
/// curve at shards {1, 2, 4}.
#[test]
fn ptb_hoisted_training_curve_matches_stepwise_serial() {
    let data = SynthPtb::generate(43, 30, 4, 4000, 800);
    let cfg = PtbLmConfig { vocab: 30, embed: 12, hidden: 12, layers: 2, keep: 1.0 };
    let mut ps0 = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(19);
    let model = PtbLm::new(&mut ps0, &mut rng, cfg);
    let windows = data.batches(true, 8, 6);
    assert!(windows.len() >= STEPS);

    // stepwise serial reference curve
    let mut ref_curve = Vec::with_capacity(STEPS);
    {
        let mut ps = ps0.clone();
        let mut state = LmState::zeros(&cfg, 8);
        for w in windows.iter().take(STEPS) {
            let (mut g, bd, loss, nll, next) = model.forward_loss_stepwise(&ps, w, &state);
            ref_curve.push(nll);
            g.backward(loss);
            bd.write_grads(&g, &mut ps);
            sgd_apply(&mut ps, 0.5);
            state = next;
        }
    }

    for shards in SHARD_COUNTS {
        let mut ps = ps0.clone();
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let mut state = LmState::zeros(&cfg, 8);
        for (t, w) in windows.iter().take(STEPS).enumerate() {
            let step = PtbStep { model: &model, window: w, state: &state, drop: None };
            let (out, states) = exec.step(&step, &mut ps);
            assert!(!out.diverged);
            assert!(
                close(out.loss, ref_curve[t], 1e-4),
                "shards={shards} step {t}: hoisted {} vs stepwise {}",
                out.loss,
                ref_curve[t]
            );
            state = PtbStep::merge_states(states);
            sgd_apply(&mut ps, 0.5);
        }
    }
}
