//! Integration properties of the data-parallel executor ([`legw::exec`]):
//! for every shard count, a sharded step must reproduce the serial
//! gradients (within fp tolerance), and repeated runs at a fixed shard
//! count must be *byte-identical* — the fixed-order tree reduction makes
//! the result independent of worker scheduling.

use legw::{DropPlan, ExecConfig, Executor, MnistStep, PtbStep, Seq2SeqStep};
use legw_data::{SynthMnist, SynthTranslation};
use legw_models::{MnistLstm, Seq2Seq, Seq2SeqConfig};
use legw_nn::ParamSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shard counts exercised against the serial reference, including a prime
/// (3) and one larger than some test batches (7 — ranges cap at the batch).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn grad_vec(ps: &ParamSet) -> Vec<f32> {
    ps.iter().flat_map(|(_, p)| p.grad.as_slice().to_vec()).collect()
}

/// One MNIST-LSTM step on a fresh seeded model; returns (loss, grads).
fn mnist_step(seed: u64, batch: usize, shards: usize) -> (f64, Vec<f32>) {
    let data = SynthMnist::generate(7, 32, 8);
    let idx: Vec<usize> = (0..batch).collect();
    let (bx, by) = data.train.gather(&idx);
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
    let exec = Executor::new(ExecConfig::default().with_shards(shards));
    let (out, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps);
    assert!(!out.diverged);
    (out.loss, grad_vec(&ps))
}

/// One seq2seq step on a ragged (masked-label) batch; returns (loss, grads).
fn seq2seq_step(seed: u64, batch: usize, shards: usize) -> (f64, Vec<f32>) {
    let data = SynthTranslation::generate(9, 12, 16, 4, 2, 5);
    let b = data.batches(true, batch).into_iter().next().unwrap();
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = Seq2SeqConfig::compact(data.vocab, data.max_len() + 1);
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);
    let exec = Executor::new(ExecConfig::default().with_shards(shards));
    let (out, _) = exec.step(&Seq2SeqStep { model: &model, batch: &b }, &mut ps);
    assert!(!out.diverged);
    (out.loss, grad_vec(&ps))
}

proptest! {
    /// MNIST-LSTM: executor gradients match the serial path within 1e-5
    /// for every shard count, over ragged batch sizes.
    #[test]
    fn mnist_sharded_grads_match_serial(
        seed in 0u64..1000,
        batch in 4usize..24,
    ) {
        let (l1, g1) = mnist_step(seed, batch, 1);
        for shards in SHARD_COUNTS {
            let (lp, gp) = mnist_step(seed, batch, shards);
            prop_assert!((l1 - lp).abs() < 1e-5, "loss {l1} vs {lp} at {shards} shards");
            prop_assert!(g1.len() == gp.len());
            for (a, b) in g1.iter().zip(&gp) {
                prop_assert!((a - b).abs() < 1e-5, "grad {a} vs {b} at {shards} shards");
            }
        }
    }

    /// Seq2seq with masked labels: the per-step active-row rescaling makes
    /// sharded gradients match the serial globally-averaged loss within
    /// 1e-5 — including ragged batches where shards see different numbers
    /// of active rows per decode step.
    #[test]
    fn seq2seq_sharded_grads_match_serial(
        seed in 0u64..1000,
        batch in 2usize..13,
    ) {
        let (l1, g1) = seq2seq_step(seed, batch, 1);
        for shards in SHARD_COUNTS {
            let (lp, gp) = seq2seq_step(seed, batch, shards);
            prop_assert!((l1 - lp).abs() < 1e-5, "loss {l1} vs {lp} at {shards} shards");
            prop_assert!(g1.len() == gp.len());
            for (a, b) in g1.iter().zip(&gp) {
                prop_assert!((a - b).abs() < 1e-5, "grad {a} vs {b} at {shards} shards");
            }
        }
    }
}

/// At a fixed shard count the whole step is byte-deterministic: repeated
/// runs produce bit-identical losses and gradients regardless of how the
/// OS schedules the shard workers.
#[test]
fn sharded_step_is_byte_identical_across_runs() {
    let (ml, mg) = mnist_step(3, 13, 3);
    let (sl, sg) = seq2seq_step(4, 11, 3);
    for _ in 0..2 {
        let (l, g) = mnist_step(3, 13, 3);
        assert_eq!(l.to_bits(), ml.to_bits(), "mnist loss must be bit-stable");
        assert_eq!(g.len(), mg.len());
        assert!(g.iter().zip(&mg).all(|(a, b)| a.to_bits() == b.to_bits()));

        let (l, g) = seq2seq_step(4, 11, 3);
        assert_eq!(l.to_bits(), sl.to_bits(), "seq2seq loss must be bit-stable");
        assert_eq!(g.len(), sg.len());
        assert!(g.iter().zip(&sg).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

/// The serial executor (`LEGW_SHARDS=1`) takes the clone-free fast path
/// and is bit-identical to itself run-to-run — the guarantee the
/// quickstart's exact expected accuracies rely on.
#[test]
fn serial_executor_is_bit_stable() {
    let (l0, g0) = mnist_step(8, 9, 1);
    let (l1, g1) = mnist_step(8, 9, 1);
    assert_eq!(l0.to_bits(), l1.to_bits());
    assert!(g0.iter().zip(&g1).all(|(a, b)| a.to_bits() == b.to_bits()));
}

/// The gradient norm accumulated during the executor's fused apply equals
/// the explicit post-apply sweep for every shard count — the property the
/// trainer's sweep-free clipping relies on.
#[test]
fn fused_grad_norm_matches_explicit_sweep() {
    let data = SynthMnist::generate(7, 32, 8);
    let (bx, by) = data.train.gather(&(0..16).collect::<Vec<_>>());
    for shards in SHARD_COUNTS {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let (out, _) = exec.step(&MnistStep { model: &model, bx: &bx, by: &by }, &mut ps);
        let swept = ps.grad_norm() as f64;
        let fused = out.grad_sq_norm.sqrt();
        assert!(
            (fused - swept).abs() < 1e-4 * (1.0 + swept),
            "shards={shards}: fused {fused} vs swept {swept}"
        );
    }
}

/// Sharded epoch-end evaluation reproduces the serial sweep: exactly for
/// the chunked evaluators (identical work items, integer/concatenation
/// combine) and within fp tolerance for the track-sliced PTB stream.
#[test]
fn sharded_eval_matches_serial() {
    use legw_models::{PtbLm, PtbLmConfig};

    // MNIST: integer correct counts — identical at every shard count.
    let data = SynthMnist::generate(17, 48, 40);
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(13);
    let model = MnistLstm::new(&mut ps, &mut rng, 8, 8);
    let serial_acc = model.evaluate(&ps, &data.test, 16);
    for shards in SHARD_COUNTS {
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let acc = exec.eval_mnist(&model, &ps, &data.test, 16);
        assert!((acc - serial_acc).abs() < 1e-12, "mnist shards={shards}: {acc} vs {serial_acc}");
    }

    // Seq2seq BLEU: identical decode batches — identical score.
    let tdata = SynthTranslation::generate(9, 12, 48, 8, 2, 5);
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(19);
    let cfg = Seq2SeqConfig::compact(tdata.vocab, tdata.max_len() + 1);
    let model = Seq2Seq::new(&mut ps, &mut rng, cfg);
    let serial_bleu = model.evaluate_bleu(&ps, &tdata, 4);
    for shards in SHARD_COUNTS {
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let bleu = exec.eval_seq2seq_bleu(&model, &ps, &tdata, 4);
        assert!(
            (bleu - serial_bleu).abs() < 1e-12,
            "seq2seq shards={shards}: {bleu} vs {serial_bleu}"
        );
    }

    // PTB: track-sliced; weighted mean matches within fp tolerance, and
    // the single-shard path matches the historical sweep exactly.
    let pdata = legw_data::SynthPtb::generate(23, 24, 6, 6000, 1200);
    let cfg = PtbLmConfig { vocab: 24, embed: 10, hidden: 10, layers: 2, keep: 1.0 };
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(29);
    let model = PtbLm::new(&mut ps, &mut rng, cfg);
    let serial_ppl = model.evaluate_perplexity(&ps, &pdata, 8, 12);
    let one = Executor::new(ExecConfig::default()).eval_ptb_perplexity(&model, &ps, &pdata, 8, 12);
    assert_eq!(one.to_bits(), serial_ppl.to_bits(), "single-shard PTB eval must be exact");
    for shards in SHARD_COUNTS {
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let ppl = exec.eval_ptb_perplexity(&model, &ps, &pdata, 8, 12);
        assert!(
            (ppl - serial_ppl).abs() < 1e-6 * serial_ppl,
            "ptb shards={shards}: {ppl} vs {serial_ppl}"
        );
    }
}

/// Dropout under sharding: masks are keyed by `(seed, step, global row,
/// site)`, never by shard id, so a regularised PTB step computes the same
/// gradients at every shard count — the shard layout must not change which
/// units drop.
#[test]
fn dropout_grads_are_shard_invariant() {
    use legw_models::{LmState, PtbLm, PtbLmConfig};

    let data = legw_data::SynthPtb::generate(31, 24, 6, 4_000, 800);
    let cfg = PtbLmConfig { vocab: 24, embed: 10, hidden: 10, layers: 2, keep: 0.7 };
    let run = |shards: usize| -> (f64, Vec<f32>) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(37);
        let model = PtbLm::new(&mut ps, &mut rng, cfg);
        let window = data.batches(true, 8, 12).remove(0);
        let state = LmState::zeros(&cfg, 8);
        let exec = Executor::new(ExecConfig::default().with_shards(shards));
        let step = PtbStep {
            model: &model,
            window: &window,
            state: &state,
            drop: Some(DropPlan { seed: 99, step: 3 }),
        };
        let (out, states) = exec.step(&step, &mut ps);
        assert!(!out.diverged);
        let _next = PtbStep::merge_states(states);
        (out.loss, grad_vec(&ps))
    };
    let (l1, g1) = run(1);
    for shards in [2usize, 4] {
        let (lp, gp) = run(shards);
        assert!((l1 - lp).abs() < 1e-5, "dropout loss {l1} vs {lp} at {shards} shards");
        assert_eq!(g1.len(), gp.len());
        for (a, b) in g1.iter().zip(&gp) {
            assert!((a - b).abs() < 1e-5, "dropout grad {a} vs {b} at {shards} shards");
        }
    }
}
