//! Contract tests for the application registry — fast (no training), they
//! pin the design constraints the experiments depend on.

use legw::apps::{self, App, PTB_SEQ_LEN};
use legw_schedules::Legw;

const ALL: [App; 5] =
    [App::MnistLstm, App::PtbSmall, App::PtbLarge, App::Gnmt, App::ImageNet];

/// Every LEGW-scaled schedule in the sweep must stay well-formed: positive
/// LR, warmup within the budget, same decay/budget as the baseline.
#[test]
fn legw_sweep_is_well_formed_for_every_app() {
    for app in ALL {
        let spec = apps::spec(app);
        let mut batch = spec.baseline.batch_size();
        while batch <= spec.max_batch {
            let s = Legw::scale_to(&spec.baseline, batch);
            assert!(s.peak_lr() > 0.0);
            assert!(
                s.warmup_epochs() <= s.total_epochs(),
                "{}: warmup {} exceeds budget {} at batch {batch}",
                spec.name,
                s.warmup_epochs(),
                s.total_epochs()
            );
            assert_eq!(s.decay(), spec.baseline.decay());
            assert_eq!(s.total_epochs(), spec.baseline.total_epochs());
            batch *= 2;
        }
    }
}

/// The binding constraint discovered while tuning this reproduction: under
/// a fixed epoch budget, the *largest* batch must still get enough
/// optimizer steps for the task to be learnable at all. Each app's dataset
/// scale is chosen so the max-batch sweep point retains ≥ 50 steps; this
/// test keeps future re-scaling honest.
#[test]
fn max_batch_keeps_enough_optimizer_steps() {
    // (app, samples-per-epoch in batch units at max batch)
    let steps_at_max = |app: App| -> f64 {
        let spec = apps::spec(app);
        let samples: f64 = match app {
            App::MnistLstm => 8192.0,
            App::PtbSmall => 80_000.0 / PTB_SEQ_LEN as f64,
            App::PtbLarge => 60_000.0 / PTB_SEQ_LEN as f64,
            App::Gnmt => 4096.0,
            App::ImageNet => 1024.0,
        };
        (samples / spec.max_batch as f64) * spec.baseline.total_epochs()
    };
    for app in ALL {
        let steps = steps_at_max(app);
        assert!(
            steps >= 50.0,
            "{:?}: only {steps:.0} optimizer steps at max batch — sweep will collapse",
            app
        );
    }
}

/// Baseline batch sizes divide their max batches in whole powers of two, so
/// the harness sweeps are exact doublings.
#[test]
fn sweeps_are_exact_doublings() {
    for app in ALL {
        let spec = apps::spec(app);
        let k = spec.max_batch / spec.baseline.batch_size();
        assert!(k.is_power_of_two() && k >= 8, "{}: k={k}", spec.name);
        assert_eq!(spec.max_batch % spec.baseline.batch_size(), 0);
    }
}

/// The registry's substitute strings must mention the actual configured
/// batch range, so Table 1 cannot silently drift from the code.
#[test]
fn table1_strings_match_configuration() {
    for app in ALL {
        let spec = apps::spec(app);
        let expect = format!("{}→{}", spec.baseline.batch_size(), spec.max_batch);
        assert!(
            spec.substitute.contains(&expect),
            "{}: substitute string '{}' does not mention batch range {expect}",
            spec.name,
            spec.substitute
        );
    }
}
