//! Compiled execution plans: freeze one recorded step into a replayable
//! schedule with preplanned buffers.
//!
//! [`Plan::capture`] walks a finished tape once and compiles it into two
//! static instruction lists (forward and backward) whose operands are
//! resolved *locations* — caller-supplied inputs/params, captured
//! constants, plan-owned output tensors, or slots of a preplanned arena.
//! A liveness pass over the 2N-position schedule (forward node `i` at
//! position `i`, its backward at `2N-1-i`) assigns every intermediate
//! value and gradient to an arena slot, reusing slots the moment their
//! interval ends, so the arena's footprint is the exact peak live set.
//!
//! [`Plan::replay_forward`] / [`Plan::replay_backward_loss`] then re-run
//! the step on new data with no tape recording, no shape checks, and no
//! per-node allocation: every instruction writes into storage that was
//! sized at capture. The interpreters mirror the tape kernels
//! operation-for-operation (same loop order, same rounding chains, same
//! f64 accumulators), so a replayed step is bitwise identical to
//! rebuilding the tape — except where a plan intentionally splits a
//! graph (documented at the call sites) and f32 reassociation bounds the
//! difference at ~1e-5.
//!
//! Dynamic per-step data — embedding ids, cross-entropy labels, dropout
//! masks — is fed at replay time through [`Feeds`]; everything
//! shape-changing invalidates the plan (callers key plans by shape and
//! fall back to the tape on unseen shapes).

use crate::graph::{Graph, Op, Var, IGNORE_INDEX};
use legw_tensor::kernels::{self, Kernel};
use legw_tensor::{
    col2im_into, gemm_into, im2col_into, lstm_cell_backward_into, lstm_cell_forward_into,
    Conv2dGeom, Tensor,
};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::OnceLock;

#[path = "plan_fuse.rs"]
mod plan_fuse;

/// What to capture from a tape: which leaves are per-step inputs, which
/// are parameters (gradient targets), and what the step produces.
pub struct CaptureSpec<'a> {
    /// Non-parameter leaves whose values change every step (fed at replay,
    /// in this order). Must have `requires_grad == false`.
    pub inputs: &'a [Var],
    /// Parameter leaves (gradients exposed via [`Plan::param_grad`], in
    /// this order). Must have `requires_grad == true`. Every
    /// `requires_grad` leaf on the tape must be listed here.
    pub params: &'a [Var],
    /// Scalar loss node — when set, [`Plan::replay_backward_loss`] seeds
    /// the sweep with `dL/dL = 1` exactly like [`Graph::backward`].
    pub loss: Option<Var>,
    /// Non-leaf nodes whose values the caller reads after each replay
    /// (and, in seed mode, the roots [`Plan::replay_backward`] seeds).
    pub outputs: &'a [Var],
}

/// Per-replay dynamic data, in op-encounter (node) order per kind.
/// Leave a field empty to reuse the values captured from the tape.
#[derive(Default)]
pub struct Feeds<'a> {
    /// One id list per `Embedding` op.
    pub ids: &'a [&'a [usize]],
    /// One label list per `SoftmaxCrossEntropy` op.
    pub labels: &'a [&'a [usize]],
    /// One mask per `Dropout` op (same shape as captured).
    pub masks: &'a [&'a Tensor],
}

/// Compile-time footprint report of a captured plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanStats {
    /// Tape nodes covered by the plan.
    pub nodes: usize,
    /// Forward / backward instruction counts.
    pub fwd_instrs: usize,
    pub bwd_instrs: usize,
    /// Counts before the plan optimizer ran (equal to `fwd_instrs` /
    /// `bwd_instrs` when fusion is disabled).
    pub fwd_instrs_pre: usize,
    pub bwd_instrs_pre: usize,
    /// Physical arena slots and their total size in bytes.
    pub arena_slots: usize,
    pub arena_bytes: usize,
    /// Exact peak of simultaneously-live arena bytes over the schedule
    /// (equals `arena_bytes` unless slot sizes fragment the free list).
    pub peak_live_bytes: usize,
    /// Bytes of op-private state buffers (gates, probs, im2col columns…).
    pub state_bytes: usize,
    /// Bytes of the shared scratch buffers (add-mode GEMM detours\n    /// plus the f64 column-sum accumulators).
    pub scratch_bytes: usize,
}

// ---------------------------------------------------------------- locations

/// Where an instruction reads a value from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// Caller input `k` of this replay.
    In(u32),
    /// Caller parameter `k` of this replay.
    Par(u32),
    /// Tensor captured from the tape (non-input, non-param leaf).
    Const(u32),
    /// Arena slot (value or gradient of an intermediate).
    Slot(u32),
    /// Plan-owned output tensor.
    Out(u32),
}

/// Where an instruction writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dst {
    Slot(u32),
    Out(u32),
    /// Gradient tensor of parameter `k`.
    ParGrad(u32),
}

/// First contribution to a gradient stores; later ones add — mirroring
/// `Graph::accumulate`'s store-then-axpy behaviour bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Store,
    Add,
}

#[derive(Clone, Copy, Debug)]
enum EwKind {
    Add,
    Sub,
    Mul,
}

#[derive(Clone, Copy, Debug)]
enum UnKind {
    Sigmoid,
    Tanh,
    Relu,
    Scale(f32),
    AddScalar(f32),
}

/// One step of a fused elementwise pipeline ([`Instr::FusedEw`]): the value
/// flowing through the chain enters as `t`; each stage maps it with exactly
/// the scalar expression of the standalone instruction it replaced.
#[derive(Clone, Copy, Debug)]
enum FusedStage {
    /// `t ∘ other[i]` (or `other[i] ∘ t` when `swapped`).
    Bin { kind: EwKind, other: Loc, swapped: bool },
    /// Unary map (sigmoid / tanh / relu / scale / add-scalar).
    Un { kind: UnKind },
    /// `t + bias[i % cols]` — AddBias over row-major `[rows, cols]`.
    BiasCol { bias: Loc, cols: usize },
    /// `t * s[i / cols]` — RowScale over row-major `[rows, cols]`.
    RowScaleS { s: Loc, cols: usize },
    /// `t * mask[i]` — dropout (forward and backward share the expression).
    Mask { mask: u32 },
    /// `(y[i] * (1 - y[i])) * t` — sigmoid backward via the saved output.
    GradSigmoid { y: Loc },
    /// `(1 - y[i]²) * t` — tanh backward via the saved output.
    GradTanh { y: Loc },
    /// `(x[i] > 0) * t` — relu backward via the saved input.
    GradRelu { x: Loc },
}

// ------------------------------------------------------------- instructions

/// One replay instruction. Dimensions are baked at capture; operands are
/// resolved [`Loc`]s / [`Dst`]s. Forward instructions always overwrite
/// their destination; backward ones carry a [`Mode`].
enum Instr {
    // ---- forward
    Ew { kind: EwKind, a: Loc, b: Loc, dst: Dst, n: usize },
    Unary { kind: UnKind, a: Loc, dst: Dst, n: usize },
    AddBias { x: Loc, bias: Loc, dst: Dst, rows: usize, cols: usize },
    RowScale { x: Loc, s: Loc, dst: Dst, rows: usize, cols: usize },
    /// `dst (+)= op(a) · op(b)`; `Mode::Add` detours through scratch so the
    /// elementwise add matches the tape's separate-GEMM-then-axpy bitwise.
    Gemm { ta: bool, tb: bool, a: Loc, b: Loc, m: usize, k: usize, n: usize, dst: Dst, mode: Mode },
    ConcatColsF { parts: Vec<(Loc, usize)>, dst: Dst, rows: usize, total: usize },
    SliceColsF { x: Loc, dst: Dst, rows: usize, cols: usize, start: usize, end: usize },
    /// Contiguous block copy: ConcatRows parts and SliceRows forward.
    CopyBlock { src: Loc, src_off: usize, dst: Dst, dst_off: usize, len: usize },
    SumAllF { x: Loc, dst: Dst, n: usize, mean: bool },
    DropoutF { x: Loc, mask: u32, dst: Dst, n: usize },
    EmbedF { table: Loc, feed: u32, dst: Dst, vocab: usize, dim: usize, count: usize },
    SoftmaxF { x: Loc, dst: Dst, m: usize, n: usize },
    CeF { logits: Loc, probs: u32, labels: u32, rt: u32, dst: Dst, b: usize, v: usize },
    ConvF { x: Loc, w: Loc, cols: u32, out2: u32, dst: Dst, geom: Conv2dGeom, batch: usize, oc: usize },
    MaxPoolF { x: Loc, dst: Dst, am: u32, nc: usize, h: usize, w: usize },
    GapF { x: Loc, dst: Dst, nc: usize, hw: usize },
    BnF { x: Loc, gamma: Loc, beta: Loc, xhat: u32, rt: u32, dst: Dst, n: usize, c: usize, hw: usize, eps: f32 },
    LstmF { preact: Loc, c_prev: Loc, gates: u32, tanh_c: u32, c_dst: Dst, h_dst: Dst, b: usize, hid: usize },
    PreactSeqF { x: Loc, w: Loc, bias: Loc, dst: Dst, rows: usize, k: usize, n4: usize },
    RecurStepF { seq: Loc, h: Loc, w_h: Loc, dst: Dst, t: usize, batch: usize, hid: usize, n4: usize },

    // ---- either list (created only by the plan optimizer, never emitted)
    /// A fused chain of elementwise instructions: `dst (+)= expr(a0, …)`
    /// where `expr` threads `a0` through `stages` one element at a time.
    /// Each stage applies its original instruction's scalar expression in
    /// chain order, so the fused sweep rounds identically to running the
    /// originals — minus the intermediate buffers.
    FusedEw { a0: Loc, stages: Vec<FusedStage>, dst: Dst, mode: Mode, n: usize },
    /// `dst += op(a) · op(b)` accumulated in-engine. Only created for
    /// single-k-block shapes, where the engine performs exactly one `+=` of
    /// the same micro-tile product the scratch detour would have added.
    GemmAcc { ta: bool, tb: bool, a: Loc, b: Loc, m: usize, k: usize, n: usize, dst: Dst },

    // ---- backward
    /// `dst (+)= up * c`; `c == 1.0` is the plain gradient copy.
    ScaleG { up: Loc, dst: Dst, mode: Mode, n: usize, c: f32 },
    MulG { up: Loc, other: Loc, dst: Dst, mode: Mode, n: usize },
    DropoutG { up: Loc, mask: u32, dst: Dst, mode: Mode, n: usize },
    SigmoidG { up: Loc, y: Loc, dst: Dst, mode: Mode, n: usize },
    TanhG { up: Loc, y: Loc, dst: Dst, mode: Mode, n: usize },
    ReluG { up: Loc, x: Loc, dst: Dst, mode: Mode, n: usize },
    /// f64 column sums of `up [rows, cols]` → `dst [cols]` (AddBias /
    /// LstmPreactSeq bias gradients).
    ColSumG { up: Loc, dst: Dst, mode: Mode, rows: usize, cols: usize },
    RowScaleDx { up: Loc, s: Loc, dst: Dst, mode: Mode, rows: usize, cols: usize },
    RowScaleDs { up: Loc, x: Loc, dst: Dst, mode: Mode, rows: usize, cols: usize },
    /// ConcatCols backward for one part: read a column block of `up`.
    ColsBlockG { up: Loc, dst: Dst, mode: Mode, rows: usize, up_cols: usize, off: usize, width: usize },
    /// SliceCols backward: scatter `up [rows, end-start]` into a wider
    /// gradient, reproducing the tape's zero padding (and its zero-adds).
    ColsScatterG { up: Loc, dst: Dst, mode: Mode, rows: usize, dst_cols: usize, start: usize, end: usize },
    /// Contiguous row-block gradient: ConcatRows part (read a block of
    /// `up`) or SliceRows (scatter into a zero-padded block when
    /// `zero_rest`).
    BlockG { up: Loc, up_off: usize, dst: Dst, dst_off: usize, len: usize, dst_len: usize, zero_rest: bool, mode: Mode },
    SumAllG { up: Loc, dst: Dst, mode: Mode, n: usize, mean: bool },
    EmbedG { up: Loc, feed: u32, dst: Dst, mode: Mode, vocab: usize, dim: usize, count: usize },
    SoftmaxG { up: Loc, y: Loc, dst: Dst, mode: Mode, m: usize, n: usize },
    CeG { up: Loc, probs: u32, labels: u32, rt: u32, dst: Dst, mode: Mode, b: usize, v: usize },
    ConvG { up: Loc, w: Loc, cols: u32, out2: u32, dw: Option<(Dst, Mode)>, dx: Option<(Dst, Mode)>, geom: Conv2dGeom, batch: usize, oc: usize },
    MaxPoolG { up: Loc, dst: Dst, mode: Mode, am: u32, x_len: usize, out_len: usize },
    GapG { up: Loc, dst: Dst, mode: Mode, nc: usize, hw: usize },
    BnG { up: Loc, gamma: Loc, xhat: u32, rt: u32, dg: Option<(Dst, Mode)>, dbt: Option<(Dst, Mode)>, dx: Option<(Dst, Mode)>, n: usize, c: usize, hw: usize },
    /// `direct` (set by the plan optimizer when both destinations are
    /// plain stores) writes them in place instead of via scratch.
    LstmG { gates: u32, tanh_c: u32, c_prev: Loc, dh: Option<Loc>, dc: Option<Loc>, dpre: (Dst, Mode), dcp: (Dst, Mode), b: usize, hid: usize, direct: bool },
    /// LstmRecurStep's dSeq row scatter: `seq_grad[tB..(t+1)B] += up`,
    /// zeroing the whole block first on the step that creates it.
    RecurSeqG { up: Loc, dst: Dst, zero_first: bool, t: usize, batch: usize, cols: usize, dst_len: usize },
}

// ------------------------------------------------------- runtime containers

/// Per-BatchNorm runtime scratch: f64 accumulators sized `[C]` plus the
/// f32 batch statistics exposed for running-average updates.
struct BnRt {
    mean: Vec<f64>,
    var: Vec<f64>,
    sum_up: Vec<f64>,
    sum_up_xh: Vec<f64>,
    mean_f32: Vec<f32>,
    var_f32: Vec<f32>,
    inv_std: Vec<f32>,
}

/// The static program: instruction lists plus seed bookkeeping.
struct Prog {
    fwd: Vec<Instr>,
    bwd: Vec<Instr>,
    /// Loss-mode: the loss node's gradient slot (seeded with 1.0).
    loss_grad: Option<Dst>,
    /// Seed-mode: per `spec.outputs` entry, the gradient slot seeded by
    /// [`Plan::replay_backward`] (`None` for non-differentiable outputs).
    seed_targets: Vec<Option<(Dst, usize)>>,
}

/// All mutable replay storage, preallocated at capture.
struct Store {
    slots: Vec<Vec<f32>>,
    outs: Vec<Tensor>,
    pargrads: Vec<Tensor>,
    consts: Vec<Tensor>,
    states: Vec<Vec<f32>>,
    scratch: Vec<f32>,
    /// f64 accumulators for `ColSumG`, sized to the widest column-sum.
    colsum: Vec<f64>,
    ids: Vec<Vec<usize>>,
    labels: Vec<Vec<usize>>,
    masks: Vec<Tensor>,
    argmax: Vec<Vec<u32>>,
    ce_active: Vec<usize>,
    bn: Vec<BnRt>,
    /// 1-element tensor used to displace an output/pargrad tensor while an
    /// instruction writes it (an `Arc` clone, so displacement never
    /// allocates).
    placeholder: Tensor,
}

/// A captured, replayable training/inference step.
///
/// Created by [`Plan::capture`]; replays are driven by
/// [`Plan::replay_forward`] followed by [`Plan::replay_backward_loss`]
/// (loss mode) or [`Plan::replay_backward`] (seed mode). At steady state a
/// replay performs **zero** buffer-pool allocations: every destination was
/// sized at capture.
pub struct Plan {
    prog: Prog,
    st: Store,
    in_shapes: Vec<Vec<usize>>,
    par_shapes: Vec<Vec<usize>>,
    /// Per `spec.outputs` entry, the index into `st.outs`.
    out_of_k: Vec<u32>,
    loss_out: Option<u32>,
    /// Per param, whether any gradient statically flows to it.
    par_grad_present: Vec<bool>,
    stats: PlanStats,
    /// Instruction histogram before optimization — for [`Plan::describe`].
    pre_counts: Vec<(&'static str, usize)>,
}

impl Plan {
    /// Compiles the recorded tape into a plan. Returns `None` when the
    /// graph cannot be captured (a `requires_grad` leaf missing from
    /// `spec.params`, a leaf listed as output, a non-scalar or
    /// non-differentiable loss…): callers fall back to the tape.
    ///
    /// Call after the forward pass — running `backward` first is fine
    /// (the sweep restores every op it visits).
    pub fn capture(g: &Graph, spec: &CaptureSpec) -> Option<Plan> {
        Capturer::run(g, spec, false)
    }

    /// Forward-only capture for inference: compiles just the forward
    /// schedule — no gradient slots, no backward instructions, and no
    /// per-parameter gradient buffers (frozen-model serving never reads
    /// them). Liveness runs over the forward schedule alone, so
    /// intermediates die at their last forward use and the arena is much
    /// smaller than a training plan's. A `spec.loss` is still computed as
    /// a forward output (so [`Plan::loss`] works), but
    /// [`Plan::replay_backward_loss`] / [`Plan::replay_backward`] panic on
    /// a plan captured this way.
    pub fn capture_forward(g: &Graph, spec: &CaptureSpec) -> Option<Plan> {
        Capturer::run(g, spec, true)
    }

    /// Re-executes the forward schedule on new data. `inputs` / `params`
    /// are in `spec` order and must match the captured shapes.
    pub fn replay_forward(&mut self, inputs: &[&Tensor], params: &[&Tensor], feeds: &Feeds) {
        self.check_bindings(inputs, params);
        self.load_feeds(feeds);
        // Split borrows: the program is read-only while the store mutates.
        let (prog, st) = (&self.prog, &mut self.st);
        for ins in &prog.fwd {
            exec(ins, st, inputs, params);
        }
    }

    /// Runs the backward schedule seeded with `dL/dL = 1` (loss mode).
    /// `inputs` / `params` must be the same tensors passed to the
    /// preceding [`Plan::replay_forward`].
    ///
    /// # Panics
    /// If the plan was captured without `spec.loss`.
    pub fn replay_backward_loss(&mut self, inputs: &[&Tensor], params: &[&Tensor]) {
        let seed = self.prog.loss_grad.expect("replay_backward_loss on a plan without a loss");
        // The single backward schedule also serves seed mode, so the other
        // outputs' seed slots take part in it — zero them (an unseeded
        // output contributes nothing; `0.0 + x` differs from the tape only
        // on the sign of a `-0.0`, documented in the module header).
        for target in &self.prog.seed_targets {
            if let Some((dst, _)) = target {
                if *dst != seed {
                    let s = self.st.dst_is_slot(*dst);
                    self.st.slots[s].fill(0.0);
                }
            }
        }
        {
            let s = self.st.dst_is_slot(seed);
            debug_assert_eq!(self.st.slots[s].len(), 1);
            self.st.slots[s][0] = 1.0;
        }
        let (prog, st) = (&self.prog, &mut self.st);
        for ins in &prog.bwd {
            exec(ins, st, inputs, params);
        }
    }

    /// Runs the backward schedule from explicit per-output seed gradients
    /// (seed mode), one per `spec.outputs` entry, mirroring
    /// `Graph::backward_seeded` run for every output. Seeds for
    /// non-differentiable outputs are ignored.
    pub fn replay_backward(&mut self, inputs: &[&Tensor], params: &[&Tensor], seeds: &[&Tensor]) {
        assert_eq!(
            seeds.len(),
            self.prog.seed_targets.len(),
            "one seed per captured output"
        );
        let seeded: Vec<Dst> = self
            .prog
            .seed_targets
            .iter()
            .flatten()
            .map(|(d, _)| *d)
            .collect();
        if let Some(lg) = self.prog.loss_grad {
            // A plan captured with both a loss and seedable outputs shares
            // one backward schedule; in seed mode the loss is unseeded.
            if !seeded.contains(&lg) {
                let s = self.st.dst_is_slot(lg);
                self.st.slots[s].fill(0.0);
            }
        }
        for (seed, target) in seeds.iter().zip(&self.prog.seed_targets) {
            if let Some((dst, n)) = target {
                assert_eq!(seed.numel(), *n, "seed shape mismatch");
                let s = self.st.dst_is_slot(*dst);
                self.st.slots[s].copy_from_slice(seed.as_slice());
            }
        }
        let (prog, st) = (&self.prog, &mut self.st);
        for ins in &prog.bwd {
            exec(ins, st, inputs, params);
        }
    }

    /// Forward + loss-seeded backward in one call — the common training
    /// step.
    pub fn replay_step(&mut self, inputs: &[&Tensor], params: &[&Tensor], feeds: &Feeds) {
        self.replay_forward(inputs, params, feeds);
        self.replay_backward_loss(inputs, params);
    }

    /// One-line schedule summary: instruction counts by kind (`pre->post`
    /// where the optimizer changed them), arena footprint and scratch
    /// sizes. Surfaces via `LEGW_PLAN_DEBUG=1` logging in the executor.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let post = plan_fuse::histogram(&self.prog.fwd, &self.prog.bwd);
        let s = &self.stats;
        let mut out = format!(
            "plan: nodes={} instrs fwd={}->{} bwd={}->{} slots={} arena={}B peak_live={}B state={}B scratch={}B |",
            s.nodes,
            s.fwd_instrs_pre,
            s.fwd_instrs,
            s.bwd_instrs_pre,
            s.bwd_instrs,
            s.arena_slots,
            s.arena_bytes,
            s.peak_live_bytes,
            s.state_bytes,
            s.scratch_bytes
        );
        for (name, pre) in &self.pre_counts {
            let after = post.iter().find(|(k, _)| k == name).map_or(0, |(_, c)| *c);
            if after == *pre {
                let _ = write!(out, " {name}={pre}");
            } else {
                let _ = write!(out, " {name}={pre}->{after}");
            }
        }
        for (name, c) in &post {
            if !self.pre_counts.iter().any(|(k, _)| k == name) {
                let _ = write!(out, " {name}=0->{c}");
            }
        }
        out
    }

    /// The loss value of the last replay (loss-mode plans).
    pub fn loss(&self) -> f32 {
        let k = self.loss_out.expect("loss() on a plan without a loss") as usize;
        self.st.outs[k].as_slice()[0]
    }

    /// Output `k` (in `spec.outputs` order) of the last replay. The
    /// returned tensor shares the plan's buffer (`Arc` clone); the next
    /// replay copies-on-write if the caller still holds it.
    pub fn output(&self, k: usize) -> Tensor {
        self.st.outs[self.out_of_k[k] as usize].clone()
    }

    /// Gradient of parameter `k` after the last backward replay, or `None`
    /// when no gradient flows to it statically (the tape would yield a
    /// zero tensor via `leaf_grads`).
    pub fn param_grad(&self, k: usize) -> Option<&Tensor> {
        if self.par_grad_present[k] {
            Some(&self.st.pargrads[k])
        } else {
            None
        }
    }

    /// Number of captured parameters / outputs.
    pub fn num_params(&self) -> usize {
        self.par_shapes.len()
    }
    pub fn num_outputs(&self) -> usize {
        self.out_of_k.len()
    }

    /// Batch statistics `(mean, var)` of BatchNorm op `i` (node order)
    /// from the last forward replay — what a layer's running averages
    /// consume.
    pub fn bn_batch_stats(&self, i: usize) -> (&[f32], &[f32]) {
        let rt = &self.st.bn[i];
        (&rt.mean_f32, &rt.var_f32)
    }
    pub fn num_batch_norms(&self) -> usize {
        self.st.bn.len()
    }

    /// Footprint of the compiled schedule.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    fn check_bindings(&self, inputs: &[&Tensor], params: &[&Tensor]) {
        assert_eq!(inputs.len(), self.in_shapes.len(), "input count mismatch");
        assert_eq!(params.len(), self.par_shapes.len(), "param count mismatch");
        for (t, s) in inputs.iter().zip(&self.in_shapes) {
            assert_eq!(t.shape(), &s[..], "input shape drifted from capture");
        }
        for (t, s) in params.iter().zip(&self.par_shapes) {
            assert_eq!(t.shape(), &s[..], "param shape drifted from capture");
        }
    }

    fn load_feeds(&mut self, feeds: &Feeds) {
        let st = &mut self.st;
        assert!(
            feeds.ids.is_empty() || feeds.ids.len() == st.ids.len(),
            "feed all {} embedding id lists or none",
            st.ids.len()
        );
        for (dst, src) in st.ids.iter_mut().zip(feeds.ids) {
            assert_eq!(dst.len(), src.len(), "embedding id count is shape-static");
            dst.copy_from_slice(src);
        }
        assert!(
            feeds.labels.is_empty() || feeds.labels.len() == st.labels.len(),
            "feed all {} label lists or none",
            st.labels.len()
        );
        for (dst, src) in st.labels.iter_mut().zip(feeds.labels) {
            assert_eq!(dst.len(), src.len(), "label count is shape-static");
            dst.copy_from_slice(src);
        }
        assert!(
            feeds.masks.is_empty() || feeds.masks.len() == st.masks.len(),
            "feed all {} dropout masks or none",
            st.masks.len()
        );
        for (dst, src) in st.masks.iter_mut().zip(feeds.masks) {
            assert_eq!(dst.shape(), src.shape(), "dropout mask shape is static");
            *dst = (*src).clone();
        }
    }
}

// ------------------------------------------------------------- interpreter

/// A destination buffer temporarily moved out of the [`Store`] so sources
/// can be read from it while the destination is written — all safe code,
/// no aliasing.
enum DstBuf {
    V(Vec<f32>),
    T(Tensor),
}

impl DstBuf {
    fn s(&mut self) -> &mut [f32] {
        match self {
            DstBuf::V(v) => v.as_mut_slice(),
            DstBuf::T(t) => t.as_mut_slice(),
        }
    }
}

impl BnRt {
    fn empty() -> Self {
        BnRt {
            mean: Vec::new(),
            var: Vec::new(),
            sum_up: Vec::new(),
            sum_up_xh: Vec::new(),
            mean_f32: Vec::new(),
            var_f32: Vec::new(),
            inv_std: Vec::new(),
        }
    }
}

impl Store {
    fn read<'a>(&'a self, loc: Loc, inputs: &'a [&'a Tensor], params: &'a [&'a Tensor]) -> &'a [f32] {
        match loc {
            Loc::In(i) => inputs[i as usize].as_slice(),
            Loc::Par(i) => params[i as usize].as_slice(),
            Loc::Const(i) => self.consts[i as usize].as_slice(),
            Loc::Slot(i) => &self.slots[i as usize],
            Loc::Out(i) => self.outs[i as usize].as_slice(),
        }
    }

    fn take(&mut self, d: Dst) -> DstBuf {
        match d {
            Dst::Slot(i) => DstBuf::V(std::mem::take(&mut self.slots[i as usize])),
            Dst::Out(i) => {
                DstBuf::T(std::mem::replace(&mut self.outs[i as usize], self.placeholder.clone()))
            }
            Dst::ParGrad(i) => DstBuf::T(std::mem::replace(
                &mut self.pargrads[i as usize],
                self.placeholder.clone(),
            )),
        }
    }

    fn put(&mut self, d: Dst, b: DstBuf) {
        match (d, b) {
            (Dst::Slot(i), DstBuf::V(v)) => self.slots[i as usize] = v,
            (Dst::Out(i), DstBuf::T(t)) => self.outs[i as usize] = t,
            (Dst::ParGrad(i), DstBuf::T(t)) => self.pargrads[i as usize] = t,
            _ => unreachable!("dst kind changed between take and put"),
        }
    }

    fn take_state(&mut self, i: u32) -> Vec<f32> {
        std::mem::take(&mut self.states[i as usize])
    }

    fn put_state(&mut self, i: u32, v: Vec<f32>) {
        self.states[i as usize] = v;
    }

    fn dst_is_slot(&self, d: Dst) -> usize {
        match d {
            Dst::Slot(i) => i as usize,
            _ => panic!("gradient seed target must be an arena slot"),
        }
    }
}

// ------------------------------------------------------------- fuse toggle

thread_local! {
    /// Per-thread override of the `LEGW_PLAN_FUSE` default, installed by
    /// [`with_fuse_override`]. Captures run on whatever thread the executor
    /// schedules them on, so the override is thread-local by design.
    static FUSE_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Runs `f` with the plan optimizer forced on or off for captures on this
/// thread, restoring the previous setting afterwards (even on panic).
pub fn with_fuse_override<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FUSE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FUSE_OVERRIDE.with(|c| c.replace(Some(enabled))));
    f()
}

/// Process-wide default from `LEGW_PLAN_FUSE`: the optimizer is on unless
/// the variable says otherwise.
fn env_plan_fuse() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| match std::env::var("LEGW_PLAN_FUSE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "false" | "off" | "no" => false,
            "1" | "true" | "on" | "yes" | "" => true,
            other => {
                eprintln!("LEGW_PLAN_FUSE: unrecognized value {other:?}, defaulting to on");
                true
            }
        },
        Err(_) => true,
    })
}

/// Whether [`Plan::capture`] should run the plan optimizer.
fn fuse_enabled() -> bool {
    FUSE_OVERRIDE.with(|c| c.get()).unwrap_or_else(env_plan_fuse)
}

// ---------------------------------------------------------------- executor

/// Store-or-add `f(i)` over `dst`: `Mode::Store` writes the contribution,
/// `Mode::Add` does `dst[i] += f(i)` — the exact elementwise chain of
/// `Graph::accumulate`'s store / axpy branches.
fn apply(dst: &mut [f32], mode: Mode, f: impl Fn(usize) -> f32) {
    match mode {
        Mode::Store => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = f(i);
            }
        }
        Mode::Add => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d += f(i);
            }
        }
    }
}

/// Elementwise sweeps longer than this fan out in fixed-size chunks over
/// the ambient thread pool. Chunks are disjoint and every element is a pure
/// function of the operands, so any thread count produces the serial
/// sweep's bits; reductions (`ColSumG`, `SumAllF`/`G`, …) stay serial.
const EW_CHUNK: usize = 16 * 1024;

/// [`apply`], chunked over [`legw_parallel::current`] when the sweep is
/// large enough to amortize the fan-out.
fn par_apply(dst: &mut [f32], mode: Mode, f: impl Fn(usize) -> f32 + Sync) {
    if dst.len() <= EW_CHUNK {
        return apply(dst, mode, f);
    }
    let pool = legw_parallel::current();
    if pool.threads() == 1 {
        return apply(dst, mode, f);
    }
    match mode {
        Mode::Store => legw_parallel::par_chunks_mut(&pool, dst, EW_CHUNK, |start, chunk| {
            for (off, d) in chunk.iter_mut().enumerate() {
                *d = f(start + off);
            }
        }),
        Mode::Add => legw_parallel::par_chunks_mut(&pool, dst, EW_CHUNK, |start, chunk| {
            for (off, d) in chunk.iter_mut().enumerate() {
                *d += f(start + off);
            }
        }),
    }
}

/// `dst[i] = f(src[i])` through a runtime-dispatched activation sweep,
/// chunked like [`par_apply`]. The map is pure per-element, so any
/// chunking produces the serial sweep's bits; the kernel choice is read
/// once on the issuing thread.
fn par_sweep_map(dst: &mut [f32], src: &[f32], sweep: fn(Kernel, &mut [f32])) {
    let kern = kernels::selected();
    dst.copy_from_slice(src);
    if dst.len() <= EW_CHUNK {
        return sweep(kern, dst);
    }
    let pool = legw_parallel::current();
    if pool.threads() == 1 {
        return sweep(kern, dst);
    }
    legw_parallel::par_chunks_mut(&pool, dst, EW_CHUNK, |_, chunk| sweep(kern, chunk));
}

/// Stack-block size for [`fused_apply`] (4 KiB of f32).
const FUSE_BLOCK: usize = 1024;

/// Evaluates a [`Instr::FusedEw`] stage pipeline over `dst`.
///
/// The naive interpretation — one `match` over the stage list per element —
/// defeats auto-vectorization (a scalarized `fast_tanh` alone costs more
/// than the memory round-trip fusion saves). Instead the sweep runs in
/// [`FUSE_BLOCK`]-element stack blocks: the block is loaded from the lead
/// operand once, then each stage runs as its own tight loop over the block.
/// Per element this applies the exact same scalar expressions in the exact
/// same order as the unfused instructions (and as the per-element
/// interpretation), so the result is bitwise identical; only the loop
/// nesting differs.
fn fused_apply(dst: &mut [f32], mode: Mode, lead: &[f32], stages: &[FusedStage], ops: &[&[f32]]) {
    // Read the dispatched kernel once on the issuing thread — pool workers
    // can't see this thread's override, so it rides in via the closure.
    let kern = kernels::selected();
    let run = |start: usize, out: &mut [f32]| {
        let mut t = [0.0f32; FUSE_BLOCK];
        let mut off = 0;
        while off < out.len() {
            let len = FUSE_BLOCK.min(out.len() - off);
            let base = start + off;
            let tb = &mut t[..len];
            tb.copy_from_slice(&lead[base..base + len]);
            for (s, op) in stages.iter().zip(ops) {
                eval_stage(kern, s, op, base, tb);
            }
            match mode {
                Mode::Store => out[off..off + len].copy_from_slice(tb),
                Mode::Add => {
                    for (d, v) in out[off..off + len].iter_mut().zip(tb.iter()) {
                        *d += *v;
                    }
                }
            }
            off += len;
        }
    };
    if dst.len() <= EW_CHUNK {
        return run(0, dst);
    }
    let pool = legw_parallel::current();
    if pool.threads() == 1 {
        return run(0, dst);
    }
    legw_parallel::par_chunks_mut(&pool, dst, EW_CHUNK, run);
}

/// One fused stage over one stack block. `base` is the block's absolute
/// element offset (index context for the positional stages); `op` is the
/// stage's operand slice (empty for operand-less stages).
fn eval_stage(kern: Kernel, s: &FusedStage, op: &[f32], base: usize, t: &mut [f32]) {
    match s {
        FusedStage::Bin { kind, swapped, .. } => {
            let o = &op[base..base + t.len()];
            match (kind, swapped) {
                (EwKind::Add, false) => t.iter_mut().zip(o).for_each(|(t, o)| *t += *o),
                (EwKind::Add, true) => t.iter_mut().zip(o).for_each(|(t, o)| *t = *o + *t),
                (EwKind::Sub, false) => t.iter_mut().zip(o).for_each(|(t, o)| *t -= *o),
                (EwKind::Sub, true) => t.iter_mut().zip(o).for_each(|(t, o)| *t = *o - *t),
                (EwKind::Mul, false) => t.iter_mut().zip(o).for_each(|(t, o)| *t *= *o),
                (EwKind::Mul, true) => t.iter_mut().zip(o).for_each(|(t, o)| *t = *o * *t),
            }
        }
        FusedStage::Un { kind } => match kind {
            // The activation stages go through the runtime-dispatched
            // sweeps (bitwise-equal across variants, so fused-vs-unfused
            // equivalence is preserved whatever the CPU).
            UnKind::Sigmoid => kernels::sigmoid_sweep(kern, t),
            UnKind::Tanh => kernels::tanh_sweep(kern, t),
            UnKind::Relu => t.iter_mut().for_each(|t| *t = t.max(0.0)),
            UnKind::Scale(c) => t.iter_mut().for_each(|t| *t *= c),
            UnKind::AddScalar(c) => t.iter_mut().for_each(|t| *t += c),
        },
        FusedStage::BiasCol { cols, .. } => {
            for (j, t) in t.iter_mut().enumerate() {
                *t += op[(base + j) % cols];
            }
        }
        FusedStage::RowScaleS { cols, .. } => {
            for (j, t) in t.iter_mut().enumerate() {
                *t *= op[(base + j) / cols];
            }
        }
        FusedStage::Mask { .. } => {
            let o = &op[base..base + t.len()];
            t.iter_mut().zip(o).for_each(|(t, o)| *t *= *o);
        }
        FusedStage::GradSigmoid { .. } => {
            let o = &op[base..base + t.len()];
            t.iter_mut().zip(o).for_each(|(t, y)| *t = (*y * (1.0 - *y)) * *t);
        }
        FusedStage::GradTanh { .. } => {
            let o = &op[base..base + t.len()];
            t.iter_mut().zip(o).for_each(|(t, y)| *t = (1.0 - *y * *y) * *t);
        }
        FusedStage::GradRelu { .. } => {
            let o = &op[base..base + t.len()];
            t.iter_mut()
                .zip(o)
                .for_each(|(t, x)| *t = (if *x > 0.0 { 1.0 } else { 0.0 }) * *t);
        }
    }
}

/// Short display name of an instruction's kind — powers [`Plan::describe`].
fn kind_name(ins: &Instr) -> &'static str {
    match ins {
        Instr::Ew { kind: EwKind::Add, .. } => "EwAdd",
        Instr::Ew { kind: EwKind::Sub, .. } => "EwSub",
        Instr::Ew { kind: EwKind::Mul, .. } => "EwMul",
        Instr::Unary { kind: UnKind::Sigmoid, .. } => "Sigmoid",
        Instr::Unary { kind: UnKind::Tanh, .. } => "Tanh",
        Instr::Unary { kind: UnKind::Relu, .. } => "Relu",
        Instr::Unary { kind: UnKind::Scale(_), .. } => "Scale",
        Instr::Unary { kind: UnKind::AddScalar(_), .. } => "AddScalar",
        Instr::AddBias { .. } => "AddBias",
        Instr::RowScale { .. } => "RowScale",
        Instr::Gemm { .. } => "Gemm",
        Instr::GemmAcc { .. } => "GemmAcc",
        Instr::FusedEw { .. } => "FusedEw",
        Instr::ConcatColsF { .. } => "ConcatColsF",
        Instr::SliceColsF { .. } => "SliceColsF",
        Instr::CopyBlock { .. } => "CopyBlock",
        Instr::SumAllF { .. } => "SumAllF",
        Instr::DropoutF { .. } => "DropoutF",
        Instr::EmbedF { .. } => "EmbedF",
        Instr::SoftmaxF { .. } => "SoftmaxF",
        Instr::CeF { .. } => "CeF",
        Instr::ConvF { .. } => "ConvF",
        Instr::MaxPoolF { .. } => "MaxPoolF",
        Instr::GapF { .. } => "GapF",
        Instr::BnF { .. } => "BnF",
        Instr::LstmF { .. } => "LstmF",
        Instr::PreactSeqF { .. } => "PreactSeqF",
        Instr::RecurStepF { .. } => "RecurStepF",
        Instr::ScaleG { .. } => "ScaleG",
        Instr::MulG { .. } => "MulG",
        Instr::DropoutG { .. } => "DropoutG",
        Instr::SigmoidG { .. } => "SigmoidG",
        Instr::TanhG { .. } => "TanhG",
        Instr::ReluG { .. } => "ReluG",
        Instr::ColSumG { .. } => "ColSumG",
        Instr::RowScaleDx { .. } => "RowScaleDx",
        Instr::RowScaleDs { .. } => "RowScaleDs",
        Instr::ColsBlockG { .. } => "ColsBlockG",
        Instr::ColsScatterG { .. } => "ColsScatterG",
        Instr::BlockG { .. } => "BlockG",
        Instr::SumAllG { .. } => "SumAllG",
        Instr::EmbedG { .. } => "EmbedG",
        Instr::SoftmaxG { .. } => "SoftmaxG",
        Instr::CeG { .. } => "CeG",
        Instr::ConvG { .. } => "ConvG",
        Instr::MaxPoolG { .. } => "MaxPoolG",
        Instr::GapG { .. } => "GapG",
        Instr::BnG { .. } => "BnG",
        Instr::LstmG { .. } => "LstmG",
        Instr::RecurSeqG { .. } => "RecurSeqG",
    }
}

/// Executes one instruction against the store. Elementwise sweeps go
/// through [`par_apply`] (bitwise equal to the tape's chunk-parallel maps,
/// which apply the same pure per-element function); GEMMs run on the
/// ambient thread pool — the same engine the tape's `matmul` family uses.
fn exec(ins: &Instr, st: &mut Store, inputs: &[&Tensor], params: &[&Tensor]) {
    match ins {
        // ------------------------------------------------------------ forward
        Instr::Ew { kind, a, b, dst, n } => {
            let mut buf = st.take(*dst);
            {
                let av = st.read(*a, inputs, params);
                let bv = st.read(*b, inputs, params);
                debug_assert_eq!(buf.s().len(), *n);
                match kind {
                    EwKind::Add => par_apply(buf.s(), Mode::Store, |i| av[i] + bv[i]),
                    EwKind::Sub => par_apply(buf.s(), Mode::Store, |i| av[i] - bv[i]),
                    EwKind::Mul => par_apply(buf.s(), Mode::Store, |i| av[i] * bv[i]),
                }
            }
            st.put(*dst, buf);
        }
        Instr::Unary { kind, a, dst, n } => {
            let mut buf = st.take(*dst);
            {
                let av = st.read(*a, inputs, params);
                debug_assert_eq!(buf.s().len(), *n);
                match kind {
                    UnKind::Sigmoid => par_sweep_map(buf.s(), av, kernels::sigmoid_sweep),
                    UnKind::Tanh => par_sweep_map(buf.s(), av, kernels::tanh_sweep),
                    UnKind::Relu => par_apply(buf.s(), Mode::Store, |i| av[i].max(0.0)),
                    UnKind::Scale(c) => par_apply(buf.s(), Mode::Store, |i| av[i] * c),
                    UnKind::AddScalar(c) => par_apply(buf.s(), Mode::Store, |i| av[i] + c),
                }
            }
            st.put(*dst, buf);
        }
        Instr::AddBias { x, bias, dst, rows, cols } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let bv = st.read(*bias, inputs, params);
                debug_assert_eq!(buf.s().len(), rows * cols);
                par_apply(buf.s(), Mode::Store, |i| xv[i] + bv[i % cols]);
            }
            st.put(*dst, buf);
        }
        Instr::RowScale { x, s, dst, rows, cols } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let sv = st.read(*s, inputs, params);
                debug_assert_eq!(buf.s().len(), rows * cols);
                par_apply(buf.s(), Mode::Store, |i| xv[i] * sv[i / cols]);
            }
            st.put(*dst, buf);
        }
        Instr::Gemm { ta, tb, a, b, m, k, n, dst, mode } => {
            let mut buf = st.take(*dst);
            match mode {
                Mode::Store => {
                    let av = st.read(*a, inputs, params);
                    let bv = st.read(*b, inputs, params);
                    gemm_into(*ta, *tb, av, bv, *m, *k, *n, buf.s(), false);
                }
                Mode::Add => {
                    // fresh product then elementwise add — the tape computes
                    // the gradient GEMM into a new tensor and axpy-adds it,
                    // and in-engine accumulation (acc=true) would reassociate
                    let mut scr = std::mem::take(&mut st.scratch);
                    {
                        let av = st.read(*a, inputs, params);
                        let bv = st.read(*b, inputs, params);
                        // Capture sized the scratch over every consumer in
                        // the final schedule; a replay must never grow it.
                        debug_assert!(scr.len() >= *m * *n, "scratch undersized for Gemm Add");
                        let s = &mut scr[..*m * *n];
                        gemm_into(*ta, *tb, av, bv, *m, *k, *n, s, false);
                        for (d, &sv) in buf.s().iter_mut().zip(s.iter()) {
                            *d += sv;
                        }
                    }
                    st.scratch = scr;
                }
            }
            st.put(*dst, buf);
        }
        Instr::GemmAcc { ta, tb, a, b, m, k, n, dst } => {
            let mut buf = st.take(*dst);
            {
                let av = st.read(*a, inputs, params);
                let bv = st.read(*b, inputs, params);
                // Single k-block: the engine adds the identical micro-tile
                // product with exactly one `+=` per element — no scratch.
                debug_assert!(legw_tensor::gemm_single_k_block(*k));
                gemm_into(*ta, *tb, av, bv, *m, *k, *n, buf.s(), true);
            }
            st.put(*dst, buf);
        }
        Instr::FusedEw { a0, stages, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let lead = st.read(*a0, inputs, params);
                // Operand slices aligned with `stages` (empty for the
                // operand-less kinds).
                let ops: Vec<&[f32]> = stages
                    .iter()
                    .map(|s| match s {
                        FusedStage::Bin { other, .. } => st.read(*other, inputs, params),
                        FusedStage::BiasCol { bias, .. } => st.read(*bias, inputs, params),
                        FusedStage::RowScaleS { s, .. } => st.read(*s, inputs, params),
                        FusedStage::Mask { mask } => st.masks[*mask as usize].as_slice(),
                        FusedStage::GradSigmoid { y } | FusedStage::GradTanh { y } => {
                            st.read(*y, inputs, params)
                        }
                        FusedStage::GradRelu { x } => st.read(*x, inputs, params),
                        FusedStage::Un { .. } => &[],
                    })
                    .collect();
                debug_assert_eq!(buf.s().len(), *n);
                fused_apply(buf.s(), *mode, lead, stages, &ops);
            }
            st.put(*dst, buf);
        }
        Instr::ConcatColsF { parts, dst, rows, total } => {
            let mut buf = st.take(*dst);
            {
                let o = buf.s();
                let mut off = 0usize;
                for (loc, w) in parts {
                    let src = st.read(*loc, inputs, params);
                    for r in 0..*rows {
                        o[r * *total + off..r * *total + off + w]
                            .copy_from_slice(&src[r * w..(r + 1) * w]);
                    }
                    off += w;
                }
            }
            st.put(*dst, buf);
        }
        Instr::SliceColsF { x, dst, rows, cols, start, end } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let o = buf.s();
                let w = *end - *start;
                for r in 0..*rows {
                    o[r * w..(r + 1) * w]
                        .copy_from_slice(&xv[r * *cols + *start..r * *cols + *end]);
                }
            }
            st.put(*dst, buf);
        }
        Instr::CopyBlock { src, src_off, dst, dst_off, len } => {
            let mut buf = st.take(*dst);
            {
                let sv = st.read(*src, inputs, params);
                buf.s()[*dst_off..*dst_off + *len]
                    .copy_from_slice(&sv[*src_off..*src_off + *len]);
            }
            st.put(*dst, buf);
        }
        Instr::SumAllF { x, dst, n, mean } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let s = xv.iter().map(|&t| t as f64).sum::<f64>() as f32;
                buf.s()[0] = if *mean { s / *n as f32 } else { s };
            }
            st.put(*dst, buf);
        }
        Instr::DropoutF { x, mask, dst, n } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let mv = st.masks[*mask as usize].as_slice();
                debug_assert_eq!(buf.s().len(), *n);
                par_apply(buf.s(), Mode::Store, |i| xv[i] * mv[i]);
            }
            st.put(*dst, buf);
        }
        Instr::EmbedF { table, feed, dst, vocab, dim, count } => {
            let mut buf = st.take(*dst);
            {
                let tv = st.read(*table, inputs, params);
                let ids = &st.ids[*feed as usize];
                debug_assert_eq!(ids.len(), *count);
                let o = buf.s();
                for (i, &id) in ids.iter().enumerate() {
                    assert!(id < *vocab, "embedding id {id} out of vocab {vocab}");
                    o[i * *dim..(i + 1) * *dim]
                        .copy_from_slice(&tv[id * *dim..(id + 1) * *dim]);
                }
            }
            st.put(*dst, buf);
        }
        Instr::SoftmaxF { x, dst, m, n } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                softmax_rows_into(xv, *m, *n, buf.s());
            }
            st.put(*dst, buf);
        }
        Instr::CeF { logits, probs, labels, rt, dst, b, v } => {
            let mut pv = st.take_state(*probs);
            let mut buf = st.take(*dst);
            let mut active = 0usize;
            {
                let lv = st.read(*logits, inputs, params);
                let lab = &st.labels[*labels as usize];
                debug_assert_eq!(lab.len(), *b);
                softmax_rows_into(lv, *b, *v, &mut pv);
                let mut total = 0.0f64;
                for (i, &y) in lab.iter().enumerate() {
                    if y == IGNORE_INDEX {
                        continue;
                    }
                    assert!(y < *v, "label {y} out of vocab {v}");
                    total -= (pv[i * *v + y].max(1e-30) as f64).ln();
                    active += 1;
                }
                buf.s()[0] = if active == 0 { 0.0 } else { (total / active as f64) as f32 };
            }
            st.put(*dst, buf);
            st.put_state(*probs, pv);
            st.ce_active[*rt as usize] = active;
        }
        Instr::ConvF { x, w, cols, out2, dst, geom, batch, oc } => {
            let mut colv = st.take_state(*cols);
            let mut o2 = st.take_state(*out2);
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let wv = st.read(*w, inputs, params);
                im2col_into(xv, *batch, geom, &mut colv);
                let (oh, ow) = (geom.oh(), geom.ow());
                let rows = *batch * oh * ow;
                let ckk = geom.c * geom.kh * geom.kw;
                gemm_into(false, true, &colv, wv, rows, ckk, *oc, &mut o2, false);
                // permute [N·OH·OW, OC] → [N,OC,OH,OW]
                let o = buf.s();
                for ni in 0..*batch {
                    for y in 0..oh {
                        for xx in 0..ow {
                            let row = ((ni * oh + y) * ow + xx) * *oc;
                            for oi in 0..*oc {
                                o[((ni * *oc + oi) * oh + y) * ow + xx] = o2[row + oi];
                            }
                        }
                    }
                }
            }
            st.put(*dst, buf);
            st.put_state(*out2, o2);
            st.put_state(*cols, colv);
        }
        Instr::MaxPoolF { x, dst, am, nc, h, w } => {
            let mut amv = std::mem::take(&mut st.argmax[*am as usize]);
            let mut buf = st.take(*dst);
            {
                let src = st.read(*x, inputs, params);
                let (oh, ow) = (*h / 2, *w / 2);
                let o = buf.s();
                for nci in 0..*nc {
                    let base = nci * *h * *w;
                    for y in 0..oh {
                        for xx in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut bidx = 0usize;
                            for dy in 0..2 {
                                for dxx in 0..2 {
                                    let idx = base + (2 * y + dy) * *w + 2 * xx + dxx;
                                    if src[idx] > best {
                                        best = src[idx];
                                        bidx = idx;
                                    }
                                }
                            }
                            let oidx = nci * oh * ow + y * ow + xx;
                            o[oidx] = best;
                            amv[oidx] = bidx as u32;
                        }
                    }
                }
            }
            st.put(*dst, buf);
            st.argmax[*am as usize] = amv;
        }
        Instr::GapF { x, dst, nc, hw } => {
            let mut buf = st.take(*dst);
            {
                let src = st.read(*x, inputs, params);
                let o = buf.s();
                for nci in 0..*nc {
                    o[nci] = src[nci * *hw..(nci + 1) * *hw]
                        .iter()
                        .map(|&v| v as f64)
                        .sum::<f64>() as f32
                        / *hw as f32;
                }
            }
            st.put(*dst, buf);
        }
        Instr::BnF { x, gamma, beta, xhat, rt, dst, n, c, hw, eps } => {
            let mut xh = st.take_state(*xhat);
            let mut r = std::mem::replace(&mut st.bn[*rt as usize], BnRt::empty());
            let mut buf = st.take(*dst);
            {
                let src = st.read(*x, inputs, params);
                let gm = st.read(*gamma, inputs, params);
                let bt = st.read(*beta, inputs, params);
                let (n, c, hw) = (*n, *c, *hw);
                let m = (n * hw) as f64;
                r.mean.iter_mut().for_each(|v| *v = 0.0);
                r.var.iter_mut().for_each(|v| *v = 0.0);
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for &v in &src[base..base + hw] {
                            r.mean[ci] += v as f64;
                        }
                    }
                }
                for mu in &mut r.mean {
                    *mu /= m;
                }
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for &v in &src[base..base + hw] {
                            let d = v as f64 - r.mean[ci];
                            r.var[ci] += d * d;
                        }
                    }
                }
                for va in &mut r.var {
                    *va /= m;
                }
                for ci in 0..c {
                    r.inv_std[ci] = (1.0 / (r.var[ci] + *eps as f64).sqrt()) as f32;
                    r.mean_f32[ci] = r.mean[ci] as f32;
                    r.var_f32[ci] = r.var[ci] as f32;
                }
                let o = buf.s();
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        let mu = r.mean[ci] as f32;
                        let is = r.inv_std[ci];
                        for k in 0..hw {
                            let xhat_v = (src[base + k] - mu) * is;
                            xh[base + k] = xhat_v;
                            o[base + k] = gm[ci] * xhat_v + bt[ci];
                        }
                    }
                }
            }
            st.put(*dst, buf);
            st.bn[*rt as usize] = r;
            st.put_state(*xhat, xh);
        }
        Instr::LstmF { preact, c_prev, gates, tanh_c, c_dst, h_dst, b, hid } => {
            let mut gv = st.take_state(*gates);
            let mut tv = st.take_state(*tanh_c);
            let mut cb = st.take(*c_dst);
            let mut hb = st.take(*h_dst);
            {
                let pv = st.read(*preact, inputs, params);
                let cp = st.read(*c_prev, inputs, params);
                lstm_cell_forward_into(pv, cp, *b, *hid, &mut gv, cb.s(), &mut tv, hb.s());
            }
            st.put(*h_dst, hb);
            st.put(*c_dst, cb);
            st.put_state(*tanh_c, tv);
            st.put_state(*gates, gv);
        }
        Instr::PreactSeqF { x, w, bias, dst, rows, k, n4 } => {
            let mut buf = st.take(*dst);
            {
                let xv = st.read(*x, inputs, params);
                let wv = st.read(*w, inputs, params);
                let bv = st.read(*bias, inputs, params);
                let o = buf.s();
                for r in 0..*rows {
                    o[r * *n4..(r + 1) * *n4].copy_from_slice(bv);
                }
                gemm_into(false, false, xv, wv, *rows, *k, *n4, o, true);
            }
            st.put(*dst, buf);
        }
        Instr::RecurStepF { seq, h, w_h, dst, t, batch, hid, n4 } => {
            let mut buf = st.take(*dst);
            {
                let sv = st.read(*seq, inputs, params);
                let hv = st.read(*h, inputs, params);
                let wv = st.read(*w_h, inputs, params);
                let o = buf.s();
                o.copy_from_slice(&sv[*t * *batch * *n4..(*t + 1) * *batch * *n4]);
                gemm_into(false, false, hv, wv, *batch, *hid, *n4, o, true);
            }
            st.put(*dst, buf);
        }

        // ----------------------------------------------------------- backward
        Instr::ScaleG { up, dst, mode, n, c } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| us[i] * c);
            }
            st.put(*dst, buf);
        }
        Instr::MulG { up, other, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let ov = st.read(*other, inputs, params);
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| us[i] * ov[i]);
            }
            st.put(*dst, buf);
        }
        Instr::DropoutG { up, mask, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let mv = st.masks[*mask as usize].as_slice();
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| us[i] * mv[i]);
            }
            st.put(*dst, buf);
        }
        Instr::SigmoidG { up, y, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let yv = st.read(*y, inputs, params);
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| (yv[i] * (1.0 - yv[i])) * us[i]);
            }
            st.put(*dst, buf);
        }
        Instr::TanhG { up, y, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let yv = st.read(*y, inputs, params);
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| (1.0 - yv[i] * yv[i]) * us[i]);
            }
            st.put(*dst, buf);
        }
        Instr::ReluG { up, x, dst, mode, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let xv = st.read(*x, inputs, params);
                debug_assert_eq!(us.len(), *n);
                par_apply(buf.s(), *mode, |i| (if xv[i] > 0.0 { 1.0 } else { 0.0 }) * us[i]);
            }
            st.put(*dst, buf);
        }
        Instr::ColSumG { up, dst, mode, rows, cols } => {
            // Row-major sweep with per-column f64 accumulators: each column
            // still sums its rows in ascending order (bitwise-identical to a
            // column-at-a-time loop and to the tape's `sum_axis(0)`), but the
            // upstream matrix is read contiguously instead of strided.
            let mut buf = st.take(*dst);
            let mut acc = std::mem::take(&mut st.colsum);
            {
                let us = st.read(*up, inputs, params);
                let (rows, cols) = (*rows, *cols);
                let acc = &mut acc[..cols];
                acc.iter_mut().for_each(|a| *a = 0.0);
                for i in 0..rows {
                    let row = &us[i * cols..(i + 1) * cols];
                    for (a, &x) in acc.iter_mut().zip(row) {
                        *a += x as f64;
                    }
                }
                apply(buf.s(), *mode, |j| acc[j] as f32);
            }
            st.colsum = acc;
            st.put(*dst, buf);
        }
        Instr::RowScaleDx { up, s, dst, mode, rows, cols } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let sv = st.read(*s, inputs, params);
                debug_assert_eq!(us.len(), *rows * *cols);
                let cols = *cols;
                apply(buf.s(), *mode, |i| us[i] * sv[i / cols]);
            }
            st.put(*dst, buf);
        }
        Instr::RowScaleDs { up, x, dst, mode, rows, cols } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let xv = st.read(*x, inputs, params);
                debug_assert_eq!(buf.s().len(), *rows);
                let cols = *cols;
                // tape: up.mul(x) rounds each product to f32, sum_axis(1)
                // then accumulates those f32 values in f64 per row
                apply(buf.s(), *mode, |r| {
                    let mut acc = 0.0f64;
                    for j in 0..cols {
                        acc += (us[r * cols + j] * xv[r * cols + j]) as f64;
                    }
                    acc as f32
                });
            }
            st.put(*dst, buf);
        }
        Instr::ColsBlockG { up, dst, mode, rows, up_cols, off, width } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                debug_assert_eq!(buf.s().len(), *rows * *width);
                let (up_cols, off, width) = (*up_cols, *off, *width);
                apply(buf.s(), *mode, |i| us[(i / width) * up_cols + off + i % width]);
            }
            st.put(*dst, buf);
        }
        Instr::ColsScatterG { up, dst, mode, rows, dst_cols, start, end } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                debug_assert_eq!(buf.s().len(), *rows * *dst_cols);
                let (dst_cols, start, end) = (*dst_cols, *start, *end);
                let w = end - start;
                // outside the block the tape's dense gradient contributes
                // literal zeros (its Add path runs `d += 0.0`)
                apply(buf.s(), *mode, |i| {
                    let (r, j) = (i / dst_cols, i % dst_cols);
                    if j >= start && j < end {
                        us[r * w + (j - start)]
                    } else {
                        0.0
                    }
                });
            }
            st.put(*dst, buf);
        }
        Instr::BlockG { up, up_off, dst, dst_off, len, dst_len, zero_rest, mode } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let o = buf.s();
                debug_assert_eq!(o.len(), *dst_len);
                let (up_off, dst_off, len) = (*up_off, *dst_off, *len);
                match mode {
                    Mode::Store => {
                        if *zero_rest {
                            o[..dst_off].fill(0.0);
                            o[dst_off + len..].fill(0.0);
                        }
                        o[dst_off..dst_off + len]
                            .copy_from_slice(&us[up_off..up_off + len]);
                    }
                    Mode::Add => {
                        if *zero_rest {
                            for d in &mut o[..dst_off] {
                                *d += 0.0;
                            }
                            for d in &mut o[dst_off + len..] {
                                *d += 0.0;
                            }
                        }
                        for (d, &s) in o[dst_off..dst_off + len]
                            .iter_mut()
                            .zip(&us[up_off..up_off + len])
                        {
                            *d += s;
                        }
                    }
                }
            }
            st.put(*dst, buf);
        }
        Instr::SumAllG { up, dst, mode, n, mean } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let g = if *mean { us[0] / *n as f32 } else { us[0] };
                apply(buf.s(), *mode, |_| g);
            }
            st.put(*dst, buf);
        }
        Instr::EmbedG { up, feed, dst, mode, vocab, dim, count } => {
            let mut buf = st.take(*dst);
            let mut scr = std::mem::take(&mut st.scratch);
            {
                let us = st.read(*up, inputs, params);
                let ids = &st.ids[*feed as usize];
                debug_assert_eq!(ids.len(), *count);
                let (dim, total) = (*dim, *vocab * *dim);
                match mode {
                    Mode::Store => {
                        let o = buf.s();
                        o.fill(0.0);
                        for (i, &id) in ids.iter().enumerate() {
                            for j in 0..dim {
                                o[id * dim + j] += us[i * dim + j];
                            }
                        }
                    }
                    Mode::Add => {
                        let s = &mut scr[..total];
                        s.fill(0.0);
                        for (i, &id) in ids.iter().enumerate() {
                            for j in 0..dim {
                                s[id * dim + j] += us[i * dim + j];
                            }
                        }
                        for (d, &sv) in buf.s().iter_mut().zip(s.iter()) {
                            *d += sv;
                        }
                    }
                }
            }
            st.scratch = scr;
            st.put(*dst, buf);
        }
        Instr::SoftmaxG { up, y, dst, mode, m, n } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let yv = st.read(*y, inputs, params);
                let (m, n) = (*m, *n);
                let o = buf.s();
                for i in 0..m {
                    let mut dot = 0.0f32;
                    for j in 0..n {
                        dot += yv[i * n + j] * us[i * n + j];
                    }
                    match mode {
                        Mode::Store => {
                            for j in 0..n {
                                o[i * n + j] = yv[i * n + j] * (us[i * n + j] - dot);
                            }
                        }
                        Mode::Add => {
                            for j in 0..n {
                                o[i * n + j] += yv[i * n + j] * (us[i * n + j] - dot);
                            }
                        }
                    }
                }
            }
            st.put(*dst, buf);
        }
        Instr::CeG { up, probs, labels, rt, dst, mode, b, v } => {
            let active = st.ce_active[*rt as usize];
            if active == 0 {
                // the tape skips the contribution entirely (whole subtree
                // stays gradient-free); a Store destination still needs
                // defined contents for downstream reads
                if *mode == Mode::Store {
                    let mut buf = st.take(*dst);
                    buf.s().fill(0.0);
                    st.put(*dst, buf);
                }
                return;
            }
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let p = &st.states[*probs as usize];
                let lab = &st.labels[*labels as usize];
                let seed = us[0] / active as f32;
                let (b, v) = (*b, *v);
                let o = buf.s();
                for i in 0..b {
                    let y = lab[i];
                    for j in 0..v {
                        let val = if y == IGNORE_INDEX {
                            0.0
                        } else {
                            let indicator = if j == y { 1.0 } else { 0.0 };
                            seed * (p[i * v + j] - indicator)
                        };
                        match mode {
                            Mode::Store => o[i * v + j] = val,
                            Mode::Add => o[i * v + j] += val,
                        }
                    }
                }
            }
            st.put(*dst, buf);
        }
        Instr::ConvG { up, w, cols, out2, dw, dx, geom, batch, oc } => {
            let (oh, ow) = (geom.oh(), geom.ow());
            let rows = *batch * oh * ow;
            let ckk = geom.c * geom.kh * geom.kw;
            // up2 = from_nchw(up), reusing the forward's out2 buffer
            let mut o2 = st.take_state(*out2);
            {
                let us = st.read(*up, inputs, params);
                for ni in 0..*batch {
                    for oi in 0..*oc {
                        for y in 0..oh {
                            for xx in 0..ow {
                                o2[((ni * oh + y) * ow + xx) * *oc + oi] =
                                    us[((ni * *oc + oi) * oh + y) * ow + xx];
                            }
                        }
                    }
                }
            }
            st.put_state(*out2, o2);
            if let Some((d, mode)) = dw {
                // dW = up2ᵀ · cols → [OC, CKK]
                let mut buf = st.take(*d);
                match mode {
                    Mode::Store => {
                        let up2 = &st.states[*out2 as usize];
                        let colv = &st.states[*cols as usize];
                        gemm_into(true, false, up2, colv, *oc, rows, ckk, buf.s(), false);
                    }
                    Mode::Add => {
                        let mut scr = std::mem::take(&mut st.scratch);
                        {
                            let up2 = &st.states[*out2 as usize];
                            let colv = &st.states[*cols as usize];
                            let s = &mut scr[..*oc * ckk];
                            gemm_into(true, false, up2, colv, *oc, rows, ckk, s, false);
                            for (dv, &sv) in buf.s().iter_mut().zip(s.iter()) {
                                *dv += sv;
                            }
                        }
                        st.scratch = scr;
                    }
                }
                st.put(*d, buf);
            }
            if let Some((d, mode)) = dx {
                // dcols = up2 · W, overwriting the cols buffer (dW above was
                // its last reader), then fold back to the input image
                let mut colv = st.take_state(*cols);
                {
                    let up2 = &st.states[*out2 as usize];
                    let wv = st.read(*w, inputs, params);
                    gemm_into(false, false, up2, wv, rows, *oc, ckk, &mut colv, false);
                }
                st.put_state(*cols, colv);
                let mut buf = st.take(*d);
                match mode {
                    Mode::Store => {
                        let colv = &st.states[*cols as usize];
                        col2im_into(colv, *batch, geom, buf.s());
                    }
                    Mode::Add => {
                        let mut scr = std::mem::take(&mut st.scratch);
                        {
                            let colv = &st.states[*cols as usize];
                            let x_len = *batch * geom.c * geom.h * geom.w;
                            let s = &mut scr[..x_len];
                            col2im_into(colv, *batch, geom, s);
                            for (dv, &sv) in buf.s().iter_mut().zip(s.iter()) {
                                *dv += sv;
                            }
                        }
                        st.scratch = scr;
                    }
                }
                st.put(*d, buf);
            }
        }
        Instr::MaxPoolG { up, dst, mode, am, x_len, out_len } => {
            let mut buf = st.take(*dst);
            let mut scr = std::mem::take(&mut st.scratch);
            {
                let us = st.read(*up, inputs, params);
                let amv = &st.argmax[*am as usize];
                debug_assert_eq!(us.len(), *out_len);
                match mode {
                    Mode::Store => {
                        let o = buf.s();
                        o.fill(0.0);
                        for (oi, &src_idx) in amv.iter().enumerate() {
                            o[src_idx as usize] += us[oi];
                        }
                    }
                    Mode::Add => {
                        let s = &mut scr[..*x_len];
                        s.fill(0.0);
                        for (oi, &src_idx) in amv.iter().enumerate() {
                            s[src_idx as usize] += us[oi];
                        }
                        for (d, &sv) in buf.s().iter_mut().zip(s.iter()) {
                            *d += sv;
                        }
                    }
                }
            }
            st.scratch = scr;
            st.put(*dst, buf);
        }
        Instr::GapG { up, dst, mode, nc, hw } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                debug_assert_eq!(us.len(), *nc);
                let inv = 1.0 / *hw as f32;
                let hw = *hw;
                apply(buf.s(), *mode, |i| us[i / hw] * inv);
            }
            st.put(*dst, buf);
        }
        Instr::BnG { up, gamma, xhat, rt, dg, dbt, dx, n, c, hw } => {
            let (n, c, hw) = (*n, *c, *hw);
            let mut r = std::mem::replace(&mut st.bn[*rt as usize], BnRt::empty());
            {
                let us = st.read(*up, inputs, params);
                let xh = &st.states[*xhat as usize];
                r.sum_up.iter_mut().for_each(|v| *v = 0.0);
                r.sum_up_xh.iter_mut().for_each(|v| *v = 0.0);
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for k in 0..hw {
                            r.sum_up[ci] += us[base + k] as f64;
                            r.sum_up_xh[ci] += (us[base + k] * xh[base + k]) as f64;
                        }
                    }
                }
            }
            st.bn[*rt as usize] = r;
            if let Some((d, mode)) = dg {
                let mut buf = st.take(*d);
                {
                    let r = &st.bn[*rt as usize];
                    apply(buf.s(), *mode, |ci| r.sum_up_xh[ci] as f32);
                }
                st.put(*d, buf);
            }
            if let Some((d, mode)) = dbt {
                let mut buf = st.take(*d);
                {
                    let r = &st.bn[*rt as usize];
                    apply(buf.s(), *mode, |ci| r.sum_up[ci] as f32);
                }
                st.put(*d, buf);
            }
            if let Some((d, mode)) = dx {
                let mut buf = st.take(*d);
                {
                    let us = st.read(*up, inputs, params);
                    let gm = st.read(*gamma, inputs, params);
                    let r = &st.bn[*rt as usize];
                    let xh = &st.states[*xhat as usize];
                    let m = (n * hw) as f32;
                    let o = buf.s();
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * hw;
                            let coef = gm[ci] * r.inv_std[ci] / m;
                            let su = r.sum_up[ci] as f32;
                            let suxh = r.sum_up_xh[ci] as f32;
                            match mode {
                                Mode::Store => {
                                    for k in 0..hw {
                                        o[base + k] = coef
                                            * (m * us[base + k] - su - xh[base + k] * suxh);
                                    }
                                }
                                Mode::Add => {
                                    for k in 0..hw {
                                        o[base + k] += coef
                                            * (m * us[base + k] - su - xh[base + k] * suxh);
                                    }
                                }
                            }
                        }
                    }
                }
                st.put(*d, buf);
            }
        }
        Instr::LstmG { gates, tanh_c, c_prev, dh, dc, dpre, dcp, b, hid, direct } => {
            if *direct {
                // Both destinations are plain stores: write them in place and
                // skip the scratch bounce. The optimizer only sets `direct`
                // when physical aliasing is impossible (births before deaths
                // — see `plan_fuse`), so the two buffers and every operand
                // are distinct.
                let mut b0 = st.take(dpre.0);
                let mut b1 = st.take(dcp.0);
                {
                    let gv = &st.states[*gates as usize];
                    let tv = &st.states[*tanh_c as usize];
                    let cp = st.read(*c_prev, inputs, params);
                    let dh_s = (*dh).map(|l| st.read(l, inputs, params));
                    let dc_s = (*dc).map(|l| st.read(l, inputs, params));
                    lstm_cell_backward_into(gv, tv, cp, dh_s, dc_s, *b, *hid, b0.s(), b1.s());
                }
                // preact first, then c_prev — the tape's accumulate order
                st.put(dpre.0, b0);
                st.put(dcp.0, b1);
            } else {
                let mut scr = std::mem::take(&mut st.scratch);
                {
                    let gv = &st.states[*gates as usize];
                    let tv = &st.states[*tanh_c as usize];
                    let cp = st.read(*c_prev, inputs, params);
                    let dh_s = (*dh).map(|l| st.read(l, inputs, params));
                    let dc_s = (*dc).map(|l| st.read(l, inputs, params));
                    let (spre, rest) = scr.split_at_mut(*b * 4 * *hid);
                    let scp = &mut rest[..*b * *hid];
                    lstm_cell_backward_into(gv, tv, cp, dh_s, dc_s, *b, *hid, spre, scp);
                }
                // preact first, then c_prev — the tape's accumulate order
                let (d0, m0) = *dpre;
                let mut buf = st.take(d0);
                apply(buf.s(), m0, |i| scr[i]);
                st.put(d0, buf);
                let off = *b * 4 * *hid;
                let (d1, m1) = *dcp;
                let mut buf = st.take(d1);
                apply(buf.s(), m1, |i| scr[off + i]);
                st.put(d1, buf);
                st.scratch = scr;
            }
        }
        Instr::RecurSeqG { up, dst, zero_first, t, batch, cols, dst_len } => {
            let mut buf = st.take(*dst);
            {
                let us = st.read(*up, inputs, params);
                let o = buf.s();
                debug_assert_eq!(o.len(), *dst_len);
                if *zero_first {
                    o.fill(0.0);
                }
                let blk = &mut o[*t * *batch * *cols..(*t + 1) * *batch * *cols];
                for (d, &s) in blk.iter_mut().zip(us.iter()) {
                    *d += s;
                }
            }
            st.put(*dst, buf);
        }
    }
}

/// Row softmax into a caller slice — the serial kernel from
/// `Tensor::softmax_rows`, reproduced exactly (forward values must match
/// the tape bit for bit).
fn softmax_rows_into(src: &[f32], m: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let row = &src[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let orow = &mut out[i * n..(i + 1) * n];
        let mut z = 0.0f64;
        for (o, &x) in orow.iter_mut().zip(row.iter()) {
            let e = (x - mx).exp();
            *o = e;
            z += e as f64;
        }
        let inv = (1.0 / z) as f32;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
}

// ---------------------------------------------------------------- capture

/// First contribution to a gradient destination stores, later ones add —
/// the static image of `Graph::accumulate`'s `None`/`Some` branch.
fn contribute(j: usize, contrib: &mut [usize], present: &mut [bool]) -> Mode {
    present[j] = true;
    let m = if contrib[j] == 0 { Mode::Store } else { Mode::Add };
    contrib[j] += 1;
    m
}

fn vl(loc: &mut Loc, f: &mut dyn FnMut(&mut u32)) {
    if let Loc::Slot(v) = loc {
        f(v)
    }
}

fn vd(dst: &mut Dst, f: &mut dyn FnMut(&mut u32)) {
    if let Dst::Slot(v) = dst {
        f(v)
    }
}

/// Applies `f` to every arena-slot id an instruction touches (reads and
/// writes alike) — the one traversal behind both the liveness scan and the
/// virtual→physical rewrite.
fn visit_slots(ins: &mut Instr, f: &mut dyn FnMut(&mut u32)) {
    match ins {
        Instr::Ew { a, b, dst, .. } => {
            vl(a, f);
            vl(b, f);
            vd(dst, f);
        }
        Instr::Unary { a, dst, .. } => {
            vl(a, f);
            vd(dst, f);
        }
        Instr::AddBias { x, bias, dst, .. } => {
            vl(x, f);
            vl(bias, f);
            vd(dst, f);
        }
        Instr::RowScale { x, s, dst, .. } => {
            vl(x, f);
            vl(s, f);
            vd(dst, f);
        }
        Instr::Gemm { a, b, dst, .. } => {
            vl(a, f);
            vl(b, f);
            vd(dst, f);
        }
        Instr::ConcatColsF { parts, dst, .. } => {
            for (p, _) in parts.iter_mut() {
                vl(p, f);
            }
            vd(dst, f);
        }
        Instr::SliceColsF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::CopyBlock { src, dst, .. } => {
            vl(src, f);
            vd(dst, f);
        }
        Instr::SumAllF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::DropoutF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::EmbedF { table, dst, .. } => {
            vl(table, f);
            vd(dst, f);
        }
        Instr::SoftmaxF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::CeF { logits, dst, .. } => {
            vl(logits, f);
            vd(dst, f);
        }
        Instr::ConvF { x, w, dst, .. } => {
            vl(x, f);
            vl(w, f);
            vd(dst, f);
        }
        Instr::MaxPoolF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::GapF { x, dst, .. } => {
            vl(x, f);
            vd(dst, f);
        }
        Instr::BnF { x, gamma, beta, dst, .. } => {
            vl(x, f);
            vl(gamma, f);
            vl(beta, f);
            vd(dst, f);
        }
        Instr::LstmF { preact, c_prev, c_dst, h_dst, .. } => {
            vl(preact, f);
            vl(c_prev, f);
            vd(c_dst, f);
            vd(h_dst, f);
        }
        Instr::PreactSeqF { x, w, bias, dst, .. } => {
            vl(x, f);
            vl(w, f);
            vl(bias, f);
            vd(dst, f);
        }
        Instr::RecurStepF { seq, h, w_h, dst, .. } => {
            vl(seq, f);
            vl(h, f);
            vl(w_h, f);
            vd(dst, f);
        }
        Instr::ScaleG { up, dst, .. }
        | Instr::DropoutG { up, dst, .. }
        | Instr::ColSumG { up, dst, .. }
        | Instr::ColsBlockG { up, dst, .. }
        | Instr::ColsScatterG { up, dst, .. }
        | Instr::BlockG { up, dst, .. }
        | Instr::SumAllG { up, dst, .. }
        | Instr::EmbedG { up, dst, .. }
        | Instr::CeG { up, dst, .. }
        | Instr::MaxPoolG { up, dst, .. }
        | Instr::GapG { up, dst, .. }
        | Instr::RecurSeqG { up, dst, .. } => {
            vl(up, f);
            vd(dst, f);
        }
        Instr::MulG { up, other, dst, .. } => {
            vl(up, f);
            vl(other, f);
            vd(dst, f);
        }
        Instr::SigmoidG { up, y, dst, .. } | Instr::TanhG { up, y, dst, .. } => {
            vl(up, f);
            vl(y, f);
            vd(dst, f);
        }
        Instr::ReluG { up, x, dst, .. } => {
            vl(up, f);
            vl(x, f);
            vd(dst, f);
        }
        Instr::RowScaleDx { up, s, dst, .. } => {
            vl(up, f);
            vl(s, f);
            vd(dst, f);
        }
        Instr::RowScaleDs { up, x, dst, .. } => {
            vl(up, f);
            vl(x, f);
            vd(dst, f);
        }
        Instr::SoftmaxG { up, y, dst, .. } => {
            vl(up, f);
            vl(y, f);
            vd(dst, f);
        }
        Instr::ConvG { up, w, dw, dx, .. } => {
            vl(up, f);
            vl(w, f);
            if let Some((d, _)) = dw {
                vd(d, f);
            }
            if let Some((d, _)) = dx {
                vd(d, f);
            }
        }
        Instr::BnG { up, gamma, dg, dbt, dx, .. } => {
            vl(up, f);
            vl(gamma, f);
            for o in [dg, dbt, dx] {
                if let Some((d, _)) = o {
                    vd(d, f);
                }
            }
        }
        Instr::LstmG { c_prev, dh, dc, dpre, dcp, .. } => {
            vl(c_prev, f);
            if let Some(l) = dh {
                vl(l, f);
            }
            if let Some(l) = dc {
                vl(l, f);
            }
            vd(&mut dpre.0, f);
            vd(&mut dcp.0, f);
        }
        Instr::GemmAcc { a, b, dst, .. } => {
            vl(a, f);
            vl(b, f);
            vd(dst, f);
        }
        Instr::FusedEw { a0, stages, dst, .. } => {
            vl(a0, f);
            for s in stages {
                match s {
                    FusedStage::Bin { other, .. } => vl(other, f),
                    FusedStage::BiasCol { bias, .. } => vl(bias, f),
                    FusedStage::RowScaleS { s, .. } => vl(s, f),
                    FusedStage::GradSigmoid { y } | FusedStage::GradTanh { y } => vl(y, f),
                    FusedStage::GradRelu { x } => vl(x, f),
                    FusedStage::Un { .. } | FusedStage::Mask { .. } => {}
                }
            }
            vd(dst, f);
        }
    }
}

struct Capturer;

impl Capturer {
    fn run(g: &Graph, spec: &CaptureSpec, forward_only: bool) -> Option<Plan> {
        let n = g.nodes.len();
        if n == 0 {
            return None;
        }
        let shape = |i: usize| g.nodes[i].value.shape();
        let numel = |i: usize| g.nodes[i].value.numel();
        let rg = |v: Var| g.nodes[v.0].requires_grad;

        // ---- classify every leaf as input / param / captured constant
        let mut val_loc: Vec<Option<Loc>> = vec![None; n];
        for (k, &v) in spec.params.iter().enumerate() {
            let node = &g.nodes[v.0];
            if !matches!(node.op, Op::Leaf) || !node.requires_grad || val_loc[v.0].is_some() {
                return None;
            }
            val_loc[v.0] = Some(Loc::Par(k as u32));
        }
        for (k, &v) in spec.inputs.iter().enumerate() {
            let node = &g.nodes[v.0];
            if !matches!(node.op, Op::Leaf) || node.requires_grad || val_loc[v.0].is_some() {
                return None;
            }
            val_loc[v.0] = Some(Loc::In(k as u32));
        }
        let mut consts: Vec<Tensor> = Vec::new();
        for (i, node) in g.nodes.iter().enumerate() {
            if matches!(node.op, Op::Leaf) && val_loc[i].is_none() {
                if node.requires_grad {
                    return None; // its leaf_grads entry could not be served
                }
                val_loc[i] = Some(Loc::Const(consts.len() as u32));
                consts.push(node.value.clone());
            }
        }

        // ---- outputs get plan-owned tensors; the loss is a hidden output
        let mut outs: Vec<Tensor> = Vec::new();
        let mut out_of_node: HashMap<usize, u32> = HashMap::new();
        let mut out_of_k: Vec<u32> = Vec::with_capacity(spec.outputs.len());
        for &v in spec.outputs {
            if matches!(g.nodes[v.0].op, Op::Leaf) || out_of_node.contains_key(&v.0) {
                return None; // leaves aren't scheduled; duplicates would race
            }
            let k = outs.len() as u32;
            out_of_node.insert(v.0, k);
            outs.push(g.nodes[v.0].value.zeros_like());
            out_of_k.push(k);
        }
        let mut loss_out: Option<u32> = None;
        if let Some(l) = spec.loss {
            let node = &g.nodes[l.0];
            if node.value.numel() != 1 || !node.requires_grad || matches!(node.op, Op::Leaf) {
                return None;
            }
            loss_out = Some(*out_of_node.entry(l.0).or_insert_with(|| {
                outs.push(node.value.zeros_like());
                (outs.len() - 1) as u32
            }));
        }
        for (i, slot) in val_loc.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(match out_of_node.get(&i) {
                    Some(&k) => Loc::Out(k),
                    None => Loc::Slot(i as u32),
                });
            }
        }
        let val_loc: Vec<Loc> = val_loc.into_iter().map(|o| o.unwrap()).collect();
        let vdst = |i: usize| -> Dst {
            match val_loc[i] {
                Loc::Out(k) => Dst::Out(k),
                Loc::Slot(s) => Dst::Slot(s),
                _ => unreachable!("forward destination must be a slot or output"),
            }
        };
        // Virtual gradient ids: node i's gradient is slot N+i (param leaves
        // go straight to their persistent gradient tensors instead).
        let gdst = |i: usize| -> Dst {
            match val_loc[i] {
                Loc::Par(k) => Dst::ParGrad(k),
                _ => Dst::Slot((n + i) as u32),
            }
        };
        let gloc = |i: usize| -> Loc { Loc::Slot((n + i) as u32) };

        // ---- forward emission (node i's instructions sit at position i)
        let mut fwd: Vec<Instr> = Vec::new();
        let mut fpos: Vec<usize> = Vec::new();
        let mut state_sizes: Vec<usize> = Vec::new();
        let mut ids: Vec<Vec<usize>> = Vec::new();
        let mut labels: Vec<Vec<usize>> = Vec::new();
        let mut masks: Vec<Tensor> = Vec::new();
        let mut argmax_lens: Vec<usize> = Vec::new();
        let mut bn_cs: Vec<usize> = Vec::new();
        let mut aux: Vec<[u32; 4]> = vec![[0; 4]; n];
        for i in 0..n {
            let before = fwd.len();
            match &g.nodes[i].op {
                Op::Leaf => {}
                Op::Add(a, b) => fwd.push(Instr::Ew {
                    kind: EwKind::Add,
                    a: val_loc[a.0],
                    b: val_loc[b.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Sub(a, b) => fwd.push(Instr::Ew {
                    kind: EwKind::Sub,
                    a: val_loc[a.0],
                    b: val_loc[b.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Mul(a, b) => fwd.push(Instr::Ew {
                    kind: EwKind::Mul,
                    a: val_loc[a.0],
                    b: val_loc[b.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::AddBias(x, b) => fwd.push(Instr::AddBias {
                    x: val_loc[x.0],
                    bias: val_loc[b.0],
                    dst: vdst(i),
                    rows: shape(x.0)[0],
                    cols: shape(x.0)[1],
                }),
                Op::RowScale(x, s) => fwd.push(Instr::RowScale {
                    x: val_loc[x.0],
                    s: val_loc[s.0],
                    dst: vdst(i),
                    rows: shape(x.0)[0],
                    cols: shape(x.0)[1],
                }),
                Op::Matmul(a, b) => fwd.push(Instr::Gemm {
                    ta: false,
                    tb: false,
                    a: val_loc[a.0],
                    b: val_loc[b.0],
                    m: shape(a.0)[0],
                    k: shape(a.0)[1],
                    n: shape(b.0)[1],
                    dst: vdst(i),
                    mode: Mode::Store,
                }),
                Op::Scale(x, c) => fwd.push(Instr::Unary {
                    kind: UnKind::Scale(*c),
                    a: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::AddScalar(x, c) => fwd.push(Instr::Unary {
                    kind: UnKind::AddScalar(*c),
                    a: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Sigmoid(x) => fwd.push(Instr::Unary {
                    kind: UnKind::Sigmoid,
                    a: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Tanh(x) => fwd.push(Instr::Unary {
                    kind: UnKind::Tanh,
                    a: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Relu(x) => fwd.push(Instr::Unary {
                    kind: UnKind::Relu,
                    a: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(i),
                }),
                Op::Reshape(x) => fwd.push(Instr::CopyBlock {
                    src: val_loc[x.0],
                    src_off: 0,
                    dst: vdst(i),
                    dst_off: 0,
                    len: numel(i),
                }),
                Op::ConcatCols(parts, widths) => fwd.push(Instr::ConcatColsF {
                    parts: parts
                        .iter()
                        .zip(widths)
                        .map(|(p, &w)| (val_loc[p.0], w))
                        .collect(),
                    dst: vdst(i),
                    rows: shape(i)[0],
                    total: shape(i)[1],
                }),
                Op::SliceCols(x, start, end) => fwd.push(Instr::SliceColsF {
                    x: val_loc[x.0],
                    dst: vdst(i),
                    rows: shape(x.0)[0],
                    cols: shape(x.0)[1],
                    start: *start,
                    end: *end,
                }),
                Op::ConcatRows(parts, rcs) => {
                    let cols = shape(i)[1];
                    let mut off = 0usize;
                    for (p, &rc) in parts.iter().zip(rcs) {
                        fwd.push(Instr::CopyBlock {
                            src: val_loc[p.0],
                            src_off: 0,
                            dst: vdst(i),
                            dst_off: off * cols,
                            len: rc * cols,
                        });
                        off += rc;
                    }
                }
                Op::SliceRows(x, start, end) => {
                    let cols = shape(x.0)[1];
                    fwd.push(Instr::CopyBlock {
                        src: val_loc[x.0],
                        src_off: start * cols,
                        dst: vdst(i),
                        dst_off: 0,
                        len: (end - start) * cols,
                    });
                }
                Op::SumAll(x) => fwd.push(Instr::SumAllF {
                    x: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(x.0),
                    mean: false,
                }),
                Op::MeanAll(x) => fwd.push(Instr::SumAllF {
                    x: val_loc[x.0],
                    dst: vdst(i),
                    n: numel(x.0),
                    mean: true,
                }),
                Op::Dropout(x, mask) => {
                    aux[i][0] = masks.len() as u32;
                    masks.push(mask.clone());
                    fwd.push(Instr::DropoutF {
                        x: val_loc[x.0],
                        mask: aux[i][0],
                        dst: vdst(i),
                        n: numel(i),
                    });
                }
                Op::Embedding { table, ids: idv } => {
                    aux[i][0] = ids.len() as u32;
                    ids.push(idv.clone());
                    fwd.push(Instr::EmbedF {
                        table: val_loc[table.0],
                        feed: aux[i][0],
                        dst: vdst(i),
                        vocab: shape(table.0)[0],
                        dim: shape(table.0)[1],
                        count: idv.len(),
                    });
                }
                Op::SoftmaxRows(x) => fwd.push(Instr::SoftmaxF {
                    x: val_loc[x.0],
                    dst: vdst(i),
                    m: shape(x.0)[0],
                    n: shape(x.0)[1],
                }),
                Op::SoftmaxCrossEntropy { logits, labels: lab, .. } => {
                    let (b, v) = (shape(logits.0)[0], shape(logits.0)[1]);
                    aux[i][0] = state_sizes.len() as u32;
                    state_sizes.push(b * v); // probs
                    aux[i][1] = labels.len() as u32;
                    labels.push(lab.clone());
                    aux[i][2] = aux[i][1]; // one active-count per CE op
                    fwd.push(Instr::CeF {
                        logits: val_loc[logits.0],
                        probs: aux[i][0],
                        labels: aux[i][1],
                        rt: aux[i][2],
                        dst: vdst(i),
                        b,
                        v,
                    });
                }
                Op::Conv2d { x, w, geom, batch, .. } => {
                    let rows = batch * geom.oh() * geom.ow();
                    let ckk = geom.c * geom.kh * geom.kw;
                    let oc = shape(w.0)[0];
                    aux[i][0] = state_sizes.len() as u32;
                    state_sizes.push(rows * ckk); // im2col columns
                    aux[i][1] = state_sizes.len() as u32;
                    state_sizes.push(rows * oc); // row-major conv output
                    fwd.push(Instr::ConvF {
                        x: val_loc[x.0],
                        w: val_loc[w.0],
                        cols: aux[i][0],
                        out2: aux[i][1],
                        dst: vdst(i),
                        geom: *geom,
                        batch: *batch,
                        oc,
                    });
                }
                Op::MaxPool2x2 { x, argmax } => {
                    let s = shape(x.0);
                    aux[i][0] = argmax_lens.len() as u32;
                    argmax_lens.push(argmax.len());
                    fwd.push(Instr::MaxPoolF {
                        x: val_loc[x.0],
                        dst: vdst(i),
                        am: aux[i][0],
                        nc: s[0] * s[1],
                        h: s[2],
                        w: s[3],
                    });
                }
                Op::GlobalAvgPool { x, hw } => fwd.push(Instr::GapF {
                    x: val_loc[x.0],
                    dst: vdst(i),
                    nc: numel(i),
                    hw: *hw,
                }),
                Op::BatchNorm { x, gamma, beta, eps, .. } => {
                    let s = shape(x.0);
                    aux[i][0] = state_sizes.len() as u32;
                    state_sizes.push(numel(x.0)); // x_hat
                    aux[i][1] = bn_cs.len() as u32;
                    bn_cs.push(s[1]);
                    fwd.push(Instr::BnF {
                        x: val_loc[x.0],
                        gamma: val_loc[gamma.0],
                        beta: val_loc[beta.0],
                        xhat: aux[i][0],
                        rt: aux[i][1],
                        dst: vdst(i),
                        n: s[0],
                        c: s[1],
                        hw: s[2] * s[3],
                        eps: *eps,
                    });
                }
                // The c' sibling is written by the h' node's LstmF below.
                Op::LstmCellC { .. } => {}
                Op::LstmCell { preact, c_prev, c_out, .. } => {
                    let (b, hid) = (shape(i)[0], shape(i)[1]);
                    aux[i][0] = state_sizes.len() as u32;
                    state_sizes.push(b * 4 * hid); // activated gates
                    aux[i][1] = state_sizes.len() as u32;
                    state_sizes.push(b * hid); // tanh(c')
                    fwd.push(Instr::LstmF {
                        preact: val_loc[preact.0],
                        c_prev: val_loc[c_prev.0],
                        gates: aux[i][0],
                        tanh_c: aux[i][1],
                        c_dst: vdst(c_out.0),
                        h_dst: vdst(i),
                        b,
                        hid,
                    });
                }
                Op::LstmPreactSeq { x_pack, w_x, bias } => fwd.push(Instr::PreactSeqF {
                    x: val_loc[x_pack.0],
                    w: val_loc[w_x.0],
                    bias: val_loc[bias.0],
                    dst: vdst(i),
                    rows: shape(x_pack.0)[0],
                    k: shape(x_pack.0)[1],
                    n4: shape(w_x.0)[1],
                }),
                Op::LstmRecurStep { seq, h, w_h, t, batch } => fwd.push(Instr::RecurStepF {
                    seq: val_loc[seq.0],
                    h: val_loc[h.0],
                    w_h: val_loc[w_h.0],
                    dst: vdst(i),
                    t: *t,
                    batch: *batch,
                    hid: shape(h.0)[1],
                    n4: shape(w_h.0)[1],
                }),
            }
            for _ in before..fwd.len() {
                fpos.push(i);
            }
        }
        let ce_n = labels.len();

        // ---- seed bookkeeping (seeds land at schedule position N).
        // Forward-only capture skips it entirely: `root_max` stays `None`,
        // so no backward instruction is ever emitted and no gradient slot
        // enters liveness.
        let mut grads_present = vec![false; n];
        let mut contrib = vec![0usize; n];
        let mut root_max: Option<usize> = None;
        if !forward_only {
            if let Some(l) = spec.loss {
                grads_present[l.0] = true;
                contrib[l.0] = 1;
                root_max = Some(l.0);
            }
        }
        let mut seed_targets: Vec<Option<(Dst, usize)>> = Vec::with_capacity(spec.outputs.len());
        for &v in spec.outputs {
            if !forward_only && g.nodes[v.0].requires_grad {
                grads_present[v.0] = true;
                if contrib[v.0] == 0 {
                    contrib[v.0] = 1;
                }
                root_max = Some(root_max.map_or(v.0, |m| m.max(v.0)));
                seed_targets.push(Some((Dst::Slot((n + v.0) as u32), numel(v.0))));
            } else {
                seed_targets.push(None);
            }
        }
        let loss_grad: Option<Dst> = if forward_only {
            None
        } else {
            spec.loss.map(|l| Dst::Slot((n + l.0) as u32))
        };
        let mut seed_vids: Vec<u32> = Vec::new();
        if let Some(Dst::Slot(v)) = loss_grad {
            seed_vids.push(v);
        }
        for t in seed_targets.iter().flatten() {
            if let (Dst::Slot(v), _) = t {
                if !seed_vids.contains(v) {
                    seed_vids.push(*v);
                }
            }
        }

        // ---- backward emission (node i's rule at position 2N-1-i)
        let mut bwd: Vec<Instr> = Vec::new();
        let mut bpos: Vec<usize> = Vec::new();
        if let Some(rm) = root_max {
            for i in (0..=rm).rev() {
                if !grads_present[i] || !g.nodes[i].requires_grad {
                    continue;
                }
                let before = bwd.len();
                let up = gloc(i);
                match &g.nodes[i].op {
                    Op::Leaf => {}
                    Op::Add(a, b) => {
                        for &o in [a, b].iter() {
                            if rg(*o) {
                                bwd.push(Instr::ScaleG {
                                    up,
                                    dst: gdst(o.0),
                                    mode: contribute(o.0, &mut contrib, &mut grads_present),
                                    n: numel(o.0),
                                    c: 1.0,
                                });
                            }
                        }
                    }
                    Op::Sub(a, b) => {
                        for (&o, c) in [a, b].iter().zip([1.0f32, -1.0]) {
                            if rg(*o) {
                                bwd.push(Instr::ScaleG {
                                    up,
                                    dst: gdst(o.0),
                                    mode: contribute(o.0, &mut contrib, &mut grads_present),
                                    n: numel(o.0),
                                    c,
                                });
                            }
                        }
                    }
                    Op::Mul(a, b) => {
                        for (&o, other) in [a, b].iter().zip([b, a]) {
                            if rg(*o) {
                                bwd.push(Instr::MulG {
                                    up,
                                    other: val_loc[other.0],
                                    dst: gdst(o.0),
                                    mode: contribute(o.0, &mut contrib, &mut grads_present),
                                    n: numel(o.0),
                                });
                            }
                        }
                    }
                    Op::AddBias(x, b) => {
                        let (rows, cols) = (shape(x.0)[0], shape(x.0)[1]);
                        if rg(*x) {
                            bwd.push(Instr::ScaleG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                                c: 1.0,
                            });
                        }
                        if rg(*b) {
                            bwd.push(Instr::ColSumG {
                                up,
                                dst: gdst(b.0),
                                mode: contribute(b.0, &mut contrib, &mut grads_present),
                                rows,
                                cols,
                            });
                        }
                    }
                    Op::RowScale(x, s) => {
                        let (rows, cols) = (shape(x.0)[0], shape(x.0)[1]);
                        if rg(*x) {
                            bwd.push(Instr::RowScaleDx {
                                up,
                                s: val_loc[s.0],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                rows,
                                cols,
                            });
                        }
                        if rg(*s) {
                            bwd.push(Instr::RowScaleDs {
                                up,
                                x: val_loc[x.0],
                                dst: gdst(s.0),
                                mode: contribute(s.0, &mut contrib, &mut grads_present),
                                rows,
                                cols,
                            });
                        }
                    }
                    Op::Matmul(a, b) => {
                        let (m, kk) = (shape(a.0)[0], shape(a.0)[1]);
                        let nn = shape(b.0)[1];
                        if rg(*a) {
                            let mode = contribute(a.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: false,
                                tb: true,
                                a: up,
                                b: val_loc[b.0],
                                m,
                                k: nn,
                                n: kk,
                                dst: gdst(a.0),
                                mode,
                            });
                        }
                        if rg(*b) {
                            let mode = contribute(b.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: true,
                                tb: false,
                                a: val_loc[a.0],
                                b: up,
                                m: kk,
                                k: m,
                                n: nn,
                                dst: gdst(b.0),
                                mode,
                            });
                        }
                    }
                    Op::Scale(x, c) => {
                        if rg(*x) {
                            bwd.push(Instr::ScaleG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                                c: *c,
                            });
                        }
                    }
                    Op::AddScalar(x, _) => {
                        if rg(*x) {
                            bwd.push(Instr::ScaleG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                                c: 1.0,
                            });
                        }
                    }
                    Op::Sigmoid(x) => {
                        if rg(*x) {
                            bwd.push(Instr::SigmoidG {
                                up,
                                y: val_loc[i],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                            });
                        }
                    }
                    Op::Tanh(x) => {
                        if rg(*x) {
                            bwd.push(Instr::TanhG {
                                up,
                                y: val_loc[i],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                            });
                        }
                    }
                    Op::Relu(x) => {
                        if rg(*x) {
                            bwd.push(Instr::ReluG {
                                up,
                                x: val_loc[x.0],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                            });
                        }
                    }
                    Op::Reshape(x) => {
                        if rg(*x) {
                            bwd.push(Instr::BlockG {
                                up,
                                up_off: 0,
                                dst: gdst(x.0),
                                dst_off: 0,
                                len: numel(x.0),
                                dst_len: numel(x.0),
                                zero_rest: false,
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                            });
                        }
                    }
                    Op::ConcatCols(parts, widths) => {
                        let (rows, total) = (shape(i)[0], shape(i)[1]);
                        let mut off = 0usize;
                        for (p, &w) in parts.iter().zip(widths) {
                            if rg(*p) {
                                bwd.push(Instr::ColsBlockG {
                                    up,
                                    dst: gdst(p.0),
                                    mode: contribute(p.0, &mut contrib, &mut grads_present),
                                    rows,
                                    up_cols: total,
                                    off,
                                    width: w,
                                });
                            }
                            off += w;
                        }
                    }
                    Op::SliceCols(x, start, end) => {
                        if rg(*x) {
                            bwd.push(Instr::ColsScatterG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                rows: shape(x.0)[0],
                                dst_cols: shape(x.0)[1],
                                start: *start,
                                end: *end,
                            });
                        }
                    }
                    Op::ConcatRows(parts, rcs) => {
                        let cols = shape(i)[1];
                        let mut off = 0usize;
                        for (p, &rc) in parts.iter().zip(rcs) {
                            if rg(*p) {
                                bwd.push(Instr::BlockG {
                                    up,
                                    up_off: off * cols,
                                    dst: gdst(p.0),
                                    dst_off: 0,
                                    len: rc * cols,
                                    dst_len: rc * cols,
                                    zero_rest: false,
                                    mode: contribute(p.0, &mut contrib, &mut grads_present),
                                });
                            }
                            off += rc;
                        }
                    }
                    Op::SliceRows(x, start, end) => {
                        if rg(*x) {
                            let cols = shape(x.0)[1];
                            bwd.push(Instr::BlockG {
                                up,
                                up_off: 0,
                                dst: gdst(x.0),
                                dst_off: start * cols,
                                len: (end - start) * cols,
                                dst_len: numel(x.0),
                                zero_rest: true,
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                            });
                        }
                    }
                    Op::SumAll(x) => {
                        if rg(*x) {
                            bwd.push(Instr::SumAllG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                                mean: false,
                            });
                        }
                    }
                    Op::MeanAll(x) => {
                        if rg(*x) {
                            bwd.push(Instr::SumAllG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                                mean: true,
                            });
                        }
                    }
                    Op::Dropout(x, _) => {
                        if rg(*x) {
                            bwd.push(Instr::DropoutG {
                                up,
                                mask: aux[i][0],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                n: numel(x.0),
                            });
                        }
                    }
                    Op::Embedding { table, ids: idv } => {
                        if rg(*table) {
                            let (vocab, dim) = (shape(table.0)[0], shape(table.0)[1]);
                            let mode = contribute(table.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::EmbedG {
                                up,
                                feed: aux[i][0],
                                dst: gdst(table.0),
                                mode,
                                vocab,
                                dim,
                                count: idv.len(),
                            });
                        }
                    }
                    Op::SoftmaxRows(x) => {
                        if rg(*x) {
                            bwd.push(Instr::SoftmaxG {
                                up,
                                y: val_loc[i],
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                m: shape(x.0)[0],
                                n: shape(x.0)[1],
                            });
                        }
                    }
                    Op::SoftmaxCrossEntropy { logits, .. } => {
                        if rg(*logits) {
                            bwd.push(Instr::CeG {
                                up,
                                probs: aux[i][0],
                                labels: aux[i][1],
                                rt: aux[i][2],
                                dst: gdst(logits.0),
                                mode: contribute(logits.0, &mut contrib, &mut grads_present),
                                b: shape(logits.0)[0],
                                v: shape(logits.0)[1],
                            });
                        }
                    }
                    Op::Conv2d { x, w, geom, batch, .. } => {
                        let oc = shape(w.0)[0];
                        let dw = rg(*w).then(|| {
                            let mode = contribute(w.0, &mut contrib, &mut grads_present);
                            (gdst(w.0), mode)
                        });
                        let dx = rg(*x).then(|| {
                            let mode = contribute(x.0, &mut contrib, &mut grads_present);
                            (gdst(x.0), mode)
                        });
                        if dw.is_some() || dx.is_some() {
                            bwd.push(Instr::ConvG {
                                up,
                                w: val_loc[w.0],
                                cols: aux[i][0],
                                out2: aux[i][1],
                                dw,
                                dx,
                                geom: *geom,
                                batch: *batch,
                                oc,
                            });
                        }
                    }
                    Op::MaxPool2x2 { x, argmax } => {
                        if rg(*x) {
                            let mode = contribute(x.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::MaxPoolG {
                                up,
                                dst: gdst(x.0),
                                mode,
                                am: aux[i][0],
                                x_len: numel(x.0),
                                out_len: argmax.len(),
                            });
                        }
                    }
                    Op::GlobalAvgPool { x, hw } => {
                        if rg(*x) {
                            bwd.push(Instr::GapG {
                                up,
                                dst: gdst(x.0),
                                mode: contribute(x.0, &mut contrib, &mut grads_present),
                                nc: numel(i),
                                hw: *hw,
                            });
                        }
                    }
                    Op::BatchNorm { x, gamma, beta, .. } => {
                        let s = shape(x.0);
                        let dg = rg(*gamma).then(|| {
                            (gdst(gamma.0), contribute(gamma.0, &mut contrib, &mut grads_present))
                        });
                        let dbt = rg(*beta).then(|| {
                            (gdst(beta.0), contribute(beta.0, &mut contrib, &mut grads_present))
                        });
                        let dx = rg(*x).then(|| {
                            (gdst(x.0), contribute(x.0, &mut contrib, &mut grads_present))
                        });
                        if dg.is_some() || dbt.is_some() || dx.is_some() {
                            bwd.push(Instr::BnG {
                                up,
                                gamma: val_loc[gamma.0],
                                xhat: aux[i][0],
                                rt: aux[i][1],
                                dg,
                                dbt,
                                dx,
                                n: s[0],
                                c: s[1],
                                hw: s[2] * s[3],
                            });
                        }
                    }
                    Op::LstmCell { preact, c_prev, c_out, .. } => {
                        let (b, hid) = (shape(i)[0], shape(i)[1]);
                        let dc = grads_present[c_out.0].then(|| gloc(c_out.0));
                        let dpre = if rg(*preact) {
                            (gdst(preact.0), contribute(preact.0, &mut contrib, &mut grads_present))
                        } else {
                            // dummy: fully overwritten, never read
                            (Dst::Slot((n + preact.0) as u32), Mode::Store)
                        };
                        let dcp = if rg(*c_prev) {
                            (gdst(c_prev.0), contribute(c_prev.0, &mut contrib, &mut grads_present))
                        } else {
                            (Dst::Slot((n + c_prev.0) as u32), Mode::Store)
                        };
                        bwd.push(Instr::LstmG {
                            gates: aux[i][0],
                            tanh_c: aux[i][1],
                            c_prev: val_loc[c_prev.0],
                            dh: Some(up),
                            dc,
                            dpre,
                            dcp,
                            b,
                            hid,
                            direct: false,
                        });
                    }
                    Op::LstmCellC { h_out } => {
                        if !grads_present[h_out.0] {
                            // h' unused: run the joint rule with dh = 0 from
                            // the sibling's cached intermediates.
                            if let Op::LstmCell { preact, c_prev, .. } = &g.nodes[h_out.0].op {
                                let (b, hid) = (shape(i)[0], shape(i)[1]);
                                let dpre = if rg(*preact) {
                                    (
                                        gdst(preact.0),
                                        contribute(preact.0, &mut contrib, &mut grads_present),
                                    )
                                } else {
                                    (Dst::Slot((n + preact.0) as u32), Mode::Store)
                                };
                                let dcp = if rg(*c_prev) {
                                    (
                                        gdst(c_prev.0),
                                        contribute(c_prev.0, &mut contrib, &mut grads_present),
                                    )
                                } else {
                                    (Dst::Slot((n + c_prev.0) as u32), Mode::Store)
                                };
                                bwd.push(Instr::LstmG {
                                    gates: aux[h_out.0][0],
                                    tanh_c: aux[h_out.0][1],
                                    c_prev: val_loc[c_prev.0],
                                    dh: None,
                                    dc: Some(up),
                                    dpre,
                                    dcp,
                                    b,
                                    hid,
                                    direct: false,
                                });
                            }
                        }
                    }
                    Op::LstmPreactSeq { x_pack, w_x, bias } => {
                        let (rows, kk) = (shape(x_pack.0)[0], shape(x_pack.0)[1]);
                        let n4 = shape(w_x.0)[1];
                        if rg(*x_pack) {
                            let mode = contribute(x_pack.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: false,
                                tb: true,
                                a: up,
                                b: val_loc[w_x.0],
                                m: rows,
                                k: n4,
                                n: kk,
                                dst: gdst(x_pack.0),
                                mode,
                            });
                        }
                        if rg(*w_x) {
                            let mode = contribute(w_x.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: true,
                                tb: false,
                                a: val_loc[x_pack.0],
                                b: up,
                                m: kk,
                                k: rows,
                                n: n4,
                                dst: gdst(w_x.0),
                                mode,
                            });
                        }
                        if rg(*bias) {
                            bwd.push(Instr::ColSumG {
                                up,
                                dst: gdst(bias.0),
                                mode: contribute(bias.0, &mut contrib, &mut grads_present),
                                rows,
                                cols: n4,
                            });
                        }
                    }
                    Op::LstmRecurStep { seq, h, w_h, t, batch } => {
                        let hid = shape(h.0)[1];
                        let n4 = shape(w_h.0)[1];
                        if rg(*h) {
                            let mode = contribute(h.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: false,
                                tb: true,
                                a: up,
                                b: val_loc[w_h.0],
                                m: *batch,
                                k: n4,
                                n: hid,
                                dst: gdst(h.0),
                                mode,
                            });
                        }
                        if rg(*w_h) {
                            let mode = contribute(w_h.0, &mut contrib, &mut grads_present);
                            bwd.push(Instr::Gemm {
                                ta: true,
                                tb: false,
                                a: val_loc[h.0],
                                b: up,
                                m: hid,
                                k: *batch,
                                n: n4,
                                dst: gdst(w_h.0),
                                mode,
                            });
                        }
                        if rg(*seq) {
                            let zero_first = contrib[seq.0] == 0;
                            contrib[seq.0] += 1;
                            grads_present[seq.0] = true;
                            bwd.push(Instr::RecurSeqG {
                                up,
                                dst: gdst(seq.0),
                                zero_first,
                                t: *t,
                                batch: *batch,
                                cols: n4,
                                dst_len: numel(seq.0),
                            });
                        }
                    }
                }
                for _ in before..bwd.len() {
                    bpos.push(2 * n - 1 - i);
                }
            }
        }

        // ---- plan optimizer: peephole elementwise fusion, gradient-copy
        // propagation and scratch-free instruction folds. Runs before
        // liveness so fused-away intermediates never get arena slots.
        let (fwd_pre, bwd_pre) = (fwd.len(), bwd.len());
        let pre_counts = plan_fuse::histogram(&fwd, &bwd);
        if fuse_enabled() {
            plan_fuse::optimize(&mut fwd, &mut fpos, &mut bwd, &mut bpos, &seed_vids);
        }
        // Shared f32 scratch sized from the final schedule's largest
        // consumer; the executor only ever slices it, so replays can never
        // grow it.
        let scratch =
            fwd.iter().chain(bwd.iter()).map(plan_fuse::scratch_req).max().unwrap_or(0);

        // ---- liveness over the 2N-position schedule
        let mut uses: HashMap<u32, (usize, usize)> = HashMap::new();
        {
            let mut touch = |vid: u32, pos: usize| {
                let e = uses.entry(vid).or_insert((pos, pos));
                if pos < e.0 {
                    e.0 = pos;
                }
                if pos > e.1 {
                    e.1 = pos;
                }
            };
            for (ins, &pos) in fwd.iter_mut().zip(fpos.iter()) {
                visit_slots(ins, &mut |v| touch(*v, pos));
            }
            for (ins, &pos) in bwd.iter_mut().zip(bpos.iter()) {
                visit_slots(ins, &mut |v| touch(*v, pos));
            }
            for &vid in &seed_vids {
                touch(vid, n);
            }
        }
        let numel_of = |vid: u32| -> usize {
            let v = vid as usize;
            if v < n {
                numel(v)
            } else {
                numel(v - n)
            }
        };

        // ---- physical slot assignment: at each position allocate the
        // intervals born there before freeing the ones that end there, so a
        // slot is never its own instruction's source and destination.
        let mut births: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        let mut deaths: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        for (&vid, &(first, last)) in &uses {
            births[first].push(vid);
            deaths[last].push(vid);
        }
        let mut free: HashMap<usize, Vec<u32>> = HashMap::new();
        let mut phys_sizes: Vec<usize> = Vec::new();
        let mut slot_map: HashMap<u32, u32> = HashMap::new();
        let (mut live, mut peak) = (0usize, 0usize);
        for pos in 0..2 * n {
            births[pos].sort_unstable();
            deaths[pos].sort_unstable();
            for &vid in &births[pos] {
                let sz = numel_of(vid);
                let phys = free
                    .get_mut(&sz)
                    .and_then(|v| v.pop())
                    .unwrap_or_else(|| {
                        phys_sizes.push(sz);
                        (phys_sizes.len() - 1) as u32
                    });
                slot_map.insert(vid, phys);
                live += sz * 4;
                peak = peak.max(live);
            }
            for &vid in &deaths[pos] {
                let sz = numel_of(vid);
                free.entry(sz).or_default().push(slot_map[&vid]);
                live -= sz * 4;
            }
        }
        for ins in fwd.iter_mut().chain(bwd.iter_mut()) {
            visit_slots(ins, &mut |v| *v = slot_map[&*v]);
        }
        let remap = |d: Dst| -> Dst {
            if let Dst::Slot(v) = d {
                Dst::Slot(slot_map[&v])
            } else {
                d
            }
        };
        let loss_grad = loss_grad.map(remap);
        let seed_targets: Vec<Option<(Dst, usize)>> =
            seed_targets.into_iter().map(|o| o.map(|(d, s)| (remap(d), s))).collect();

        // ---- storage + stats
        let colsum = bwd
            .iter()
            .map(|i| match i {
                Instr::ColSumG { cols, .. } => *cols,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let stats = PlanStats {
            nodes: n,
            fwd_instrs: fwd.len(),
            bwd_instrs: bwd.len(),
            fwd_instrs_pre: fwd_pre,
            bwd_instrs_pre: bwd_pre,
            arena_slots: phys_sizes.len(),
            arena_bytes: phys_sizes.iter().sum::<usize>() * 4,
            peak_live_bytes: peak,
            state_bytes: state_sizes.iter().sum::<usize>() * 4,
            scratch_bytes: scratch * 4 + colsum * 8,
        };
        let st = Store {
            slots: phys_sizes.iter().map(|&s| vec![0.0f32; s]).collect(),
            outs,
            // A forward-only plan never reads or writes parameter
            // gradients (`par_grad_present` is all-false below), so don't
            // double the frozen parameters' memory with zero buffers.
            pargrads: if forward_only {
                spec.params.iter().map(|_| Tensor::zeros(&[1])).collect()
            } else {
                spec.params.iter().map(|&v| g.nodes[v.0].value.zeros_like()).collect()
            },
            consts,
            states: state_sizes.iter().map(|&s| vec![0.0f32; s]).collect(),
            scratch: vec![0.0f32; scratch],
            colsum: vec![0.0f64; colsum],
            ids,
            labels,
            masks,
            argmax: argmax_lens.iter().map(|&l| vec![0u32; l]).collect(),
            ce_active: vec![0usize; ce_n],
            bn: bn_cs
                .iter()
                .map(|&c| BnRt {
                    mean: vec![0.0; c],
                    var: vec![0.0; c],
                    sum_up: vec![0.0; c],
                    sum_up_xh: vec![0.0; c],
                    mean_f32: vec![0.0; c],
                    var_f32: vec![0.0; c],
                    inv_std: vec![0.0; c],
                })
                .collect(),
            placeholder: Tensor::zeros(&[1]),
        };
        Some(Plan {
            prog: Prog { fwd, bwd, loss_grad, seed_targets },
            st,
            in_shapes: spec.inputs.iter().map(|&v| g.nodes[v.0].value.shape().to_vec()).collect(),
            par_shapes: spec.params.iter().map(|&v| g.nodes[v.0].value.shape().to_vec()).collect(),
            out_of_k,
            loss_out,
            par_grad_present: spec.params.iter().map(|&v| contrib[v.0] > 0).collect(),
            stats,
            pre_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random tensor (same LCG idiom as the op tests).
    fn t(seed: u64, dims: &[usize]) -> Tensor {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let data = (0..dims.iter().product())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    fn assert_bits(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: bit mismatch at {i}: {x} vs {y}"
            );
        }
    }

    // ---- MLP: matmul + add_bias + relu + cross-entropy ------------------

    struct MlpTape {
        g: Graph,
        x: Var,
        params: Vec<Var>,
        loss: Var,
    }

    fn mlp_tape(x: &Tensor, ps: &[&Tensor], labels: &[usize]) -> MlpTape {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let pv: Vec<Var> = ps.iter().map(|p| g.param((*p).clone())).collect();
        let h = g.matmul(xv, pv[0]);
        let h = g.add_bias(h, pv[1]);
        let h = g.relu(h);
        let o = g.matmul(h, pv[2]);
        let o = g.add_bias(o, pv[3]);
        let loss = g.softmax_cross_entropy(o, labels);
        MlpTape { g, x: xv, params: pv, loss }
    }

    fn mlp_params(seed: u64) -> Vec<Tensor> {
        vec![t(seed, &[8, 16]), t(seed + 1, &[16]), t(seed + 2, &[16, 4]), t(seed + 3, &[4])]
    }

    #[test]
    fn mlp_replay_matches_tape_bitwise() {
        let ps0 = mlp_params(11);
        let x0 = t(20, &[4, 8]);
        let lab0 = vec![0usize, 3, 1, 2];
        let mut tape = mlp_tape(&x0, &ps0.iter().collect::<Vec<_>>(), &lab0);
        tape.g.backward(tape.loss);
        let spec = CaptureSpec {
            inputs: &[tape.x],
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture(&tape.g, &spec).expect("mlp capture");

        // replay on different data AND different parameter values
        let ps1 = mlp_params(77);
        let x1 = t(21, &[4, 8]);
        let lab1 = vec![2usize, 0, 3, 3];
        let pr: Vec<&Tensor> = ps1.iter().collect();
        plan.replay_forward(&[&x1], &pr, &Feeds { labels: &[&lab1], ..Feeds::default() });
        plan.replay_backward_loss(&[&x1], &pr);

        let mut fresh = mlp_tape(&x1, &pr, &lab1);
        fresh.g.backward(fresh.loss);
        assert_bits(
            &[plan.loss()],
            fresh.g.value(fresh.loss).as_slice(),
            "mlp loss",
        );
        for (k, &pvar) in fresh.params.iter().enumerate() {
            assert_bits(
                plan.param_grad(k).expect("grad present").as_slice(),
                fresh.g.grad(pvar).expect("tape grad").as_slice(),
                "mlp grad",
            );
        }
    }

    #[test]
    fn forward_only_capture_matches_tape_and_drops_backward() {
        let ps0 = mlp_params(11);
        let x0 = t(20, &[4, 8]);
        // Loss-free inference tape: the logits are the only output.
        fn infer_tape(x: &Tensor, ps: &[&Tensor]) -> (Graph, Var, Vec<Var>, Var) {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let pv: Vec<Var> = ps.iter().map(|p| g.param((*p).clone())).collect();
            let h = g.matmul(xv, pv[0]);
            let h = g.add_bias(h, pv[1]);
            let h = g.relu(h);
            let o = g.matmul(h, pv[2]);
            let o = g.add_bias(o, pv[3]);
            (g, xv, pv, o)
        }
        let (g, xv, pv, o) = infer_tape(&x0, &ps0.iter().collect::<Vec<_>>());
        let spec = CaptureSpec { inputs: &[xv], params: &pv, loss: None, outputs: &[o] };
        let mut full = Plan::capture(&g, &spec).expect("full capture");
        let mut fwd = Plan::capture_forward(&g, &spec).expect("forward-only capture");
        assert_eq!(fwd.stats().bwd_instrs, 0, "no backward schedule");
        assert!(fwd.param_grad(0).is_none(), "no gradient flows in a forward-only plan");
        assert!(
            fwd.stats().arena_bytes <= full.stats().arena_bytes,
            "forward-only arena must not exceed the training plan's"
        );

        let ps1 = mlp_params(77);
        let x1 = t(21, &[4, 8]);
        let pr: Vec<&Tensor> = ps1.iter().collect();
        full.replay_forward(&[&x1], &pr, &Feeds::default());
        fwd.replay_forward(&[&x1], &pr, &Feeds::default());
        let (g1, _, _, o1) = infer_tape(&x1, &pr);
        assert_bits(fwd.output(0).as_slice(), g1.value(o1).as_slice(), "fwd-only vs tape");
        assert_bits(fwd.output(0).as_slice(), full.output(0).as_slice(), "fwd-only vs full");
    }

    #[test]
    fn forward_only_capture_still_computes_loss() {
        let ps = mlp_params(5);
        let x = t(9, &[4, 8]);
        let lab = vec![1usize, 0, 2, 3];
        let tape = mlp_tape(&x, &ps.iter().collect::<Vec<_>>(), &lab);
        let spec = CaptureSpec {
            inputs: &[tape.x],
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture_forward(&tape.g, &spec).expect("capture");
        assert_eq!(plan.stats().bwd_instrs, 0);
        let pr: Vec<&Tensor> = ps.iter().collect();
        plan.replay_forward(&[&x], &pr, &Feeds { labels: &[&lab], ..Feeds::default() });
        assert_bits(&[plan.loss()], tape.g.value(tape.loss).as_slice(), "fwd-only loss");
    }

    // ---- hoisted LSTM chain: preact_seq + recur_step + fused cell -------

    const T: usize = 3;
    const B: usize = 2;
    const IN: usize = 4;
    const H: usize = 5;
    const C: usize = 4;

    struct LstmTape {
        g: Graph,
        inputs: Vec<Var>,
        params: Vec<Var>,
        loss: Var,

    }

    fn lstm_tape(x_pack: &Tensor, ps: &[&Tensor], labels: &[usize]) -> LstmTape {
        let mut g = Graph::new();
        let xv = g.input(x_pack.clone());
        let h0 = g.input(Tensor::zeros(&[B, H]));
        let c0 = g.input(Tensor::zeros(&[B, H]));
        let pv: Vec<Var> = ps.iter().map(|p| g.param((*p).clone())).collect();
        let (w_x, bias, w_h, w_o) = (pv[0], pv[1], pv[2], pv[3]);
        let seq = g.lstm_preact_seq(xv, w_x, bias);
        let (mut h, mut c) = (h0, c0);
        for step in 0..T {
            let pre = g.lstm_recur_step(seq, step, B, h, w_h);
            let (h2, c2) = g.lstm_cell(pre, c);
            h = h2;
            c = c2;
        }
        let logits = g.matmul(h, w_o);
        let loss = g.softmax_cross_entropy(logits, labels);
        LstmTape { g, inputs: vec![xv, h0, c0], params: pv, loss }
    }

    fn lstm_params(seed: u64) -> Vec<Tensor> {
        vec![
            t(seed, &[IN, 4 * H]),
            t(seed + 1, &[4 * H]),
            t(seed + 2, &[H, 4 * H]),
            t(seed + 3, &[H, C]),
        ]
    }

    #[test]
    fn lstm_chain_replay_matches_tape_bitwise() {
        let ps0 = lstm_params(31);
        let x0 = t(40, &[T * B, IN]);
        let lab0 = vec![1usize, 3];
        let tape = lstm_tape(&x0, &ps0.iter().collect::<Vec<_>>(), &lab0);
        let spec = CaptureSpec {
            inputs: &tape.inputs,
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture(&tape.g, &spec).expect("lstm capture");

        let ps1 = lstm_params(93);
        let x1 = t(41, &[T * B, IN]);
        let lab1 = vec![0usize, 2];
        let pr: Vec<&Tensor> = ps1.iter().collect();
        let zeros = Tensor::zeros(&[B, H]);
        let ins: Vec<&Tensor> = vec![&x1, &zeros, &zeros];
        plan.replay_step(&ins, &pr, &Feeds { labels: &[&lab1], ..Feeds::default() });

        let mut fresh = lstm_tape(&x1, &pr, &lab1);
        fresh.g.backward(fresh.loss);
        assert_bits(&[plan.loss()], fresh.g.value(fresh.loss).as_slice(), "lstm loss");
        for (k, &pvar) in fresh.params.iter().enumerate() {
            assert_bits(
                plan.param_grad(k).expect("grad present").as_slice(),
                fresh.g.grad(pvar).expect("tape grad").as_slice(),
                "lstm grad",
            );
        }
    }

    #[test]
    fn steady_state_replay_allocates_nothing() {
        let ps = lstm_params(55);
        let x = t(60, &[T * B, IN]);
        let lab = vec![2usize, 1];
        let tape = lstm_tape(&x, &ps.iter().collect::<Vec<_>>(), &lab);
        let spec = CaptureSpec {
            inputs: &tape.inputs,
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture(&tape.g, &spec).expect("capture");
        let pr: Vec<&Tensor> = ps.iter().collect();
        let zeros = Tensor::zeros(&[B, H]);
        let ins: Vec<&Tensor> = vec![&x, &zeros, &zeros];
        plan.replay_step(&ins, &pr, &Feeds::default()); // warm-up
        // The counters are process-wide, so tolerate unrelated test threads
        // by retrying: at least one quiet window must show zero allocations
        // attributable to the replay itself.
        let mut clean = false;
        for _ in 0..20 {
            let before = legw_tensor::pool::stats();
            plan.replay_step(&ins, &pr, &Feeds::default());
            let delta = legw_tensor::pool::stats().since(&before);
            if delta.allocations == 0 && delta.recycles == 0 {
                clean = true;
                break;
            }
        }
        assert!(clean, "steady-state replay touched the buffer pool");
    }

    // ---- conv / batch norm / pooling ------------------------------------

    struct ConvTape {
        g: Graph,
        x: Var,
        params: Vec<Var>,
        loss: Var,
        conv_out: Var,
    }

    fn conv_tape(x: &Tensor, ps: &[&Tensor], labels: &[usize]) -> ConvTape {
        let geom = Conv2dGeom { c: 3, h: 6, w: 6, kh: 3, kw: 3, stride: 1, pad: 1 };
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let pv: Vec<Var> = ps.iter().map(|p| g.param((*p).clone())).collect();
        let (w, gamma, beta, w_o) = (pv[0], pv[1], pv[2], pv[3]);
        let y = g.conv2d(xv, w, geom);
        let y2 = g.batch_norm(y, gamma, beta, 1e-5);
        let y3 = g.relu(y2);
        let y4 = g.max_pool_2x2(y3);
        let y5 = g.global_avg_pool(y4);
        let logits = g.matmul(y5, w_o);
        let loss = g.softmax_cross_entropy(logits, labels);
        ConvTape { g, x: xv, params: pv, loss, conv_out: y }
    }

    fn conv_params(seed: u64) -> Vec<Tensor> {
        vec![t(seed, &[4, 27]), t(seed + 1, &[4]), t(seed + 2, &[4]), t(seed + 3, &[4, 3])]
    }

    #[test]
    fn conv_bn_pool_replay_matches_tape_bitwise() {
        let ps0 = conv_params(71);
        let x0 = t(80, &[2, 3, 6, 6]);
        let lab0 = vec![0usize, 2];
        let tape = conv_tape(&x0, &ps0.iter().collect::<Vec<_>>(), &lab0);
        let spec = CaptureSpec {
            inputs: &[tape.x],
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture(&tape.g, &spec).expect("conv capture");
        assert_eq!(plan.num_batch_norms(), 1);

        let ps1 = conv_params(72);
        let x1 = t(81, &[2, 3, 6, 6]);
        let lab1 = vec![1usize, 0];
        let pr: Vec<&Tensor> = ps1.iter().collect();
        plan.replay_step(&[&x1], &pr, &Feeds { labels: &[&lab1], ..Feeds::default() });

        let mut fresh = conv_tape(&x1, &pr, &lab1);
        fresh.g.backward(fresh.loss);
        assert_bits(&[plan.loss()], fresh.g.value(fresh.loss).as_slice(), "conv loss");
        for (k, &pvar) in fresh.params.iter().enumerate() {
            assert_bits(
                plan.param_grad(k).expect("grad present").as_slice(),
                fresh.g.grad(pvar).expect("tape grad").as_slice(),
                "conv grad",
            );
        }
        // replayed batch statistics must equal the tape's
        let (mean, var) = plan.bn_batch_stats(0);
        let (tm, tv) = Graph::batch_norm_stats(fresh.g.value(tape_conv_out(&fresh)));
        assert_bits(mean, &tm, "bn mean");
        assert_bits(var, &tv, "bn var");
    }

    fn tape_conv_out(t: &ConvTape) -> Var {
        t.conv_out
    }

    // ---- mixed elementwise / embedding / reorder ops --------------------

    struct MixedTape {
        g: Graph,
        x2: Var,
        params: Vec<Var>,
        loss: Var,
    }

    fn mixed_tape(
        x2: &Tensor,
        table: &Tensor,
        sv: &Tensor,
        ids: &[usize],
        mask: &Tensor,
    ) -> MixedTape {
        let mut g = Graph::new();
        let x2v = g.input(x2.clone());
        let tv = g.param(table.clone());
        let svv = g.param(sv.clone());
        let e = g.embedding(tv, ids); // [4, 6]
        let a = g.slice_cols(e, 0, 3);
        let b = g.slice_cols(e, 3, 6);
        let m = g.mul(a, b);
        let s = g.sigmoid(m);
        let cc = g.concat_cols(&[s, b]); // [4, 6]
        let sm = g.softmax_rows(cc);
        let d = g.dropout(sm, mask.clone());
        let rs = g.row_scale(d, svv);
        let t1 = g.tanh(rs);
        let sc = g.scale(t1, 0.5);
        let as1 = g.add_scalar(sc, 0.25);
        let r1 = g.slice_rows(as1, 0, 2);
        let r2 = g.slice_rows(as1, 2, 4);
        let cr = g.concat_rows(&[r2, r1]); // [4, 6]
        let rsh = g.reshape(cr, &[2, 12]);
        let su = g.sub(rsh, x2v);
        let ad = g.add(su, su);
        let l1 = g.sum_all(ad);
        let l2 = g.mean_all(cr);
        let loss = g.add(l1, l2);
        MixedTape { g, x2: x2v, params: vec![tv, svv], loss }
    }

    #[test]
    fn mixed_ops_replay_matches_tape_bitwise() {
        let table0 = t(100, &[7, 6]);
        let sv0 = t(101, &[4, 1]);
        let x20 = t(102, &[2, 12]);
        let ids0 = vec![1usize, 4, 6, 0];
        let mask0 = t(103, &[4, 6]);
        let tape = mixed_tape(&x20, &table0, &sv0, &ids0, &mask0);
        let spec = CaptureSpec {
            inputs: &[tape.x2],
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut plan = Plan::capture(&tape.g, &spec).expect("mixed capture");

        let table1 = t(110, &[7, 6]);
        let sv1 = t(111, &[4, 1]);
        let x21 = t(112, &[2, 12]);
        let ids1 = vec![5usize, 2, 3, 6];
        let mask1 = t(113, &[4, 6]);
        plan.replay_forward(
            &[&x21],
            &[&table1, &sv1],
            &Feeds { ids: &[&ids1], masks: &[&mask1], ..Feeds::default() },
        );
        plan.replay_backward_loss(&[&x21], &[&table1, &sv1]);

        let mut fresh = mixed_tape(&x21, &table1, &sv1, &ids1, &mask1);
        fresh.g.backward(fresh.loss);
        assert_bits(&[plan.loss()], fresh.g.value(fresh.loss).as_slice(), "mixed loss");
        for (k, &pvar) in fresh.params.iter().enumerate() {
            assert_bits(
                plan.param_grad(k).expect("grad present").as_slice(),
                fresh.g.grad(pvar).expect("tape grad").as_slice(),
                "mixed grad",
            );
        }
    }

    // ---- plan optimizer (fusion / copy-prop / folds) ---------------------

    #[test]
    fn fused_lstm_replay_matches_unfused_bitwise() {
        // LSTM chain: exercises the LstmG direct rewrite and the
        // Gemm{Add}->GemmAcc fold (all inner dims here are single-k-block).
        let ps0 = lstm_params(141);
        let x0 = t(150, &[T * B, IN]);
        let lab0 = vec![1usize, 0];
        let tape = lstm_tape(&x0, &ps0.iter().collect::<Vec<_>>(), &lab0);
        let spec = CaptureSpec {
            inputs: &tape.inputs,
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut fused =
            with_fuse_override(true, || Plan::capture(&tape.g, &spec)).expect("fused capture");
        let mut plain =
            with_fuse_override(false, || Plan::capture(&tape.g, &spec)).expect("unfused capture");

        // fuse=0 must reproduce the raw emission exactly.
        let (fs, us) = (fused.stats(), plain.stats());
        assert_eq!(us.fwd_instrs, us.fwd_instrs_pre);
        assert_eq!(us.bwd_instrs, us.bwd_instrs_pre);
        assert_eq!(fs.fwd_instrs_pre, us.fwd_instrs);
        assert_eq!(fs.bwd_instrs_pre, us.bwd_instrs);
        // LstmG direct + GemmAcc folds drop every scratch consumer here.
        assert!(
            fs.scratch_bytes < us.scratch_bytes,
            "optimizer should shrink scratch: {} vs {}",
            fs.scratch_bytes,
            us.scratch_bytes
        );

        let ps1 = lstm_params(151);
        let x1 = t(152, &[T * B, IN]);
        let lab1 = vec![3usize, 2];
        let pr: Vec<&Tensor> = ps1.iter().collect();
        let zeros = Tensor::zeros(&[B, H]);
        let ins: Vec<&Tensor> = vec![&x1, &zeros, &zeros];
        let feeds = Feeds { labels: &[&lab1], ..Feeds::default() };
        fused.replay_step(&ins, &pr, &feeds);
        plain.replay_step(&ins, &pr, &feeds);
        assert_bits(&[fused.loss()], &[plain.loss()], "fused lstm loss");
        for k in 0..pr.len() {
            assert_bits(
                fused.param_grad(k).expect("fused grad").as_slice(),
                plain.param_grad(k).expect("plain grad").as_slice(),
                "fused lstm grad",
            );
        }
    }

    #[test]
    fn fused_mixed_replay_matches_unfused_with_fewer_instrs() {
        // Mixed tape: mul->sigmoid and row_scale->tanh and scale->add_scalar
        // chains exercise the FusedEw peephole; add_scalar's backward
        // ScaleG{c=1} exercises copy-prop.
        let table0 = t(200, &[7, 6]);
        let sv0 = t(201, &[4, 1]);
        let x20 = t(202, &[2, 12]);
        let ids0 = vec![2usize, 5, 0, 3];
        let mask0 = t(203, &[4, 6]);
        let tape = mixed_tape(&x20, &table0, &sv0, &ids0, &mask0);
        let spec = CaptureSpec {
            inputs: &[tape.x2],
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let mut fused =
            with_fuse_override(true, || Plan::capture(&tape.g, &spec)).expect("fused capture");
        let mut plain =
            with_fuse_override(false, || Plan::capture(&tape.g, &spec)).expect("unfused capture");
        let (fs, us) = (fused.stats(), plain.stats());
        assert!(
            fs.fwd_instrs + fs.bwd_instrs < us.fwd_instrs + us.bwd_instrs,
            "optimizer should remove instructions: fused {}+{} vs unfused {}+{}",
            fs.fwd_instrs,
            fs.bwd_instrs,
            us.fwd_instrs,
            us.bwd_instrs
        );
        assert!(fs.peak_live_bytes <= us.peak_live_bytes);

        let table1 = t(210, &[7, 6]);
        let sv1 = t(211, &[4, 1]);
        let x21 = t(212, &[2, 12]);
        let ids1 = vec![6usize, 1, 4, 2];
        let mask1 = t(213, &[4, 6]);
        let feeds = Feeds { ids: &[&ids1], masks: &[&mask1], ..Feeds::default() };
        for plan in [&mut fused, &mut plain] {
            plan.replay_forward(&[&x21], &[&table1, &sv1], &feeds);
            plan.replay_backward_loss(&[&x21], &[&table1, &sv1]);
        }
        assert_bits(&[fused.loss()], &[plain.loss()], "fused mixed loss");
        for k in 0..2 {
            assert_bits(
                fused.param_grad(k).expect("fused grad").as_slice(),
                plain.param_grad(k).expect("plain grad").as_slice(),
                "fused mixed grad",
            );
        }
    }

    // ---- seed mode ------------------------------------------------------

    #[test]
    fn seed_mode_matches_backward_seeded() {
        let w0 = t(120, &[5, 3]);
        let x0 = t(121, &[2, 5]);
        let build = |x: &Tensor, w: &Tensor| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.param(w.clone());
            let mm = g.matmul(xv, wv);
            let y = g.tanh(mm);
            (g, xv, wv, y)
        };
        let (g0, xv, wv, y) = build(&x0, &w0);
        let spec =
            CaptureSpec { inputs: &[xv], params: &[wv], loss: None, outputs: &[y] };
        let mut plan = Plan::capture(&g0, &spec).expect("seed capture");

        let w1 = t(130, &[5, 3]);
        let x1 = t(131, &[2, 5]);
        let seed = t(132, &[2, 3]);
        plan.replay_forward(&[&x1], &[&w1], &Feeds::default());
        plan.replay_backward(&[&x1], &[&w1], &[&seed]);

        let (mut gf, _, wvf, yf) = build(&x1, &w1);
        gf.backward_seeded(yf, seed.clone());
        assert_bits(
            plan.output(0).as_slice(),
            gf.value(yf).as_slice(),
            "seed-mode output",
        );
        assert_bits(
            plan.param_grad(0).unwrap().as_slice(),
            gf.grad(wvf).unwrap().as_slice(),
            "seed-mode grad",
        );
    }

    // ---- capture validation & stats -------------------------------------

    #[test]
    fn capture_rejects_unlisted_param_leaf() {
        let mut g = Graph::new();
        let w = g.param(t(1, &[2, 2]));
        let w2 = g.param(t(2, &[2, 2]));
        let s = g.mul(w, w2);
        let loss = g.sum_all(s);
        // w2 is a requires_grad leaf missing from params → refuse
        let spec = CaptureSpec { inputs: &[], params: &[w], loss: Some(loss), outputs: &[] };
        assert!(Plan::capture(&g, &spec).is_none());
        let spec_ok =
            CaptureSpec { inputs: &[], params: &[w, w2], loss: Some(loss), outputs: &[] };
        assert!(Plan::capture(&g, &spec_ok).is_some());
    }

    #[test]
    fn capture_rejects_bad_loss_and_outputs() {
        let mut g = Graph::new();
        let w = g.param(t(3, &[2, 2]));
        let y = g.tanh(w);
        let loss = g.sum_all(y);
        // non-scalar loss
        let bad = CaptureSpec { inputs: &[], params: &[w], loss: Some(y), outputs: &[] };
        assert!(Plan::capture(&g, &bad).is_none());
        // leaf as output
        let bad2 = CaptureSpec { inputs: &[], params: &[w], loss: Some(loss), outputs: &[w] };
        assert!(Plan::capture(&g, &bad2).is_none());
    }

    #[test]
    fn plan_stats_report_reuse() {
        let ps = lstm_params(140);
        let x = t(141, &[T * B, IN]);
        let lab = vec![0usize, 1];
        let tape = lstm_tape(&x, &ps.iter().collect::<Vec<_>>(), &lab);
        let spec = CaptureSpec {
            inputs: &tape.inputs,
            params: &tape.params,
            loss: Some(tape.loss),
            outputs: &[],
        };
        let plan = Plan::capture(&tape.g, &spec).expect("capture");
        let st = plan.stats();
        assert!(st.nodes > 0 && st.fwd_instrs > 0 && st.bwd_instrs > 0);
        assert!(st.arena_slots > 0);
        assert!(st.peak_live_bytes <= st.arena_bytes);
        assert!(st.arena_bytes > 0 && st.state_bytes > 0);
        // liveness must let at least one slot be reused on a T-step chain:
        // distinct intermediate values outnumber physical slots
        assert!(st.arena_slots < st.nodes);
    }

    #[test]
    fn unused_output_grad_is_zeroed_in_loss_mode() {
        // plan with both a loss and a differentiable side output: loss-mode
        // replay must not leak the side output's stale seed into the sweep
        let w0 = t(150, &[3, 3]);
        let build = |w: &Tensor| {
            let mut g = Graph::new();
            let wv = g.param(w.clone());
            let y = g.tanh(wv);
            let loss = g.sum_all(y);
            (g, wv, y, loss)
        };
        let (g0, wv, y, loss) = build(&w0);
        let spec =
            CaptureSpec { inputs: &[], params: &[wv], loss: Some(loss), outputs: &[y] };
        let mut plan = Plan::capture(&g0, &spec).expect("capture");
        // seed-mode replay first, to dirty the side output's grad slot
        plan.replay_forward(&[], &[&w0], &Feeds::default());
        plan.replay_backward(&[], &[&w0], &[&t(151, &[3, 3])]);
        // now a loss-mode replay must match a fresh tape exactly
        plan.replay_step(&[], &[&w0], &Feeds::default());
        let (mut gf, wvf, _, lossf) = build(&w0);
        gf.backward(lossf);
        assert_bits(
            plan.param_grad(0).unwrap().as_slice(),
            gf.grad(wvf).unwrap().as_slice(),
            "loss-mode after seed-mode",
        );
    }
}
