//! The tape: nodes, variables, and the reverse sweep.

use legw_tensor::{Conv2dGeom, Tensor};

/// A handle to a value on the tape. Cheap to copy; only valid for the
/// [`Graph`] that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// One recorded operation with its output value and cached backward data.
pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub requires_grad: bool,
    pub op: Op,
}

/// The differentiable operation set.
pub(crate) enum Op {
    /// A leaf: graph input or parameter (no parents).
    Leaf,
    /// Elementwise sum of two same-shaped tensors.
    Add(Var, Var),
    /// Elementwise difference of two same-shaped tensors.
    Sub(Var, Var),
    /// Hadamard product of two same-shaped tensors.
    Mul(Var, Var),
    /// `x [m,n] + b [n]`, broadcasting the bias over rows.
    AddBias(Var, Var),
    /// `out[b,·] = x[b,·] * s[b]` where `s` is `[m,1]` — row rescaling
    /// (used by attention context accumulation).
    RowScale(Var, Var),
    /// Matrix product of 2-D tensors.
    Matmul(Var, Var),
    /// Multiply by a constant scalar.
    Scale(Var, f32),
    /// Add a constant scalar (the constant is carried so a captured plan can
    /// re-execute the op; the backward never needs it).
    AddScalar(Var, f32),
    /// Logistic sigmoid (output cached in `value`).
    Sigmoid(Var),
    /// Hyperbolic tangent (output cached in `value`).
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// View with a different shape.
    Reshape(Var),
    /// Concatenate 2-D tensors along columns; widths cached.
    ConcatCols(Vec<Var>, Vec<usize>),
    /// Columns `[start, end)` of a 2-D tensor.
    SliceCols(Var, usize, usize),
    /// Concatenate 2-D tensors along rows; row counts cached. The
    /// sequence-hoisted LSTM path uses this to pack T per-step `[B, in]`
    /// inputs into one `[T·B, in]` block.
    ConcatRows(Vec<Var>, Vec<usize>),
    /// Rows `[start, end)` of a 2-D tensor — a row-slice *view* of a larger
    /// matrix (e.g. `W_x`/`W_h` halves of the fused LSTM kernel, which stay
    /// one `ParamId` with one checkpoint layout). Backward scatters into the
    /// full-size gradient.
    SliceRows(Var, usize, usize),
    /// Sum of all elements → `[1]`.
    SumAll(Var),
    /// Mean of all elements → `[1]`.
    MeanAll(Var),
    /// Dropout with a pre-sampled binary mask scaled by 1/keep.
    Dropout(Var, Tensor),
    /// Row lookup into an embedding table: `out[i,·] = table[ids[i],·]`.
    Embedding { table: Var, ids: Vec<usize> },
    /// Row-wise softmax of a 2-D tensor (output cached).
    SoftmaxRows(Var),
    /// Mean softmax cross-entropy between `logits [B,V]` and integer
    /// `labels` (entries equal to `IGNORE_INDEX` are masked out).
    /// Caches the probabilities and the count of active rows.
    SoftmaxCrossEntropy { logits: Var, labels: Vec<usize>, probs: Tensor, active: usize },
    /// 2-D convolution via im2col; caches the column matrix.
    Conv2d { x: Var, w: Var, geom: Conv2dGeom, batch: usize, cols: Tensor },
    /// 2×2 max pooling with stride 2; caches chosen input indices.
    MaxPool2x2 { x: Var, argmax: Vec<u32> },
    /// Global average pool `[N,C,H,W] → [N,C]`.
    GlobalAvgPool { x: Var, hw: usize },
    /// Per-channel batch normalisation over `(N,H,W)` with affine params.
    /// Caches `x_hat`, the per-channel `inv_std`, and the normalised count.
    /// `eps` is carried so a captured plan can re-derive `inv_std` from the
    /// replayed batch statistics; the tape backward uses the cached tensor.
    BatchNorm { x: Var, gamma: Var, beta: Var, x_hat: Tensor, inv_std: Tensor, eps: f32 },
    /// Fused LSTM cell — the `h'` output of the tape's first two-output op
    /// ([`Graph::lstm_cell`]). Carries the closed-form backward and its
    /// cached intermediates: the activated gates `[σ(i)|σ(f)|tanh(ĝ)|σ(o)]`
    /// and `tanh(c')`. `c_out` is the sibling `c'` node, pushed immediately
    /// before this one.
    LstmCell { preact: Var, c_prev: Var, gates: Tensor, tanh_c: Tensor, c_out: Var },
    /// Fused LSTM cell — the `c'` sibling output. `h_out` is the `h'` node
    /// (pushed immediately after); the shared backward rule runs when the
    /// sweep visits `h'`, so this node only acts if `h'` got no gradient.
    LstmCellC { h_out: Var },
    /// Sequence-hoisted LSTM input projection:
    /// `x_pack [T·B, in] · w_x [in, 4H] + bias [4H]` in ONE GEMM for the
    /// whole sequence. Backward is closed-form with one big GEMM each for
    /// `dW_x` and `dX_pack` (plus a column sum for the bias).
    LstmPreactSeq { x_pack: Var, w_x: Var, bias: Var },
    /// One timestep of the hoisted recurrence:
    /// `out = seq[t·B..(t+1)·B, ·] + h · w_h` — a row-block copy of the
    /// hoisted pre-activation block plus the small recurrent product,
    /// computed with the accumulate (beta=1) GEMM store. Backward scatters
    /// `dSeq` rows directly into the seq node's gradient slot.
    LstmRecurStep { seq: Var, h: Var, w_h: Var, t: usize, batch: usize },
}

/// Label value marking a position to exclude from the cross-entropy mean
/// (padding in seq2seq batches).
pub const IGNORE_INDEX: usize = usize::MAX;

/// A reverse-mode tape. Create one per forward pass, or keep one around
/// and [`Graph::reset`] it between passes so the node `Vec` allocation is
/// reused (real training tapes run to thousands of nodes).
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Leaves recorded via [`Graph::input`], in creation order — the
    /// positional input signature a captured [`crate::Plan`] replays
    /// against.
    pub(crate) inputs: Vec<Var>,
}

/// Initial node capacity: a PTB training tape records a few thousand nodes,
/// so starting at 1024 avoids most of the early regrowth copies.
const INITIAL_NODES: usize = 1024;

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(INITIAL_NODES), inputs: Vec::new() }
    }

    /// Clears the tape for reuse by the next forward pass, keeping the
    /// node `Vec`'s capacity (values/grads drop here, returning their
    /// buffers to the tensor pool).
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.inputs.clear();
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push(&mut self, value: Tensor, requires_grad: bool, op: Op) -> Var {
        self.nodes.push(Node { value, grad: None, requires_grad, op });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Records a constant input leaf (receives no gradient).
    pub fn input(&mut self, value: Tensor) -> Var {
        let v = self.push(value, false, Op::Leaf);
        self.inputs.push(v);
        v
    }

    /// Every [`Graph::input`] leaf in creation order. A plan captured with
    /// these as [`crate::CaptureSpec::inputs`] replays on fresh tensors
    /// supplied in the same order.
    pub fn input_vars(&self) -> &[Var] {
        &self.inputs
    }

    /// Records a parameter leaf (participates in backward).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.push(value, true, Op::Leaf)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if backward has reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Accumulates `delta` into the gradient slot of `v`.
    pub(crate) fn accumulate(&mut self, v: Var, delta: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        debug_assert_eq!(
            self.nodes[v.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch at node {}",
            v.0
        );
        match &mut self.nodes[v.0].grad {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs the reverse sweep from `loss` (which must be a 1-element tensor),
    /// seeding `dLoss/dLoss = 1`.
    ///
    /// # Panics
    /// If `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward() root must be a scalar, got {:?}",
            self.nodes[loss.0].value.shape()
        );
        self.backward_seeded(loss, Tensor::ones(self.nodes[loss.0].value.shape()));
    }

    /// Reverse sweep with an explicit seed gradient for `root` (used by the
    /// Hessian-vector estimator where the seed is not 1).
    pub fn backward_seeded(&mut self, root: Var, seed: Tensor) {
        if !self.nodes[root.0].requires_grad {
            return; // nothing on the tape depends on a parameter
        }
        self.accumulate(root, seed);
        for i in (0..=root.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            self.step_backward(Var(i));
        }
    }

    /// Dispatches one node's backward rule. Implemented across the op
    /// modules; this indirection keeps each rule next to its forward op.
    fn step_backward(&mut self, v: Var) {
        // Take the op out to appease the borrow checker; Leaf is put back.
        let upstream = self.nodes[v.0].grad.clone().expect("step_backward without grad");
        // SAFETY of logic: ops never reference later nodes, so mutating
        // earlier grads while iterating downward is sound.
        let op = std::mem::replace(&mut self.nodes[v.0].op, Op::Leaf);
        self.dispatch_backward(&op, v, &upstream);
        self.nodes[v.0].op = op;
    }

    /// Collects (var, gradient) pairs for all parameter leaves, in creation
    /// order. Leaves without gradients yield zero tensors.
    pub fn leaf_grads(&self) -> Vec<(Var, Tensor)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Leaf) && n.requires_grad)
            .map(|(i, n)| {
                let g = n.grad.clone().unwrap_or_else(|| n.value.zeros_like());
                (Var(i), g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_bookkeeping() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(&[2]));
        let b = g.param(Tensor::ones(&[2]));
        assert!(!g.requires(a));
        assert!(g.requires(b));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![2.0], &[1]));
        let y = g.add(x, x); // y = 2x ⇒ dy/dx = 2
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn inputs_get_no_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let w = g.param(Tensor::from_vec(vec![3.0], &[1]));
        let y = g.mul(x, w);
        g.backward(y);
        assert!(g.grad(x).is_none());
        assert_eq!(g.grad(w).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "must be a scalar")]
    fn backward_on_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[3]));
        g.backward(x);
    }

    #[test]
    fn backward_with_no_params_is_noop() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let s = g.sum_all(x);
        g.backward(s); // must not panic
        assert!(g.grad(s).is_none());
    }

    #[test]
    fn leaf_grads_lists_params_in_order() {
        let mut g = Graph::new();
        let w1 = g.param(Tensor::ones(&[2]));
        let _x = g.input(Tensor::ones(&[2]));
        let w2 = g.param(Tensor::ones(&[2]));
        let s1 = g.sum_all(w1);
        let s2 = g.sum_all(w2);
        let tot = g.add(s1, s2);
        g.backward(tot);
        let lg = g.leaf_grads();
        assert_eq!(lg.len(), 2);
        assert_eq!(lg[0].0, w1);
        assert_eq!(lg[1].0, w2);
        assert_eq!(lg[0].1.as_slice(), &[1.0, 1.0]);
    }
}
