//! Central-difference gradient checking.
//!
//! Used throughout the test suites of this crate, `legw-nn`, and
//! `legw-models` to validate every backward rule against numerical
//! differentiation.

use crate::graph::{Graph, Var};
use legw_tensor::Tensor;

/// Checks analytic gradients of `build` against central finite differences.
///
/// `build` receives a fresh [`Graph`] and one parameter [`Var`] per input
/// tensor, and must return a scalar loss variable. Panics with a descriptive
/// message if any partial derivative deviates beyond the mixed
/// absolute/relative tolerance.
///
/// Uses `eps = 1e-2` with f32 forward math and a tolerance calibrated for
/// well-conditioned losses; keep test inputs O(1).
pub fn grad_check<F>(inputs: &[Tensor], build: F)
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    grad_check_tol(inputs, 1e-2, 2e-2, build)
}

/// [`grad_check`] with explicit step size and tolerance.
pub fn grad_check_tol<F>(inputs: &[Tensor], eps: f32, tol: f32, build: F)
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    // analytic pass
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.param(t.clone())).collect();
    let loss = build(&mut g, &vars);
    assert_eq!(g.value(loss).numel(), 1, "grad_check loss must be scalar");
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|&v| g.grad(v).cloned().unwrap_or_else(|| g.value(v).zeros_like()))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.param(t.clone())).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).item() as f64
    };

    for (pi, input) in inputs.iter().enumerate() {
        for ei in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[pi].as_mut_slice()[ei] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[pi].as_mut_slice()[ei] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
            let got = analytic[pi].as_slice()[ei] as f64;
            let scale = 1.0 + numeric.abs().max(got.abs());
            assert!(
                (numeric - got).abs() <= tol as f64 * scale,
                "grad mismatch at input {pi} element {ei}: analytic {got:.6}, numeric {numeric:.6}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        grad_check(&[Tensor::from_vec(vec![0.4, -1.2, 0.9], &[3])], |g, vs| {
            let t = g.tanh(vs[0]);
            let s = g.mul(t, t);
            g.sum_all(s)
        });
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn rejects_wrong_gradient() {
        // Loss that the tape differentiates as if it were x·2 while the
        // value is x·3: forge by mixing value-level math into the build.
        grad_check(&[Tensor::from_vec(vec![1.0], &[1])], |g, vs| {
            // value path: 3x; recorded path: 2x (the extra x is smuggled in
            // via an input that shares the buffer but not the tape).
            let hidden = g.input(g.value(vs[0]).clone());
            let two_x = g.add(vs[0], vs[0]);
            g.add(two_x, hidden) // value 3x, grad path sees only 2
        });
    }
}
