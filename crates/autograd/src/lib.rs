//! # legw-autograd
//!
//! Reverse-mode automatic differentiation over [`legw_tensor::Tensor`].
//!
//! The design is a classic *tape*: a [`Graph`] records every operation of a
//! forward pass as a node holding its output value and the information its
//! backward rule needs. [`Graph::backward`] then walks the tape in reverse,
//! accumulating gradients. Because tensors are copy-on-write, recording
//! values on the tape costs O(1) per node.
//!
//! Variables are lightweight [`Var`] indices into the tape; parameters are
//! leaves created with [`Graph::param`] and are the only leaves that receive
//! gradients by default ([`Graph::input`] leaves do not).
//!
//! The op set is exactly what the LEGW paper's models need — LSTMs
//! (concat/slice/σ/tanh/hadamard), language-model heads (embedding, softmax
//! cross-entropy with optional ignore-index masking), attention (row softmax,
//! row scaling), and CNNs (conv2d via im2col, max/avg pooling, batch norm).
//!
//! Every op's backward rule is validated against central finite differences
//! in the test suite via [`check::grad_check`].
//!
//! ```
//! use legw_autograd::Graph;
//! use legw_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let w = g.param(Tensor::from_vec(vec![0.5, -0.5], &[2, 1]));
//! let y = g.matmul(x, w);          // y = 1*0.5 + 2*(-0.5) = -0.5
//! let loss = g.mean_all(y);
//! g.backward(loss);
//! let gw = g.grad(w).unwrap();
//! assert_eq!(gw.as_slice(), &[1.0, 2.0]); // dL/dw = x
//! ```

pub mod check;
mod graph;
mod ops_basic;
mod ops_conv;
mod ops_loss;
mod ops_lstm;
mod plan;

pub use graph::{Graph, Var, IGNORE_INDEX};
pub use plan::{with_fuse_override, CaptureSpec, Feeds, Plan, PlanStats};

#[cfg(test)]
mod lib_tests {
    use super::*;
    use legw_tensor::Tensor;

    #[test]
    fn doc_example() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let w = g.param(Tensor::from_vec(vec![0.5, -0.5], &[2, 1]));
        let y = g.matmul(x, w);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert_eq!(g.grad(w).unwrap().as_slice(), &[1.0, 2.0]);
    }
}
