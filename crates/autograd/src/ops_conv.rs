//! Convolutional ops: Conv2d (via im2col), 2×2 max pooling, global average
//! pooling, and training-mode batch normalisation.
//!
//! Feature maps are `[N, C, H, W]` row-major throughout.

use crate::graph::{Graph, Op, Var};
use legw_tensor::{col2im, im2col, Conv2dGeom, Tensor};

/// Permutes a channels-last matmul result `[N·OH·OW, OC]` into `[N,OC,OH,OW]`.
fn to_nchw(m: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
    let src = m.as_slice();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = ((ni * oh + y) * ow + x) * oc;
                for o in 0..oc {
                    out[((ni * oc + o) * oh + y) * ow + x] = src[row + o];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Inverse of [`to_nchw`]: `[N,OC,OH,OW]` → `[N·OH·OW, OC]`.
fn from_nchw(m: &Tensor) -> Tensor {
    let (n, oc, oh, ow) = (m.dim(0), m.dim(1), m.dim(2), m.dim(3));
    let src = m.as_slice();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for o in 0..oc {
            for y in 0..oh {
                for x in 0..ow {
                    out[((ni * oh + y) * ow + x) * oc + o] =
                        src[((ni * oc + o) * oh + y) * ow + x];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, oc])
}

impl Graph {
    /// 2-D convolution of `x [N,C,H,W]` with weight `w [OC, C·KH·KW]`,
    /// producing `[N, OC, OH, OW]`. Bias, if any, is added by the layer via
    /// a separate channel-affine step.
    pub fn conv2d(&mut self, x: Var, w: Var, geom: Conv2dGeom) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4, "conv2d input must be [N,C,H,W]");
        let n = xv.dim(0);
        let wv = self.value(w);
        assert_eq!(wv.dim(1), geom.c * geom.kh * geom.kw, "weight columns must be C·KH·KW");
        let oc = wv.dim(0);
        let cols = im2col(xv, &geom);
        let out2 = cols.matmul_t(wv); // [N·OH·OW, OC]
        let (oh, ow) = (geom.oh(), geom.ow());
        let v = to_nchw(&out2, n, oc, oh, ow);
        let rg = self.requires(x) || self.requires(w);
        self.push(v, rg, Op::Conv2d { x, w, geom, batch: n, cols })
    }

    /// 2×2 max pooling with stride 2 on `[N,C,H,W]` (H, W must be even).
    pub fn max_pool_2x2(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4);
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert!(h % 2 == 0 && w % 2 == 0, "max_pool_2x2 needs even H,W, got {h}x{w}");
        let (oh, ow) = (h / 2, w / 2);
        let src = xv.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0u32; n * c * oh * ow];
        for nc in 0..n * c {
            let base = nc * h * w;
            for y in 0..oh {
                for xx in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut bidx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = base + (2 * y + dy) * w + 2 * xx + dx;
                            if src[idx] > best {
                                best = src[idx];
                                bidx = idx;
                            }
                        }
                    }
                    let oidx = nc * oh * ow + y * ow + xx;
                    out[oidx] = best;
                    argmax[oidx] = bidx as u32;
                }
            }
        }
        let v = Tensor::from_vec(out, &[n, c, oh, ow]);
        let rg = self.requires(x);
        self.push(v, rg, Op::MaxPool2x2 { x, argmax })
    }

    /// Global average pooling `[N,C,H,W] → [N,C]`.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4);
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        let hw = h * w;
        let src = xv.as_slice();
        let mut out = Vec::with_capacity(n * c);
        for nc in 0..n * c {
            out.push(
                src[nc * hw..(nc + 1) * hw].iter().map(|&v| v as f64).sum::<f64>() as f32
                    / hw as f32,
            );
        }
        let v = Tensor::from_vec(out, &[n, c]);
        let rg = self.requires(x);
        self.push(v, rg, Op::GlobalAvgPool { x, hw })
    }

    /// Training-mode batch normalisation over `(N,H,W)` per channel with
    /// affine parameters `gamma [C]`, `beta [C]`.
    ///
    /// Returns the normalised tensor; also exposes the batch statistics via
    /// the return of [`Graph::batch_norm_stats`] for running-average updates.
    pub fn batch_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x).clone();
        assert_eq!(xv.ndim(), 4, "batch_norm input must be [N,C,H,W]");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert_eq!(self.value(gamma).shape(), &[c]);
        assert_eq!(self.value(beta).shape(), &[c]);
        let m = (n * h * w) as f64;
        let src = xv.as_slice();
        let hw = h * w;

        let mut mean = vec![0.0f64; c];
        let mut var = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for &v in &src[base..base + hw] {
                    mean[ci] += v as f64;
                }
            }
        }
        for mu in &mut mean {
            *mu /= m;
        }
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for &v in &src[base..base + hw] {
                    let d = v as f64 - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for va in &mut var {
            *va /= m;
        }

        let inv_std: Vec<f32> =
            var.iter().map(|&v| (1.0 / (v + eps as f64).sqrt()) as f32).collect();
        let gm = self.value(gamma).as_slice().to_vec();
        let bt = self.value(beta).as_slice().to_vec();

        let mut xh = vec![0.0f32; src.len()];
        let mut out = vec![0.0f32; src.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                let mu = mean[ci] as f32;
                let is = inv_std[ci];
                for k in 0..hw {
                    let xhat = (src[base + k] - mu) * is;
                    xh[base + k] = xhat;
                    out[base + k] = gm[ci] * xhat + bt[ci];
                }
            }
        }
        let x_hat = Tensor::from_vec(xh, xv.shape());
        let v = Tensor::from_vec(out, xv.shape());
        let rg = self.requires(x) || self.requires(gamma) || self.requires(beta);
        self.push(
            v,
            rg,
            Op::BatchNorm {
                x,
                gamma,
                beta,
                x_hat,
                inv_std: Tensor::from_vec(inv_std, &[c]),
                eps,
            },
        )
    }

    /// Per-channel batch mean and (biased) variance of `[N,C,H,W]` — what a
    /// layer needs to maintain running statistics for inference.
    pub fn batch_norm_stats(x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let hw = h * w;
        let m = (n * hw) as f64;
        let src = x.as_slice();
        let mut mean = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for &v in &src[base..base + hw] {
                    mean[ci] += v as f64;
                }
            }
        }
        for mu in &mut mean {
            *mu /= m;
        }
        let mut var = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for &v in &src[base..base + hw] {
                    let d = v as f64 - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for va in &mut var {
            *va /= m;
        }
        (
            mean.into_iter().map(|x| x as f32).collect(),
            var.into_iter().map(|x| x as f32).collect(),
        )
    }

    /// Inference-time channel affine `y[n,c,h,w] = x · scale[c] + shift[c]`
    /// with constant (non-learned) scale/shift — used by BatchNorm in eval
    /// mode with running statistics folded into `scale`/`shift`.
    pub fn channel_affine(&mut self, x: Var, scale: &[f32], shift: &[f32]) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4);
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert_eq!(scale.len(), c);
        assert_eq!(shift.len(), c);
        let hw = h * w;
        let shape = xv.shape().to_vec();
        let src = xv.as_slice();
        // Two tape nodes rather than one fused op: a Dropout (multiply by
        // the expanded scale mask) followed by an Add with a constant
        // shift leaf. Values and gradients are bit-identical to the fused
        // form (mul then add, separately rounded, as before) — but each
        // node now replays exactly under plan capture, where `DropoutF`
        // recomputes `x · mask` and would silently drop a fused `+ shift`.
        let mut scaled = vec![0.0f32; src.len()];
        let mut mask = vec![0.0f32; src.len()];
        let mut shift_full = vec![0.0f32; src.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for k in 0..hw {
                    scaled[base + k] = src[base + k] * scale[ci];
                }
                mask[base..base + hw].iter_mut().for_each(|v| *v = scale[ci]);
                shift_full[base..base + hw].iter_mut().for_each(|v| *v = shift[ci]);
            }
        }
        let rg = self.requires(x);
        let scaled = self.push(
            Tensor::from_vec(scaled, &shape),
            rg,
            Op::Dropout(x, Tensor::from_vec(mask, &shape)),
        );
        // Pushed directly (not via `Graph::input`) so the shift is captured
        // as a plan constant, not a positional replay input.
        let sh = self.push(Tensor::from_vec(shift_full, &shape), false, Op::Leaf);
        self.add(scaled, sh)
    }

    pub(crate) fn backward_conv(&mut self, op: &Op, _v: Var, up: &Tensor) {
        match op {
            Op::Conv2d { x, w, geom, batch, cols } => {
                let up2 = from_nchw(up); // [N·OH·OW, OC]
                if self.requires(*w) {
                    // dW = up2ᵀ · cols → [OC, CKK]
                    let dw = up2.t_matmul(cols);
                    self.accumulate(*w, dw);
                }
                if self.requires(*x) {
                    let dcols = up2.matmul(self.value(*w)); // [N·OH·OW, CKK]
                    let dx = col2im(&dcols, *batch, geom);
                    self.accumulate(*x, dx);
                }
            }
            Op::MaxPool2x2 { x, argmax } => {
                let xv = self.value(*x);
                let mut dx = vec![0.0f32; xv.numel()];
                let us = up.as_slice();
                for (o, &src_idx) in argmax.iter().enumerate() {
                    dx[src_idx as usize] += us[o];
                }
                self.accumulate(*x, Tensor::from_vec(dx, xv.shape()));
            }
            Op::GlobalAvgPool { x, hw } => {
                let xv = self.value(*x);
                let (n, c) = (xv.dim(0), xv.dim(1));
                let mut dx = vec![0.0f32; xv.numel()];
                let us = up.as_slice();
                let inv = 1.0 / *hw as f32;
                for nc in 0..n * c {
                    let g = us[nc] * inv;
                    dx[nc * hw..(nc + 1) * hw].iter_mut().for_each(|v| *v = g);
                }
                self.accumulate(*x, Tensor::from_vec(dx, xv.shape()));
            }
            Op::BatchNorm { x, gamma, beta, x_hat, inv_std, eps: _ } => {
                let xv = self.value(*x).clone();
                let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
                let hw = h * w;
                let m = (n * hw) as f32;
                let us = up.as_slice();
                let xh = x_hat.as_slice();
                let gm = self.value(*gamma).as_slice().to_vec();
                let is = inv_std.as_slice().to_vec();

                // per-channel sums
                let mut sum_up = vec![0.0f64; c];
                let mut sum_up_xh = vec![0.0f64; c];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for k in 0..hw {
                            sum_up[ci] += us[base + k] as f64;
                            sum_up_xh[ci] += (us[base + k] * xh[base + k]) as f64;
                        }
                    }
                }
                if self.requires(*gamma) {
                    let dg: Vec<f32> = sum_up_xh.iter().map(|&v| v as f32).collect();
                    self.accumulate(*gamma, Tensor::from_vec(dg, &[c]));
                }
                if self.requires(*beta) {
                    let db: Vec<f32> = sum_up.iter().map(|&v| v as f32).collect();
                    self.accumulate(*beta, Tensor::from_vec(db, &[c]));
                }
                if self.requires(*x) {
                    let mut dx = vec![0.0f32; xv.numel()];
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * hw;
                            let coef = gm[ci] * is[ci] / m;
                            let su = sum_up[ci] as f32;
                            let suxh = sum_up_xh[ci] as f32;
                            for k in 0..hw {
                                dx[base + k] =
                                    coef * (m * us[base + k] - su - xh[base + k] * suxh);
                            }
                        }
                    }
                    self.accumulate(*x, Tensor::from_vec(dx, xv.shape()));
                }
            }
            _ => unreachable!("backward_conv called with non-conv op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::grad_check;

    fn img(n: usize, c: usize, h: usize, w: usize, f: impl Fn(usize) -> f32) -> Tensor {
        Tensor::from_vec((0..n * c * h * w).map(f).collect(), &[n, c, h, w])
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input channel
        let mut g = Graph::new();
        let x = g.input(img(1, 1, 3, 3, |i| i as f32));
        let w = g.param(Tensor::ones(&[1, 1]));
        let geom = Conv2dGeom { c: 1, h: 3, w: 3, kh: 1, kw: 1, stride: 1, pad: 0 };
        let y = g.conv2d(x, w, geom);
        assert_eq!(g.value(y).shape(), &[1, 1, 3, 3]);
        assert_eq!(g.value(y).as_slice(), g.value(x).as_slice());
    }

    #[test]
    fn conv2d_grad_check() {
        let geom = Conv2dGeom { c: 2, h: 4, w: 4, kh: 3, kw: 3, stride: 1, pad: 1 };
        grad_check(
            &[
                img(2, 2, 4, 4, |i| ((i * 7 % 13) as f32) * 0.1 - 0.6),
                Tensor::from_vec((0..3 * 18).map(|i| ((i * 5 % 11) as f32) * 0.1 - 0.5).collect(), &[3, 18]),
            ],
            |g, vs| {
                let y = g.conv2d(vs[0], vs[1], geom);
                let t = g.tanh(y);
                g.mean_all(t)
            },
        );
    }

    #[test]
    fn conv2d_strided_grad_check() {
        let geom = Conv2dGeom { c: 1, h: 6, w: 6, kh: 3, kw: 3, stride: 2, pad: 1 };
        grad_check(
            &[
                img(1, 1, 6, 6, |i| ((i * 3 % 17) as f32) * 0.1 - 0.8),
                Tensor::from_vec((0..2 * 9).map(|i| ((i * 7 % 5) as f32) * 0.2 - 0.4).collect(), &[2, 9]),
            ],
            |g, vs| {
                let y = g.conv2d(vs[0], vs[1], geom);
                g.sum_all(y)
            },
        );
    }

    #[test]
    fn max_pool_forward_and_grad() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12., 13., 14., 15., 16.],
            &[1, 1, 4, 4],
        ));
        let p = g.max_pool_2x2(x);
        assert_eq!(g.value(p).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(p).as_slice(), &[6., 8., 14., 16.]);
        let s = g.sum_all(p);
        g.backward(s);
        let dx = g.grad(x).unwrap();
        // gradient lands only on the max positions
        assert_eq!(dx.as_slice()[5], 1.0);
        assert_eq!(dx.as_slice()[7], 1.0);
        assert_eq!(dx.as_slice()[0], 0.0);
    }

    #[test]
    fn max_pool_grad_check() {
        grad_check(&[img(1, 2, 4, 4, |i| ((i * 31 % 97) as f32) * 0.07 - 3.0)], |g, vs| {
            let p = g.max_pool_2x2(vs[0]);
            let t = g.tanh(p);
            g.sum_all(t)
        });
    }

    #[test]
    fn global_avg_pool_grad_check() {
        grad_check(&[img(2, 3, 2, 2, |i| (i as f32) * 0.3 - 1.0)], |g, vs| {
            let p = g.global_avg_pool(vs[0]);
            let sq = g.mul(p, p);
            g.sum_all(sq)
        });
    }

    #[test]
    fn batch_norm_normalises() {
        let mut g = Graph::new();
        let x = g.input(img(4, 2, 2, 2, |i| (i as f32) * 1.7 - 5.0));
        let gamma = g.param(Tensor::ones(&[2]));
        let beta = g.param(Tensor::zeros(&[2]));
        let y = g.batch_norm(x, gamma, beta, 1e-5);
        // per-channel mean ≈ 0, var ≈ 1
        let yv = g.value(y);
        let (mean, var) = Graph::batch_norm_stats(yv);
        for c in 0..2 {
            assert!(mean[c].abs() < 1e-4, "mean {}", mean[c]);
            assert!((var[c] - 1.0).abs() < 1e-3, "var {}", var[c]);
        }
    }

    #[test]
    fn batch_norm_grad_check() {
        grad_check(
            &[
                img(3, 2, 2, 2, |i| ((i * 13 % 7) as f32) * 0.4 - 1.0),
                Tensor::from_vec(vec![1.2, 0.8], &[2]),
                Tensor::from_vec(vec![-0.1, 0.3], &[2]),
            ],
            |g, vs| {
                let y = g.batch_norm(vs[0], vs[1], vs[2], 1e-5);
                let t = g.tanh(y);
                g.mean_all(t)
            },
        );
    }

    #[test]
    fn channel_affine_applies_running_stats() {
        let mut g = Graph::new();
        let x = g.param(img(1, 2, 2, 2, |i| i as f32));
        let y = g.channel_affine(x, &[2.0, 0.5], &[1.0, -1.0]);
        let yv = g.value(y);
        assert_eq!(yv.as_slice()[0], 0.0 * 2.0 + 1.0);
        assert_eq!(yv.as_slice()[4], 4.0 * 0.5 - 1.0);
        let s = g.sum_all(y);
        g.backward(s);
        let dx = g.grad(x).unwrap();
        assert_eq!(dx.as_slice()[0], 2.0);
        assert_eq!(dx.as_slice()[4], 0.5);
    }
}
