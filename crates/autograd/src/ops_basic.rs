//! Arithmetic, activation, shape, and reduction ops — forward constructors
//! and the backward dispatcher.

use crate::graph::{Graph, Op, Var};
use legw_tensor::Tensor;

impl Graph {
    // ------------------------------------------------------------ arithmetic

    /// Elementwise sum of two same-shaped variables.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "add shape mismatch");
        let v = self.value(a).add(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(v, rg, Op::Add(a, b))
    }

    /// Elementwise difference of two same-shaped variables.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub shape mismatch");
        let v = self.value(a).sub(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(v, rg, Op::Sub(a, b))
    }

    /// Hadamard product of two same-shaped variables.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul shape mismatch");
        let v = self.value(a).mul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(v, rg, Op::Mul(a, b))
    }

    /// `x [m,n] + bias [n]`, broadcast over rows.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        assert_eq!(self.value(x).ndim(), 2, "add_bias x must be 2-D");
        assert_eq!(
            self.value(bias).shape(),
            &[self.value(x).dim(1)],
            "bias must be [cols] of x"
        );
        let v = self.value(x).add(self.value(bias));
        let rg = self.requires(x) || self.requires(bias);
        self.push(v, rg, Op::AddBias(x, bias))
    }

    /// Scales each row of `x [m,n]` by the scalar in `s [m,1]`.
    pub fn row_scale(&mut self, x: Var, s: Var) -> Var {
        let (m, _n) = (self.value(x).dim(0), self.value(x).dim(1));
        assert_eq!(self.value(s).shape(), &[m, 1], "row_scale scale must be [m,1]");
        let v = self.value(x).mul(self.value(s));
        let rg = self.requires(x) || self.requires(s);
        self.push(v, rg, Op::RowScale(x, s))
    }

    /// Matrix product of 2-D variables.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(v, rg, Op::Matmul(a, b))
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        let rg = self.requires(a);
        self.push(v, rg, Op::Scale(a, c))
    }

    /// Adds a constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).add_scalar(c);
        let rg = self.requires(a);
        self.push(v, rg, Op::AddScalar(a, c))
    }

    // ----------------------------------------------------------- activations

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).sigmoid();
        let rg = self.requires(a);
        self.push(v, rg, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh();
        let rg = self.requires(a);
        self.push(v, rg, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).relu();
        let rg = self.requires(a);
        self.push(v, rg, Op::Relu(a))
    }

    // ----------------------------------------------------------------- shape

    /// Reinterprets under a new shape.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let v = self.value(a).reshape(dims);
        let rg = self.requires(a);
        self.push(v, rg, Op::Reshape(a))
    }

    /// Concatenates 2-D variables along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let widths: Vec<usize> = tensors.iter().map(|t| t.dim(1)).collect();
        let v = Tensor::concat_cols(&tensors);
        let rg = parts.iter().any(|&p| self.requires(p));
        self.push(v, rg, Op::ConcatCols(parts.to_vec(), widths))
    }

    /// Extracts columns `[start, end)` of a 2-D variable.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.value(a).slice_cols(start, end);
        let rg = self.requires(a);
        self.push(v, rg, Op::SliceCols(a, start, end))
    }

    /// Concatenates 2-D variables along rows (equal column counts). The
    /// hoisted LSTM path packs T per-step `[B, n]` inputs into one
    /// `[T·B, n]` block with this.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let cols = tensors[0].dim(1);
        let row_counts: Vec<usize> = tensors
            .iter()
            .map(|t| {
                assert_eq!(t.ndim(), 2, "concat_rows expects 2-D parts");
                assert_eq!(t.dim(1), cols, "concat_rows column mismatch");
                t.dim(0)
            })
            .collect();
        let v = Tensor::concat_outer(&tensors);
        let rg = parts.iter().any(|&p| self.requires(p));
        self.push(v, rg, Op::ConcatRows(parts.to_vec(), row_counts))
    }

    /// Extracts rows `[start, end)` of a 2-D variable (e.g. the `W_x` or
    /// `W_h` half of the fused `[(in+hid), 4H]` LSTM kernel).
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.value(a).rows(start, end);
        let rg = self.requires(a);
        self.push(v, rg, Op::SliceRows(a, start, end))
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements → scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let rg = self.requires(a);
        self.push(v, rg, Op::SumAll(a))
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        let rg = self.requires(a);
        self.push(v, rg, Op::MeanAll(a))
    }

    // --------------------------------------------------------- regularisation

    /// Inverted dropout with keep probability `keep`: multiplies by a
    /// pre-sampled mask of `{0, 1/keep}` entries supplied by the caller
    /// (layers sample it from their RNG so the tape stays deterministic).
    pub fn dropout(&mut self, a: Var, mask: Tensor) -> Var {
        assert_eq!(self.value(a).shape(), mask.shape(), "dropout mask shape mismatch");
        let v = self.value(a).mul(&mask);
        let rg = self.requires(a);
        self.push(v, rg, Op::Dropout(a, mask))
    }

    // -------------------------------------------------------------- backward

    /// One backward rule, dispatched by op kind. `up` is the upstream
    /// gradient flowing into node `v`.
    pub(crate) fn dispatch_backward(&mut self, op: &Op, v: Var, up: &Tensor) {
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(*a, up.clone());
                self.accumulate(*b, up.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(*a, up.clone());
                self.accumulate(*b, up.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = up.mul(self.value(*b));
                let db = up.mul(self.value(*a));
                self.accumulate(*a, da);
                self.accumulate(*b, db);
            }
            Op::AddBias(x, bias) => {
                self.accumulate(*x, up.clone());
                self.accumulate(*bias, up.sum_axis(0));
            }
            Op::RowScale(x, s) => {
                let sv = self.value(*s).clone();
                let xv = self.value(*x).clone();
                let dx = up.mul(&sv); // broadcast [m,1]
                let ds = up.mul(&xv).sum_axis(1).reshape(&[xv.dim(0), 1]);
                self.accumulate(*x, dx);
                self.accumulate(*s, ds);
            }
            Op::Matmul(a, b) => {
                // dA = up · Bᵀ, dB = Aᵀ · up
                let da = up.matmul_t(self.value(*b));
                let db = self.value(*a).t_matmul(up);
                self.accumulate(*a, da);
                self.accumulate(*b, db);
            }
            Op::Scale(a, c) => self.accumulate(*a, up.scale(*c)),
            Op::AddScalar(a, _) => self.accumulate(*a, up.clone()),
            Op::Sigmoid(a) => {
                let y = &self.nodes[v.0].value;
                let d = y.map(|p| p * (1.0 - p)).mul(up);
                self.accumulate(*a, d);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[v.0].value;
                let d = y.map(|t| 1.0 - t * t).mul(up);
                self.accumulate(*a, d);
            }
            Op::Relu(a) => {
                let x = self.value(*a);
                let d = x.map(|t| if t > 0.0 { 1.0 } else { 0.0 }).mul(up);
                self.accumulate(*a, d);
            }
            Op::Reshape(a) => {
                let target = self.value(*a).shape().to_vec();
                self.accumulate(*a, up.reshape(&target));
            }
            Op::ConcatCols(parts, widths) => {
                let mut off = 0;
                let parts = parts.clone();
                let widths = widths.clone();
                for (p, w) in parts.iter().zip(widths.iter()) {
                    let piece = up.slice_cols(off, off + w);
                    self.accumulate(*p, piece);
                    off += w;
                }
            }
            Op::SliceCols(a, start, end) => {
                let xv = self.value(*a);
                let (m, n) = (xv.dim(0), xv.dim(1));
                let (start, end) = (*start, *end);
                let mut dx = vec![0.0f32; m * n];
                let us = up.as_slice();
                let w = end - start;
                for r in 0..m {
                    dx[r * n + start..r * n + end].copy_from_slice(&us[r * w..(r + 1) * w]);
                }
                self.accumulate(*a, Tensor::from_vec(dx, &[m, n]));
            }
            Op::ConcatRows(parts, row_counts) => {
                let mut off = 0;
                let parts = parts.clone();
                let row_counts = row_counts.clone();
                for (p, rc) in parts.iter().zip(row_counts.iter()) {
                    let piece = up.rows(off, off + rc);
                    self.accumulate(*p, piece);
                    off += rc;
                }
            }
            Op::SliceRows(a, start, end) => {
                let xv = self.value(*a);
                let (m, n) = (xv.dim(0), xv.dim(1));
                let (start, end) = (*start, *end);
                let mut dx = vec![0.0f32; m * n];
                dx[start * n..end * n].copy_from_slice(up.as_slice());
                self.accumulate(*a, Tensor::from_vec(dx, &[m, n]));
            }
            Op::SumAll(a) => {
                let g = Tensor::full(self.value(*a).shape(), up.item());
                self.accumulate(*a, g);
            }
            Op::MeanAll(a) => {
                let n = self.value(*a).numel() as f32;
                let g = Tensor::full(self.value(*a).shape(), up.item() / n);
                self.accumulate(*a, g);
            }
            Op::Dropout(a, mask) => {
                self.accumulate(*a, up.mul(mask));
            }
            Op::Embedding { .. }
            | Op::SoftmaxRows(_)
            | Op::SoftmaxCrossEntropy { .. } => self.backward_loss(op, v, up),
            Op::Conv2d { .. }
            | Op::MaxPool2x2 { .. }
            | Op::GlobalAvgPool { .. }
            | Op::BatchNorm { .. } => self.backward_conv(op, v, up),
            Op::LstmCell { .. }
            | Op::LstmCellC { .. }
            | Op::LstmPreactSeq { .. }
            | Op::LstmRecurStep { .. } => self.backward_lstm(op, v, up),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::grad_check;

    #[test]
    fn add_sub_mul_grads() {
        grad_check(
            &[Tensor::from_vec(vec![1., -2., 3.], &[3]), Tensor::from_vec(vec![0.5, 2., -1.], &[3])],
            |g, vs| {
                let s = g.add(vs[0], vs[1]);
                let d = g.sub(s, vs[1]);
                let m = g.mul(d, vs[1]);
                g.sum_all(m)
            },
        );
    }

    #[test]
    fn matmul_grads() {
        grad_check(
            &[
                Tensor::from_vec((0..6).map(|i| 0.3 * i as f32 - 1.0).collect(), &[2, 3]),
                Tensor::from_vec((0..12).map(|i| 0.1 * i as f32 - 0.5).collect(), &[3, 4]),
            ],
            |g, vs| {
                let y = g.matmul(vs[0], vs[1]);
                g.sum_all(y)
            },
        );
    }

    #[test]
    fn add_bias_grads() {
        grad_check(
            &[
                Tensor::from_vec((0..6).map(|i| i as f32 * 0.2).collect(), &[2, 3]),
                Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]),
            ],
            |g, vs| {
                let y = g.add_bias(vs[0], vs[1]);
                let t = g.tanh(y);
                g.mean_all(t)
            },
        );
    }

    #[test]
    fn row_scale_grads() {
        grad_check(
            &[
                Tensor::from_vec((0..6).map(|i| i as f32 * 0.3 - 1.0).collect(), &[2, 3]),
                Tensor::from_vec(vec![0.7, -1.2], &[2, 1]),
            ],
            |g, vs| {
                let y = g.row_scale(vs[0], vs[1]);
                g.sum_all(y)
            },
        );
    }

    #[test]
    fn activation_grads() {
        let x = Tensor::from_vec(vec![-1.5, -0.2, 0.0, 0.3, 2.0, -3.0], &[2, 3]);
        grad_check(&[x.clone()], |g, vs| {
            let s = g.sigmoid(vs[0]);
            g.sum_all(s)
        });
        grad_check(&[x.clone()], |g, vs| {
            let t = g.tanh(vs[0]);
            g.sum_all(t)
        });
        // relu is non-differentiable at 0; avoid exact zeros
        let xr = Tensor::from_vec(vec![-1.5, -0.2, 0.1, 0.3, 2.0, -3.0], &[2, 3]);
        grad_check(&[xr], |g, vs| {
            let r = g.relu(vs[0]);
            g.sum_all(r)
        });
    }

    #[test]
    fn concat_slice_grads() {
        grad_check(
            &[
                Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]),
                Tensor::from_vec(vec![5., 6., 7., 8., 9., 10.], &[2, 3]),
            ],
            |g, vs| {
                let cat = g.concat_cols(&[vs[0], vs[1]]);
                let sl = g.slice_cols(cat, 1, 4);
                let sq = g.mul(sl, sl);
                g.sum_all(sq)
            },
        );
    }

    #[test]
    fn concat_rows_slice_rows_grads() {
        grad_check(
            &[
                Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]),
                Tensor::from_vec(vec![7., 8., 9.], &[1, 3]),
                Tensor::from_vec(vec![-1., 0.5, 2., 1., -2., 0.25], &[2, 3]),
            ],
            |g, vs| {
                let cat = g.concat_rows(&[vs[0], vs[1], vs[2]]);
                let sl = g.slice_rows(cat, 1, 4);
                let sq = g.mul(sl, sl);
                g.sum_all(sq)
            },
        );
    }

    #[test]
    fn concat_rows_matches_values_and_scatter() {
        // Forward packs rows in order; backward routes each part its rows.
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]));
        let b = g.param(Tensor::from_vec(vec![5., 6.], &[1, 2]));
        let cat = g.concat_rows(&[a, b]);
        assert_eq!(g.value(cat).shape(), &[3, 2]);
        assert_eq!(g.value(cat).as_slice(), &[1., 2., 3., 4., 5., 6.]);
        // Loss = sum of the last row only: a gets zero grad, b gets ones.
        let tail = g.slice_rows(cat, 2, 3);
        let s = g.sum_all(tail);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0., 0., 0., 0.]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1., 1.]);
    }

    #[test]
    fn reshape_and_scale_grads() {
        grad_check(&[Tensor::from_vec((0..8).map(|i| i as f32 * 0.25).collect(), &[2, 4])], |g, vs| {
            let r = g.reshape(vs[0], &[4, 2]);
            let s = g.scale(r, 3.0);
            let a = g.add_scalar(s, -1.0);
            g.mean_all(a)
        });
    }

    #[test]
    fn dropout_backward_uses_mask() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]));
        let mask = Tensor::from_vec(vec![2., 0., 2., 0.], &[2, 2]); // keep=0.5
        let d = g.dropout(x, mask);
        let s = g.sum_all(d);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2., 0., 2., 0.]);
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // y = x*x + x ⇒ dy/dx = 2x + 1
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![3.0], &[1]));
        let sq = g.mul(x, x);
        let y = g.add(sq, x);
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[7.0]);
    }
}
