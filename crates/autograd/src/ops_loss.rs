//! Embedding lookup, row softmax, and softmax cross-entropy (with
//! ignore-index masking for padded sequence batches).

use crate::graph::{Graph, Op, Var, IGNORE_INDEX};
use legw_tensor::Tensor;

impl Graph {
    /// Looks up rows of an embedding table: `out[i,·] = table[ids[i],·]`.
    pub fn embedding(&mut self, table: Var, ids: &[usize]) -> Var {
        let t = self.value(table);
        assert_eq!(t.ndim(), 2, "embedding table must be 2-D");
        let (vocab, dim) = (t.dim(0), t.dim(1));
        let src = t.as_slice();
        let mut out = Vec::with_capacity(ids.len() * dim);
        for &id in ids {
            assert!(id < vocab, "embedding id {id} out of vocab {vocab}");
            out.extend_from_slice(&src[id * dim..(id + 1) * dim]);
        }
        let v = Tensor::from_vec(out, &[ids.len(), dim]);
        let rg = self.requires(table);
        self.push(v, rg, Op::Embedding { table, ids: ids.to_vec() })
    }

    /// Row-wise softmax (used for attention weights).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        let rg = self.requires(a);
        self.push(v, rg, Op::SoftmaxRows(a))
    }

    /// Mean softmax cross-entropy of `logits [B,V]` against integer labels.
    ///
    /// Rows whose label equals [`Graph::ignore_index`] contribute neither to
    /// the mean nor to the gradient — used to mask padding in seq2seq
    /// batches. Returns a scalar. If every row is masked the loss is 0.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.ndim(), 2, "logits must be [B,V]");
        let (b, vsz) = (lv.dim(0), lv.dim(1));
        assert_eq!(labels.len(), b, "one label per logit row");
        let probs = lv.softmax_rows();
        let p = probs.as_slice();
        let mut total = 0.0f64;
        let mut active = 0usize;
        for (i, &y) in labels.iter().enumerate() {
            if y == IGNORE_INDEX {
                continue;
            }
            assert!(y < vsz, "label {y} out of vocab {vsz}");
            // clamp avoids -inf on underflowed probabilities
            total -= (p[i * vsz + y].max(1e-30) as f64).ln();
            active += 1;
        }
        let mean = if active == 0 { 0.0 } else { (total / active as f64) as f32 };
        let rg = self.requires(logits);
        self.push(
            Tensor::scalar(mean),
            rg,
            Op::SoftmaxCrossEntropy { logits, labels: labels.to_vec(), probs, active },
        )
    }

    /// The sentinel label excluded from [`Graph::softmax_cross_entropy`].
    pub fn ignore_index() -> usize {
        IGNORE_INDEX
    }

    pub(crate) fn backward_loss(&mut self, op: &Op, v: Var, up: &Tensor) {
        match op {
            Op::Embedding { table, ids } => {
                let t = self.value(*table);
                let (vocab, dim) = (t.dim(0), t.dim(1));
                let mut dt = vec![0.0f32; vocab * dim];
                let us = up.as_slice();
                for (i, &id) in ids.iter().enumerate() {
                    let dst = &mut dt[id * dim..(id + 1) * dim];
                    let src = &us[i * dim..(i + 1) * dim];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                self.accumulate(*table, Tensor::from_vec(dt, &[vocab, dim]));
            }
            Op::SoftmaxRows(a) => {
                // dx_ij = y_ij (up_ij − Σ_k up_ik y_ik)
                let y = self.nodes[v.0].value.clone();
                let (m, n) = (y.dim(0), y.dim(1));
                let ys = y.as_slice();
                let us = up.as_slice();
                let mut dx = vec![0.0f32; m * n];
                for i in 0..m {
                    let row = i * n..(i + 1) * n;
                    let dot: f32 = ys[row.clone()]
                        .iter()
                        .zip(&us[row.clone()])
                        .map(|(a, b)| a * b)
                        .sum();
                    for j in 0..n {
                        dx[i * n + j] = ys[i * n + j] * (us[i * n + j] - dot);
                    }
                }
                self.accumulate(*a, Tensor::from_vec(dx, &[m, n]));
            }
            Op::SoftmaxCrossEntropy { logits, labels, probs, active } => {
                if *active == 0 {
                    return;
                }
                let seed = up.item() / *active as f32;
                let (b, vsz) = (probs.dim(0), probs.dim(1));
                let mut dl = vec![0.0f32; b * vsz];
                let p = probs.as_slice();
                for (i, &y) in labels.iter().enumerate() {
                    if y == IGNORE_INDEX {
                        continue;
                    }
                    for j in 0..vsz {
                        let indicator = if j == y { 1.0 } else { 0.0 };
                        dl[i * vsz + j] = seed * (p[i * vsz + j] - indicator);
                    }
                }
                self.accumulate(*logits, Tensor::from_vec(dl, &[b, vsz]));
            }
            _ => unreachable!("backward_loss called with non-loss op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::grad_check;

    #[test]
    fn embedding_forward_picks_rows() {
        let mut g = Graph::new();
        let table = g.param(Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]));
        let e = g.embedding(table, &[2, 0, 2]);
        assert_eq!(g.value(e).shape(), &[3, 3]);
        assert_eq!(g.value(e).as_slice(), &[6., 7., 8., 0., 1., 2., 6., 7., 8.]);
    }

    #[test]
    fn embedding_backward_accumulates_repeats() {
        let mut g = Graph::new();
        let table = g.param(Tensor::zeros(&[3, 2]));
        let e = g.embedding(table, &[1, 1, 0]);
        let s = g.sum_all(e);
        g.backward(s);
        // row 1 hit twice, row 0 once, row 2 never
        assert_eq!(g.grad(table).unwrap().as_slice(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    fn embedding_grad_check() {
        grad_check(&[Tensor::from_vec((0..8).map(|x| x as f32 * 0.1).collect(), &[4, 2])], |g, vs| {
            let e = g.embedding(vs[0], &[3, 1, 1, 0]);
            let t = g.tanh(e);
            g.mean_all(t)
        });
    }

    #[test]
    fn softmax_rows_grad_check() {
        grad_check(
            &[Tensor::from_vec(vec![0.1, 1.2, -0.4, 0.9, -1.0, 0.0], &[2, 3])],
            |g, vs| {
                let s = g.softmax_rows(vs[0]);
                let sq = g.mul(s, s); // non-trivial downstream
                g.sum_all(sq)
            },
        );
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.param(Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], &[2, 3]));
        let loss = g.softmax_cross_entropy(logits, &[0, 1]);
        // row losses: -ln(e^2/(e^2+2)), -ln(e^3/(e^3+2))
        let l0 = -((2f64.exp()) / (2f64.exp() + 2.0)).ln();
        let l1 = -((3f64.exp()) / (3f64.exp() + 2.0)).ln();
        let expect = ((l0 + l1) / 2.0) as f32;
        assert!((g.value(loss).item() - expect).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_check() {
        grad_check(
            &[Tensor::from_vec(vec![0.5, -0.3, 0.8, 1.2, 0.1, -0.7], &[2, 3])],
            |g, vs| g.softmax_cross_entropy(vs[0], &[2, 0]),
        );
    }

    #[test]
    fn cross_entropy_ignore_index_masks_rows() {
        let mut g = Graph::new();
        let logits = g.param(Tensor::from_vec(vec![2.0, 0.0, 7.0, -3.0], &[2, 2]));
        let loss = g.softmax_cross_entropy(logits, &[0, IGNORE_INDEX]);
        g.backward(loss);
        let grad = g.grad(logits).unwrap();
        // masked row contributes nothing
        assert_eq!(grad.as_slice()[2], 0.0);
        assert_eq!(grad.as_slice()[3], 0.0);
        // unmasked row has the usual p - 1 / p structure
        assert!(grad.as_slice()[0] < 0.0);
        assert!(grad.as_slice()[1] > 0.0);
        // loss equals the single active row's loss
        let expect = -(2f32.exp() / (2f32.exp() + 1.0)).ln();
        assert!((g.value(loss).item() - expect).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_all_masked_is_zero() {
        let mut g = Graph::new();
        let logits = g.param(Tensor::ones(&[2, 3]));
        let loss = g.softmax_cross_entropy(logits, &[IGNORE_INDEX, IGNORE_INDEX]);
        g.backward(loss);
        assert_eq!(g.value(loss).item(), 0.0);
        // gradient never materialises (node untouched) or is zero
        if let Some(gr) = g.grad(logits) {
            assert!(gr.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn cross_entropy_bad_label_panics() {
        let mut g = Graph::new();
        let logits = g.param(Tensor::ones(&[1, 3]));
        g.softmax_cross_entropy(logits, &[3]);
    }

    #[test]
    fn masked_ce_grad_check() {
        grad_check(
            &[Tensor::from_vec(vec![0.5, -0.3, 0.8, 1.2, 0.1, -0.7, 0.2, 0.9, -1.1], &[3, 3])],
            |g, vs| g.softmax_cross_entropy(vs[0], &[2, IGNORE_INDEX, 1]),
        );
    }
}
