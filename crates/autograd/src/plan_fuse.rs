//! Plan optimizer: peephole rewrites over a captured schedule.
//!
//! Runs inside [`Capturer::run`](super::Plan::capture) after instruction
//! emission and *before* liveness/slot assignment, so every rewrite works on
//! virtual slot ids (value of node `i` = slot `i`, gradient = slot `n + i`)
//! and the arena simply shrinks around whatever the passes delete.
//!
//! Every rewrite here must keep replay **bitwise identical** to the
//! unoptimized schedule (and therefore to the tape). The passes:
//!
//! 1. **Gradient copy propagation** — `ScaleG { c: 1.0, mode: Store }` is the
//!    tape's plain gradient copy. When the copy's destination has exactly one
//!    writer and all its readers come later in the backward list, readers are
//!    rewritten to the copy's source and the copy is deleted. `x * 1.0`
//!    reproduces `x` bit for bit (signs, infinities and quiet NaNs included),
//!    so dropping the multiply cannot change anything downstream.
//! 2. **Elementwise fusion** — a chain of same-length elementwise
//!    instructions where each intermediate is produced once and consumed once
//!    collapses into a single [`Instr::FusedEw`] evaluating the composed
//!    per-element expression in one sweep. Each stage applies the *same
//!    scalar expression* as the instruction it replaces, in the same order,
//!    so every f32 rounding step is preserved; the only thing that
//!    disappears is the round-trip of the intermediate through memory.
//! 3. **GEMM accumulate folding** — `Gemm { mode: Add }` normally detours
//!    through scratch because in-engine accumulation across k-blocks would
//!    reassociate partial sums. When the inner dimension fits a single
//!    k-block ([`legw_tensor::gemm_single_k_block`]) the engine adds the
//!    identical micro-tile product with exactly one `+=` per element, so the
//!    detour (and its scratch) is dropped in favour of [`Instr::GemmAcc`].
//! 4. **Direct LSTM backward** — when both `LstmG` destinations are
//!    `Mode::Store`, `lstm_cell_backward_into` can write them in place
//!    instead of bouncing through scratch. Safe on physical slots because
//!    the allocator assigns births before deaths at each schedule position:
//!    a destination born at the `LstmG` never shares a slot with an operand
//!    still live there, and the two destinations (both born there) get
//!    distinct slots.
//!
//! What refuses to fuse (and why): reductions (`ColSumG`, `SumAllG`, …)
//! change element count; `Mode::Add` producers fold an accumulation into the
//! intermediate, so the chain is not a pure per-element function of the lead
//! operand; `SigmoidG`/`TanhG`/`ReluG` only chain through their `up` operand
//! (the saved activation is an independent input, not part of the chain);
//! anything whose single consumer lives in the *other* list stays put —
//! gradient seeding runs between the forward and backward sweeps, so a value
//! computed in the forward list must be materialized before it.

use super::{kind_name, Dst, EwKind, FusedStage, Instr, Loc, Mode, UnKind};

/// Hard cap on stages per [`Instr::FusedEw`]; chains longer than this keep
/// their tail unfused. Keeps operand-resolution overhead bounded.
const MAX_STAGES: usize = 16;

// -------------------------------------------------------------- visitors
//
// Conservative read/write visitors over *locations* (not just slots, unlike
// `visit_slots`): `for_each_read` also reports a destination whose prior
// contents the instruction observes (any `Mode::Add` target, partial writes
// like `CopyBlock`). Over-reporting a read or write only makes the passes
// skip an opportunity; under-reporting would corrupt replays, so every arm
// errs on the side of "touches it".

fn dst_read(d: Dst, f: &mut dyn FnMut(Loc)) {
    match d {
        Dst::Slot(i) => f(Loc::Slot(i)),
        Dst::Out(i) => f(Loc::Out(i)),
        // Parameter gradients are replay outputs — no instruction reads them.
        Dst::ParGrad(_) => {}
    }
}

fn opt_dst_read(d: &Option<(Dst, Mode)>, f: &mut dyn FnMut(Loc)) {
    if let Some((d, Mode::Add)) = d {
        dst_read(*d, f);
    }
}

/// Operand a [`FusedStage`] reads besides the flowing value, if any.
pub(super) fn stage_operand(s: &FusedStage) -> Option<Loc> {
    match s {
        FusedStage::Bin { other, .. } => Some(*other),
        FusedStage::BiasCol { bias, .. } => Some(*bias),
        FusedStage::RowScaleS { s, .. } => Some(*s),
        FusedStage::GradSigmoid { y } | FusedStage::GradTanh { y } => Some(*y),
        FusedStage::GradRelu { x } => Some(*x),
        // Masks live in their own replay-constant table, never in the arena.
        FusedStage::Un { .. } | FusedStage::Mask { .. } => None,
    }
}

/// Calls `f` for every location whose *current contents* the instruction
/// reads — operands plus any destination it accumulates into or only
/// partially overwrites.
pub(super) fn for_each_read(ins: &Instr, f: &mut dyn FnMut(Loc)) {
    match ins {
        // ---- forward (destinations fully overwritten unless noted)
        Instr::Ew { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::Unary { a, .. } => f(*a),
        Instr::AddBias { x, bias, .. } => {
            f(*x);
            f(*bias);
        }
        Instr::RowScale { x, s, .. } => {
            f(*x);
            f(*s);
        }
        Instr::Gemm { a, b, dst, mode, .. } => {
            f(*a);
            f(*b);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::GemmAcc { a, b, dst, .. } => {
            f(*a);
            f(*b);
            dst_read(*dst, f);
        }
        Instr::ConcatColsF { parts, .. } => {
            for (l, _) in parts {
                f(*l);
            }
        }
        Instr::SliceColsF { x, .. } => f(*x),
        Instr::CopyBlock { src, dst, .. } => {
            f(*src);
            // Writes a sub-range; the rest of the destination survives.
            dst_read(*dst, f);
        }
        Instr::SumAllF { x, .. } => f(*x),
        Instr::DropoutF { x, .. } => f(*x),
        Instr::EmbedF { table, .. } => f(*table),
        Instr::SoftmaxF { x, .. } => f(*x),
        Instr::CeF { logits, .. } => f(*logits),
        Instr::ConvF { x, w, .. } => {
            f(*x);
            f(*w);
        }
        Instr::MaxPoolF { x, .. } => f(*x),
        Instr::GapF { x, .. } => f(*x),
        Instr::BnF { x, gamma, beta, .. } => {
            f(*x);
            f(*gamma);
            f(*beta);
        }
        Instr::LstmF { preact, c_prev, .. } => {
            f(*preact);
            f(*c_prev);
        }
        Instr::PreactSeqF { x, w, bias, .. } => {
            f(*x);
            f(*w);
            f(*bias);
        }
        Instr::RecurStepF { seq, h, w_h, .. } => {
            f(*seq);
            f(*h);
            f(*w_h);
        }
        Instr::FusedEw { a0, stages, dst, mode, .. } => {
            f(*a0);
            for s in stages {
                if let Some(l) = stage_operand(s) {
                    f(l);
                }
            }
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }

        // ---- backward (destination read whenever `Mode::Add`)
        Instr::ScaleG { up, dst, mode, .. }
        | Instr::DropoutG { up, dst, mode, .. }
        | Instr::ColSumG { up, dst, mode, .. }
        | Instr::ColsBlockG { up, dst, mode, .. }
        | Instr::ColsScatterG { up, dst, mode, .. }
        | Instr::SumAllG { up, dst, mode, .. }
        | Instr::EmbedG { up, dst, mode, .. }
        | Instr::CeG { up, dst, mode, .. }
        | Instr::MaxPoolG { up, dst, mode, .. }
        | Instr::GapG { up, dst, mode, .. } => {
            f(*up);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::MulG { up, other, dst, mode, .. } => {
            f(*up);
            f(*other);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::SigmoidG { up, y, dst, mode, .. }
        | Instr::TanhG { up, y, dst, mode, .. }
        | Instr::SoftmaxG { up, y, dst, mode, .. } => {
            f(*up);
            f(*y);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::ReluG { up, x, dst, mode, .. } | Instr::RowScaleDs { up, x, dst, mode, .. } => {
            f(*up);
            f(*x);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::RowScaleDx { up, s, dst, mode, .. } => {
            f(*up);
            f(*s);
            if *mode == Mode::Add {
                dst_read(*dst, f);
            }
        }
        Instr::BlockG { up, dst, mode, zero_rest, .. } => {
            f(*up);
            // Only `Store` + `zero_rest` defines the whole destination.
            if *mode == Mode::Add || !*zero_rest {
                dst_read(*dst, f);
            }
        }
        Instr::ConvG { up, w, dw, dx, .. } => {
            f(*up);
            f(*w);
            opt_dst_read(dw, f);
            opt_dst_read(dx, f);
        }
        Instr::BnG { up, gamma, dg, dbt, dx, .. } => {
            f(*up);
            f(*gamma);
            opt_dst_read(dg, f);
            opt_dst_read(dbt, f);
            opt_dst_read(dx, f);
        }
        Instr::LstmG { c_prev, dh, dc, dpre, dcp, .. } => {
            f(*c_prev);
            if let Some(l) = dh {
                f(*l);
            }
            if let Some(l) = dc {
                f(*l);
            }
            if dpre.1 == Mode::Add {
                dst_read(dpre.0, f);
            }
            if dcp.1 == Mode::Add {
                dst_read(dcp.0, f);
            }
        }
        Instr::RecurSeqG { up, dst, zero_first, .. } => {
            f(*up);
            if !*zero_first {
                dst_read(*dst, f);
            }
        }
    }
}

/// Calls `f` for every destination the instruction writes (any mode).
pub(super) fn for_each_write(ins: &Instr, f: &mut dyn FnMut(Dst)) {
    match ins {
        Instr::Ew { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::AddBias { dst, .. }
        | Instr::RowScale { dst, .. }
        | Instr::Gemm { dst, .. }
        | Instr::GemmAcc { dst, .. }
        | Instr::ConcatColsF { dst, .. }
        | Instr::SliceColsF { dst, .. }
        | Instr::CopyBlock { dst, .. }
        | Instr::SumAllF { dst, .. }
        | Instr::DropoutF { dst, .. }
        | Instr::EmbedF { dst, .. }
        | Instr::SoftmaxF { dst, .. }
        | Instr::CeF { dst, .. }
        | Instr::ConvF { dst, .. }
        | Instr::MaxPoolF { dst, .. }
        | Instr::GapF { dst, .. }
        | Instr::BnF { dst, .. }
        | Instr::PreactSeqF { dst, .. }
        | Instr::RecurStepF { dst, .. }
        | Instr::FusedEw { dst, .. }
        | Instr::ScaleG { dst, .. }
        | Instr::MulG { dst, .. }
        | Instr::DropoutG { dst, .. }
        | Instr::SigmoidG { dst, .. }
        | Instr::TanhG { dst, .. }
        | Instr::ReluG { dst, .. }
        | Instr::ColSumG { dst, .. }
        | Instr::RowScaleDx { dst, .. }
        | Instr::RowScaleDs { dst, .. }
        | Instr::ColsBlockG { dst, .. }
        | Instr::ColsScatterG { dst, .. }
        | Instr::BlockG { dst, .. }
        | Instr::SumAllG { dst, .. }
        | Instr::EmbedG { dst, .. }
        | Instr::SoftmaxG { dst, .. }
        | Instr::CeG { dst, .. }
        | Instr::MaxPoolG { dst, .. }
        | Instr::GapG { dst, .. }
        | Instr::RecurSeqG { dst, .. } => f(*dst),
        Instr::LstmF { c_dst, h_dst, .. } => {
            f(*c_dst);
            f(*h_dst);
        }
        Instr::ConvG { dw, dx, .. } => {
            for o in [dw, dx].into_iter().flatten() {
                f(o.0);
            }
        }
        Instr::BnG { dg, dbt, dx, .. } => {
            for o in [dg, dbt, dx].into_iter().flatten() {
                f(o.0);
            }
        }
        Instr::LstmG { dpre, dcp, .. } => {
            f(dpre.0);
            f(dcp.0);
        }
    }
}

/// Calls `f` on every operand [`Loc`] so a pass can redirect reads.
/// Destinations are never visited — rewriting a write is not a read rename.
pub(super) fn rewrite_reads(ins: &mut Instr, f: &mut dyn FnMut(&mut Loc)) {
    match ins {
        Instr::Unary { a, .. } => f(a),
        Instr::Ew { a, b, .. } | Instr::Gemm { a, b, .. } | Instr::GemmAcc { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::AddBias { x, bias, .. } => {
            f(x);
            f(bias);
        }
        Instr::RowScale { x, s, .. } => {
            f(x);
            f(s);
        }
        Instr::ConcatColsF { parts, .. } => {
            for (l, _) in parts {
                f(l);
            }
        }
        Instr::SliceColsF { x, .. }
        | Instr::SumAllF { x, .. }
        | Instr::DropoutF { x, .. }
        | Instr::SoftmaxF { x, .. }
        | Instr::MaxPoolF { x, .. }
        | Instr::GapF { x, .. } => f(x),
        Instr::CopyBlock { src, .. } => f(src),
        Instr::EmbedF { table, .. } => f(table),
        Instr::CeF { logits, .. } => f(logits),
        Instr::ConvF { x, w, .. } => {
            f(x);
            f(w);
        }
        Instr::BnF { x, gamma, beta, .. } => {
            f(x);
            f(gamma);
            f(beta);
        }
        Instr::LstmF { preact, c_prev, .. } => {
            f(preact);
            f(c_prev);
        }
        Instr::PreactSeqF { x, w, bias, .. } => {
            f(x);
            f(w);
            f(bias);
        }
        Instr::RecurStepF { seq, h, w_h, .. } => {
            f(seq);
            f(h);
            f(w_h);
        }
        Instr::FusedEw { a0, stages, .. } => {
            f(a0);
            for s in stages {
                match s {
                    FusedStage::Bin { other, .. } => f(other),
                    FusedStage::BiasCol { bias, .. } => f(bias),
                    FusedStage::RowScaleS { s, .. } => f(s),
                    FusedStage::GradSigmoid { y } | FusedStage::GradTanh { y } => f(y),
                    FusedStage::GradRelu { x } => f(x),
                    FusedStage::Un { .. } | FusedStage::Mask { .. } => {}
                }
            }
        }
        Instr::ScaleG { up, .. }
        | Instr::DropoutG { up, .. }
        | Instr::ColSumG { up, .. }
        | Instr::ColsBlockG { up, .. }
        | Instr::ColsScatterG { up, .. }
        | Instr::BlockG { up, .. }
        | Instr::SumAllG { up, .. }
        | Instr::EmbedG { up, .. }
        | Instr::CeG { up, .. }
        | Instr::MaxPoolG { up, .. }
        | Instr::GapG { up, .. }
        | Instr::RecurSeqG { up, .. } => f(up),
        Instr::MulG { up, other, .. } => {
            f(up);
            f(other);
        }
        Instr::SigmoidG { up, y, .. }
        | Instr::TanhG { up, y, .. }
        | Instr::SoftmaxG { up, y, .. } => {
            f(up);
            f(y);
        }
        Instr::ReluG { up, x, .. } | Instr::RowScaleDs { up, x, .. } => {
            f(up);
            f(x);
        }
        Instr::RowScaleDx { up, s, .. } => {
            f(up);
            f(s);
        }
        Instr::ConvG { up, w, .. } => {
            f(up);
            f(w);
        }
        Instr::BnG { up, gamma, .. } => {
            f(up);
            f(gamma);
        }
        Instr::LstmG { c_prev, dh, dc, .. } => {
            f(c_prev);
            if let Some(l) = dh {
                f(l);
            }
            if let Some(l) = dc {
                f(l);
            }
        }
    }
}

// ---------------------------------------------------------------- queries

fn dst_overlaps(d: Dst, l: Loc) -> bool {
    match (d, l) {
        (Dst::Slot(a), Loc::Slot(b)) => a == b,
        (Dst::Out(a), Loc::Out(b)) => a == b,
        // Inputs, params and consts are read-only during a replay sweep;
        // ParGrad is never read.
        _ => false,
    }
}

/// (writes, reads) of virtual slot `v` across both instruction lists.
fn slot_use(fwd: &[Instr], bwd: &[Instr], v: u32) -> (usize, usize) {
    let (mut writes, mut reads) = (0usize, 0usize);
    for ins in fwd.iter().chain(bwd.iter()) {
        for_each_write(ins, &mut |d| {
            if d == Dst::Slot(v) {
                writes += 1;
            }
        });
        for_each_read(ins, &mut |l| {
            if l == Loc::Slot(v) {
                reads += 1;
            }
        });
    }
    (writes, reads)
}

fn reads_slot(ins: &Instr, v: u32) -> bool {
    let mut seen = false;
    for_each_read(ins, &mut |l| {
        if l == Loc::Slot(v) {
            seen = true;
        }
    });
    seen
}

// ----------------------------------------------------- copy propagation

/// Deletes `ScaleG { c: 1.0, mode: Store }` gradient copies from the
/// backward list, rewiring their readers to the copy's source.
///
/// `x * 1.0` is bitwise `x` for every value gradients can hold, so this is
/// exact; the only thing to prove is that the source still holds the copied
/// value when each rewired reader runs (no intervening write), checked below.
fn copy_prop(fwd: &[Instr], bwd: &mut Vec<Instr>, bpos: &mut Vec<usize>, seed_vids: &[u32]) {
    'restart: loop {
        for p in 0..bwd.len() {
            let Instr::ScaleG { up, dst: Dst::Slot(v), mode: Mode::Store, c, .. } = bwd[p] else {
                continue;
            };
            if c.to_bits() != 1.0f32.to_bits() {
                continue;
            }
            // Seeded slots are written by the replay driver between the
            // sweeps; they must stay materialized.
            if seed_vids.contains(&v) || up == Loc::Slot(v) {
                continue;
            }
            let (writes, _) = slot_use(fwd, bwd, v);
            if writes != 1 {
                continue;
            }
            if fwd.iter().any(|ins| reads_slot(ins, v)) {
                continue;
            }
            let read_idx: Vec<usize> = (0..bwd.len()).filter(|&i| reads_slot(&bwd[i], v)).collect();
            if read_idx.is_empty() || read_idx.iter().any(|&r| r <= p) {
                continue;
            }
            // The source must not be overwritten before the last rewired read.
            let r_max = *read_idx.last().unwrap();
            let mut clobbered = false;
            for ins in &bwd[p + 1..=r_max] {
                for_each_write(ins, &mut |d| {
                    if dst_overlaps(d, up) {
                        clobbered = true;
                    }
                });
            }
            if clobbered {
                continue;
            }
            for &r in &read_idx {
                rewrite_reads(&mut bwd[r], &mut |l| {
                    if *l == Loc::Slot(v) {
                        *l = up;
                    }
                });
            }
            bwd.remove(p);
            bpos.remove(p);
            continue 'restart;
        }
        break;
    }
}

// ------------------------------------------------------------------ fusion

/// The stage pipeline an instruction contributes when it *produces* a fused
/// chain's intermediate: `(lead operand, stages, produced slot, length)`.
///
/// Backward producers must be `Mode::Store` — an `Add` producer's output is
/// not a pure function of its lead operand.
fn as_producer(ins: &Instr) -> Option<(Loc, Vec<FusedStage>, u32, usize)> {
    match ins {
        Instr::Ew { kind, a, b, dst: Dst::Slot(v), n } => {
            Some((*a, vec![FusedStage::Bin { kind: *kind, other: *b, swapped: false }], *v, *n))
        }
        Instr::Unary { kind, a, dst: Dst::Slot(v), n } => {
            Some((*a, vec![FusedStage::Un { kind: *kind }], *v, *n))
        }
        Instr::AddBias { x, bias, dst: Dst::Slot(v), rows, cols } => {
            Some((*x, vec![FusedStage::BiasCol { bias: *bias, cols: *cols }], *v, rows * cols))
        }
        Instr::RowScale { x, s, dst: Dst::Slot(v), rows, cols } => {
            Some((*x, vec![FusedStage::RowScaleS { s: *s, cols: *cols }], *v, rows * cols))
        }
        Instr::DropoutF { x, mask, dst: Dst::Slot(v), n } => {
            Some((*x, vec![FusedStage::Mask { mask: *mask }], *v, *n))
        }
        Instr::ScaleG { up, dst: Dst::Slot(v), mode: Mode::Store, n, c } => {
            Some((*up, vec![FusedStage::Un { kind: UnKind::Scale(*c) }], *v, *n))
        }
        Instr::MulG { up, other, dst: Dst::Slot(v), mode: Mode::Store, n } => Some((
            *up,
            vec![FusedStage::Bin { kind: EwKind::Mul, other: *other, swapped: false }],
            *v,
            *n,
        )),
        Instr::DropoutG { up, mask, dst: Dst::Slot(v), mode: Mode::Store, n } => {
            Some((*up, vec![FusedStage::Mask { mask: *mask }], *v, *n))
        }
        Instr::SigmoidG { up, y, dst: Dst::Slot(v), mode: Mode::Store, n } => {
            Some((*up, vec![FusedStage::GradSigmoid { y: *y }], *v, *n))
        }
        Instr::TanhG { up, y, dst: Dst::Slot(v), mode: Mode::Store, n } => {
            Some((*up, vec![FusedStage::GradTanh { y: *y }], *v, *n))
        }
        Instr::ReluG { up, x, dst: Dst::Slot(v), mode: Mode::Store, n } => {
            Some((*up, vec![FusedStage::GradRelu { x: *x }], *v, *n))
        }
        Instr::FusedEw { a0, stages, dst: Dst::Slot(v), mode: Mode::Store, n } => {
            Some((*a0, stages.clone(), *v, *n))
        }
        _ => None,
    }
}

/// The stage pipeline an instruction contributes when it *consumes* slot `v`
/// as the value flowing through the chain: `(stages, dst, mode, length)`.
///
/// Only the lead operand may be `v` — the saved-activation operands of the
/// grad kernels (`y`, `x`) are chain *inputs*, not links. The caller's
/// single-read precondition already rules out `v` appearing twice.
fn consume(ins: &Instr, v: u32) -> Option<(Vec<FusedStage>, Dst, Mode, usize)> {
    let lead = Loc::Slot(v);
    match ins {
        Instr::Ew { kind, a, b, dst, n } => {
            if *a == lead {
                Some((
                    vec![FusedStage::Bin { kind: *kind, other: *b, swapped: false }],
                    *dst,
                    Mode::Store,
                    *n,
                ))
            } else if *b == lead {
                Some((
                    vec![FusedStage::Bin { kind: *kind, other: *a, swapped: true }],
                    *dst,
                    Mode::Store,
                    *n,
                ))
            } else {
                None
            }
        }
        Instr::Unary { kind, a, dst, n } if *a == lead => {
            Some((vec![FusedStage::Un { kind: *kind }], *dst, Mode::Store, *n))
        }
        Instr::AddBias { x, bias, dst, rows, cols } if *x == lead => Some((
            vec![FusedStage::BiasCol { bias: *bias, cols: *cols }],
            *dst,
            Mode::Store,
            rows * cols,
        )),
        Instr::RowScale { x, s, dst, rows, cols } if *x == lead => Some((
            vec![FusedStage::RowScaleS { s: *s, cols: *cols }],
            *dst,
            Mode::Store,
            rows * cols,
        )),
        Instr::DropoutF { x, mask, dst, n } if *x == lead => {
            Some((vec![FusedStage::Mask { mask: *mask }], *dst, Mode::Store, *n))
        }
        Instr::ScaleG { up, dst, mode, n, c } if *up == lead => {
            Some((vec![FusedStage::Un { kind: UnKind::Scale(*c) }], *dst, *mode, *n))
        }
        Instr::MulG { up, other, dst, mode, n } => {
            if *up == lead {
                Some((
                    vec![FusedStage::Bin { kind: EwKind::Mul, other: *other, swapped: false }],
                    *dst,
                    *mode,
                    *n,
                ))
            } else if *other == lead {
                Some((
                    vec![FusedStage::Bin { kind: EwKind::Mul, other: *up, swapped: true }],
                    *dst,
                    *mode,
                    *n,
                ))
            } else {
                None
            }
        }
        Instr::DropoutG { up, mask, dst, mode, n } if *up == lead => {
            Some((vec![FusedStage::Mask { mask: *mask }], *dst, *mode, *n))
        }
        Instr::SigmoidG { up, y, dst, mode, n } if *up == lead => {
            Some((vec![FusedStage::GradSigmoid { y: *y }], *dst, *mode, *n))
        }
        Instr::TanhG { up, y, dst, mode, n } if *up == lead => {
            Some((vec![FusedStage::GradTanh { y: *y }], *dst, *mode, *n))
        }
        Instr::ReluG { up, x, dst, mode, n } if *up == lead => {
            Some((vec![FusedStage::GradRelu { x: *x }], *dst, *mode, *n))
        }
        Instr::FusedEw { a0, stages, dst, mode, n } if *a0 == lead => {
            Some((stages.clone(), *dst, *mode, *n))
        }
        _ => None,
    }
}

/// Fuses producer/consumer pairs within one instruction list until no pair
/// is left. The merged [`Instr::FusedEw`] takes the consumer's position, so
/// the producer's operand reads move *later* in the schedule — legal only
/// because nothing in between writes them (checked per pair).
fn fuse_list(list: &mut Vec<Instr>, pos: &mut Vec<usize>, other: &[Instr], seed_vids: &[u32]) {
    'restart: loop {
        for p in 0..list.len() {
            let Some((a0, pstages, v, n)) = as_producer(&list[p]) else { continue };
            if seed_vids.contains(&v) {
                continue;
            }
            // The intermediate must have exactly this writer and exactly one
            // reader anywhere in the plan…
            let (writes, reads) = slot_use(list, other, v);
            if writes != 1 || reads != 1 {
                continue;
            }
            // …and that reader must be a fusible consumer later in the SAME
            // list (a cross-list chain would move the producer past the
            // gradient seeding that runs between the sweeps).
            let Some(j) = (0..list.len()).find(|&i| reads_slot(&list[i], v)) else { continue };
            if j <= p {
                continue;
            }
            let Some((cstages, cdst, cmode, cn)) = consume(&list[j], v) else { continue };
            if cn != n || pstages.len() + cstages.len() > MAX_STAGES {
                continue;
            }
            // Everything the producer reads must still be intact at `j`…
            let mut pread: Vec<Loc> = vec![a0];
            for s in &pstages {
                if let Some(l) = stage_operand(s) {
                    pread.push(l);
                }
            }
            let mut clobbered = false;
            for ins in &list[p + 1..j] {
                for_each_write(ins, &mut |d| {
                    if pread.iter().any(|&l| dst_overlaps(d, l)) {
                        clobbered = true;
                    }
                });
            }
            if clobbered {
                continue;
            }
            // …including across the merged instruction's own write: the
            // executor takes the destination buffer out of the store for the
            // sweep, so no stage may read it.
            if pread.iter().any(|&l| dst_overlaps(cdst, l)) {
                continue;
            }
            let mut stages = pstages;
            stages.extend(cstages);
            list[j] = Instr::FusedEw { a0, stages, dst: cdst, mode: cmode, n };
            list.remove(p);
            pos.remove(p);
            continue 'restart;
        }
        break;
    }
}

// ------------------------------------------------- single-instruction folds

/// Folds `Gemm { mode: Add }` into [`Instr::GemmAcc`] when the shape runs as
/// a single k-block, and flips `LstmG` to its direct (scratch-free) form
/// when both destinations are plain stores.
fn fold_instr(ins: &mut Instr) {
    if let Instr::Gemm { ta, tb, a, b, m, k, n, dst, mode: Mode::Add } = *ins {
        if legw_tensor::gemm_single_k_block(k) {
            *ins = Instr::GemmAcc { ta, tb, a, b, m, k, n, dst };
        }
    }
    if let Instr::LstmG { dpre, dcp, direct, .. } = ins {
        if dpre.1 == Mode::Store && dcp.1 == Mode::Store {
            // Two destinations born at the same schedule position always get
            // distinct physical slots (births before deaths).
            debug_assert!(dpre.0 != dcp.0, "LstmG store destinations must be distinct");
            *direct = true;
        }
    }
}

// ------------------------------------------------------------- entry points

/// Runs every optimization pass over a freshly emitted schedule. Positions
/// (`fpos`/`bpos`) stay in lockstep with their instruction lists so the
/// liveness sweep that follows sees a consistent schedule.
pub(super) fn optimize(
    fwd: &mut Vec<Instr>,
    fpos: &mut Vec<usize>,
    bwd: &mut Vec<Instr>,
    bpos: &mut Vec<usize>,
    seed_vids: &[u32],
) {
    copy_prop(fwd, bwd, bpos, seed_vids);
    fuse_list(fwd, fpos, bwd, seed_vids);
    fuse_list(bwd, bpos, fwd, seed_vids);
    for ins in fwd.iter_mut().chain(bwd.iter_mut()) {
        fold_instr(ins);
    }
}

/// f32 scratch elements an instruction needs at replay. The capture sizes
/// the shared scratch buffer to the max over the final schedule; the
/// executor only ever slices that buffer, so a wrong value here would panic
/// rather than reallocate.
pub(super) fn scratch_req(ins: &Instr) -> usize {
    match ins {
        Instr::Gemm { m, n, mode: Mode::Add, .. } => m * n,
        Instr::EmbedG { mode: Mode::Add, vocab, dim, .. } => vocab * dim,
        Instr::ConvG { dw, dx, geom, batch, oc, .. } => {
            let ckk = geom.c * geom.kh * geom.kw;
            let dw_need = matches!(dw, Some((_, Mode::Add))).then_some(oc * ckk).unwrap_or(0);
            let dx_need = matches!(dx, Some((_, Mode::Add)))
                .then_some(batch * geom.c * geom.h * geom.w)
                .unwrap_or(0);
            dw_need.max(dx_need)
        }
        Instr::MaxPoolG { mode: Mode::Add, x_len, .. } => *x_len,
        Instr::LstmG { direct, b, hid, .. } => {
            if *direct {
                0
            } else {
                b * 5 * hid
            }
        }
        _ => 0,
    }
}

/// Instruction histogram over both lists, keyed by [`kind_name`], in first-
/// appearance order.
pub(super) fn histogram(fwd: &[Instr], bwd: &[Instr]) -> Vec<(&'static str, usize)> {
    let mut h: Vec<(&'static str, usize)> = Vec::new();
    for ins in fwd.iter().chain(bwd.iter()) {
        let name = kind_name(ins);
        match h.iter_mut().find(|(n, _)| *n == name) {
            Some(e) => e.1 += 1,
            None => h.push((name, 1)),
        }
    }
    h
}
