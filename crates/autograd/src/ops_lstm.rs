//! The fused LSTM cell op — the tape's first (and so far only) two-output
//! node.
//!
//! [`Graph::lstm_cell`] records the whole cell interior
//!
//! ```text
//! c' = σ(f)∘c + σ(i)∘tanh(ĝ)        h' = σ(o)∘tanh(c')
//! ```
//!
//! as a *pair* of consecutive nodes instead of the ~8 separate elementwise
//! ops the unfused formulation needs: first the `c'` node
//! ([`Op::LstmCellC`]), then the `h'` node ([`Op::LstmCell`]) which owns
//! the cached intermediates and the closed-form backward (implemented in
//! `legw_tensor::lstm_cell_backward`).
//!
//! ## Why consecutive siblings make two outputs safe on this tape
//!
//! The reverse sweep walks node indices downward and every consumer of
//! either output was pushed *after* both siblings. So when the sweep
//! reaches `h'` (the higher index), the gradient accumulated on `c'` is
//! already final — the `h'` rule can read it and run the joint backward for
//! both outputs at once, accumulating into `preact` and `c_prev`. When the
//! sweep then reaches `c'`, its work is already done; the `c'` node only
//! runs the rule itself (with `dh = 0`) in the corner case where `h'` got
//! no gradient at all (e.g. only the cell state feeds the loss).

use crate::graph::{Graph, Op, Var};
use legw_tensor::{lstm_cell_backward, lstm_cell_forward, Tensor};

impl Graph {
    /// Fused LSTM cell: consumes the packed pre-activation block `preact`
    /// (`[B, 4H]`, gate order `i,f,ĝ,o`) and the previous cell state
    /// `c_prev` (`[B, H]`), returns `(h', c')` — two tape nodes backed by
    /// one cache-resident kernel pass and one closed-form backward.
    pub fn lstm_cell(&mut self, preact: Var, c_prev: Var) -> (Var, Var) {
        let fwd = lstm_cell_forward(self.value(preact), self.value(c_prev));
        let rg = self.requires(preact) || self.requires(c_prev);
        // `h'` lands at index len()+1: right after its `c'` sibling.
        let c = self.push(fwd.c, rg, Op::LstmCellC { h_out: Var(self.len() + 1) });
        let h = self.push(
            fwd.h,
            rg,
            Op::LstmCell { preact, c_prev, gates: fwd.gates, tanh_c: fwd.tanh_c, c_out: c },
        );
        (h, c)
    }

    pub(crate) fn backward_lstm(&mut self, op: &Op, _v: Var, up: &Tensor) {
        match op {
            Op::LstmCell { preact, c_prev, gates, tanh_c, c_out } => {
                // `up` is dL/dh'. The sweep visits h' before c' and all of
                // c's consumers are later than h', so c's gradient is final.
                let dc = self.nodes[c_out.0].grad.clone();
                let (dpre, dcp) =
                    lstm_cell_backward(gates, tanh_c, self.value(*c_prev), Some(up), dc.as_ref());
                self.accumulate(*preact, dpre);
                self.accumulate(*c_prev, dcp);
            }
            Op::LstmCellC { h_out } => {
                if self.nodes[h_out.0].grad.is_some() {
                    // The h' node already ran the joint rule (reading this
                    // node's gradient); nothing left to do.
                    return;
                }
                // h' is unused on the tape: run the rule with dh = 0. The
                // cached intermediates live on the sibling (Arc-cheap to
                // clone out).
                let (preact, c_prev, gates, tanh_c) = match &self.nodes[h_out.0].op {
                    Op::LstmCell { preact, c_prev, gates, tanh_c, .. } => {
                        (*preact, *c_prev, gates.clone(), tanh_c.clone())
                    }
                    _ => unreachable!("LstmCellC sibling must be LstmCell"),
                };
                let (dpre, dcp) =
                    lstm_cell_backward(&gates, &tanh_c, self.value(c_prev), None, Some(up));
                self.accumulate(preact, dpre);
                self.accumulate(c_prev, dcp);
            }
            _ => unreachable!("backward_lstm on non-LSTM op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::grad_check;

    fn seeded(seed: u64, dims: &[usize]) -> Tensor {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let data = (0..dims.iter().product())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    /// The unfused 8-op reference: the exact chain `legw_nn::LstmCell`
    /// recorded before fusion.
    fn unfused_cell(g: &mut Graph, preact: Var, c_prev: Var, hid: usize) -> (Var, Var) {
        let i = g.slice_cols(preact, 0, hid);
        let f = g.slice_cols(preact, hid, 2 * hid);
        let gg = g.slice_cols(preact, 2 * hid, 3 * hid);
        let o = g.slice_cols(preact, 3 * hid, 4 * hid);
        let i = g.sigmoid(i);
        let f = g.sigmoid(f);
        let gg = g.tanh(gg);
        let o = g.sigmoid(o);
        let fc = g.mul(f, c_prev);
        let ig = g.mul(i, gg);
        let c = g.add(fc, ig);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        (h, c)
    }

    /// Loss touching both outputs so both gradient paths are exercised.
    fn both_outputs_loss(g: &mut Graph, h: Var, c: Var) -> Var {
        let hh = g.mul(h, h);
        let cc = g.mul(c, c);
        let s = g.add(hh, cc);
        g.sum_all(s)
    }

    /// Forward values and parameter gradients must match the unfused
    /// reference graph bitwise, including at boundary shapes (B=1, H=1,
    /// H not a multiple of 8).
    #[test]
    fn fused_matches_unfused_reference_graph() {
        for &(b, hid) in &[(1usize, 1usize), (1, 5), (4, 13), (3, 8), (7, 3)] {
            let preact0 = seeded(b as u64 * 41 + hid as u64, &[b, 4 * hid]);
            let c0 = seeded(b as u64 * 59 + hid as u64 + 1, &[b, hid]);

            let mut gf = Graph::new();
            let pa_f = gf.param(preact0.clone());
            let cp_f = gf.param(c0.clone());
            let (h_f, c_f) = gf.lstm_cell(pa_f, cp_f);
            let loss_f = both_outputs_loss(&mut gf, h_f, c_f);
            gf.backward(loss_f);

            let mut gu = Graph::new();
            let pa_u = gu.param(preact0);
            let cp_u = gu.param(c0);
            let (h_u, c_u) = unfused_cell(&mut gu, pa_u, cp_u, hid);
            let loss_u = both_outputs_loss(&mut gu, h_u, c_u);
            gu.backward(loss_u);

            assert_eq!(
                gf.value(h_f).as_slice(),
                gu.value(h_u).as_slice(),
                "h forward mismatch at B={b} H={hid}"
            );
            assert_eq!(
                gf.value(c_f).as_slice(),
                gu.value(c_u).as_slice(),
                "c forward mismatch at B={b} H={hid}"
            );
            for (name, vf, vu) in [("preact", pa_f, pa_u), ("c_prev", cp_f, cp_u)] {
                let a = gf.grad(vf).unwrap().as_slice();
                let w = gu.grad(vu).unwrap().as_slice();
                for (x, y) in a.iter().zip(w) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "{name} grad mismatch at B={b} H={hid}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// Finite-difference check through the fused op, both outputs in the
    /// loss, at boundary shapes.
    #[test]
    fn lstm_cell_finite_difference_check() {
        for &(b, hid) in &[(1usize, 1usize), (2, 3), (3, 13)] {
            grad_check(
                &[
                    seeded(b as u64 + 100 * hid as u64, &[b, 4 * hid]),
                    seeded(b as u64 + 100 * hid as u64 + 7, &[b, hid]),
                ],
                |g, vs| {
                    let (h, c) = g.lstm_cell(vs[0], vs[1]);
                    both_outputs_loss(g, h, c)
                },
            );
        }
    }

    /// Only `h'` feeds the loss: `c'` has no gradient, the h-node rule
    /// must handle `dc = None`.
    #[test]
    fn grads_flow_when_only_h_used() {
        grad_check(&[seeded(21, &[2, 12]), seeded(22, &[2, 3])], |g, vs| {
            let (h, _c) = g.lstm_cell(vs[0], vs[1]);
            let hh = g.mul(h, h);
            g.sum_all(hh)
        });
    }

    /// Only `c'` feeds the loss: `h'` never receives a gradient, so the
    /// c-sibling must run the rule itself with `dh = 0`.
    #[test]
    fn grads_flow_when_only_c_used() {
        grad_check(&[seeded(31, &[2, 12]), seeded(32, &[2, 3])], |g, vs| {
            let (_h, c) = g.lstm_cell(vs[0], vs[1]);
            let cc = g.mul(c, c);
            g.sum_all(cc)
        });
        // And against the unfused reference, bit-for-bit path equivalence.
        let preact0 = seeded(33, &[3, 20]);
        let c0 = seeded(34, &[3, 5]);
        let mut gf = Graph::new();
        let pa_f = gf.param(preact0.clone());
        let cp_f = gf.param(c0.clone());
        let (_hf, cf) = gf.lstm_cell(pa_f, cp_f);
        let sf = gf.sum_all(cf);
        gf.backward(sf);
        let mut gu = Graph::new();
        let pa_u = gu.param(preact0);
        let cp_u = gu.param(c0);
        let (_hu, cu) = unfused_cell(&mut gu, pa_u, cp_u, 5);
        let su = gu.sum_all(cu);
        gu.backward(su);
        for (x, y) in gf.grad(pa_f).unwrap().as_slice().iter().zip(gu.grad(pa_u).unwrap().as_slice())
        {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// Chained steps: the cell state threads through two fused cells, so
    /// `c'` of step 1 receives gradients both from its own consumers and
    /// through step 2's interior. Cross-checked against the unfused chain.
    #[test]
    fn chained_cells_accumulate_cell_path() {
        let (b, hid) = (3usize, 4usize);
        let pa1 = seeded(41, &[b, 4 * hid]);
        let pa2 = seeded(42, &[b, 4 * hid]);
        let c0 = seeded(43, &[b, hid]);

        let run = |fused: bool| -> (Vec<f32>, Vec<f32>, Vec<f32>) {
            let mut g = Graph::new();
            let p1 = g.param(pa1.clone());
            let p2 = g.param(pa2.clone());
            let c = g.param(c0.clone());
            let (h1, c1) = if fused {
                g.lstm_cell(p1, c)
            } else {
                unfused_cell(&mut g, p1, c, hid)
            };
            let (h2, c2) =
                if fused { g.lstm_cell(p2, c1) } else { unfused_cell(&mut g, p2, c1, hid) };
            let hs = g.add(h1, h2);
            let loss = both_outputs_loss(&mut g, hs, c2);
            g.backward(loss);
            (
                g.grad(p1).unwrap().as_slice().to_vec(),
                g.grad(p2).unwrap().as_slice().to_vec(),
                g.grad(c).unwrap().as_slice().to_vec(),
            )
        };
        let (f1, f2, fc) = run(true);
        let (u1, u2, uc) = run(false);
        for (a, w) in f1.iter().zip(&u1).chain(f2.iter().zip(&u2)).chain(fc.iter().zip(&uc)) {
            assert!((a - w).abs() < 1e-5, "chained grad mismatch: {a} vs {w}");
        }
    }
}
