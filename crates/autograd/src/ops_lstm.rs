//! The fused LSTM cell op — the tape's first (and so far only) two-output
//! node.
//!
//! [`Graph::lstm_cell`] records the whole cell interior
//!
//! ```text
//! c' = σ(f)∘c + σ(i)∘tanh(ĝ)        h' = σ(o)∘tanh(c')
//! ```
//!
//! as a *pair* of consecutive nodes instead of the ~8 separate elementwise
//! ops the unfused formulation needs: first the `c'` node
//! ([`Op::LstmCellC`]), then the `h'` node ([`Op::LstmCell`]) which owns
//! the cached intermediates and the closed-form backward (implemented in
//! `legw_tensor::lstm_cell_backward`).
//!
//! ## Why consecutive siblings make two outputs safe on this tape
//!
//! The reverse sweep walks node indices downward and every consumer of
//! either output was pushed *after* both siblings. So when the sweep
//! reaches `h'` (the higher index), the gradient accumulated on `c'` is
//! already final — the `h'` rule can read it and run the joint backward for
//! both outputs at once, accumulating into `preact` and `c_prev`. When the
//! sweep then reaches `c'`, its work is already done; the `c'` node only
//! runs the rule itself (with `dh = 0`) in the corner case where `h'` got
//! no gradient at all (e.g. only the cell state feeds the loss).

use crate::graph::{Graph, Op, Var};
use legw_tensor::{lstm_cell_backward, lstm_cell_forward, Tensor};

impl Graph {
    /// Fused LSTM cell: consumes the packed pre-activation block `preact`
    /// (`[B, 4H]`, gate order `i,f,ĝ,o`) and the previous cell state
    /// `c_prev` (`[B, H]`), returns `(h', c')` — two tape nodes backed by
    /// one cache-resident kernel pass and one closed-form backward.
    pub fn lstm_cell(&mut self, preact: Var, c_prev: Var) -> (Var, Var) {
        let fwd = lstm_cell_forward(self.value(preact), self.value(c_prev));
        let rg = self.requires(preact) || self.requires(c_prev);
        // `h'` lands at index len()+1: right after its `c'` sibling.
        let c = self.push(fwd.c, rg, Op::LstmCellC { h_out: Var(self.len() + 1) });
        let h = self.push(
            fwd.h,
            rg,
            Op::LstmCell { preact, c_prev, gates: fwd.gates, tanh_c: fwd.tanh_c, c_out: c },
        );
        (h, c)
    }

    /// Sequence-hoisted LSTM input projection: computes the ENTIRE
    /// sequence's pre-activation input half
    /// `x_pack [T·B, in] · w_x [in, 4H] + bias [4H]`
    /// as one GEMM accumulated onto the row-tiled bias (the beta=1 store
    /// variant). Element-wise this equals `add_bias(matmul(x_pack, w_x),
    /// bias)` bitwise — f32 addition commutes — but records ONE node and
    /// runs closed-form backward GEMMs over all timesteps at once.
    pub fn lstm_preact_seq(&mut self, x_pack: Var, w_x: Var, bias: Var) -> Var {
        let xv = self.value(x_pack);
        let wv = self.value(w_x);
        assert_eq!(xv.ndim(), 2, "lstm_preact_seq x_pack must be 2-D");
        assert_eq!(xv.dim(1), wv.dim(0), "lstm_preact_seq inner dims");
        assert_eq!(self.value(bias).shape(), &[wv.dim(1)], "lstm_preact_seq bias shape");
        let mut v = Tensor::repeat_rows(self.value(bias), xv.dim(0));
        v.matmul_acc(xv, wv);
        let rg = self.requires(x_pack) || self.requires(w_x) || self.requires(bias);
        self.push(v, rg, Op::LstmPreactSeq { x_pack, w_x, bias })
    }

    /// One timestep of the hoisted recurrence: copies rows
    /// `[t·batch, (t+1)·batch)` of the hoisted block `seq` and accumulates
    /// the small recurrent product `h [B, hid] · w_h [hid, 4H]` into the
    /// copy with the beta=1 GEMM — no concat, no separate add pass. The
    /// result is the full pre-activation for step `t`, ready for
    /// [`Graph::lstm_cell`].
    pub fn lstm_recur_step(&mut self, seq: Var, t: usize, batch: usize, h: Var, w_h: Var) -> Var {
        let sv = self.value(seq);
        assert!( (t + 1) * batch <= sv.dim(0), "lstm_recur_step rows out of range");
        assert_eq!(self.value(h).dim(0), batch, "lstm_recur_step h batch");
        assert_eq!(self.value(h).dim(1), self.value(w_h).dim(0), "lstm_recur_step inner dims");
        assert_eq!(self.value(w_h).dim(1), sv.dim(1), "lstm_recur_step width");
        let mut v = sv.rows(t * batch, (t + 1) * batch);
        let (hv, wv) = (self.value(h).clone(), self.value(w_h).clone());
        v.matmul_acc(&hv, &wv);
        let rg = self.requires(seq) || self.requires(h) || self.requires(w_h);
        self.push(v, rg, Op::LstmRecurStep { seq, h, w_h, t, batch })
    }

    pub(crate) fn backward_lstm(&mut self, op: &Op, _v: Var, up: &Tensor) {
        match op {
            Op::LstmCell { preact, c_prev, gates, tanh_c, c_out } => {
                // `up` is dL/dh'. The sweep visits h' before c' and all of
                // c's consumers are later than h', so c's gradient is final.
                let dc = self.nodes[c_out.0].grad.clone();
                let (dpre, dcp) =
                    lstm_cell_backward(gates, tanh_c, self.value(*c_prev), Some(up), dc.as_ref());
                self.accumulate(*preact, dpre);
                self.accumulate(*c_prev, dcp);
            }
            Op::LstmCellC { h_out } => {
                if self.nodes[h_out.0].grad.is_some() {
                    // The h' node already ran the joint rule (reading this
                    // node's gradient); nothing left to do.
                    return;
                }
                // h' is unused on the tape: run the rule with dh = 0. The
                // cached intermediates live on the sibling (Arc-cheap to
                // clone out).
                let (preact, c_prev, gates, tanh_c) = match &self.nodes[h_out.0].op {
                    Op::LstmCell { preact, c_prev, gates, tanh_c, .. } => {
                        (*preact, *c_prev, gates.clone(), tanh_c.clone())
                    }
                    _ => unreachable!("LstmCellC sibling must be LstmCell"),
                };
                let (dpre, dcp) =
                    lstm_cell_backward(&gates, &tanh_c, self.value(c_prev), None, Some(up));
                self.accumulate(preact, dpre);
                self.accumulate(c_prev, dcp);
            }
            Op::LstmPreactSeq { x_pack, w_x, bias } => {
                // `up` is dL/dPreact for ALL timesteps' rows at once, so
                // the weight and input gradients are one big GEMM each:
                // dX = dP·W_xᵀ, dW_x = X_packᵀ·dP, db = Σ_rows dP.
                let dx = up.matmul_t(self.value(*w_x));
                let dw = self.value(*x_pack).t_matmul(up);
                let db = up.sum_axis(0);
                self.accumulate(*x_pack, dx);
                self.accumulate(*w_x, dw);
                self.accumulate(*bias, db);
            }
            Op::LstmRecurStep { seq, h, w_h, t, batch } => {
                // dh = up·W_hᵀ and dW_h = hᵀ·up stay per-step (the
                // recurrence is inherently sequential in h).
                let dh = up.matmul_t(self.value(*w_h));
                let dwh = self.value(*h).t_matmul(up);
                self.accumulate(*h, dh);
                self.accumulate(*w_h, dwh);
                // dSeq: `up` flows unchanged into rows [t·B, (t+1)·B) of
                // the hoisted block. Going through `accumulate` would build
                // a full [T·B, 4H] zero tensor per step — O(T²) over the
                // sweep — so add the row block into the seq grad slot
                // directly. Sound for the same reason the generic path is:
                // every consumer of `seq` (these recur-step nodes) has a
                // higher index, so the sweep has not yet visited `seq`.
                if self.nodes[seq.0].requires_grad {
                    if self.nodes[seq.0].grad.is_none() {
                        let z = self.nodes[seq.0].value.zeros_like();
                        self.nodes[seq.0].grad = Some(z);
                    }
                    let cols = up.dim(1);
                    let g = self.nodes[seq.0].grad.as_mut().unwrap();
                    let dst = &mut g.as_mut_slice()[t * batch * cols..(t + 1) * batch * cols];
                    for (d, &s) in dst.iter_mut().zip(up.as_slice()) {
                        *d += s;
                    }
                }
            }
            _ => unreachable!("backward_lstm on non-LSTM op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::grad_check;

    fn seeded(seed: u64, dims: &[usize]) -> Tensor {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let data = (0..dims.iter().product())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    /// The unfused 8-op reference: the exact chain `legw_nn::LstmCell`
    /// recorded before fusion.
    fn unfused_cell(g: &mut Graph, preact: Var, c_prev: Var, hid: usize) -> (Var, Var) {
        let i = g.slice_cols(preact, 0, hid);
        let f = g.slice_cols(preact, hid, 2 * hid);
        let gg = g.slice_cols(preact, 2 * hid, 3 * hid);
        let o = g.slice_cols(preact, 3 * hid, 4 * hid);
        let i = g.sigmoid(i);
        let f = g.sigmoid(f);
        let gg = g.tanh(gg);
        let o = g.sigmoid(o);
        let fc = g.mul(f, c_prev);
        let ig = g.mul(i, gg);
        let c = g.add(fc, ig);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        (h, c)
    }

    /// Loss touching both outputs so both gradient paths are exercised.
    fn both_outputs_loss(g: &mut Graph, h: Var, c: Var) -> Var {
        let hh = g.mul(h, h);
        let cc = g.mul(c, c);
        let s = g.add(hh, cc);
        g.sum_all(s)
    }

    /// Forward values and parameter gradients must match the unfused
    /// reference graph bitwise, including at boundary shapes (B=1, H=1,
    /// H not a multiple of 8).
    #[test]
    fn fused_matches_unfused_reference_graph() {
        for &(b, hid) in &[(1usize, 1usize), (1, 5), (4, 13), (3, 8), (7, 3)] {
            let preact0 = seeded(b as u64 * 41 + hid as u64, &[b, 4 * hid]);
            let c0 = seeded(b as u64 * 59 + hid as u64 + 1, &[b, hid]);

            let mut gf = Graph::new();
            let pa_f = gf.param(preact0.clone());
            let cp_f = gf.param(c0.clone());
            let (h_f, c_f) = gf.lstm_cell(pa_f, cp_f);
            let loss_f = both_outputs_loss(&mut gf, h_f, c_f);
            gf.backward(loss_f);

            let mut gu = Graph::new();
            let pa_u = gu.param(preact0);
            let cp_u = gu.param(c0);
            let (h_u, c_u) = unfused_cell(&mut gu, pa_u, cp_u, hid);
            let loss_u = both_outputs_loss(&mut gu, h_u, c_u);
            gu.backward(loss_u);

            assert_eq!(
                gf.value(h_f).as_slice(),
                gu.value(h_u).as_slice(),
                "h forward mismatch at B={b} H={hid}"
            );
            assert_eq!(
                gf.value(c_f).as_slice(),
                gu.value(c_u).as_slice(),
                "c forward mismatch at B={b} H={hid}"
            );
            for (name, vf, vu) in [("preact", pa_f, pa_u), ("c_prev", cp_f, cp_u)] {
                let a = gf.grad(vf).unwrap().as_slice();
                let w = gu.grad(vu).unwrap().as_slice();
                for (x, y) in a.iter().zip(w) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "{name} grad mismatch at B={b} H={hid}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// Finite-difference check through the fused op, both outputs in the
    /// loss, at boundary shapes.
    #[test]
    fn lstm_cell_finite_difference_check() {
        for &(b, hid) in &[(1usize, 1usize), (2, 3), (3, 13)] {
            grad_check(
                &[
                    seeded(b as u64 + 100 * hid as u64, &[b, 4 * hid]),
                    seeded(b as u64 + 100 * hid as u64 + 7, &[b, hid]),
                ],
                |g, vs| {
                    let (h, c) = g.lstm_cell(vs[0], vs[1]);
                    both_outputs_loss(g, h, c)
                },
            );
        }
    }

    /// Only `h'` feeds the loss: `c'` has no gradient, the h-node rule
    /// must handle `dc = None`.
    #[test]
    fn grads_flow_when_only_h_used() {
        grad_check(&[seeded(21, &[2, 12]), seeded(22, &[2, 3])], |g, vs| {
            let (h, _c) = g.lstm_cell(vs[0], vs[1]);
            let hh = g.mul(h, h);
            g.sum_all(hh)
        });
    }

    /// Only `c'` feeds the loss: `h'` never receives a gradient, so the
    /// c-sibling must run the rule itself with `dh = 0`.
    #[test]
    fn grads_flow_when_only_c_used() {
        grad_check(&[seeded(31, &[2, 12]), seeded(32, &[2, 3])], |g, vs| {
            let (_h, c) = g.lstm_cell(vs[0], vs[1]);
            let cc = g.mul(c, c);
            g.sum_all(cc)
        });
        // And against the unfused reference, bit-for-bit path equivalence.
        let preact0 = seeded(33, &[3, 20]);
        let c0 = seeded(34, &[3, 5]);
        let mut gf = Graph::new();
        let pa_f = gf.param(preact0.clone());
        let cp_f = gf.param(c0.clone());
        let (_hf, cf) = gf.lstm_cell(pa_f, cp_f);
        let sf = gf.sum_all(cf);
        gf.backward(sf);
        let mut gu = Graph::new();
        let pa_u = gu.param(preact0);
        let cp_u = gu.param(c0);
        let (_hu, cu) = unfused_cell(&mut gu, pa_u, cp_u, 5);
        let su = gu.sum_all(cu);
        gu.backward(su);
        for (x, y) in gf.grad(pa_f).unwrap().as_slice().iter().zip(gu.grad(pa_u).unwrap().as_slice())
        {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// `lstm_preact_seq` must match the unfused `add_bias(matmul(x, w), b)`
    /// chain bitwise (f32 addition commutes, and the accumulate-GEMM store
    /// computes the identical per-element sum), with identical gradients.
    #[test]
    fn preact_seq_matches_matmul_add_bias() {
        for &(rows, ind, hid4) in &[(1usize, 1usize, 4usize), (6, 5, 12), (13, 7, 20), (24, 28, 512)] {
            let x0 = seeded(rows as u64 * 3 + ind as u64, &[rows, ind]);
            let w0 = seeded(rows as u64 * 7 + hid4 as u64, &[ind, hid4]);
            let b0 = seeded(rows as u64 + 11, &[hid4]);

            let mut gh = Graph::new();
            let (xh, wh, bh) = (gh.param(x0.clone()), gh.param(w0.clone()), gh.param(b0.clone()));
            let ph = gh.lstm_preact_seq(xh, wh, bh);
            let th = gh.tanh(ph);
            let lh = gh.sum_all(th);
            gh.backward(lh);

            let mut gu = Graph::new();
            let (xu, wu, bu) = (gu.param(x0), gu.param(w0), gu.param(b0));
            let mm = gu.matmul(xu, wu);
            let pu = gu.add_bias(mm, bu);
            let tu = gu.tanh(pu);
            let lu = gu.sum_all(tu);
            gu.backward(lu);

            assert_eq!(
                gh.value(ph).as_slice(),
                gu.value(pu).as_slice(),
                "preact forward mismatch at [{rows},{ind}]·[{ind},{hid4}]"
            );
            for (name, vh, vu) in [("x", xh, xu), ("w", wh, wu), ("b", bh, bu)] {
                let a = gh.grad(vh).unwrap().as_slice();
                let w = gu.grad(vu).unwrap().as_slice();
                for (p, q) in a.iter().zip(w) {
                    assert!((p - q).abs() <= 1e-5 * (1.0 + q.abs()), "{name} grad: {p} vs {q}");
                }
            }
        }
    }

    /// Finite-difference check straight through the hoisted projection op.
    #[test]
    fn preact_seq_finite_difference_check() {
        grad_check(
            &[seeded(61, &[6, 3]), seeded(62, &[3, 8]), seeded(63, &[8])],
            |g, vs| {
                let p = g.lstm_preact_seq(vs[0], vs[1], vs[2]);
                let t = g.tanh(p);
                g.sum_all(t)
            },
        );
    }

    /// A full hoisted two-step recurrence (preact_seq + recur_step +
    /// lstm_cell) must match the stepwise reference chain
    /// (slice_rows of the pack + matmul + add) within 1e-5 relative, with
    /// matching parameter gradients — including the dSeq row-scatter path,
    /// which accumulates directly into the seq node's gradient slot.
    #[test]
    fn recur_step_chain_matches_stepwise_reference() {
        let (t_len, b, ind, hid) = (3usize, 2usize, 3usize, 5usize);
        let x0 = seeded(71, &[t_len * b, ind]);
        let wx0 = seeded(72, &[ind, 4 * hid]);
        let wh0 = seeded(73, &[hid, 4 * hid]);
        let b0 = seeded(74, &[4 * hid]);
        let h0 = Tensor::zeros(&[b, hid]);
        let c0 = Tensor::zeros(&[b, hid]);

        let run = |hoisted: bool| -> (Vec<f32>, Vec<Vec<f32>>) {
            let mut g = Graph::new();
            let x = g.param(x0.clone());
            let wx = g.param(wx0.clone());
            let wh = g.param(wh0.clone());
            let bias = g.param(b0.clone());
            let mut h = g.input(h0.clone());
            let mut c = g.input(c0.clone());
            let mut hs = Vec::new();
            if hoisted {
                let seq = g.lstm_preact_seq(x, wx, bias);
                for t in 0..t_len {
                    let pre = g.lstm_recur_step(seq, t, b, h, wh);
                    let (h2, c2) = g.lstm_cell(pre, c);
                    h = h2;
                    c = c2;
                    hs.push(h2);
                }
            } else {
                for t in 0..t_len {
                    let xt = g.slice_rows(x, t * b, (t + 1) * b);
                    let xw = g.matmul(xt, wx);
                    let hw = g.matmul(h, wh);
                    let s = g.add(xw, hw);
                    let pre = g.add_bias(s, bias);
                    let (h2, c2) = g.lstm_cell(pre, c);
                    h = h2;
                    c = c2;
                    hs.push(h2);
                }
            }
            let all = g.concat_rows(&hs);
            let sq = g.mul(all, all);
            let loss = g.sum_all(sq);
            g.backward(loss);
            (
                g.value(all).as_slice().to_vec(),
                [x, wx, wh, bias].iter().map(|&v| g.grad(v).unwrap().as_slice().to_vec()).collect(),
            )
        };
        let (vh, gh) = run(true);
        let (vu, gu) = run(false);
        for (a, w) in vh.iter().zip(&vu) {
            assert!((a - w).abs() <= 1e-5 * (1.0 + w.abs()), "forward: {a} vs {w}");
        }
        for (name, (ga, gw)) in ["x", "wx", "wh", "bias"].iter().zip(gh.iter().zip(&gu)) {
            for (p, q) in ga.iter().zip(gw) {
                assert!((p - q).abs() <= 1e-5 * (1.0 + q.abs()), "{name} grad: {p} vs {q}");
            }
        }
    }

    /// Finite-difference check through the full hoisted recurrence,
    /// exercising preact_seq, recur_step, and the fused cell together.
    #[test]
    fn recur_step_finite_difference_check() {
        let (t_len, b, ind, hid) = (2usize, 2usize, 2usize, 3usize);
        grad_check(
            &[
                seeded(81, &[t_len * b, ind]),
                seeded(82, &[ind, 4 * hid]),
                seeded(83, &[hid, 4 * hid]),
                seeded(84, &[4 * hid]),
            ],
            |g, vs| {
                let seq = g.lstm_preact_seq(vs[0], vs[1], vs[3]);
                let mut h = g.input(Tensor::zeros(&[b, hid]));
                let mut c = g.input(Tensor::zeros(&[b, hid]));
                let mut hs = Vec::new();
                for t in 0..t_len {
                    let pre = g.lstm_recur_step(seq, t, b, h, vs[2]);
                    let (h2, c2) = g.lstm_cell(pre, c);
                    h = h2;
                    c = c2;
                    hs.push(h2);
                }
                let all = g.concat_rows(&hs);
                let sq = g.mul(all, all);
                g.sum_all(sq)
            },
        );
    }

    /// Chained steps: the cell state threads through two fused cells, so
    /// `c'` of step 1 receives gradients both from its own consumers and
    /// through step 2's interior. Cross-checked against the unfused chain.
    #[test]
    fn chained_cells_accumulate_cell_path() {
        let (b, hid) = (3usize, 4usize);
        let pa1 = seeded(41, &[b, 4 * hid]);
        let pa2 = seeded(42, &[b, 4 * hid]);
        let c0 = seeded(43, &[b, hid]);

        let run = |fused: bool| -> (Vec<f32>, Vec<f32>, Vec<f32>) {
            let mut g = Graph::new();
            let p1 = g.param(pa1.clone());
            let p2 = g.param(pa2.clone());
            let c = g.param(c0.clone());
            let (h1, c1) = if fused {
                g.lstm_cell(p1, c)
            } else {
                unfused_cell(&mut g, p1, c, hid)
            };
            let (h2, c2) =
                if fused { g.lstm_cell(p2, c1) } else { unfused_cell(&mut g, p2, c1, hid) };
            let hs = g.add(h1, h2);
            let loss = both_outputs_loss(&mut g, hs, c2);
            g.backward(loss);
            (
                g.grad(p1).unwrap().as_slice().to_vec(),
                g.grad(p2).unwrap().as_slice().to_vec(),
                g.grad(c).unwrap().as_slice().to_vec(),
            )
        };
        let (f1, f2, fc) = run(true);
        let (u1, u2, uc) = run(false);
        for (a, w) in f1.iter().zip(&u1).chain(f2.iter().zip(&u2)).chain(fc.iter().zip(&uc)) {
            assert!((a - w).abs() < 1e-5, "chained grad mismatch: {a} vs {w}");
        }
    }
}
