//! Property-based autodiff fuzzing: build random chains of tape ops and
//! verify every analytic gradient against central finite differences.
//!
//! This is the strongest correctness evidence the crate has — any backward
//! rule that composes wrongly with any other is caught here, not just in
//! the per-op unit tests.

use legw_autograd::check::grad_check_tol;
use legw_autograd::{Graph, Var};
use legw_tensor::Tensor;
use proptest::prelude::*;

/// The unary/binary op vocabulary the fuzzer draws from. Each entry maps a
/// current variable (and optionally the auxiliary input) to a new variable,
/// keeping the `[rows, cols]` shape.
#[derive(Clone, Copy, Debug)]
enum FuzzOp {
    Tanh,
    Sigmoid,
    Scale,
    AddScalar,
    AddAux,
    MulAux,
    SubAux,
    MatmulSquare, // multiply by a fixed square matrix (needs cols == rows of aux)
    SoftmaxRows,
    SliceAndPad,  // slice half the columns then concat with itself
}

fn apply(op: FuzzOp, g: &mut Graph, cur: Var, aux: Var, square: Var) -> Var {
    match op {
        FuzzOp::Tanh => g.tanh(cur),
        FuzzOp::Sigmoid => g.sigmoid(cur),
        FuzzOp::Scale => g.scale(cur, 0.7),
        FuzzOp::AddScalar => g.add_scalar(cur, -0.3),
        FuzzOp::AddAux => g.add(cur, aux),
        FuzzOp::MulAux => g.mul(cur, aux),
        FuzzOp::SubAux => g.sub(cur, aux),
        FuzzOp::MatmulSquare => g.matmul(cur, square),
        FuzzOp::SoftmaxRows => g.softmax_rows(cur),
        FuzzOp::SliceAndPad => {
            let cols = g.value(cur).dim(1);
            let half = g.slice_cols(cur, 0, cols / 2);
            let rest = g.slice_cols(cur, cols / 2, cols);
            g.concat_cols(&[rest, half])
        }
    }
}

fn op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        Just(FuzzOp::Tanh),
        Just(FuzzOp::Sigmoid),
        Just(FuzzOp::Scale),
        Just(FuzzOp::AddScalar),
        Just(FuzzOp::AddAux),
        Just(FuzzOp::MulAux),
        Just(FuzzOp::SubAux),
        Just(FuzzOp::MatmulSquare),
        Just(FuzzOp::SoftmaxRows),
        Just(FuzzOp::SliceAndPad),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_op_chains_grad_check(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        rows in 1usize..4,
        cols_half in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let cols = cols_half * 2; // SliceAndPad needs even width
        // deterministic pseudo-random inputs in a grad-check-friendly range
        let gen = |salt: u64, n: usize| -> Vec<f32> {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
            (0..n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        };
        let x0 = Tensor::from_vec(gen(1, rows * cols), &[rows, cols]);
        let aux0 = Tensor::from_vec(gen(2, rows * cols), &[rows, cols]);
        let sq0 = Tensor::from_vec(gen(3, cols * cols), &[cols, cols]);
        let ops_outer = ops.clone();

        grad_check_tol(&[x0, aux0, sq0], 1e-2, 4e-2, move |g, vs| {
            let mut cur = vs[0];
            for &op in &ops_outer {
                cur = apply(op, g, cur, vs[1], vs[2]);
            }
            // squared mean keeps the loss smooth and O(1)
            let sq = g.mul(cur, cur);
            g.mean_all(sq)
        });
    }
}

#[test]
fn deep_chain_remains_stable() {
    // 12 composed ops; gradients must stay finite and check out
    let x0 = Tensor::from_vec(vec![0.3, -0.5, 0.9, 0.1, -0.2, 0.6], &[3, 2]);
    let a0 = Tensor::from_vec(vec![0.1, 0.7, -0.4, 0.2, 0.5, -0.6], &[3, 2]);
    let s0 = Tensor::from_vec(vec![0.4, -0.3, 0.8, 0.2], &[2, 2]);
    grad_check_tol(&[x0, a0, s0], 1e-2, 4e-2, |g, vs| {
        let mut cur = vs[0];
        for i in 0..12 {
            cur = match i % 4 {
                0 => g.tanh(cur),
                1 => g.matmul(cur, vs[2]),
                2 => g.add(cur, vs[1]),
                _ => g.sigmoid(cur),
            };
        }
        let sq = g.mul(cur, cur);
        g.mean_all(sq)
    });
}

#[test]
fn seeded_backward_scales_gradients_linearly() {
    // backward with seed c must produce exactly c × the unit-seed gradients
    let run = |seed_val: f32| {
        let mut g = Graph::new();
        let w = g.param(Tensor::from_vec(vec![0.4, -0.7], &[2]));
        let t = g.tanh(w);
        let s = g.sum_all(t);
        g.backward_seeded(s, Tensor::scalar(seed_val));
        g.grad(w).unwrap().as_slice().to_vec()
    };
    let unit = run(1.0);
    let tripled = run(3.0);
    for (u, t) in unit.iter().zip(&tripled) {
        assert!((t - 3.0 * u).abs() < 1e-6, "{t} vs 3×{u}");
    }
}
