//! Property-based check of the plan optimizer: random elementwise chains
//! captured with fusion on must replay bitwise identically to the same
//! tape captured with fusion off, while executing strictly fewer
//! instructions.
//!
//! The chain vocabulary deliberately includes `relu`, whose backward reads
//! the op's *input* — giving that intermediate a second reader and
//! forcing the fuser to refuse the link. Every chain ends in a
//! `scale → add_scalar` pair, which is always fusible (and whose backward
//! `ScaleG { c: 1.0 }` is always copy-propagated), so the strict
//! instruction-count decrease is well-defined for every generated case.

use legw_autograd::{with_fuse_override, CaptureSpec, Feeds, Graph, Plan, Var};
use legw_tensor::Tensor;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum ChainOp {
    Tanh,
    Sigmoid,
    Relu,
    Scale,
    AddScalar,
}

fn apply(op: ChainOp, g: &mut Graph, cur: Var) -> Var {
    match op {
        ChainOp::Tanh => g.tanh(cur),
        ChainOp::Sigmoid => g.sigmoid(cur),
        ChainOp::Relu => g.relu(cur),
        ChainOp::Scale => g.scale(cur, 0.7),
        ChainOp::AddScalar => g.add_scalar(cur, -0.3),
    }
}

fn op_strategy() -> impl Strategy<Value = ChainOp> {
    prop_oneof![
        Just(ChainOp::Tanh),
        Just(ChainOp::Sigmoid),
        Just(ChainOp::Relu),
        Just(ChainOp::Scale),
        Just(ChainOp::AddScalar),
    ]
}

fn gen(seed: u64, salt: u64, n: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Builds `sum_all(add_scalar(scale(chain(x * w))))` — the tape under test.
fn build(x: &Tensor, w: &Tensor, ops: &[ChainOp]) -> (Graph, Var, Var, Var) {
    let mut g = Graph::new();
    let xv = g.input(x.clone());
    let wv = g.param(w.clone());
    let mut cur = g.mul(xv, wv);
    for &op in ops {
        cur = apply(op, &mut g, cur);
    }
    let sc = g.scale(cur, 0.5);
    let tail = g.add_scalar(sc, 0.25);
    let loss = g.sum_all(tail);
    (g, xv, wv, loss)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn fused_chains_replay_bitwise_with_fewer_instructions(
        ops in proptest::collection::vec(op_strategy(), 2..6),
        rows in 1usize..5,
        cols in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let n = rows * cols;
        let x0 = Tensor::from_vec(gen(seed, 1, n), &[rows, cols]);
        let w0 = Tensor::from_vec(gen(seed, 2, n), &[rows, cols]);
        let (g, xv, wv, loss) = build(&x0, &w0, &ops);
        let spec = CaptureSpec { inputs: &[xv], params: &[wv], loss: Some(loss), outputs: &[] };
        let mut fused =
            with_fuse_override(true, || Plan::capture(&g, &spec)).expect("fused capture");
        let mut plain =
            with_fuse_override(false, || Plan::capture(&g, &spec)).expect("unfused capture");

        let (fs, us) = (fused.stats(), plain.stats());
        prop_assert!(
            fs.fwd_instrs + fs.bwd_instrs < us.fwd_instrs + us.bwd_instrs,
            "no instruction removed: fused {}+{} vs unfused {}+{} for {:?}",
            fs.fwd_instrs, fs.bwd_instrs, us.fwd_instrs, us.bwd_instrs, ops,
        );
        prop_assert!(fs.peak_live_bytes <= us.peak_live_bytes);

        // Replay both plans on fresh data; everything must agree bitwise.
        let x1 = Tensor::from_vec(gen(seed, 3, n), &[rows, cols]);
        let w1 = Tensor::from_vec(gen(seed, 4, n), &[rows, cols]);
        fused.replay_step(&[&x1], &[&w1], &Feeds::default());
        plain.replay_step(&[&x1], &[&w1], &Feeds::default());
        prop_assert_eq!(fused.loss().to_bits(), plain.loss().to_bits());
        let gf = fused.param_grad(0).expect("fused grad");
        let gp = plain.param_grad(0).expect("unfused grad");
        for (a, b) in gf.as_slice().iter().zip(gp.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "grad diverged: {} vs {}", a, b);
        }
    }
}
