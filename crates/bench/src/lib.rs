//! # legw-bench
//!
//! The reproduction harness. The `repro` binary regenerates every table and
//! figure of the paper's evaluation (run `repro help` for the list); this
//! library holds the shared plumbing: aligned table printing, CSV capture
//! into `results/`, and batch-sweep helpers.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned text table that doubles as a CSV writer.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience for building a row from displayable values.
    pub fn row_of(&mut self, cells: &[&dyn Display]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes `results/<id>.csv`.
    pub fn emit(&self, id: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(id) {
            eprintln!("warning: could not write results/{id}.csv: {e}");
        }
    }

    /// Writes the CSV capture.
    pub fn write_csv(&self, id: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{id}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }
}

/// Formats an LR as both a decimal and the paper's `2^x` notation.
pub fn fmt_lr_pow2(lr: f64) -> String {
    format!("{lr:.5} (2^{:+.1})", lr.log2())
}

/// Doubling batch sweep `base, 2·base, …, max` (inclusive).
pub fn batch_sweep(base: usize, max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = base;
    while b <= max {
        out.push(b);
        b *= 2;
    }
    out
}

/// True when `LEGW_QUICK` asks for reduced sweeps (CI-speed smoke runs).
pub fn quick_mode() -> bool {
    std::env::var("LEGW_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Installs the `LEGW_THREADS` budget into the kernel thread pool and pins
/// the SIMD kernel choice (`LEGW_KERNEL`, else CPUID-best) for the whole
/// run. Bench binaries call this at the top of `main`, before the first
/// kernel runs; the variables themselves are parsed by
/// [`legw::ExecConfig::from_env`] — the library's single environment read —
/// this merely forwards the result.
pub fn init_threads_from_env() {
    let cfg = legw::ExecConfig::from_env();
    if let Some(t) = cfg.threads {
        legw_parallel::set_default_threads(t);
    }
    match cfg.kernel {
        Some(k) => {
            legw_tensor::kernels::force(k);
        }
        None => {
            legw_tensor::kernels::init();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn batch_sweep_doubles() {
        assert_eq!(batch_sweep(32, 256), vec![32, 64, 128, 256]);
        assert_eq!(batch_sweep(20, 25), vec![20]);
    }

    #[test]
    fn lr_pow2_formatting() {
        let s = fmt_lr_pow2(8.0);
        assert!(s.contains("2^+3.0"), "{s}");
    }
}
pub mod experiments;
pub mod plot;
