//! Terminal line charts for the captured experiment CSVs — a quick visual
//! check of the figure shapes without leaving the shell:
//!
//! ```text
//! cargo run --release -p legw-bench --bin repro -- plot results/fig3_traces.csv epoch L batch
//! ```

use std::collections::BTreeMap;

/// One named series of `(x, y)` points.
pub type Series = (String, Vec<(f64, f64)>);

/// Renders series as an ASCII scatter chart of `width × height` cells, with
/// per-series glyphs, axis ranges annotated, and a legend.
pub fn line_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small: {width}x{height}");
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let pts: Vec<(f64, f64)> =
        series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if pts.is_empty() {
        return "(no data)\n".into();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        if x.is_finite() && y.is_finite() {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
    }
    if !x0.is_finite() || !y0.is_finite() {
        return "(no finite data)\n".into();
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, points)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("y: [{y0:.4}, {y1:.4}]\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("x: [{x0:.4}, {x1:.4}]\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", glyphs[si % glyphs.len()], name));
    }
    out
}

/// Loads `(x, y)` series from a CSV produced by [`crate::Table::write_csv`],
/// optionally grouped into one series per distinct value of `group_col`.
pub fn series_from_csv(
    csv: &str,
    x_col: &str,
    y_col: &str,
    group_col: Option<&str>,
) -> Result<Vec<Series>, String> {
    let mut lines = csv.lines();
    let header = lines.next().ok_or("empty csv")?;
    let cols: Vec<&str> = header.split(',').collect();
    let find = |name: &str| {
        cols.iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("column '{name}' not in header {cols:?}"))
    };
    let xi = find(x_col)?;
    let yi = find(y_col)?;
    let gi = group_col.map(find).transpose()?;

    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (ln, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols.len() {
            return Err(format!("row {} has {} fields, expected {}", ln + 2, fields.len(), cols.len()));
        }
        let x: f64 = fields[xi].trim().parse().map_err(|_| format!("bad x '{}' row {}", fields[xi], ln + 2))?;
        let y: f64 = fields[yi].trim().parse().map_err(|_| format!("bad y '{}' row {}", fields[yi], ln + 2))?;
        let key = gi.map(|g| fields[g].trim().to_string()).unwrap_or_else(|| y_col.to_string());
        groups.entry(key).or_default().push((x, y));
    }
    Ok(groups.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_places_extremes_on_edges() {
        let s = vec![("a".to_string(), vec![(0.0, 0.0), (10.0, 5.0)])];
        let c = line_chart(&s, 20, 6);
        let rows: Vec<&str> = c.lines().collect();
        // min point bottom-left, max point top-right
        assert!(rows[1].ends_with('*'), "top row should end with max point: {c}");
        assert!(rows[6].starts_with("|*"), "bottom row should start with min point: {c}");
        assert!(c.contains("x: [0.0000, 10.0000]"));
        assert!(c.contains("y: [0.0000, 5.0000]"));
    }

    #[test]
    fn chart_handles_degenerate_ranges() {
        let s = vec![("flat".to_string(), vec![(1.0, 2.0), (1.0, 2.0)])];
        let c = line_chart(&s, 16, 4);
        assert!(c.contains('*'));
        let empty: Vec<Series> = vec![("e".into(), vec![])];
        assert_eq!(line_chart(&empty, 16, 4), "(no data)\n");
    }

    #[test]
    fn csv_parsing_and_grouping() {
        let csv = "batch,epoch,L\n64,0.0,0.5\n64,1.0,0.7\n128,0.0,0.4\n";
        let s = series_from_csv(csv, "epoch", "L", Some("batch")).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "128");
        assert_eq!(s[1].0, "64");
        assert_eq!(s[1].1, vec![(0.0, 0.5), (1.0, 0.7)]);
    }

    #[test]
    fn csv_errors_are_descriptive() {
        assert!(series_from_csv("", "a", "b", None).is_err());
        let bad_col = series_from_csv("a,b\n1,2\n", "a", "zz", None).unwrap_err();
        assert!(bad_col.contains("'zz'"));
        let ragged = series_from_csv("a,b\n1\n", "a", "b", None).unwrap_err();
        assert!(ragged.contains("fields"));
        let nonnum = series_from_csv("a,b\nx,2\n", "a", "b", None).unwrap_err();
        assert!(nonnum.contains("bad x"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let s = vec![
            ("one".to_string(), vec![(0.0, 0.0)]),
            ("two".to_string(), vec![(1.0, 1.0)]),
        ];
        let c = line_chart(&s, 16, 4);
        assert!(c.contains("* one"));
        assert!(c.contains("o two"));
    }
}
