//! Table 1 (application inventory), Table 2 (GNMT batch scaling under
//! LEGW), and Table 3 (ImageNet/ResNet batch scaling under LEGW + LARS).

use crate::{batch_sweep, fmt_lr_pow2, quick_mode, Table};
use legw::apps::{self, App};
use legw_schedules::Legw;

/// Table 1: the application registry with paper vs substitute columns.
pub fn table1() {
    let mut t = Table::new(
        "Table 1 — applications (paper configuration → this repo's synthetic substitute)",
        &["app", "paper dataset", "paper target", "substitute", "metric", "solver"],
    );
    for s in apps::registry() {
        t.row(vec![
            s.name.into(),
            s.paper_dataset.into(),
            s.paper_target.into(),
            s.substitute.into(),
            s.metric.into(),
            format!("{:?}", s.solver),
        ]);
    }
    t.emit("table1");
}

/// Table 2: GNMT batch scaling with LEGW — one row per batch size with the
/// LEGW-derived LR/warmup and the measured BLEU. Returns
/// `(batch, lr, warmup_epochs, bleu)` rows.
pub fn table2(seed: u64) -> Vec<(usize, f64, f64, f64)> {
    let spec = apps::spec(App::Gnmt);
    let max = if quick_mode() { spec.baseline.batch_size() * 4 } else { spec.max_batch };
    let mut t = Table::new(
        "Table 2 — GNMT: LEGW scales the batch without BLEU loss (paper: 22.7→22.2 over 256→4K)",
        &["batch", "init LR", "warmup epochs", "epochs", "BLEU"],
    );
    let mut rows = Vec::new();
    for batch in batch_sweep(spec.baseline.batch_size(), max) {
        let sched = Legw::scale_to(&spec.baseline, batch);
        let rep = apps::run(App::Gnmt, &sched, spec.solver, seed);
        t.row(vec![
            batch.to_string(),
            fmt_lr_pow2(sched.peak_lr()),
            format!("{:.4}", sched.warmup_epochs()),
            format!("{}", sched.total_epochs()),
            format!("{:.2}", rep.final_metric),
        ]);
        rows.push((batch, sched.peak_lr(), sched.warmup_epochs(), rep.final_metric));
    }
    t.emit("table2");
    rows
}

/// Table 3: ImageNet/ResNet batch scaling with LEGW + LARS. Returns
/// `(batch, lr, warmup_epochs, top1, topk)` rows.
pub fn table3(seed: u64) -> Vec<(usize, f64, f64, f64, f64)> {
    let spec = apps::spec(App::ImageNet);
    let max = if quick_mode() { spec.baseline.batch_size() * 4 } else { spec.max_batch };
    let mut t = Table::new(
        "Table 3 — ImageNet/ResNet: LEGW+LARS scales the batch at constant accuracy (paper: ~93% top-5, 1K→32K)",
        &["batch", "init LR", "warmup epochs", "epochs", "top-1", "top-3"],
    );
    let mut rows = Vec::new();
    for batch in batch_sweep(spec.baseline.batch_size(), max) {
        let sched = Legw::scale_to(&spec.baseline, batch);
        let rep = apps::run(App::ImageNet, &sched, spec.solver, seed);
        let topk = rep.secondary_metric.unwrap_or(0.0);
        t.row(vec![
            batch.to_string(),
            fmt_lr_pow2(sched.peak_lr()),
            format!("{:.4}", sched.warmup_epochs()),
            format!("{}", sched.total_epochs()),
            format!("{:.4}", rep.final_metric),
            format!("{topk:.4}"),
        ]);
        rows.push((batch, sched.peak_lr(), sched.warmup_epochs(), rep.final_metric, topk));
    }
    t.emit("table3");
    rows
}

/// Quick sanity pass: every app trained once at its tuned baseline. Returns
/// `(name, metric, diverged)` rows.
pub fn sanity(seed: u64) -> Vec<(String, f64, bool)> {
    let mut t = Table::new(
        "Sanity — every application at its tuned baseline",
        &["app", "batch", "peak LR", "epochs", "metric", "value", "diverged"],
    );
    let mut rows = Vec::new();
    for s in apps::registry() {
        let rep = apps::run(s.app, &s.baseline, s.solver, seed);
        t.row(vec![
            s.name.into(),
            s.baseline.batch_size().to_string(),
            format!("{:.4}", s.baseline.peak_lr()),
            format!("{}", s.baseline.total_epochs()),
            s.metric.into(),
            format!("{:.4}", rep.final_metric),
            rep.diverged.to_string(),
        ]);
        rows.push((s.name.to_string(), rep.final_metric, rep.diverged));
    }
    t.emit("sanity");
    rows
}
