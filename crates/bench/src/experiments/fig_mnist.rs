//! The MNIST/PTB comparison figures: Figure 5 (Adam vs prior tuning
//! techniques), Figures 7/8 (comprehensive LR tuning vs LEGW at the largest
//! batch, normal and 4× epoch budgets), Figure 9 (Adam vs Adadelta).

use crate::{batch_sweep, quick_mode, Table};
use legw::apps::{self, App};
use legw::tuning::{grid_search, log2_grid};
use legw_optim::SolverKind;
use legw_schedules::{scale_with, BaselineSchedule, Legw, ScalingRule, WarmupRule};

fn adam_grid() -> Vec<f64> {
    if quick_mode() {
        vec![5e-4, 2e-3, 8e-3]
    } else {
        // the paper's MNIST Adam space is {0.0001 … 0.0010}; our synthetic
        // task tolerates a slightly wider octave grid
        log2_grid(2e-4, 0.0, 6.0, 1)
    }
}

/// Tunes Adam's LR at the app's baseline batch size (once), as the paper
/// does before comparing across batch sizes.
pub fn tune_adam_baseline(app: App, seed: u64) -> f64 {
    let spec = apps::spec(app);
    let hib = apps::higher_is_better(app);
    // Descending grid: on metric ties (easy baselines saturate) the larger
    // LR wins, which is what a practitioner tuning for scale would keep.
    let mut grid = adam_grid();
    grid.reverse();
    let r = grid_search(&grid, hib, |lr| {
        let sched = spec.baseline.with_peak_lr(lr).with_warmup(0.0);
        apps::run(app, &sched, SolverKind::Adam, seed).final_metric
    });
    r.best_value
}

/// Figure 5 — MNIST: Adam (η₀ tuned at the baseline batch) against the four
/// prior tuning techniques, across batch sizes. Returns rows
/// `(batch, [fixed, linear, +poly, +warmup, adam])` accuracies.
pub fn fig5(seed: u64) -> Vec<(usize, [f64; 5])> {
    let spec = apps::spec(App::MnistLstm);
    let base = &spec.baseline;
    // This figure is about *where the prior recipes break*, so it sweeps
    // past the LEGW-certified range into the failure regime (4x beyond).
    let max = if quick_mode() { base.batch_size() * 4 } else { spec.max_batch * 4 };
    let adam_lr = tune_adam_baseline(App::MnistLstm, seed);
    println!("fig5: Adam LR tuned at baseline batch = {adam_lr:.5}");

    let mut t = Table::new(
        "Figure 5 — MNIST: Adam beats the prior tuning techniques at large batch",
        &["batch", "5.1 fixed lr", "5.2 linear", "5.3 +poly2", "5.4 +warmup", "Adam (tuned)"],
    );
    let mut rows = Vec::new();
    for batch in batch_sweep(base.batch_size(), max) {
        // 5.1 fixed η0, no warmup
        let s1 = scale_with(base, batch, ScalingRule::Identity, WarmupRule::None);
        // 5.2 linear scaling
        let s2 = scale_with(base, batch, ScalingRule::Linear, WarmupRule::None);
        // 5.3 linear scaling + poly decay p=2
        let lin = scale_with(base, batch, ScalingRule::Linear, WarmupRule::None);
        let s3 = BaselineSchedule::poly(batch, lin.peak_lr(), 0.0, base.total_epochs(), 2.0);
        // 5.4 linear scaling + poly + fixed warmup (paper: 5 of 25 epochs →
        // here 1 of 5)
        let s4 = BaselineSchedule::poly(batch, lin.peak_lr(), 1.0, base.total_epochs(), 2.0);
        // Adam with the once-tuned LR, constant schedule
        let sa = BaselineSchedule::constant(batch, adam_lr, 0.0, base.total_epochs());

        let accs = [
            apps::run(App::MnistLstm, &s1, spec.solver, seed).final_metric,
            apps::run(App::MnistLstm, &s2, spec.solver, seed).final_metric,
            apps::run(App::MnistLstm, &s3, spec.solver, seed).final_metric,
            apps::run(App::MnistLstm, &s4, spec.solver, seed).final_metric,
            apps::run(App::MnistLstm, &sa, SolverKind::Adam, seed).final_metric,
        ];
        t.row(vec![
            batch.to_string(),
            format!("{:.4}", accs[0]),
            format!("{:.4}", accs[1]),
            format!("{:.4}", accs[2]),
            format!("{:.4}", accs[3]),
            format!("{:.4}", accs[4]),
        ]);
        rows.push((batch, accs));
    }
    t.emit("fig5");
    rows
}

/// Comprehensive-tuning experiment shared by Figures 7 and 8: at the
/// largest batch, sweep the LR of the baseline-style schedule (same decay,
/// same un-scaled warmup — only LR tuned, as in §5.3), and compare the best
/// against the single untuned LEGW configuration.
///
/// Returns `(lr, metric)` trials plus the LEGW metric.
pub fn tuning_vs_legw(app: App, epochs_factor: f64, seed: u64) -> (Vec<(f64, f64)>, f64) {
    let spec = apps::spec(app);
    let hib = apps::higher_is_better(app);
    let batch = if quick_mode() { spec.baseline.batch_size() * 4 } else { spec.max_batch };
    let base = spec.baseline.with_total_epochs(spec.baseline.total_epochs() * epochs_factor);

    // LEGW: derived, untuned
    let legw_sched = Legw::scale_to(&base, batch);
    let legw_metric = apps::run(app, &legw_sched, spec.solver, seed).final_metric;

    // comprehensive tuning: baseline decay + baseline (unscaled) warmup,
    // LR swept over octaves around the baseline value
    let grid = if quick_mode() {
        log2_grid(base.peak_lr(), 0.0, 4.0, 1)
    } else {
        log2_grid(base.peak_lr(), -1.0, 5.0, 1)
    };
    let trials = grid_search(&grid, hib, |lr| {
        let mut s = base.with_peak_lr(lr);
        s = BaselineSchedule::new(
            batch,
            s.peak_lr(),
            s.warmup_epochs(),
            s.total_epochs(),
            s.decay().clone(),
        );
        apps::run(app, &s, spec.solver, seed).final_metric
    });
    (trials.trials, legw_metric)
}

/// Figure 7 — comprehensive LR tuning at the largest batch vs LEGW, for
/// MNIST (7.1) and PTB-small (7.2). Returns per-app `(best_tuned, legw)`.
pub fn fig7(seed: u64) -> Vec<(&'static str, f64, f64)> {
    fig7_or_8("Figure 7", "fig7", 1.0, seed)
}

/// Figure 8 — the same comparison with a 4× epoch budget ("train longer").
pub fn fig8(seed: u64) -> Vec<(&'static str, f64, f64)> {
    fig7_or_8("Figure 8 (4x epochs)", "fig8", 4.0, seed)
}

fn fig7_or_8(
    title: &str,
    id: &str,
    epochs_factor: f64,
    seed: u64,
) -> Vec<(&'static str, f64, f64)> {
    let mut t = Table::new(
        format!("{title} — comprehensive LR tuning at the largest batch cannot beat LEGW"),
        &["app", "lr", "tuned metric", "LEGW metric"],
    );
    let mut out = Vec::new();
    for (app, name) in [(App::MnistLstm, "mnist (acc)"), (App::PtbSmall, "ptb-small (ppl)")] {
        let (trials, legw) = tuning_vs_legw(app, epochs_factor, seed);
        let hib = apps::higher_is_better(app);
        for (lr, m) in &trials {
            t.row(vec![name.into(), format!("{lr:.4}"), format!("{m:.4}"), String::new()]);
        }
        let best = trials
            .iter()
            .map(|&(_, m)| m)
            .fold(if hib { f64::MIN } else { f64::MAX }, |a, b| if hib { a.max(b) } else { a.min(b) });
        t.row(vec![name.into(), "LEGW".into(), format!("(best tuned {best:.4})"), format!("{legw:.4}")]);
        out.push((name, best, legw));
    }
    t.emit(id);
    out
}

/// Figure 9 — Adam vs Adadelta with default hyper-parameters, MNIST and
/// PTB-small, across batch sizes. Returns `(app, batch, adam, adadelta)`.
pub fn fig9(seed: u64) -> Vec<(&'static str, usize, f64, f64)> {
    let mut t = Table::new(
        "Figure 9 — default-hyper Adam vs Adadelta (paper: Adam much better)",
        &["app", "batch", "Adam", "Adadelta"],
    );
    let mut out = Vec::new();
    for (app, name) in [(App::MnistLstm, "mnist (acc)"), (App::PtbSmall, "ptb-small (ppl)")] {
        let spec = apps::spec(app);
        let max = if quick_mode() { spec.baseline.batch_size() * 4 } else { spec.max_batch };
        for batch in batch_sweep(spec.baseline.batch_size(), max) {
            // defaults: Adam lr 1e-3; Adadelta needs no LR (multiplier 1)
            let sa = BaselineSchedule::constant(batch, 1e-3, 0.0, spec.baseline.total_epochs());
            let sd = BaselineSchedule::constant(batch, 1.0, 0.0, spec.baseline.total_epochs());
            let adam = apps::run(app, &sa, SolverKind::Adam, seed).final_metric;
            let ada = apps::run(app, &sd, SolverKind::Adadelta, seed).final_metric;
            t.row(vec![
                name.into(),
                batch.to_string(),
                format!("{adam:.4}"),
                format!("{ada:.4}"),
            ]);
            out.push((name, batch, adam, ada));
        }
    }
    t.emit("fig9");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_grid_is_positive_and_sorted() {
        let g = adam_grid();
        assert!(!g.is_empty());
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn paper_adam_space_shape() {
        use legw::tuning::linear_grid;
        // documented in §5.2: {0.0001 … 0.0010} / {0.001 … 0.020}
        let g = linear_grid(0.0001, 0.0001, 10);
        assert_eq!(g.len(), 10);
        assert!((g[9] - 0.001).abs() < 1e-12);
    }
}
