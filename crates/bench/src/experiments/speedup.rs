//! Figure 4 and §7 — wall-clock speedups from LEGW's batch scaling.
//!
//! Two ingredients, combined exactly as the paper does:
//! 1. *accuracy preservation* is measured by really training the synthetic
//!    applications at the baseline and at the largest LEGW batch;
//! 2. *wall-clock time* comes from the calibrated cluster performance model
//!    at the paper's own dataset/batch scales (`legw-cluster-sim`), since
//!    the paper's numbers are TPU wall-clock.

use crate::{quick_mode, Table};
use legw::apps::{self, App};
use legw_cluster_sim::presets;
use legw_schedules::Legw;

/// Figure 4 — per-application speedup bars plus the 5.3× average headline.
/// Returns `(name, baseline_metric, legw_metric, speedup)`.
pub fn fig4(seed: u64) -> Vec<(String, f64, f64, f64)> {
    let apps_list = [
        (App::MnistLstm, "mnist-lstm"),
        (App::PtbSmall, "ptb-small"),
        (App::PtbLarge, "ptb-large"),
        (App::Gnmt, "gnmt"),
    ];
    let jobs = presets::paper_jobs();
    let ranges = presets::paper_batch_ranges();

    let mut t = Table::new(
        "Figure 4 — LEGW batch scaling: accuracy preserved (measured) and wall-clock speedup (simulated at paper scale)",
        &["app", "metric @ base batch", "metric @ LEGW max batch", "paper batches", "speedup"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (app, name) in apps_list {
        let spec = apps::spec(app);
        let max_batch =
            if quick_mode() { spec.baseline.batch_size() * 4 } else { spec.max_batch };
        let base_rep = apps::run(app, &spec.baseline, spec.solver, seed);
        let big_sched = Legw::scale_to(&spec.baseline, max_batch);
        let big_rep = apps::run(app, &big_sched, spec.solver, seed);

        let (_, job, cluster) = jobs.iter().find(|(n, _, _)| *n == name).unwrap();
        let (_, small, big) = ranges.iter().find(|(n, _, _)| *n == name).unwrap();
        let speedup = job.speedup_same_hardware(cluster, *small, *big);
        speedups.push(speedup);

        t.row(vec![
            name.into(),
            format!("{:.4}", base_rep.final_metric),
            format!("{:.4}", big_rep.final_metric),
            format!("{small}→{big}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push((name.to_string(), base_rep.final_metric, big_rep.final_metric, speedup));
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{avg:.2}x (paper: 5.3x)"),
    ]);
    t.emit("fig4");
    rows
}

/// §7 — the ImageNet pod anecdote (7 min @ 32K vs 16 min @ 8K) and the GNMT
/// single-TPU anecdote (2 h @ 256 vs 33 min @ 4K). Returns
/// `(label, minutes)` rows.
pub fn speedup_section7() -> Vec<(String, f64)> {
    let jobs = presets::paper_jobs();
    let mut t = Table::new(
        "§7 — wall-clock projections from the calibrated cluster model",
        &["configuration", "minutes", "paper reports"],
    );
    let mut out = Vec::new();

    let (_, imagenet, pod) =
        jobs.iter().find(|(n, _, _)| *n == "imagenet-resnet50").unwrap();
    for (batch, paper) in [(8192usize, "16 min"), (32768, "7 min")] {
        let m = imagenet.time_to_train_secs(pod, batch) / 60.0;
        t.row(vec![
            format!("ImageNet/ResNet-50 @ {batch} on TPU-v2 pod"),
            format!("{m:.1}"),
            paper.into(),
        ]);
        out.push((format!("imagenet@{batch}"), m));
    }

    let (_, gnmt, tpu) = jobs.iter().find(|(n, _, _)| *n == "gnmt").unwrap();
    for (batch, paper) in [(256usize, ">120 min"), (4096, "33 min")] {
        let m = gnmt.time_to_train_secs(tpu, batch) / 60.0;
        t.row(vec![
            format!("GNMT @ {batch} on one TPU-v2"),
            format!("{m:.1}"),
            paper.into(),
        ]);
        out.push((format!("gnmt@{batch}"), m));
    }
    t.emit("speedup");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section7_shape_holds() {
        let rows = speedup_section7();
        let get = |k: &str| rows.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("imagenet@32768") < get("imagenet@8192"));
        assert!(get("gnmt@4096") < get("gnmt@256"));
        // GNMT baseline is in the hours regime, scaled run in fractions of it
        assert!(get("gnmt@256") / get("gnmt@4096") > 2.5);
    }
}
