//! `repro summary` — the reproduction scorecard: reads the captured
//! `results/*.csv` files and checks each figure/table's *shape criterion*
//! (the claim EXPERIMENTS.md records) programmatically.

use crate::Table;
use std::path::Path;

/// Outcome of one shape check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Criterion satisfied.
    Pass,
    /// Criterion violated (details attached).
    Warn(String),
    /// The CSV has not been generated yet.
    Missing,
}

impl Verdict {
    fn cell(&self) -> String {
        match self {
            Verdict::Pass => "PASS".into(),
            Verdict::Warn(d) => format!("WARN: {d}"),
            Verdict::Missing => "missing (run the experiment first)".into(),
        }
    }
}

fn load(dir: &Path, id: &str) -> Option<Vec<Vec<String>>> {
    let text = std::fs::read_to_string(dir.join(format!("{id}.csv"))).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        if !line.trim().is_empty() {
            rows.push(line.split(',').map(|s| s.trim().to_string()).collect());
        }
    }
    Some(rows)
}

fn col_f64(rows: &[Vec<String>], idx: usize) -> Vec<f64> {
    rows.iter().filter_map(|r| r.get(idx)?.parse().ok()).collect()
}

/// Table 2 shape: BLEU flat across the sweep (max−min small relative to the
/// level).
pub fn check_table2(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "table2") else { return Verdict::Missing };
    let bleu = col_f64(&rows, 4);
    if bleu.len() < 2 {
        return Verdict::Warn("too few rows".into());
    }
    let max = bleu.iter().cloned().fold(f64::MIN, f64::max);
    let min = bleu.iter().cloned().fold(f64::MAX, f64::min);
    if max - min <= 0.15 * max.max(1.0) {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("BLEU spread {min:.1}–{max:.1}"))
    }
}

/// Table 3 shape: top-1 stays within 5 points of its best across the sweep.
pub fn check_table3(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "table3") else { return Verdict::Missing };
    let acc = col_f64(&rows, 4);
    if acc.len() < 2 {
        return Verdict::Warn("too few rows".into());
    }
    let max = acc.iter().cloned().fold(f64::MIN, f64::max);
    let min = acc.iter().cloned().fold(f64::MAX, f64::min);
    if max - min <= 0.05 {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("top-1 spread {min:.3}–{max:.3}"))
    }
}

/// Figure 1 shape: at the largest batch, LEGW ≥ both comparison schemes and
/// strictly above the no-retune scheme.
pub fn check_fig1(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "fig1") else { return Verdict::Missing };
    let Some(last) = rows.last() else { return Verdict::Warn("empty".into()) };
    let legw: f64 = last[1].parse().unwrap_or(0.0);
    let goyal: f64 = last[2].parse().unwrap_or(0.0);
    let fixed: f64 = last[3].parse().unwrap_or(0.0);
    if legw + 1e-9 >= goyal && legw > fixed {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("legw {legw:.3} vs linear {goyal:.3} / no-retune {fixed:.3}"))
    }
}

/// Figure 3 shape: the dip epoch is non-decreasing in batch size.
pub fn check_fig3(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "fig3") else { return Verdict::Missing };
    let dips = col_f64(&rows, 3);
    if dips.len() < 2 {
        return Verdict::Warn("too few rows".into());
    }
    if dips.windows(2).all(|w| w[1] >= w[0] - 1e-9) {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("dip epochs not monotone: {dips:?}"))
    }
}

/// Figure 4 shape: the average speedup brackets the paper's 5.3×.
pub fn check_fig4(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "fig4") else { return Verdict::Missing };
    let Some(avg_row) = rows.iter().find(|r| r[0] == "AVERAGE") else {
        return Verdict::Warn("no AVERAGE row".into());
    };
    let s = avg_row[4].trim_end_matches(|c: char| !c.is_ascii_digit() && c != '.');
    let avg: f64 = s
        .split('x')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if (4.0..=7.0).contains(&avg) {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("average speedup {avg:.2} outside [4,7]"))
    }
}

/// Figure 6 shape: LEGW matches or beats fixed-LR Adam at the largest
/// batch on at least half the apps (the documented result: decisive wins
/// where Adam collapses, small losses on the tiny synthetic LMs — see
/// EXPERIMENTS.md caveat 3).
pub fn check_fig6(dir: &Path) -> Verdict {
    let Some(rows) = load(dir, "fig6") else { return Verdict::Missing };
    // group rows by app (col 0); last row per app is the largest batch
    let mut wins = 0usize;
    let mut total = 0usize;
    let mut i = 0;
    while i < rows.len() {
        let app = rows[i][0].clone();
        let mut last = i;
        while last + 1 < rows.len() && rows[last + 1][0] == app {
            last += 1;
        }
        let legw: f64 = rows[last][2].parse().unwrap_or(f64::NAN);
        let adam: f64 = rows[last][3].parse().unwrap_or(f64::NAN);
        let higher_better = !app.contains("ppl");
        total += 1;
        let win = if higher_better { legw + 1e-9 >= adam } else { legw <= adam + 1e-9 };
        if win {
            wins += 1;
        }
        i = last + 1;
    }
    if total == 0 {
        return Verdict::Warn("no apps parsed".into());
    }
    if wins * 2 >= total {
        Verdict::Pass
    } else {
        Verdict::Warn(format!("LEGW wins only {wins}/{total} apps at max batch"))
    }
}

/// Runs every check and prints the scorecard.
pub fn summary(results_dir: &str) -> Vec<(&'static str, Verdict)> {
    let dir = Path::new(results_dir);
    let checks: Vec<(&'static str, Verdict)> = vec![
        ("table2: GNMT BLEU flat under LEGW", check_table2(dir)),
        ("table3: ImageNet top-1 flat under LEGW+LARS", check_table3(dir)),
        ("fig1: LEGW ≥ prior schemes at max batch", check_fig1(dir)),
        ("fig3: curvature landmarks shift right with batch", check_fig3(dir)),
        ("fig4: ~5.3x average speedup", check_fig4(dir)),
        ("fig6: LEGW ≥ fixed-Adam at max batch (≥ half the apps)", check_fig6(dir)),
    ];
    let mut t = Table::new("Reproduction scorecard (shape criteria)", &["criterion", "verdict"]);
    for (name, v) in &checks {
        t.row(vec![name.to_string(), v.cell()]);
    }
    println!("{}", t.render());
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_csv(dir: &Path, id: &str, content: &str) {
        let mut f = std::fs::File::create(dir.join(format!("{id}.csv"))).unwrap();
        f.write_all(content.as_bytes()).unwrap();
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("legw_summary_{tag}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    #[test]
    fn table2_flat_passes_and_spread_warns() {
        let d = tmpdir("t2");
        write_csv(&d, "table2", "batch,lr,warm,ep,BLEU\n16,a,b,8,99.0\n32,a,b,8,100.0\n");
        assert_eq!(check_table2(&d), Verdict::Pass);
        write_csv(&d, "table2", "batch,lr,warm,ep,BLEU\n16,a,b,8,100.0\n32,a,b,8,10.0\n");
        assert!(matches!(check_table2(&d), Verdict::Warn(_)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fig1_ordering_checked() {
        let d = tmpdir("f1");
        write_csv(&d, "fig1", "batch,a,b,c\n128,0.99,0.98,0.84\n");
        assert_eq!(check_fig1(&d), Verdict::Pass);
        write_csv(&d, "fig1", "batch,a,b,c\n128,0.80,0.98,0.84\n");
        assert!(matches!(check_fig1(&d), Verdict::Warn(_)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fig3_monotonicity_checked() {
        let d = tmpdir("f3");
        write_csv(&d, "fig3", "batch,probes,l0,dip,recross,lend\n64,9,0.1,0.4,1.0,2.0\n128,9,0.1,0.9,1.4,2.0\n");
        assert_eq!(check_fig3(&d), Verdict::Pass);
        write_csv(&d, "fig3", "batch,probes,l0,dip,recross,lend\n64,9,0.1,1.4,1.0,2.0\n128,9,0.1,0.2,1.4,2.0\n");
        assert!(matches!(check_fig3(&d), Verdict::Warn(_)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fig6_majority_rule() {
        let d = tmpdir("f6");
        write_csv(
            &d,
            "fig6",
            "app,batch,LEGW,Adam,lr\nmnist (acc),32,1.0,1.0,0.002\nmnist (acc),256,1.0,0.8,0.002\nptb (ppl),8,7.0,6.5,0.01\nptb (ppl),128,8.0,9.0,0.01\n",
        );
        assert_eq!(check_fig6(&d), Verdict::Pass);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_files_reported() {
        let d = tmpdir("none");
        assert_eq!(check_table2(&d), Verdict::Missing);
        assert_eq!(check_fig4(&d), Verdict::Missing);
        let _ = std::fs::remove_dir_all(&d);
    }
}
