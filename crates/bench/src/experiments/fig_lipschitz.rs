//! Figure 3 — the approximate local Lipschitz constant `L(x,g)` over
//! training, for increasing batch sizes.
//!
//! The paper's observation: `L` has an early peak that shifts right roughly
//! linearly as the batch grows — so warmup should lengthen with batch size.
//! On the synthetic MNIST trajectory the raw profile looks different in
//! detail (from initialisation, `L` first *dips* as the gradient leaves the
//! init plateau, then rises steadily as the model sharpens), but the same
//! conclusion falls out: every landmark of the curve — the dip and the
//! return to the initial level, i.e. the entry into the high-curvature
//! region where a large LR is dangerous — arrives *later in epochs* as the
//! batch grows, near-linearly. Covering that region is exactly what
//! linear-epoch warmup does.

use crate::{quick_mode, Table};
use legw::lipschitz::{mnist_lipschitz_trace, LipschitzSample};
use legw_data::SynthMnist;
use legw_optim::SolverKind;
use legw_schedules::{BaselineSchedule, Legw};

/// Epoch of the minimum of a trace.
pub fn dip_epoch(trace: &[LipschitzSample]) -> Option<f64> {
    trace.iter().min_by(|a, b| a.value.total_cmp(&b.value)).map(|s| s.epoch)
}

/// Epoch at which `L` first returns above its initial value (the entry into
/// the sharpening region); `None` when it never does within the trace.
pub fn recross_epoch(trace: &[LipschitzSample]) -> Option<f64> {
    let l0 = trace.first()?.value;
    trace.iter().skip(1).find(|s| s.value > l0).map(|s| s.epoch)
}

/// Runs the Figure 3 experiment on SynthMnist with SGD at batch scales
/// ×1…×8 of 64. Returns `(batch, dip_epoch, recross_epoch_or_budget)` per
/// scale; both landmark sequences are non-decreasing in batch size.
pub fn fig3(seed: u64) -> Vec<(usize, f64, f64)> {
    let data = SynthMnist::generate(777, 2048, 256);
    // constant small LR (LEGW-scaled per batch) — probing the landscape
    // along plain SGD trajectories
    let base = BaselineSchedule::constant(64, 0.05, 0.0, 3.0);
    let budget = 3.0;
    let batches: Vec<usize> =
        if quick_mode() { vec![64, 128] } else { vec![64, 128, 256, 512] };

    let mut t = Table::new(
        "Figure 3 — L(x,g) landmarks shift right (in epochs) as batch grows; warmup must lengthen",
        &["batch", "probes", "L@start", "dip epoch", "re-cross epoch", "L@end"],
    );
    let mut csv = Table::new("fig3 traces", &["batch", "iteration", "epoch", "L"]);
    let mut rows = Vec::new();
    for &batch in &batches {
        let sched = Legw::scale_to(&base, batch);
        let ipe = 2048usize.div_ceil(batch);
        let probe_every = (ipe / 16).max(1);
        let trace = mnist_lipschitz_trace(
            &data,
            24,
            24,
            &sched,
            SolverKind::Sgd,
            seed,
            probe_every,
            128,
        );
        for s in &trace {
            csv.row(vec![
                batch.to_string(),
                s.iteration.to_string(),
                format!("{:.4}", s.epoch),
                format!("{:.5}", s.value),
            ]);
        }
        let dip = dip_epoch(&trace).unwrap_or(0.0);
        let recross = recross_epoch(&trace);
        t.row(vec![
            batch.to_string(),
            trace.len().to_string(),
            format!("{:.4}", trace.first().map(|s| s.value).unwrap_or(0.0)),
            format!("{dip:.3}"),
            recross.map(|e| format!("{e:.3}")).unwrap_or_else(|| format!(">{budget}")),
            format!("{:.4}", trace.last().map(|s| s.value).unwrap_or(0.0)),
        ]);
        rows.push((batch, dip, recross.unwrap_or(budget)));
    }
    t.emit("fig3");
    let _ = csv.write_csv("fig3_traces");
    rows
}
